//! All five coordination solutions on one shared workload — a miniature
//! Table III with full trace access.
//!
//! Run with: `cargo run --release --example coordination_showdown [horizon_s]`

use gfsc::{markdown_table, Simulation, Solution};
use gfsc_units::Seconds;

fn main() {
    let horizon = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1800.0);

    println!("== coordination showdown over {horizon} s (seed 42) ==\n");
    let mut rows = Vec::new();
    let mut baseline_energy = None;
    for solution in Solution::ALL {
        let outcome = Simulation::builder()
            .solution(solution)
            .seed(42)
            .build()
            .run(Seconds::new(horizon));
        let energy = outcome.fan_energy.value();
        let base = *baseline_energy.get_or_insert(energy);
        let temp = outcome.traces.require("t_junction_c").expect("recorded");
        let peak = temp.values().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        rows.push(vec![
            solution.paper_name().to_owned(),
            format!("{:.2}", outcome.violation_percent),
            format!("{:.3}", if base > 0.0 { energy / base } else { f64::NAN }),
            format!("{peak:.1}"),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["Solution", "Violations (%)", "Norm. fan energy", "Peak junction (°C)"],
            &rows
        )
    );
    println!("Longer horizons average out the spike arrivals; the paper order is");
    println!("E-coord worst on violations, the full proposal best, with the");
    println!("adaptive-reference variants saving ~20-35 % fan energy.");
}
