//! All five coordination solutions on one shared workload — a miniature
//! Table III with full trace access, fanned out by the sweep engine.
//!
//! Run with: `cargo run --release --example coordination_showdown [horizon_s]`

use gfsc::sweep::ScenarioGrid;
use gfsc::{markdown_table, Solution};
use gfsc_units::Seconds;

fn main() {
    let horizon = std::env::args().nth(1).and_then(|s| s.parse::<f64>().ok()).unwrap_or(1800.0);

    println!("== coordination showdown over {horizon} s (seed 42) ==\n");
    let results = ScenarioGrid::builder()
        .horizon(Seconds::new(horizon))
        .solutions(&Solution::ALL)
        .seeds(&[42])
        .keep_traces(true)
        .build()
        .run();
    let base = results
        .iter()
        .find(|r| r.solution == Solution::WithoutCoordination)
        .expect("baseline in Solution::ALL")
        .summary
        .fan_energy_j;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let traces = r.traces.as_ref().expect("grid built with keep_traces");
            let temp = traces.require("t_junction_c").expect("recorded");
            let peak = temp.values().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            vec![
                r.solution.paper_name().to_owned(),
                format!("{:.2}", r.summary.violation_percent),
                format!("{:.3}", if base > 0.0 { r.summary.fan_energy_j / base } else { f64::NAN }),
                format!("{peak:.1}"),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["Solution", "Violations (%)", "Norm. fan energy", "Peak junction (°C)"],
            &rows
        )
    );
    println!("Longer horizons average out the spike arrivals; the paper order is");
    println!("E-coord worst on violations, the full proposal best, with the");
    println!("adaptive-reference variants saving ~20-35 % fan energy.");
}
