//! Rack-scale control: the full solution matrix — global lockstep vs the
//! coordinated two-layer controller, per-zone single-step fan scaling,
//! and the per-zone E-coord descent.
//!
//! A rack couples everything a single server couples, one level up: fan
//! *zones* (front/rear walls) serve sets of servers through a shared
//! plenum, so the naive move — one PID pairing the rack-wide max
//! temperature with the fastest wall's speed and driving every wall in
//! lockstep, one capper capping every socket — overpays in fan energy
//! (the cool wall spins as fast as the hot one) and in performance (one
//! hot socket caps the whole rack). The lifted modes run the paper's
//! remaining solutions per zone: single-step scaling boosts only the wall
//! whose sockets are violating (Section V-C per zone), and the E-coord
//! descent sizes each wall from the zone's own plant view. This example
//! runs the comparison study — including the two rack-native modes, the
//! rack-global energy descent and the work migrator, on the racks where
//! each one's advantage is structural — and then zooms into one
//! coordinated run's per-zone traces.
//!
//! Run with: `cargo run --release --example rack`

use gfsc::experiments::rack::{imbalanced_choked_rack, run, to_markdown, RackStudyConfig};
use gfsc::rack::RackTopology;
use gfsc::sweep::ScenarioGrid;
use gfsc::Solution;
use gfsc_coord::RackControl;
use gfsc_units::Seconds;

fn main() {
    println!("== gfsc rack study: the full control matrix, one coordinator ==\n");

    let rows = run(&RackStudyConfig::default());
    println!("{}", to_markdown(&rows));
    println!(
        "\nlockstep             = one PID, every wall in lockstep (naive baseline)\n\
         coordinated[+adaptive] = per-zone fan loops + capper bank under the rack coordinator\n\
         coordinated+ss       = + per-zone single-step fan scaling (paper Section V-C per zone)\n\
         coordinated+e-coord  = per-zone energy-first descent on the zone plant views\n\
         global-e-coord       = every wall sized jointly against the full coupled rack\n\
         coordinated+migrate  = hot servers shed load weight to headroomed walls before capping"
    );

    // Where the rack-native modes earn their keep: the global descent on
    // the strongly-coupled shared-plenum rack, the migrator on the
    // imbalanced choked-rear rack.
    println!("\n== rack-native modes on the racks that need them ==\n");
    let native = run(&RackStudyConfig {
        horizon: Seconds::new(1800.0),
        seeds: vec![42, 43, 44],
        racks: vec![RackTopology::shared_plenum(4)],
        controls: vec![RackControl::CoordinatedECoord, RackControl::GlobalECoord],
    });
    println!("{}", to_markdown(&native));
    let migration = run(&RackStudyConfig {
        horizon: Seconds::new(1800.0),
        seeds: vec![42, 43, 44],
        racks: vec![imbalanced_choked_rack()],
        controls: vec![
            RackControl::Coordinated { adaptive_reference: true },
            RackControl::MigratingCoordinated { adaptive_reference: true },
        ],
    });
    println!("{}", to_markdown(&migration));
    println!(
        "\nOn the shared-plenum rack the walls breathe one air volume, so per-zone\n\
         sizing chases its neighbour's slewing actuals; the joint descent holds\n\
         the least feasible fan vector instead. On the choked-rear rack the\n\
         migrator moves the hot server's work to the free-breathing wall —\n\
         fewer violated socket-epochs, less work lost, no extra total energy."
    );

    // Zoom: per-zone traces of one coordinated+SS 1U×8 run.
    let results = ScenarioGrid::builder()
        .horizon(Seconds::new(900.0))
        .solutions(&[Solution::RCoordAdaptiveTrefSsFan])
        .seeds(&[42])
        .rack_variant(RackTopology::rack_1u_x8())
        .keep_traces(true)
        .build()
        .run();
    let traces = results[0].traces.as_ref().expect("traces kept");
    let z0 = traces.require("z0_fan_rpm").expect("per-zone channel");
    let z1 = traces.require("z1_fan_rpm").expect("per-zone channel");
    let t0 = traces.require("z0_t_hot_c").expect("recorded");
    let t1 = traces.require("z1_t_hot_c").expect("recorded");
    println!("\n1Ux8 zoom ({}): front vs rear wall", results[0].label);
    println!("  time   front fan  rear fan   front hot  rear hot");
    for k in (0..z0.len()).step_by(90) {
        println!(
            "  {:4} s  {:5.0} rpm  {:5.0} rpm  {:6.2} °C  {:6.2} °C",
            k,
            z0.values()[k],
            z1.values()[k],
            t0.values()[k],
            t1.values()[k],
        );
    }
    println!(
        "\nThe rear wall breathes pre-heated, recirculated air, so its fans run\n\
         faster; the front wall is allowed to slow down — that asymmetry is\n\
         where the coordinated controller's fan-energy saving comes from. A\n\
         demand spike that caps only one wall's sockets boosts only that wall\n\
         (per-zone single-step), and the E-coord row shows the energy-first\n\
         floor: each wall at the cheapest speed its zone's model allows."
    );
}
