//! Rack-scale control: the naive global loop vs the coordinated
//! two-layer controller (per-socket cappers + per-zone fan loops under a
//! rack coordinator).
//!
//! A rack couples everything a single server couples, one level up: fan
//! *zones* (front/rear walls) serve sets of servers through a shared
//! plenum, so the naive move — one PID on the rack-wide max temperature
//! driving every wall in lockstep, one capper capping every socket —
//! overpays in fan energy (the cool wall spins as fast as the hot one)
//! and in performance (one hot socket caps the whole rack). This example
//! runs the comparison study and then zooms into one coordinated run's
//! per-zone traces.
//!
//! Run with: `cargo run --release --example rack`

use gfsc::experiments::rack::{run, to_markdown, RackStudyConfig};
use gfsc::rack::RackTopology;
use gfsc::sweep::ScenarioGrid;
use gfsc::Solution;
use gfsc_units::Seconds;

fn main() {
    println!("== gfsc rack study: many fans, many sockets, one coordinator ==\n");

    let rows = run(&RackStudyConfig::default());
    println!("{}", to_markdown(&rows));

    // Zoom: per-zone traces of one coordinated 1U×8 run.
    let results = ScenarioGrid::builder()
        .horizon(Seconds::new(900.0))
        .solutions(&[Solution::RCoordAdaptiveTref])
        .seeds(&[42])
        .rack_variant(RackTopology::rack_1u_x8())
        .keep_traces(true)
        .build()
        .run();
    let traces = results[0].traces.as_ref().expect("traces kept");
    let z0 = traces.require("z0_fan_rpm").expect("per-zone channel");
    let z1 = traces.require("z1_fan_rpm").expect("per-zone channel");
    let t0 = traces.require("z0_t_hot_c").expect("recorded");
    let t1 = traces.require("z1_t_hot_c").expect("recorded");
    println!("\n1Ux8 zoom ({}): front vs rear wall", results[0].label);
    println!("  time   front fan  rear fan   front hot  rear hot");
    for k in (0..z0.len()).step_by(90) {
        println!(
            "  {:4} s  {:5.0} rpm  {:5.0} rpm  {:6.2} °C  {:6.2} °C",
            k,
            z0.values()[k],
            z1.values()[k],
            t0.values()[k],
            t1.values()[k],
        );
    }
    println!(
        "\nThe rear wall breathes pre-heated, recirculated air, so its fans run\n\
         faster; the front wall is allowed to slow down — that asymmetry is\n\
         where the coordinated controller's fan-energy saving comes from."
    );
}
