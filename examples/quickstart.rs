//! Quickstart: simulate ten minutes of an enterprise server under the
//! paper's full proposal (adaptive PID + rule-based coordination +
//! predictive reference + single-step fan scaling) and print what
//! happened.
//!
//! Run with: `cargo run --release --example quickstart`

use gfsc::{Simulation, Solution};
use gfsc_units::Seconds;

fn main() {
    let outcome = Simulation::builder()
        .solution(Solution::RCoordAdaptiveTrefSsFan)
        .seed(42)
        .build()
        .run(Seconds::new(600.0));

    println!("== gfsc quickstart: 600 s of the full proposal ==\n");
    println!(
        "deadline violations : {:.2} % of {} CPU epochs",
        outcome.violation_percent, outcome.total_epochs
    );
    println!("fan energy          : {:.0} J", outcome.fan_energy.value());
    println!("cpu energy          : {:.0} J", outcome.cpu_energy.value());

    // Every run records full traces; print a small excerpt.
    let temp = outcome.traces.require("t_junction_c").expect("recorded");
    let fan = outcome.traces.require("fan_rpm").expect("recorded");
    println!("\n  time   junction   fan speed");
    for k in (0..=600).step_by(60) {
        println!(
            "  {:>4} s   {:>5.1} °C   {:>5.0} rpm",
            temp.times()[k],
            temp.values()[k],
            fan.values()[k]
        );
    }
    println!("\nTraces carry 8 channels; see RunOutcome::traces for CSV export.");
}
