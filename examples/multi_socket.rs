//! Multi-socket closed loop: the paper's coordinated stack on 2S/4S
//! boards and a blade chassis, all behind one shared fan.
//!
//! The single fan must satisfy the *hottest* socket (max aggregation over
//! per-socket sensor chains), so every extra socket — and every socket
//! breathing pre-heated downstream air — tightens the contention the
//! global coordinator arbitrates. This example sweeps the stock
//! topologies through the scenario grid and prints the study table, then
//! zooms into one 2S run's per-socket traces.
//!
//! Run with: `cargo run --release --example multi_socket`

use gfsc::experiments::topology::{run, to_markdown, TopologyStudyConfig};
use gfsc::sweep::ScenarioGrid;
use gfsc::thermal::Topology;
use gfsc::Solution;
use gfsc_units::Seconds;

fn main() {
    println!("== gfsc multi-socket study: one fan, many heat sources ==\n");

    // The comparison table: every stock topology, three seeds, the full
    // proposal. Each non-default topology tunes its own gain schedule once
    // at grid build, then all cells fan out across cores.
    let rows = run(&TopologyStudyConfig {
        horizon: Seconds::new(900.0),
        seeds: vec![42, 43, 44],
        solution: Solution::RCoordAdaptiveTrefSsFan,
        ..TopologyStudyConfig::default()
    });
    println!("{}", to_markdown(&rows));

    // Zoom: per-socket traces of one dual-socket run.
    let results = ScenarioGrid::builder()
        .horizon(Seconds::new(600.0))
        .solutions(&[Solution::RCoordAdaptiveTrefSsFan])
        .seeds(&[42])
        .topology_variant(Topology::dual_socket())
        .keep_traces(true)
        .build()
        .run();
    let traces = results[0].traces.as_ref().expect("traces kept");
    let s0 = traces.require("t_junction_s0_c").expect("per-socket channel");
    let s1 = traces.require("t_junction_s1_c").expect("per-socket channel");
    let fan = traces.require("fan_rpm").expect("recorded");
    println!("\n2S zoom ({}): upstream vs downstream socket", results[0].label);
    println!("  time   cpu0       cpu1       fan");
    for k in (0..s0.len()).step_by(60) {
        println!(
            "  {:4} s  {:6.2} °C  {:6.2} °C  {:5.0} rpm",
            k,
            s0.values()[k],
            s1.values()[k],
            fan.values()[k],
        );
    }
    println!("\nThe downstream socket (derated airflow) runs hotter; the fan is\nsized by it, not by the average.");
}
