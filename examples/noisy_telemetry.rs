//! How bad can the telemetry get? Sweeps the sensor lag and the ADC step
//! around the paper's measured operating point (10 s, 1 °C) and reports
//! the adaptive controller's stability and regulation quality at each
//! corner.
//!
//! Run with: `cargo run --release --example noisy_telemetry`

use gfsc::experiments::ablations::{lag_sweep, quantization_sweep};
use gfsc_units::Seconds;

fn main() {
    println!("== telemetry-quality sweeps around the DATE'14 operating point ==\n");

    println!("sensor lag sweep (square workload, controller re-tuned per lag):");
    let lags: Vec<Seconds> = [0.0, 5.0, 10.0, 20.0, 30.0].into_iter().map(Seconds::new).collect();
    for row in lag_sweep(&lags, Seconds::new(1600.0)) {
        println!(
            "  lag {:>4.0} s: adaptive {} (osc {:>5.0} rpm, temp rms {:>4.2} K) | fixed@6000 {}",
            row.lag.value(),
            if row.adaptive.stable { "stable  " } else { "UNSTABLE" },
            row.adaptive.oscillation_amplitude,
            row.adaptive.temperature_rms_error,
            if row.fixed_high.stable { "stable" } else { "UNSTABLE" },
        );
    }

    println!("\nADC-step sweep (steady 0.7 load, Eq. 10 hold on/off):");
    for row in quantization_sweep(&[0.25, 0.5, 1.0, 2.0], Seconds::new(900.0)) {
        println!(
            "  step {:>4.2} °C: {:>3} command changes with hold vs {:>3} without; \
             temp rms {:>4.2} K vs {:>4.2} K",
            row.step,
            row.command_changes_with_hold,
            row.command_changes_without_hold,
            row.rms_with_hold,
            row.rms_without_hold,
        );
    }
    println!(
        "\nThe paper's chain (10 s, 1 °C) sits inside the stable region; stability\n\
         degrades once the lag approaches the 30 s fan decision period."
    );
}
