//! The flight recorder end to end: arm it on a rack run, read the
//! decision stream back as a causal timeline, and round-trip it through
//! the `.events` text format that CI archives for every HIL drill.
//!
//! The run is the default explanation scenario — the rack-global energy
//! descent on the strongly-coupled shared-plenum rack, the mode with
//! the richest decision stream (Gauss–Seidel sweep counts, convergence
//! residuals, per-zone fan targets and bound pins, emergency clamps).
//!
//! Run with: `cargo run --release --example flight_recorder`

use gfsc::experiments::explain::{run, ExplainConfig};
use gfsc_obs::explain::render_timeline;
use gfsc_obs::{EventKind, FlightSnapshot};

fn main() {
    let config = ExplainConfig::default();
    println!(
        "== flying {:?} on {} with a {}-event recorder ==\n",
        config.control,
        config.rack.label(),
        config.capacity
    );
    let report = run(&config);

    // What the controllers actually did, per kind.
    println!("decision mix ({} events recorded):", report.flight.recorded);
    for kind in EventKind::ALL {
        let count = report.flight.events.iter().filter(|e| e.kind == kind).count();
        if count > 0 {
            println!("  {:>6} × {}", count, kind.label());
        }
    }

    // The first few epochs of the causal story.
    println!("\ntimeline (head):");
    for line in report.timeline.lines().take(24) {
        println!("  {line}");
    }

    // The `.events` text form is lossless — the same bytes CI uploads
    // from the HIL drills and `gfsc-explain` parses back.
    let text = report.flight.to_text();
    let reparsed = FlightSnapshot::from_text(&text).expect("own output parses");
    assert_eq!(reparsed, report.flight, "text round-trip must be lossless");
    assert_eq!(render_timeline(&reparsed), report.timeline);
    println!(
        "\n.events round-trip OK ({} bytes, {:.2} % violated socket-epochs over the run)",
        text.len(),
        report.violation_percent
    );
}
