//! A Ziegler–Nichols tuning session against the simulated fan loop.
//!
//! Finds the ultimate gain and period at the paper's two linearization
//! points (2000 and 6000 rpm), derives the PID gain tables, and shows the
//! ~8× sensitivity ratio that makes one fixed gain set unusable across
//! the fan range — the motivation for the adaptive (gain-scheduled) PID.
//!
//! Run with: `cargo run --release --example controller_tuning`

use gfsc::experiments::fan_study_spec;
use gfsc_control::{ZieglerNichols, ZnTuner, ZnTunerConfig};
use gfsc_server::{FanPlant, ServerSpec};
use gfsc_units::{Rpm, Utilization};

fn main() {
    // Tuning runs on the lagged-but-unquantized loop (see DESIGN.md §5).
    let spec = ServerSpec { quantization_step: 0.0, ..fan_study_spec() };

    println!("== closed-loop tuning on the simulated fan → temperature loop ==\n");
    let mut kus = Vec::new();
    for speed in [2000.0, 6000.0] {
        let mut plant = FanPlant::new(spec.clone(), Utilization::new(0.7), Rpm::new(speed));
        let equilibrium = plant.equilibrium_temperature();
        let tuner = ZnTuner::new(ZnTunerConfig {
            setpoint: equilibrium,
            offset: speed,
            min_gain: 10.0,
            max_gain: 1_000_000.0,
            steps_per_trial: 240,
            tail_fraction: 0.5,
            hysteresis: 0.05,
            min_amplitude: 0.15,
            gain_tolerance: 0.01,
            excitation: 1000.0,
        });
        let ultimate = tuner.find_ultimate_gain(&mut plant).expect("tunable plant");
        let zn = ZieglerNichols::classic_pid(ultimate);
        let tl = ZieglerNichols::tyreus_luyben(ultimate);
        println!("operating point {speed} rpm (equilibrium {equilibrium:.1} °C):");
        println!("  Ku = {:.0} rpm/K, Pu = {:.2} fan periods", ultimate.ku, ultimate.pu);
        println!("  classic ZN    : KP={:.0}  KI={:.0}  KD={:.0}", zn.kp(), zn.ki(), zn.kd());
        println!("  Tyreus–Luyben : KP={:.0}  KI={:.0}  KD={:.0}\n", tl.kp(), tl.ki(), tl.kd());
        kus.push(ultimate.ku);
    }
    println!(
        "ultimate-gain ratio Ku(6000)/Ku(2000) = {:.1}×\n\
         → a single fixed gain set is either sluggish at high speeds or\n\
           unstable at low speeds; Eq. (8)–(9) interpolates per region.",
        kus[1] / kus[0]
    );
}
