//! A data-center duty cycle: diurnal load swell with noise and traffic
//! spikes, comparing the uncoordinated baseline against the paper's full
//! proposal over two simulated hours.
//!
//! Run with: `cargo run --release --example datacenter_duty_cycle`

use gfsc::{Simulation, Solution};
use gfsc_units::Seconds;
use gfsc_workload::{Sine, Workload};

fn diurnal(seed: u64) -> Workload {
    // A compressed "day": load swings 0.15–0.75 over a one-hour period,
    // with measurement-scale noise and flash-crowd spikes.
    Workload::builder(Sine::new(0.45, 0.30, Seconds::new(3600.0)))
        .gaussian_noise(0.04, seed)
        .spikes(1.0 / 400.0, Seconds::new(25.0), 0.5, seed.wrapping_add(1))
        .build()
}

fn main() {
    let horizon = Seconds::new(7200.0);
    println!("== datacenter duty cycle: 2 h diurnal load, baseline vs proposal ==\n");

    let mut results = Vec::new();
    for solution in [Solution::WithoutCoordination, Solution::RCoordAdaptiveTrefSsFan] {
        let outcome =
            Simulation::builder().solution(solution).workload(diurnal(7)).build().run(horizon);
        println!(
            "{:<28} violations {:>5.2} %   fan energy {:>8.0} J   lost work {:>6.1} u·s",
            solution.paper_name(),
            outcome.violation_percent,
            outcome.fan_energy.value(),
            outcome.lost_utilization
        );
        results.push(outcome);
    }

    let base = &results[0];
    let ours = &results[1];
    if base.fan_energy.value() > 0.0 {
        println!(
            "\nproposal vs baseline: {:+.1} pp violations, {:.0} % fan energy",
            ours.violation_percent - base.violation_percent,
            100.0 * ours.fan_energy.value() / base.fan_energy.value()
        );
    }

    // Peak junction temperature comparison — the DTM comfort-zone view.
    for (name, outcome) in [("baseline", base), ("proposal", ours)] {
        let t = outcome.traces.require("t_junction_c").expect("recorded");
        let peak = t.values().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!("peak junction ({name}): {peak:.1} °C");
    }
}
