//! Workspace-root package hosting the cross-crate integration tests
//! (`tests/`) and runnable examples (`examples/`).
//!
//! All functionality lives in the member crates; start from [`gfsc`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gfsc;
