//! Inclusive value ranges used for actuator limits and comfort zones.

use core::fmt;

/// An inclusive `[lo, hi]` range of a partially ordered quantity.
///
/// Used across the workspace for actuator limits (minimum/maximum fan
/// speed), the CPU-cap range, and the thermal comfort zone the paper keeps
/// the junction temperature inside (e.g. below 80 °C with a 70–80 °C
/// adaptive reference window).
///
/// # Examples
///
/// ```
/// use gfsc_units::{Bounds, Rpm};
///
/// let limits = Bounds::new(Rpm::new(1000.0), Rpm::new(8500.0));
/// assert_eq!(limits.clamp(Rpm::new(12_000.0)), Rpm::new(8500.0));
/// assert!(limits.contains(Rpm::new(4000.0)));
/// assert!(!limits.contains(Rpm::new(500.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bounds<T> {
    lo: T,
    hi: T,
}

impl<T: PartialOrd + Copy> Bounds<T> {
    /// Creates a range from `lo` to `hi`, inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or the two endpoints are unordered (NaN inside).
    #[must_use]
    pub fn new(lo: T, hi: T) -> Self {
        assert!(lo <= hi, "bounds must satisfy lo <= hi");
        Self { lo, hi }
    }

    /// The lower endpoint.
    #[must_use]
    pub fn lo(&self) -> T {
        self.lo
    }

    /// The upper endpoint.
    #[must_use]
    pub fn hi(&self) -> T {
        self.hi
    }

    /// Returns `true` if `value` lies inside the range (inclusive).
    #[must_use]
    pub fn contains(&self, value: T) -> bool {
        self.lo <= value && value <= self.hi
    }

    /// Clamps `value` into the range.
    #[must_use]
    pub fn clamp(&self, value: T) -> T {
        if value < self.lo {
            self.lo
        } else if value > self.hi {
            self.hi
        } else {
            value
        }
    }
}

impl<T: fmt::Display> fmt::Display for Bounds<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Celsius, Rpm, Utilization};

    #[test]
    fn contains_is_inclusive() {
        let b = Bounds::new(1.0, 2.0);
        assert!(b.contains(1.0));
        assert!(b.contains(2.0));
        assert!(!b.contains(0.999));
        assert!(!b.contains(2.001));
    }

    #[test]
    fn clamp_saturates_both_ends() {
        let b = Bounds::new(Rpm::new(1000.0), Rpm::new(8500.0));
        assert_eq!(b.clamp(Rpm::new(0.0)), Rpm::new(1000.0));
        assert_eq!(b.clamp(Rpm::new(9999.0)), Rpm::new(8500.0));
        assert_eq!(b.clamp(Rpm::new(5000.0)), Rpm::new(5000.0));
    }

    #[test]
    fn works_with_all_quantities() {
        let comfort = Bounds::new(Celsius::new(70.0), Celsius::new(80.0));
        assert!(comfort.contains(Celsius::new(75.0)));
        let caps = Bounds::new(Utilization::new(0.1), Utilization::FULL);
        assert_eq!(caps.clamp(Utilization::IDLE), Utilization::new(0.1));
    }

    #[test]
    fn accessors_and_display() {
        let b = Bounds::new(Celsius::new(70.0), Celsius::new(80.0));
        assert_eq!(b.lo(), Celsius::new(70.0));
        assert_eq!(b.hi(), Celsius::new(80.0));
        assert_eq!(b.to_string(), "[70.00 °C, 80.00 °C]");
    }

    #[test]
    fn degenerate_single_point_range() {
        let b = Bounds::new(5.0, 5.0);
        assert!(b.contains(5.0));
        assert_eq!(b.clamp(7.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_range_rejected() {
        let _ = Bounds::new(2.0, 1.0);
    }
}
