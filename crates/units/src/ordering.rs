//! Total-order folds over `f64` — the workspace NaN policy.
//!
//! `f64::max` / `f64::min` silently *drop* a NaN operand (IEEE 754
//! maxNum semantics): `f64::NAN.max(45.0) == 45.0`. In a
//! hottest-socket scan that makes a poisoned reading vanish — the
//! controller would happily report "everything is cool" off a sensor
//! that returned garbage. These helpers use [`f64::total_cmp`]
//! instead, under which positive NaN orders **above +∞**: a NaN
//! surfaces from a max-scan as "hottest" (fail-hot, so guards and
//! fallbacks trip) and never wins a min-scan (a blind server is never
//! selected as the coolest migration target).
//!
//! For non-NaN, nonzero operands the result is bit-identical to
//! `f64::max`/`f64::min`, which is what keeps the golden traces stable
//! across the panic-freedom sweep.

use core::cmp::Ordering;

/// The larger of `a` and `b` under the IEEE 754 total order.
///
/// NaN wins: a poisoned operand propagates out of a max-fold instead
/// of being dropped.
///
/// # Examples
///
/// ```
/// use gfsc_units::total_max;
///
/// assert_eq!(total_max(1.0, 2.0), 2.0);
/// assert!(total_max(f64::NAN, 2.0).is_nan());
/// assert!(total_max(2.0, f64::NAN).is_nan());
/// ```
#[must_use]
pub fn total_max(a: f64, b: f64) -> f64 {
    match a.total_cmp(&b) {
        Ordering::Less => b,
        _ => a,
    }
}

/// The smaller of `a` and `b` under the IEEE 754 total order.
///
/// Positive NaN loses (it sits above +∞), so a min-selection never
/// picks a poisoned candidate.
///
/// # Examples
///
/// ```
/// use gfsc_units::total_min;
///
/// assert_eq!(total_min(1.0, 2.0), 1.0);
/// assert_eq!(total_min(f64::NAN, 2.0), 2.0);
/// ```
#[must_use]
pub fn total_min(a: f64, b: f64) -> f64 {
    match a.total_cmp(&b) {
        Ordering::Greater => b,
        _ => a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_nan_matches_ieee_max_min() {
        for (a, b) in [(1.0, 2.0), (-3.5, 7.25), (80.0, 80.0), (0.0, 45.0)] {
            assert_eq!(total_max(a, b), f64::max(a, b));
            assert_eq!(total_min(a, b), f64::min(a, b));
        }
    }

    #[test]
    fn nan_propagates_out_of_max_folds() {
        assert!(total_max(f64::NAN, 100.0).is_nan());
        assert!(total_max(100.0, f64::NAN).is_nan());
        assert!(total_max(f64::INFINITY, f64::NAN).is_nan());
    }

    #[test]
    fn nan_never_wins_a_min_selection() {
        assert_eq!(total_min(f64::NAN, 100.0), 100.0);
        assert_eq!(total_min(100.0, f64::NAN), 100.0);
    }

    #[test]
    fn fold_over_a_poisoned_scan_surfaces_the_nan() {
        let temps = [45.0, f64::NAN, 62.0];
        let hottest = temps.iter().copied().fold(f64::NEG_INFINITY, total_max);
        assert!(hottest.is_nan(), "the poisoned reading must surface, not vanish");
    }
}
