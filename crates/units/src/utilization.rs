//! CPU utilization, a dimensionless fraction in `[0, 1]`.

use core::fmt;
use core::ops::Sub;

/// Error returned when constructing a [`Utilization`] outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UtilizationError {
    value_bits: u64,
}

impl UtilizationError {
    /// The offending value.
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.value_bits)
    }
}

impl fmt::Display for UtilizationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "utilization must lie in [0, 1], got {}", f64::from_bits(self.value_bits))
    }
}

impl std::error::Error for UtilizationError {}

/// A CPU utilization in `[0, 1]`.
///
/// The invariant is enforced at construction: [`Utilization::new`] clamps
/// (convenient for noisy synthetic workloads that may overshoot the range),
/// while [`Utilization::try_new`] rejects out-of-range inputs.
///
/// # Examples
///
/// ```
/// use gfsc_units::Utilization;
///
/// let load = Utilization::new(0.7);
/// let cap = Utilization::new(0.5);
/// // The executed load is limited by the cap:
/// assert_eq!(load.min(cap), cap);
/// // `new` clamps out-of-range values:
/// assert_eq!(Utilization::new(1.3), Utilization::FULL);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Utilization(f64);

impl Utilization {
    /// A fully idle CPU (`u = 0`).
    pub const IDLE: Utilization = Utilization(0.0);

    /// A fully loaded CPU (`u = 1`).
    pub const FULL: Utilization = Utilization(1.0);

    /// Creates a utilization, clamping the input into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is NaN.
    #[must_use]
    pub fn new(u: f64) -> Self {
        assert!(!u.is_nan(), "utilization must not be NaN");
        Self(u.clamp(0.0, 1.0))
    }

    /// Creates a utilization, rejecting values outside `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`UtilizationError`] if `u` is NaN or outside `[0, 1]`.
    pub fn try_new(u: f64) -> Result<Self, UtilizationError> {
        if u.is_nan() || !(0.0..=1.0).contains(&u) {
            Err(UtilizationError { value_bits: u.to_bits() })
        } else {
            Ok(Self(u))
        }
    }

    /// Returns the utilization as a fraction in `[0, 1]`.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the utilization as a percentage in `[0, 100]`.
    #[must_use]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Adds a delta, saturating at the `[0, 1]` bounds.
    #[must_use]
    pub fn saturating_add(self, delta: f64) -> Self {
        assert!(!delta.is_nan(), "utilization delta must not be NaN");
        Self((self.0 + delta).clamp(0.0, 1.0))
    }

    /// Returns the smaller of two utilizations (e.g. applying a cap).
    ///
    /// Total order internally; `Utilization` cannot hold NaN (the
    /// constructor asserts), so this is bit-identical to `f64::min`.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(crate::total_min(self.0, other.0))
    }

    /// Returns the larger of two utilizations.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(crate::total_max(self.0, other.0))
    }

    /// Clamps the utilization into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        assert!(lo.0 <= hi.0, "invalid clamp range: {lo} > {hi}");
        Self(self.0.clamp(lo.0, hi.0))
    }
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} %", self.as_percent())
    }
}

impl From<Utilization> for f64 {
    fn from(u: Utilization) -> f64 {
        u.0
    }
}

/// `Utilization - Utilization` yields a bare signed fraction delta.
impl Sub for Utilization {
    type Output = f64;

    fn sub(self, other: Utilization) -> f64 {
        self.0 - other.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps_into_range() {
        assert_eq!(Utilization::new(-0.5), Utilization::IDLE);
        assert_eq!(Utilization::new(1.5), Utilization::FULL);
        assert_eq!(Utilization::new(0.7).value(), 0.7);
    }

    #[test]
    fn try_new_validates() {
        assert!(Utilization::try_new(0.0).is_ok());
        assert!(Utilization::try_new(1.0).is_ok());
        assert!(Utilization::try_new(-0.01).is_err());
        assert!(Utilization::try_new(1.01).is_err());
        assert!(Utilization::try_new(f64::NAN).is_err());
        let err = Utilization::try_new(1.5).unwrap_err();
        assert_eq!(err.value(), 1.5);
        assert!(err.to_string().contains("1.5"));
    }

    #[test]
    fn saturating_add_respects_bounds() {
        assert_eq!(Utilization::new(0.9).saturating_add(0.5), Utilization::FULL);
        assert_eq!(Utilization::new(0.1).saturating_add(-0.5), Utilization::IDLE);
        let u = Utilization::new(0.5).saturating_add(0.2);
        assert!((u.value() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn capping_uses_min() {
        let demand = Utilization::new(0.7);
        let cap = Utilization::new(0.4);
        assert_eq!(demand.min(cap), cap);
        assert_eq!(demand.max(cap), demand);
    }

    #[test]
    fn percent_and_display() {
        assert_eq!(Utilization::new(0.25).as_percent(), 25.0);
        assert_eq!(Utilization::new(0.255).to_string(), "25.5 %");
    }

    #[test]
    fn difference_is_signed() {
        assert!((Utilization::new(0.7) - Utilization::new(0.1) - 0.6).abs() < 1e-12);
        assert!((Utilization::new(0.1) - Utilization::new(0.7) + 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected_by_new() {
        let _ = Utilization::new(f64::NAN);
    }
}
