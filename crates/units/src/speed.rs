//! Rotational fan speed in revolutions per minute, and its slew rate.

use crate::time::Seconds;
use crate::{total_max, total_min};
use core::fmt;
use core::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A fan speed in revolutions per minute (rpm).
///
/// Fan speeds are non-negative. Differences between two speeds are bare
/// `f64` rpm deltas so controller outputs (`K_P · ΔT` in rpm) can be applied
/// directly.
///
/// # Examples
///
/// ```
/// use gfsc_units::Rpm;
///
/// let max = Rpm::new(8500.0);
/// let now = Rpm::new(2000.0);
/// assert_eq!(max - now, 6500.0);
/// assert_eq!(now.ratio_of(max), 2000.0 / 8500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Rpm(f64);

impl Rpm {
    /// Creates a fan speed from a value in rpm.
    ///
    /// # Panics
    ///
    /// Panics if `rpm` is negative or NaN.
    #[must_use]
    pub fn new(rpm: f64) -> Self {
        assert!(!rpm.is_nan(), "fan speed must not be NaN");
        assert!(rpm >= 0.0, "fan speed must be non-negative, got {rpm}");
        Self(rpm)
    }

    /// Creates a fan speed, clamping negative inputs to zero.
    ///
    /// Controller arithmetic can transiently produce negative commanded
    /// speeds; this constructor saturates instead of panicking.
    #[must_use]
    pub fn saturating_new(rpm: f64) -> Self {
        assert!(!rpm.is_nan(), "fan speed must not be NaN");
        Self(rpm.max(0.0))
    }

    /// Returns the speed value in rpm.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns `self / other` as a dimensionless ratio.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    #[must_use]
    pub fn ratio_of(self, other: Self) -> f64 {
        assert!(other.0 > 0.0, "cannot take ratio against zero fan speed");
        self.0 / other.0
    }

    /// Clamps the speed into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        assert!(lo.0 <= hi.0, "invalid clamp range: {lo} > {hi}");
        Self(self.0.clamp(lo.0, hi.0))
    }

    /// Returns the larger of two speeds.
    ///
    /// Total order internally; `Rpm` cannot hold NaN (the constructor
    /// asserts), so this is bit-identical to `f64::max`.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(total_max(self.0, other.0))
    }

    /// Returns the smaller of two speeds.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(total_min(self.0, other.0))
    }
}

impl fmt::Display for Rpm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} rpm", self.0)
    }
}

impl From<Rpm> for f64 {
    fn from(s: Rpm) -> f64 {
        s.0
    }
}

/// `Rpm + f64` shifts the speed by an rpm delta, saturating at zero.
impl Add<f64> for Rpm {
    type Output = Rpm;

    fn add(self, delta: f64) -> Rpm {
        Rpm::saturating_new(self.0 + delta)
    }
}

impl AddAssign<f64> for Rpm {
    fn add_assign(&mut self, delta: f64) {
        *self = *self + delta;
    }
}

/// `Rpm - f64` shifts the speed by an rpm delta, saturating at zero.
impl Sub<f64> for Rpm {
    type Output = Rpm;

    fn sub(self, delta: f64) -> Rpm {
        Rpm::saturating_new(self.0 - delta)
    }
}

impl SubAssign<f64> for Rpm {
    fn sub_assign(&mut self, delta: f64) {
        *self = *self - delta;
    }
}

/// `Rpm - Rpm` yields the difference as a bare rpm delta (may be negative).
impl Sub for Rpm {
    type Output = f64;

    fn sub(self, other: Rpm) -> f64 {
        self.0 - other.0
    }
}

/// A fan slew rate in rpm per second — how fast an actuator can move
/// between speeds.
///
/// Kept distinct from [`Rpm`] so a rate is never handed where a speed is
/// expected (and vice versa). Multiplying by [`Seconds`] yields the bare
/// rpm delta covered in that time, ready for `Rpm + f64` arithmetic.
///
/// # Examples
///
/// ```
/// use gfsc_units::{RpmPerSecond, Seconds};
///
/// let slew = RpmPerSecond::new(1000.0);
/// assert_eq!(slew * Seconds::new(1.5), 1500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct RpmPerSecond(f64);

impl RpmPerSecond {
    /// Creates a slew rate from a value in rpm per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or NaN.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        assert!(!rate.is_nan(), "slew rate must not be NaN");
        assert!(rate >= 0.0, "slew rate must be non-negative, got {rate}");
        Self(rate)
    }

    /// Returns the rate value in rpm per second.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for RpmPerSecond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} rpm/s", self.0)
    }
}

impl From<RpmPerSecond> for f64 {
    fn from(r: RpmPerSecond) -> f64 {
        r.0
    }
}

/// `RpmPerSecond * Seconds` yields the rpm delta covered in that time.
impl Mul<Seconds> for RpmPerSecond {
    type Output = f64;

    fn mul(self, dt: Seconds) -> f64 {
        self.0 * dt.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_value() {
        assert_eq!(Rpm::new(8500.0).value(), 8500.0);
        assert_eq!(Rpm::default().value(), 0.0);
    }

    #[test]
    fn saturating_new_clamps_negative() {
        assert_eq!(Rpm::saturating_new(-100.0).value(), 0.0);
        assert_eq!(Rpm::saturating_new(100.0).value(), 100.0);
    }

    #[test]
    fn delta_arithmetic_saturates_at_zero() {
        let s = Rpm::new(1000.0);
        assert_eq!((s - 2500.0).value(), 0.0);
        assert_eq!((s + 500.0).value(), 1500.0);
        assert_eq!(Rpm::new(3000.0) - s, 2000.0);
        assert_eq!(s - Rpm::new(3000.0), -2000.0);
    }

    #[test]
    fn assign_ops() {
        let mut s = Rpm::new(2000.0);
        s += 1000.0;
        assert_eq!(s, Rpm::new(3000.0));
        s -= 500.0;
        assert_eq!(s, Rpm::new(2500.0));
    }

    #[test]
    fn ratio_of_full_scale() {
        assert!((Rpm::new(4250.0).ratio_of(Rpm::new(8500.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clamp_and_min_max() {
        let lo = Rpm::new(1000.0);
        let hi = Rpm::new(8500.0);
        assert_eq!(Rpm::new(500.0).clamp(lo, hi), lo);
        assert_eq!(Rpm::new(9000.0).clamp(lo, hi), hi);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(hi.min(lo), lo);
    }

    #[test]
    fn display_formats_whole_rpm() {
        assert_eq!(Rpm::new(8500.4).to_string(), "8500 rpm");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        let _ = Rpm::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "zero fan speed")]
    fn ratio_against_zero_rejected() {
        let _ = Rpm::new(100.0).ratio_of(Rpm::new(0.0));
    }

    #[test]
    fn slew_rate_times_time_is_a_delta() {
        let slew = RpmPerSecond::new(1000.0);
        assert_eq!(slew * Seconds::new(2.0), 2000.0);
        assert_eq!(slew.value(), 1000.0);
        assert_eq!(f64::from(slew), 1000.0);
    }

    #[test]
    fn slew_rate_displays_with_unit() {
        assert_eq!(RpmPerSecond::new(1000.0).to_string(), "1000 rpm/s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_slew_rejected() {
        let _ = RpmPerSecond::new(-1.0);
    }
}
