//! Power (watts) and energy (joules).

use crate::Seconds;
use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A power in watts.
///
/// # Examples
///
/// ```
/// use gfsc_units::{Watts, Seconds};
///
/// let cpu = Watts::new(96.0) + Watts::new(64.0);
/// assert_eq!(cpu, Watts::new(160.0));
/// let energy = cpu * Seconds::new(2.0);
/// assert_eq!(energy.value(), 320.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(f64);

impl Watts {
    /// Creates a power from a value in watts.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative or NaN; the models in this workspace only
    /// describe dissipated (positive) power.
    #[must_use]
    pub fn new(w: f64) -> Self {
        assert!(!w.is_nan(), "power must not be NaN");
        assert!(w >= 0.0, "power must be non-negative, got {w}");
        Self(w)
    }

    /// Returns the power value in watts.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} W", self.0)
    }
}

impl From<Watts> for f64 {
    fn from(w: Watts) -> f64 {
        w.0
    }
}

impl Add for Watts {
    type Output = Watts;

    fn add(self, other: Watts) -> Watts {
        Watts::new(self.0 + other.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, other: Watts) {
        *self = *self + other;
    }
}

/// `Watts - Watts` yields a bare watt delta (may be negative).
impl Sub for Watts {
    type Output = f64;

    fn sub(self, other: Watts) -> f64 {
        self.0 - other.0
    }
}

/// Scaling a power by a dimensionless factor.
impl Mul<f64> for Watts {
    type Output = Watts;

    fn mul(self, k: f64) -> Watts {
        Watts::new(self.0 * k)
    }
}

/// Power × time = energy.
impl Mul<Seconds> for Watts {
    type Output = Joules;

    fn mul(self, dt: Seconds) -> Joules {
        Joules::new(self.0 * dt.value())
    }
}

/// An energy in joules.
///
/// Produced by integrating [`Watts`] over [`Seconds`]; consumed by the
/// evaluation metrics (normalized fan energy in Table III of the paper).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(f64);

impl Joules {
    /// Creates an energy from a value in joules.
    ///
    /// # Panics
    ///
    /// Panics if `j` is negative or NaN.
    #[must_use]
    pub fn new(j: f64) -> Self {
        assert!(!j.is_nan(), "energy must not be NaN");
        assert!(j >= 0.0, "energy must be non-negative, got {j}");
        Self(j)
    }

    /// Returns the energy value in joules.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns `self / other` as a dimensionless ratio, the normalization
    /// used by the paper's Table III.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    #[must_use]
    pub fn normalized_to(self, other: Self) -> f64 {
        assert!(other.0 > 0.0, "cannot normalize against zero energy");
        self.0 / other.0
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} J", self.0)
    }
}

impl From<Joules> for f64 {
    fn from(j: Joules) -> f64 {
        j.0
    }
}

impl Add for Joules {
    type Output = Joules;

    fn add(self, other: Joules) -> Joules {
        Joules::new(self.0 + other.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, other: Joules) {
        *self = *self + other;
    }
}

/// Energy ÷ time = average power.
impl Div<Seconds> for Joules {
    type Output = Watts;

    fn div(self, dt: Seconds) -> Watts {
        assert!(dt.value() > 0.0, "cannot average power over zero time");
        Watts::new(self.0 / dt.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_arithmetic() {
        let a = Watts::new(96.0);
        let b = Watts::new(64.0);
        assert_eq!(a + b, Watts::new(160.0));
        assert_eq!(b - a, -32.0);
        assert_eq!(a * 0.5, Watts::new(48.0));
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(29.4) * Seconds::new(100.0);
        assert!((e.value() - 2940.0).abs() < 1e-9);
    }

    #[test]
    fn energy_accumulates() {
        let mut total = Joules::default();
        total += Watts::new(10.0) * Seconds::new(1.0);
        total += Watts::new(20.0) * Seconds::new(1.0);
        assert_eq!(total, Joules::new(30.0));
    }

    #[test]
    fn energy_normalization() {
        let base = Joules::new(1000.0);
        let e = Joules::new(703.0);
        assert!((e.normalized_to(base) - 0.703).abs() < 1e-12);
    }

    #[test]
    fn energy_over_time_is_average_power() {
        let avg = Joules::new(600.0) / Seconds::new(60.0);
        assert_eq!(avg, Watts::new(10.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Watts::new(29.4).to_string(), "29.40 W");
        assert_eq!(Joules::new(12.34).to_string(), "12.3 J");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_rejected() {
        let _ = Watts::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "zero energy")]
    fn normalize_against_zero_rejected() {
        let _ = Joules::new(1.0).normalized_to(Joules::new(0.0));
    }
}
