//! Absolute temperatures in degrees Celsius.

use crate::ordering::{total_max, total_min};
use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute temperature in degrees Celsius.
///
/// Differences between two [`Celsius`] values are bare `f64` kelvin deltas,
/// which is what control-error arithmetic wants: the PID controller in
/// `gfsc-control` computes `ΔT = T_meas − T_ref` and multiplies it by gains.
///
/// # Examples
///
/// ```
/// use gfsc_units::Celsius;
///
/// let t_ref = Celsius::new(75.0);
/// let t_meas = Celsius::new(77.5);
/// assert_eq!(t_meas - t_ref, 2.5);
/// assert_eq!(t_ref + 5.0, Celsius::new(80.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(f64);

impl Celsius {
    /// Creates a temperature from a value in degrees Celsius.
    ///
    /// # Panics
    ///
    /// Panics if `deg_c` is NaN; every temperature in the simulator must be
    /// comparable.
    #[must_use]
    pub fn new(deg_c: f64) -> Self {
        assert!(!deg_c.is_nan(), "temperature must not be NaN");
        Self(deg_c)
    }

    /// Fallible constructor for untrusted boundary values (telemetry
    /// backends, text adapters): `None` for NaN instead of a panic, so
    /// a poisoned reading becomes a *missing* reading and flows into
    /// the sensor-health machinery rather than aborting the loop.
    #[must_use]
    pub fn try_new(deg_c: f64) -> Option<Self> {
        if deg_c.is_nan() {
            None
        } else {
            Some(Self(deg_c))
        }
    }

    /// Returns the temperature value in degrees Celsius.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Total order over temperatures. `Celsius` cannot hold NaN, so
    /// this agrees with `PartialOrd` everywhere — it exists so
    /// selection loops can be written against a total order (and pass
    /// the `nan-cmp` lint) without an `unwrap`.
    #[must_use]
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Returns the larger of two temperatures (total order).
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        self.hotter(other)
    }

    /// Returns the smaller of two temperatures (total order).
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        self.cooler(other)
    }

    /// The hotter of two temperatures — the domain-named total-order
    /// fold the hottest-socket scans use (the `nan-maxmin` lint bans
    /// raw `.max(` in those files, since `f64::max` drops NaN and a
    /// lexical rule cannot tell a safe receiver from an `f64`).
    #[must_use]
    pub fn hotter(self, other: Self) -> Self {
        Self(total_max(self.0, other.0))
    }

    /// The cooler of two temperatures (total order; see
    /// [`Self::hotter`]).
    #[must_use]
    pub fn cooler(self, other: Self) -> Self {
        Self(total_min(self.0, other.0))
    }

    /// Clamps the temperature into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        assert!(lo.0 <= hi.0, "invalid clamp range: {lo} > {hi}");
        Self(self.0.clamp(lo.0, hi.0))
    }

    /// Linear interpolation between `self` (at `t = 0`) and `other`
    /// (at `t = 1`).
    #[must_use]
    pub fn lerp(self, other: Self, t: f64) -> Self {
        Self(self.0 + (other.0 - self.0) * t)
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} °C", self.0)
    }
}

impl From<Celsius> for f64 {
    fn from(t: Celsius) -> f64 {
        t.0
    }
}

/// `Celsius + f64` shifts the temperature by a kelvin delta.
impl Add<f64> for Celsius {
    type Output = Celsius;

    fn add(self, delta_k: f64) -> Celsius {
        Celsius::new(self.0 + delta_k)
    }
}

impl AddAssign<f64> for Celsius {
    fn add_assign(&mut self, delta_k: f64) {
        *self = *self + delta_k;
    }
}

/// `Celsius - f64` shifts the temperature by a kelvin delta.
impl Sub<f64> for Celsius {
    type Output = Celsius;

    fn sub(self, delta_k: f64) -> Celsius {
        Celsius::new(self.0 - delta_k)
    }
}

impl SubAssign<f64> for Celsius {
    fn sub_assign(&mut self, delta_k: f64) {
        *self = *self - delta_k;
    }
}

/// `Celsius - Celsius` yields the difference as a bare kelvin delta.
impl Sub for Celsius {
    type Output = f64;

    fn sub(self, other: Celsius) -> f64 {
        self.0 - other.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_value_round_trip() {
        assert_eq!(Celsius::new(42.5).value(), 42.5);
    }

    #[test]
    fn delta_arithmetic_is_consistent() {
        let a = Celsius::new(70.0);
        let b = a + 10.0;
        assert_eq!(b.value(), 80.0);
        assert_eq!(b - a, 10.0);
        assert_eq!(b - 10.0, a);
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut t = Celsius::new(25.0);
        t += 5.0;
        assert_eq!(t, Celsius::new(30.0));
        t -= 10.0;
        assert_eq!(t, Celsius::new(20.0));
    }

    #[test]
    fn ordering_follows_value() {
        assert!(Celsius::new(79.9) < Celsius::new(80.0));
        assert!(Celsius::new(80.1) > Celsius::new(80.0));
    }

    #[test]
    fn min_max_clamp() {
        let lo = Celsius::new(70.0);
        let hi = Celsius::new(80.0);
        assert_eq!(Celsius::new(65.0).clamp(lo, hi), lo);
        assert_eq!(Celsius::new(85.0).clamp(lo, hi), hi);
        assert_eq!(Celsius::new(75.0).clamp(lo, hi), Celsius::new(75.0));
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Celsius::new(70.0);
        let b = Celsius::new(80.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Celsius::new(75.0));
    }

    #[test]
    fn display_formats_with_unit() {
        assert_eq!(Celsius::new(75.0).to_string(), "75.00 °C");
    }

    #[test]
    fn try_new_maps_nan_to_none() {
        assert_eq!(Celsius::try_new(42.0), Some(Celsius::new(42.0)));
        assert!(Celsius::try_new(f64::NAN).is_none());
        assert_eq!(Celsius::try_new(f64::INFINITY), Some(Celsius::new(f64::INFINITY)));
    }

    #[test]
    fn total_cmp_agrees_with_partial_ord() {
        let pairs = [(70.0, 80.0), (80.0, 70.0), (75.0, 75.0), (-5.0, 3.0)];
        for (a, b) in pairs {
            let (a, b) = (Celsius::new(a), Celsius::new(b));
            assert_eq!(Some(a.total_cmp(&b)), a.partial_cmp(&b));
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Celsius::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid clamp range")]
    fn clamp_rejects_inverted_range() {
        let _ = Celsius::new(75.0).clamp(Celsius::new(80.0), Celsius::new(70.0));
    }
}
