//! Typed physical quantities for the `gfsc` workspace.
//!
//! Every crate in the workspace exchanges temperatures, fan speeds, powers,
//! energies, durations and CPU utilizations. Using bare `f64` for all of
//! those invites unit mix-ups (e.g. feeding an rpm where a °C is expected, or
//! a power where an energy is expected). This crate provides zero-cost
//! newtypes with the arithmetic each quantity actually supports, following
//! the Rust API guidelines newtype pattern (C-NEWTYPE).
//!
//! # Examples
//!
//! ```
//! use gfsc_units::{Celsius, Rpm, Watts, Seconds};
//!
//! let ambient = Celsius::new(30.0);
//! let hot = ambient + 45.0; // adding a delta in kelvin
//! assert_eq!(hot, Celsius::new(75.0));
//! assert_eq!(hot - ambient, 45.0); // difference is a bare kelvin delta
//!
//! let fan = Rpm::new(8500.0);
//! let power = Watts::new(29.4);
//! let energy = power * Seconds::new(60.0);
//! assert_eq!(energy.value(), 29.4 * 60.0);
//! assert!(fan > Rpm::new(2000.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod energy;
mod ordering;
mod speed;
mod temperature;
mod thermal;
mod time;
mod utilization;

pub use bounds::Bounds;
pub use energy::{Joules, Watts};
pub use ordering::{total_max, total_min};
pub use speed::{Rpm, RpmPerSecond};
pub use temperature::Celsius;
pub use thermal::{JoulesPerKelvin, KelvinPerWatt};
pub use time::Seconds;
pub use utilization::{Utilization, UtilizationError};
