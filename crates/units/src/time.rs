//! Durations and simulation timestamps in seconds.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A duration or timestamp in seconds.
///
/// The simulation kernel in `gfsc-sim` advances a clock of [`Seconds`];
/// control intervals (1 s CPU-cap period, 30 s fan period from the paper)
/// and thermal time constants (`R·C`) are all expressed with this type.
///
/// # Examples
///
/// ```
/// use gfsc_units::Seconds;
///
/// let fan_interval = Seconds::new(30.0);
/// let sim_step = Seconds::new(0.5);
/// assert_eq!(fan_interval / sim_step, 60.0);
/// assert_eq!(sim_step * 4.0, Seconds::new(2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

impl Seconds {
    /// Creates a duration from a value in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or NaN. Durations and timestamps in the
    /// simulator are always non-negative.
    #[must_use]
    pub fn new(s: f64) -> Self {
        assert!(!s.is_nan(), "duration must not be NaN");
        assert!(s >= 0.0, "duration must be non-negative, got {s}");
        Self(s)
    }

    /// Returns the value in seconds.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns `true` if the duration is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Returns the smaller of two durations.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} s", self.0)
    }
}

impl From<Seconds> for f64 {
    fn from(s: Seconds) -> f64 {
        s.0
    }
}

impl Add for Seconds {
    type Output = Seconds;

    fn add(self, other: Seconds) -> Seconds {
        Seconds::new(self.0 + other.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, other: Seconds) {
        *self = *self + other;
    }
}

/// `Seconds - Seconds` yields a bare signed second delta.
impl Sub for Seconds {
    type Output = f64;

    fn sub(self, other: Seconds) -> f64 {
        self.0 - other.0
    }
}

/// Scaling a duration by a dimensionless factor.
impl Mul<f64> for Seconds {
    type Output = Seconds;

    fn mul(self, k: f64) -> Seconds {
        Seconds::new(self.0 * k)
    }
}

/// `Seconds / Seconds` yields a dimensionless ratio (e.g. step counts).
impl Div for Seconds {
    type Output = f64;

    fn div(self, other: Seconds) -> f64 {
        assert!(other.0 > 0.0, "cannot divide by zero duration");
        self.0 / other.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_value() {
        assert_eq!(Seconds::new(30.0).value(), 30.0);
        assert!(Seconds::default().is_zero());
        assert!(!Seconds::new(0.1).is_zero());
    }

    #[test]
    fn arithmetic() {
        let a = Seconds::new(10.0);
        let b = Seconds::new(2.5);
        assert_eq!(a + b, Seconds::new(12.5));
        assert_eq!(a - b, 7.5);
        assert_eq!(b - a, -7.5);
        assert_eq!(a * 3.0, Seconds::new(30.0));
        assert_eq!(a / b, 4.0);
    }

    #[test]
    fn accumulation() {
        let mut t = Seconds::default();
        for _ in 0..10 {
            t += Seconds::new(0.5);
        }
        assert!((t.value() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let a = Seconds::new(1.0);
        let b = Seconds::new(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Seconds::new(0.5).to_string(), "0.500 s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        let _ = Seconds::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn divide_by_zero_duration_rejected() {
        let _ = Seconds::new(1.0) / Seconds::new(0.0);
    }
}
