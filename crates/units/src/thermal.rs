//! Thermal resistance and capacitance quantities.

use crate::{Seconds, Watts};
use core::fmt;
use core::ops::Mul;

/// A thermal resistance in kelvin per watt (K/W).
///
/// In the electro-thermal duality a thermal resistance maps a heat flow
/// (watts) to a temperature rise (kelvin): `ΔT = R · P`. The paper's
/// heat-sink resistance law `R_hs(V) = 0.141 + 132.51 / V^0.923` K/W
/// produces values of this type (see `gfsc-thermal`).
///
/// # Examples
///
/// ```
/// use gfsc_units::{KelvinPerWatt, Watts};
///
/// let r = KelvinPerWatt::new(0.25);
/// let rise = r * Watts::new(140.0);
/// assert!((rise - 35.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct KelvinPerWatt(f64);

impl KelvinPerWatt {
    /// Creates a thermal resistance from a value in K/W.
    ///
    /// # Panics
    ///
    /// Panics if `r` is non-positive or NaN; a physical thermal path always
    /// has strictly positive resistance.
    #[must_use]
    pub fn new(r: f64) -> Self {
        assert!(!r.is_nan(), "thermal resistance must not be NaN");
        assert!(r > 0.0, "thermal resistance must be positive, got {r}");
        Self(r)
    }

    /// Returns the resistance value in K/W.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for KelvinPerWatt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} K/W", self.0)
    }
}

impl From<KelvinPerWatt> for f64 {
    fn from(r: KelvinPerWatt) -> f64 {
        r.0
    }
}

/// Thermal resistance × heat flow = temperature rise in kelvin.
impl Mul<Watts> for KelvinPerWatt {
    type Output = f64;

    fn mul(self, p: Watts) -> f64 {
        self.0 * p.value()
    }
}

/// Thermal resistance × thermal capacitance = time constant.
impl Mul<JoulesPerKelvin> for KelvinPerWatt {
    type Output = Seconds;

    fn mul(self, c: JoulesPerKelvin) -> Seconds {
        Seconds::new(self.0 * c.value())
    }
}

/// A thermal capacitance in joules per kelvin (J/K).
///
/// Together with a [`KelvinPerWatt`] resistance it forms the `R·C` time
/// constant of a thermal node: `τ = R · C` (the paper quotes τ = 60 s for
/// the heat sink at maximum airflow and τ = 0.1 s for the die).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct JoulesPerKelvin(f64);

impl JoulesPerKelvin {
    /// Creates a thermal capacitance from a value in J/K.
    ///
    /// # Panics
    ///
    /// Panics if `c` is non-positive or NaN.
    #[must_use]
    pub fn new(c: f64) -> Self {
        assert!(!c.is_nan(), "thermal capacitance must not be NaN");
        assert!(c > 0.0, "thermal capacitance must be positive, got {c}");
        Self(c)
    }

    /// Returns the capacitance value in J/K.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Derives the capacitance that gives time constant `tau` at
    /// resistance `r`: `C = τ / R`.
    ///
    /// This is how `gfsc-thermal` calibrates the heat-sink capacitance from
    /// the paper's "60 s at max airflow" figure.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is zero.
    #[must_use]
    pub fn from_time_constant(tau: Seconds, r: KelvinPerWatt) -> Self {
        assert!(!tau.is_zero(), "time constant must be positive");
        Self::new(tau.value() / r.value())
    }
}

impl fmt::Display for JoulesPerKelvin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} J/K", self.0)
    }
}

impl From<JoulesPerKelvin> for f64 {
    fn from(c: JoulesPerKelvin) -> f64 {
        c.0
    }
}

/// Thermal capacitance × thermal resistance = time constant.
impl Mul<KelvinPerWatt> for JoulesPerKelvin {
    type Output = Seconds;

    fn mul(self, r: KelvinPerWatt) -> Seconds {
        r * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistance_times_power_is_temperature_rise() {
        let rise = KelvinPerWatt::new(0.141) * Watts::new(160.0);
        assert!((rise - 22.56).abs() < 1e-10);
    }

    #[test]
    fn rc_product_is_time_constant() {
        let r = KelvinPerWatt::new(0.2);
        let c = JoulesPerKelvin::new(300.0);
        assert_eq!(r * c, Seconds::new(60.0));
        assert_eq!(c * r, Seconds::new(60.0));
    }

    #[test]
    fn capacitance_from_time_constant_round_trips() {
        let r = KelvinPerWatt::new(0.172);
        let c = JoulesPerKelvin::from_time_constant(Seconds::new(60.0), r);
        let tau = r * c;
        assert!((tau.value() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(KelvinPerWatt::new(0.141).to_string(), "0.1410 K/W");
        assert_eq!(JoulesPerKelvin::new(348.8).to_string(), "348.80 J/K");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resistance_rejected() {
        let _ = KelvinPerWatt::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacitance_rejected() {
        let _ = JoulesPerKelvin::new(0.0);
    }
}
