//! Property-based tests for the quantity newtypes.

use gfsc_units::{Bounds, Celsius, Joules, Rpm, Seconds, Utilization, Watts};
use proptest::prelude::*;

proptest! {
    #[test]
    fn celsius_add_sub_round_trip(t in -200.0f64..500.0, d in -100.0f64..100.0) {
        let a = Celsius::new(t);
        let b = a + d;
        prop_assert!((b - a - d).abs() < 1e-9);
        prop_assert!(((b - d) - a).abs() < 1e-9);
    }

    #[test]
    fn celsius_lerp_stays_between_endpoints(
        a in -50.0f64..150.0,
        b in -50.0f64..150.0,
        t in 0.0f64..=1.0,
    ) {
        let lo = Celsius::new(a.min(b));
        let hi = Celsius::new(a.max(b));
        let x = Celsius::new(a).lerp(Celsius::new(b), t);
        prop_assert!(x >= lo && x <= hi);
    }

    #[test]
    fn rpm_never_negative(start in 0.0f64..10_000.0, delta in -20_000.0f64..20_000.0) {
        let s = Rpm::new(start) + delta;
        prop_assert!(s.value() >= 0.0);
    }

    #[test]
    fn utilization_new_always_in_range(u in -10.0f64..10.0) {
        let v = Utilization::new(u).value();
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn utilization_saturating_add_in_range(
        u in 0.0f64..=1.0,
        d in -5.0f64..5.0,
    ) {
        let v = Utilization::new(u).saturating_add(d).value();
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn try_new_accepts_exactly_unit_interval(u in -2.0f64..2.0) {
        let ok = Utilization::try_new(u).is_ok();
        prop_assert_eq!(ok, (0.0..=1.0).contains(&u));
    }

    #[test]
    fn energy_integration_is_additive(
        p in 0.0f64..500.0,
        t1 in 0.0f64..1000.0,
        t2 in 0.0f64..1000.0,
    ) {
        let w = Watts::new(p);
        let whole = w * Seconds::new(t1 + t2);
        let split = w * Seconds::new(t1) + w * Seconds::new(t2);
        prop_assert!((whole.value() - split.value()).abs() < 1e-6);
    }

    #[test]
    fn energy_normalization_inverse(e in 1.0f64..1e6, b in 1.0f64..1e6) {
        let r = Joules::new(e).normalized_to(Joules::new(b));
        prop_assert!((r * b - e).abs() < 1e-6 * e.max(b));
    }

    #[test]
    fn bounds_clamp_always_contained(lo in -100.0f64..100.0, span in 0.0f64..100.0, x in -500.0f64..500.0) {
        let b = Bounds::new(lo, lo + span);
        let c = b.clamp(x);
        prop_assert!(b.contains(c));
        // Clamping is idempotent.
        prop_assert_eq!(b.clamp(c), c);
    }

    #[test]
    fn bounds_clamp_is_identity_inside(lo in -100.0f64..100.0, span in 0.1f64..100.0, t in 0.0f64..=1.0) {
        let b = Bounds::new(lo, lo + span);
        let x = lo + span * t;
        prop_assert_eq!(b.clamp(x), x);
    }
}
