//! Poisson-arriving utilization spikes.

use gfsc_units::Seconds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stream of rectangular utilization spikes with exponentially
/// distributed inter-arrival times.
///
/// Production load spikes are "much faster than the settling time of
/// controllers" (Bhattacharya et al., IGCC'12, cited as \[20\]); they are
/// what the paper's single-step fan-speed scaling defends against. During
/// a spike the process contributes `amplitude`; otherwise 0. A new arrival
/// cannot preempt an active spike (arrivals during a spike are deferred to
/// its end).
///
/// # Examples
///
/// ```
/// use gfsc_workload::SpikeProcess;
/// use gfsc_units::Seconds;
///
/// let mut spikes = SpikeProcess::new(1.0 / 300.0, Seconds::new(20.0), 0.5, 42);
/// // Sampling must move forward in time.
/// let mut active_seconds = 0.0;
/// for k in 0..3600 {
///     if spikes.level_at(Seconds::new(k as f64)) > 0.0 {
///         active_seconds += 1.0;
///     }
/// }
/// assert!(active_seconds > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SpikeProcess {
    rate_hz: f64,
    duration: f64,
    amplitude: f64,
    rng: StdRng,
    next_arrival: f64,
    active_until: f64,
}

impl SpikeProcess {
    /// Creates a spike process with mean arrival rate `rate_hz` (spikes per
    /// second), spike `duration` and `amplitude`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not positive or `duration` is zero.
    #[must_use]
    pub fn new(rate_hz: f64, duration: Seconds, amplitude: f64, seed: u64) -> Self {
        assert!(rate_hz > 0.0, "spike rate must be positive");
        assert!(!duration.is_zero(), "spike duration must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let first = exponential(&mut rng, rate_hz);
        Self {
            rate_hz,
            duration: duration.value(),
            amplitude,
            rng,
            next_arrival: first,
            active_until: f64::NEG_INFINITY,
        }
    }

    /// Mean number of spikes per second.
    #[must_use]
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }

    /// Spike amplitude (added utilization while active).
    #[must_use]
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Spike duration.
    #[must_use]
    pub fn duration(&self) -> Seconds {
        Seconds::new(self.duration)
    }

    /// The spike contribution at time `t`.
    ///
    /// `t` must be non-decreasing across calls (the process is causal); out
    /// of order queries panic.
    ///
    /// # Panics
    ///
    /// Panics if `t` moves backwards relative to internal progress.
    pub fn level_at(&mut self, t: Seconds) -> f64 {
        let t = t.value();
        // Process arrivals up to t.
        while self.next_arrival <= t {
            let start = self.next_arrival;
            // Defer arrivals landing inside an active spike to its end.
            let begin = start.max(self.active_until);
            self.active_until = begin + self.duration;
            self.next_arrival = begin + self.duration + exponential(&mut self.rng, self.rate_hz);
        }
        if t < self.active_until {
            self.amplitude
        } else {
            0.0
        }
    }
}

/// Draws an exponential variate with the given rate.
fn exponential(rng: &mut StdRng, rate_hz: f64) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    -u.ln() / rate_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SpikeProcess::new(0.01, Seconds::new(10.0), 0.4, 5);
        let mut b = SpikeProcess::new(0.01, Seconds::new(10.0), 0.4, 5);
        for k in 0..5000 {
            let t = Seconds::new(k as f64);
            assert_eq!(a.level_at(t), b.level_at(t));
        }
    }

    #[test]
    fn spikes_have_configured_amplitude_and_shape() {
        let mut s = SpikeProcess::new(0.005, Seconds::new(15.0), 0.6, 11);
        let levels: Vec<f64> = (0..10_000).map(|k| s.level_at(Seconds::new(k as f64))).collect();
        assert!(levels.iter().all(|&l| l == 0.0 || l == 0.6));
        // At least one spike in 10000 s at 1/200 s rate (P(miss) ~ e^-50).
        assert!(levels.iter().any(|&l| l > 0.0));
        // Each active run is ~15 samples long.
        let mut runs = Vec::new();
        let mut run = 0usize;
        for &l in &levels {
            if l > 0.0 {
                run += 1;
            } else if run > 0 {
                runs.push(run);
                run = 0;
            }
        }
        assert!(!runs.is_empty());
        for &r in &runs {
            assert!((14..=16).contains(&r), "run length {r}");
        }
    }

    #[test]
    fn long_run_duty_matches_rate_times_duration() {
        // rate 1/100 s, duration 10 s -> expected duty ~ 10/110 ≈ 9 %
        // (arrival deferral makes the process slightly sub-Poisson).
        let mut s = SpikeProcess::new(0.01, Seconds::new(10.0), 1.0, 3);
        let n = 200_000;
        let active = (0..n).filter(|&k| s.level_at(Seconds::new(k as f64)) > 0.0).count();
        let duty = active as f64 / n as f64;
        assert!((0.05..0.14).contains(&duty), "duty {duty}");
    }

    #[test]
    fn inactive_between_spikes() {
        let mut s = SpikeProcess::new(1e-9, Seconds::new(10.0), 1.0, 1);
        // With a ~1e9 s mean inter-arrival, the first hour is silent.
        for k in 0..3600 {
            assert_eq!(s.level_at(Seconds::new(k as f64)), 0.0);
        }
    }

    #[test]
    fn accessors() {
        let s = SpikeProcess::new(0.5, Seconds::new(2.0), 0.3, 0);
        assert_eq!(s.rate_hz(), 0.5);
        assert_eq!(s.amplitude(), 0.3);
        assert_eq!(s.duration(), Seconds::new(2.0));
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn zero_rate_rejected() {
        let _ = SpikeProcess::new(0.0, Seconds::new(1.0), 0.1, 0);
    }
}
