//! Synthetic CPU workload generation.
//!
//! The paper evaluates on "synthetic workload traces which alternate
//! between 0.1 and 0.7 while imposing a random Gaussian noise" (Section
//! VI-A), with Fig. 5 using noise of standard deviation 0.04, plus abrupt
//! utilization spikes that motivate the single-step fan scaling scheme
//! (Section V-C, citing Bhattacharya et al. on the speed of production load
//! spikes). This crate generates those traces deterministically from a
//! seed:
//!
//! - deterministic base [`Signal`]s: [`SquareWave`], [`Constant`],
//!   [`Sine`], [`Ramp`], [`StepSequence`],
//! - [`GaussianNoise`] (Box–Muller over `rand` uniforms — `rand_distr` is
//!   not in the approved offline dependency set),
//! - [`SpikeProcess`]: Poisson-arriving rectangular utilization spikes,
//! - [`Workload`]: the composed, clamped sampler the simulator consumes.
//!
//! # Examples
//!
//! ```
//! use gfsc_workload::{SquareWave, Workload};
//! use gfsc_units::Seconds;
//!
//! // The paper's trace: 0.1 / 0.7 alternation with sigma = 0.04 noise.
//! let mut w = Workload::builder(SquareWave::date14())
//!     .gaussian_noise(0.04, 42)
//!     .build();
//! let u = w.sample(Seconds::new(130.0));
//! assert!(u.value() <= 1.0 && u.value() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod noise;
mod signal;
mod spikes;
mod workload;

pub use noise::GaussianNoise;
pub use signal::{Constant, Ramp, Signal, Sine, SquareWave, StepSequence};
pub use spikes::SpikeProcess;
pub use workload::{Workload, WorkloadBuilder};
