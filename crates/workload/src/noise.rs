//! Seeded Gaussian noise via the Box–Muller transform.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A zero-mean Gaussian noise source with standard deviation `sigma`.
///
/// Implemented with the exact Box–Muller transform over `rand` uniforms
/// (the approved offline crate set does not include `rand_distr`). Each
/// transform yields two independent normals; the second is cached, so the
/// cost is one transcendental pair per two samples.
///
/// # Examples
///
/// ```
/// use gfsc_workload::GaussianNoise;
///
/// let mut a = GaussianNoise::new(0.04, 7);
/// let mut b = GaussianNoise::new(0.04, 7);
/// // Same seed, same stream.
/// assert_eq!(a.sample(), b.sample());
/// ```
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    rng: StdRng,
    sigma: f64,
    cached: Option<f64>,
}

impl GaussianNoise {
    /// Creates a noise source with standard deviation `sigma` and a
    /// deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or NaN (zero is allowed and yields a
    /// silent source).
    #[must_use]
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!(!sigma.is_nan(), "sigma must not be NaN");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { rng: StdRng::seed_from_u64(seed), sigma, cached: None }
    }

    /// The standard deviation.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws the next noise sample.
    pub fn sample(&mut self) -> f64 {
        if self.sigma == 0.0 {
            return 0.0;
        }
        if let Some(z) = self.cached.take() {
            return z * self.sigma;
        }
        // Box–Muller: u1 ∈ (0, 1] to keep ln(u1) finite.
        let u1: f64 = 1.0 - self.rng.gen::<f64>();
        let u2: f64 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos() * self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = GaussianNoise::new(1.0, 123);
        let mut b = GaussianNoise::new(1.0, 123);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussianNoise::new(1.0, 1);
        let mut b = GaussianNoise::new(1.0, 2);
        let sa: Vec<f64> = (0..10).map(|_| a.sample()).collect();
        let sb: Vec<f64> = (0..10).map(|_| b.sample()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn sample_moments_match_parameters() {
        let sigma = 0.04;
        let mut g = GaussianNoise::new(sigma, 99);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 5e-4, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 5e-4, "std {}", var.sqrt());
    }

    #[test]
    fn roughly_gaussian_tail_mass() {
        // ~4.55 % of samples should fall beyond 2 sigma.
        let mut g = GaussianNoise::new(1.0, 7);
        let n = 100_000;
        let beyond = (0..n).filter(|_| g.sample().abs() > 2.0).count();
        let frac = beyond as f64 / n as f64;
        assert!((frac - 0.0455).abs() < 0.005, "tail fraction {frac}");
    }

    #[test]
    fn zero_sigma_is_silent() {
        let mut g = GaussianNoise::new(0.0, 5);
        for _ in 0..10 {
            assert_eq!(g.sample(), 0.0);
        }
        assert_eq!(g.sigma(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_rejected() {
        let _ = GaussianNoise::new(-0.1, 0);
    }
}
