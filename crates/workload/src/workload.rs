//! The composed workload sampler.

use crate::{GaussianNoise, Signal, SpikeProcess};
use gfsc_units::{Seconds, Utilization};

/// A complete utilization workload: deterministic base signal plus optional
/// Gaussian noise and Poisson spikes, clamped into `[0, 1]`.
///
/// This is the demand the server receives — "required CPU utilization" in
/// the paper's terms. Whether that demand can actually execute depends on
/// the CPU cap chosen by the controllers; the gap between the two is what
/// the deadline-violation metric (Table III) measures.
///
/// Sampling is causal: query times must be non-decreasing.
///
/// # Examples
///
/// ```
/// use gfsc_workload::{SquareWave, Workload};
/// use gfsc_units::Seconds;
///
/// let mut w = Workload::builder(SquareWave::date14())
///     .gaussian_noise(0.04, 1)
///     .spikes(1.0 / 600.0, Seconds::new(20.0), 0.4, 2)
///     .build();
/// let u = w.sample(Seconds::new(42.0));
/// assert!((0.0..=1.0).contains(&u.value()));
/// ```
pub struct Workload {
    base: Box<dyn Signal + Send>,
    noise: Option<GaussianNoise>,
    spikes: Option<SpikeProcess>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("noise", &self.noise.as_ref().map(GaussianNoise::sigma))
            .field("spikes", &self.spikes.as_ref().map(SpikeProcess::rate_hz))
            .finish_non_exhaustive()
    }
}

impl Workload {
    /// Starts building a workload on the given base signal.
    #[must_use]
    pub fn builder<S: Signal + Send + 'static>(base: S) -> WorkloadBuilder {
        WorkloadBuilder { base: Box::new(base), noise: None, spikes: None }
    }

    /// The demanded utilization at time `t` (base + noise + spikes,
    /// clamped).
    ///
    /// # Panics
    ///
    /// Panics if `t` moves backwards relative to the spike process
    /// progress.
    pub fn sample(&mut self, t: Seconds) -> Utilization {
        let mut u = self.base.at(t);
        if let Some(noise) = &mut self.noise {
            u += noise.sample();
        }
        if let Some(spikes) = &mut self.spikes {
            u += spikes.level_at(t);
        }
        Utilization::new(u)
    }

    /// Pre-computes the workload at a fixed interval over `[0, horizon]`
    /// (inclusive of both endpoints), consuming the stochastic state.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn materialize(mut self, horizon: Seconds, interval: Seconds) -> Vec<Utilization> {
        assert!(!interval.is_zero(), "interval must be positive");
        let steps = (horizon / interval).floor() as usize;
        (0..=steps).map(|k| self.sample(Seconds::new(k as f64 * interval.value()))).collect()
    }
}

/// Builder for [`Workload`] (see there for an example).
pub struct WorkloadBuilder {
    base: Box<dyn Signal + Send>,
    noise: Option<GaussianNoise>,
    spikes: Option<SpikeProcess>,
}

impl WorkloadBuilder {
    /// Adds zero-mean Gaussian noise with standard deviation `sigma`.
    #[must_use]
    pub fn gaussian_noise(mut self, sigma: f64, seed: u64) -> Self {
        self.noise = Some(GaussianNoise::new(sigma, seed));
        self
    }

    /// Adds Poisson-arriving spikes (see [`SpikeProcess::new`]).
    #[must_use]
    pub fn spikes(mut self, rate_hz: f64, duration: Seconds, amplitude: f64, seed: u64) -> Self {
        self.spikes = Some(SpikeProcess::new(rate_hz, duration, amplitude, seed));
        self
    }

    /// Builds the workload.
    #[must_use]
    pub fn build(self) -> Workload {
        Workload { base: self.base, noise: self.noise, spikes: self.spikes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constant, SquareWave};

    #[test]
    fn noiseless_workload_equals_base() {
        let mut w = Workload::builder(SquareWave::date14()).build();
        assert_eq!(w.sample(Seconds::new(0.0)).value(), 0.1);
        assert_eq!(w.sample(Seconds::new(250.0)).value(), 0.7);
    }

    #[test]
    fn noise_perturbs_but_stays_clamped() {
        let mut w = Workload::builder(Constant::new(0.02)).gaussian_noise(0.5, 9).build();
        let mut saw_nonbase = false;
        for k in 0..1000 {
            let u = w.sample(Seconds::new(k as f64)).value();
            assert!((0.0..=1.0).contains(&u));
            if (u - 0.02).abs() > 1e-6 {
                saw_nonbase = true;
            }
        }
        assert!(saw_nonbase, "noise should perturb the base");
    }

    #[test]
    fn deterministic_for_fixed_seeds() {
        let make = || {
            Workload::builder(SquareWave::date14())
                .gaussian_noise(0.04, 77)
                .spikes(0.001, Seconds::new(15.0), 0.3, 78)
                .build()
        };
        let mut a = make();
        let mut b = make();
        for k in 0..2000 {
            let t = Seconds::new(k as f64);
            assert_eq!(a.sample(t), b.sample(t));
        }
    }

    #[test]
    fn spikes_lift_utilization() {
        let mut w =
            Workload::builder(Constant::new(0.1)).spikes(0.01, Seconds::new(10.0), 0.6, 4).build();
        let mut max_u: f64 = 0.0;
        for k in 0..5000 {
            max_u = max_u.max(w.sample(Seconds::new(k as f64)).value());
        }
        assert!((max_u - 0.7).abs() < 1e-9, "spike level {max_u}");
    }

    #[test]
    fn materialize_covers_horizon_inclusive() {
        let w = Workload::builder(Constant::new(0.5)).build();
        let trace = w.materialize(Seconds::new(10.0), Seconds::new(1.0));
        assert_eq!(trace.len(), 11);
        assert!(trace.iter().all(|u| u.value() == 0.5));
    }

    #[test]
    fn debug_does_not_leak_internals() {
        let w = Workload::builder(Constant::new(0.5)).gaussian_noise(0.04, 0).build();
        let s = format!("{w:?}");
        assert!(s.contains("Workload"));
        assert!(s.contains("0.04"));
    }
}
