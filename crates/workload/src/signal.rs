//! Deterministic base utilization signals.

use gfsc_units::Seconds;

/// A deterministic scalar signal of time (the noise-free part of a
/// workload).
///
/// Implementations are pure functions of `t`, so they can be sampled at any
/// rate, re-sampled, or evaluated out of order (unlike the stochastic
/// stages, which are stateful).
pub trait Signal {
    /// The signal value at time `t`.
    fn at(&self, t: Seconds) -> f64;
}

/// A constant signal.
///
/// # Examples
///
/// ```
/// use gfsc_workload::{Constant, Signal};
/// use gfsc_units::Seconds;
///
/// assert_eq!(Constant::new(0.5).at(Seconds::new(123.0)), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(f64);

impl Constant {
    /// Creates a constant signal.
    #[must_use]
    pub fn new(level: f64) -> Self {
        Self(level)
    }
}

impl Signal for Constant {
    fn at(&self, _t: Seconds) -> f64 {
        self.0
    }
}

/// A square wave alternating between `low` and `high`.
///
/// The wave starts at `low`, switches to `high` after `duty · period`, and
/// repeats. The paper's synthetic trace alternates between 0.1 and 0.7
/// ([`SquareWave::date14`], 200 s half-periods matching the Fig. 3 traces).
///
/// # Examples
///
/// ```
/// use gfsc_workload::{Signal, SquareWave};
/// use gfsc_units::Seconds;
///
/// let w = SquareWave::date14();
/// assert_eq!(w.at(Seconds::new(0.0)), 0.1);
/// assert_eq!(w.at(Seconds::new(250.0)), 0.7);
/// assert_eq!(w.at(Seconds::new(400.0)), 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareWave {
    low: f64,
    high: f64,
    period: f64,
    duty: f64,
}

impl SquareWave {
    /// Creates a square wave with the given levels, full period and duty
    /// cycle (fraction of the period spent at `low` first).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `duty` is outside `(0, 1)`.
    #[must_use]
    pub fn new(low: f64, high: f64, period: Seconds, duty: f64) -> Self {
        assert!(!period.is_zero(), "square wave period must be positive");
        assert!(duty > 0.0 && duty < 1.0, "duty must lie strictly in (0, 1)");
        Self { low, high, period: period.value(), duty }
    }

    /// The paper's trace: 0.1 ↔ 0.7 with 200 s at each level.
    #[must_use]
    pub fn date14() -> Self {
        Self::new(0.1, 0.7, Seconds::new(400.0), 0.5)
    }

    /// The low level.
    #[must_use]
    pub fn low(&self) -> f64 {
        self.low
    }

    /// The high level.
    #[must_use]
    pub fn high(&self) -> f64 {
        self.high
    }

    /// The full period.
    #[must_use]
    pub fn period(&self) -> Seconds {
        Seconds::new(self.period)
    }
}

impl Signal for SquareWave {
    fn at(&self, t: Seconds) -> f64 {
        let phase = (t.value() / self.period).fract();
        if phase < self.duty {
            self.low
        } else {
            self.high
        }
    }
}

/// A sinusoid `offset + amplitude · sin(2πt / period)`.
///
/// Models smooth diurnal load variation in the data-center duty-cycle
/// example.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sine {
    offset: f64,
    amplitude: f64,
    period: f64,
}

impl Sine {
    /// Creates a sinusoid.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(offset: f64, amplitude: f64, period: Seconds) -> Self {
        assert!(!period.is_zero(), "sine period must be positive");
        Self { offset, amplitude, period: period.value() }
    }
}

impl Signal for Sine {
    fn at(&self, t: Seconds) -> f64 {
        self.offset + self.amplitude * (2.0 * std::f64::consts::PI * t.value() / self.period).sin()
    }
}

/// A linear ramp from `start` to `end` over `duration`, holding `end`
/// afterwards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ramp {
    start: f64,
    end: f64,
    duration: f64,
}

impl Ramp {
    /// Creates a ramp.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero.
    #[must_use]
    pub fn new(start: f64, end: f64, duration: Seconds) -> Self {
        assert!(!duration.is_zero(), "ramp duration must be positive");
        Self { start, end, duration: duration.value() }
    }
}

impl Signal for Ramp {
    fn at(&self, t: Seconds) -> f64 {
        let frac = (t.value() / self.duration).clamp(0.0, 1.0);
        self.start + (self.end - self.start) * frac
    }
}

/// A piecewise-constant step sequence `(t_i, level_i)`: the signal holds
/// `level_i` from `t_i` until the next breakpoint. Before the first
/// breakpoint it holds the first level.
///
/// Useful for replaying recorded utilization traces.
///
/// # Examples
///
/// ```
/// use gfsc_workload::{Signal, StepSequence};
/// use gfsc_units::Seconds;
///
/// let s = StepSequence::new(vec![(0.0, 0.1), (100.0, 0.9), (160.0, 0.3)]);
/// assert_eq!(s.at(Seconds::new(50.0)), 0.1);
/// assert_eq!(s.at(Seconds::new(100.0)), 0.9);
/// assert_eq!(s.at(Seconds::new(1000.0)), 0.3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StepSequence {
    breakpoints: Vec<(f64, f64)>,
}

impl StepSequence {
    /// Creates a step sequence from `(time_s, level)` breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if `breakpoints` is empty or not sorted by time.
    #[must_use]
    pub fn new(breakpoints: Vec<(f64, f64)>) -> Self {
        assert!(!breakpoints.is_empty(), "step sequence needs at least one breakpoint");
        assert!(
            breakpoints.windows(2).all(|w| w[0].0 <= w[1].0),
            "breakpoints must be sorted by time"
        );
        Self { breakpoints }
    }

    /// Number of breakpoints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.breakpoints.len()
    }

    /// Always `false`: construction rejects empty sequences.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Signal for StepSequence {
    fn at(&self, t: Seconds) -> f64 {
        let idx = self.breakpoints.partition_point(|&(bt, _)| bt <= t.value());
        if idx == 0 {
            self.breakpoints[0].1
        } else {
            self.breakpoints[idx - 1].1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(t: f64) -> Seconds {
        Seconds::new(t)
    }

    #[test]
    fn square_wave_date14_alternates() {
        let w = SquareWave::date14();
        assert_eq!(w.low(), 0.1);
        assert_eq!(w.high(), 0.7);
        assert_eq!(w.period(), secs(400.0));
        assert_eq!(w.at(secs(0.0)), 0.1);
        assert_eq!(w.at(secs(199.9)), 0.1);
        assert_eq!(w.at(secs(200.0)), 0.7);
        assert_eq!(w.at(secs(399.9)), 0.7);
        assert_eq!(w.at(secs(400.0)), 0.1);
        assert_eq!(w.at(secs(1000.0)), 0.7);
    }

    #[test]
    fn square_wave_asymmetric_duty() {
        let w = SquareWave::new(0.0, 1.0, secs(100.0), 0.25);
        assert_eq!(w.at(secs(10.0)), 0.0);
        assert_eq!(w.at(secs(25.0)), 1.0);
        assert_eq!(w.at(secs(99.0)), 1.0);
    }

    #[test]
    fn sine_hits_extremes() {
        let s = Sine::new(0.5, 0.3, secs(100.0));
        assert!((s.at(secs(0.0)) - 0.5).abs() < 1e-12);
        assert!((s.at(secs(25.0)) - 0.8).abs() < 1e-12);
        assert!((s.at(secs(75.0)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ramp_interpolates_and_holds() {
        let r = Ramp::new(0.2, 0.8, secs(60.0));
        assert_eq!(r.at(secs(0.0)), 0.2);
        assert!((r.at(secs(30.0)) - 0.5).abs() < 1e-12);
        assert_eq!(r.at(secs(60.0)), 0.8);
        assert_eq!(r.at(secs(600.0)), 0.8);
    }

    #[test]
    fn step_sequence_lookup() {
        let s = StepSequence::new(vec![(10.0, 0.5), (20.0, 0.9)]);
        assert_eq!(s.at(secs(0.0)), 0.5); // before first breakpoint
        assert_eq!(s.at(secs(10.0)), 0.5);
        assert_eq!(s.at(secs(19.99)), 0.5);
        assert_eq!(s.at(secs(20.0)), 0.9);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn constant_is_constant() {
        let c = Constant::new(0.42);
        assert_eq!(c.at(secs(0.0)), 0.42);
        assert_eq!(c.at(secs(1e6)), 0.42);
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn degenerate_duty_rejected() {
        let _ = SquareWave::new(0.1, 0.7, secs(100.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_breakpoints_rejected() {
        let _ = StepSequence::new(vec![(10.0, 0.5), (5.0, 0.9)]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_breakpoints_rejected() {
        let _ = StepSequence::new(vec![]);
    }
}
