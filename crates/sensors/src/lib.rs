//! The non-ideal temperature measurement subsystem of an enterprise server.
//!
//! The paper's core premise is that the control firmware never sees the true
//! junction temperature. Two artifacts corrupt the signal on its way from
//! the physical transducer to the Service Processor / BMC:
//!
//! 1. **Quantization** — sensors are digitized by standardized 8-bit ADCs,
//!    so readings arrive in 1 °C steps ([`AdcQuantizer`]).
//! 2. **Time lag** — all sensors share an I2C management bus; with dozens of
//!    sensors polled round-robin by slow firmware, a fresh reading takes
//!    ~10 s to reach the control algorithm ([`I2cBusModel`],
//!    [`TelemetryScanner`], or the distilled [`DelayLine`]).
//!
//! [`MeasurementPipeline`] composes sampling, quantization and delay into
//! the single `observe(now, true_value)` call the simulator uses, and
//! [`MovingAverage`]/[`Ewma`] provide the smoothing filters referenced for
//! utilization prediction (Coskun et al.).
//!
//! # Examples
//!
//! ```
//! use gfsc_sensors::MeasurementPipeline;
//! use gfsc_units::{Celsius, Seconds};
//!
//! // The DATE'14 chain: 1 s sampling, 1 °C ADC, 10 s transport lag.
//! let mut chain = MeasurementPipeline::date14();
//! let mut seen = Celsius::new(0.0);
//! for k in 0..=30 {
//!     let now = Seconds::new(k as f64);
//!     seen = chain.observe_celsius(now, Celsius::new(55.7));
//! }
//! // After the lag has elapsed the DTM sees the quantized value.
//! assert_eq!(seen, Celsius::new(55.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adc;
mod delay;
mod filter;
mod health;
mod i2c;
mod pipeline;

pub use adc::{AdcQuantizer, Rounding};
pub use delay::DelayLine;
pub use filter::{Ewma, MovingAverage};
pub use health::{SensorHealth, SensorStatus};
pub use i2c::{I2cBusModel, TelemetryScanner};
pub use pipeline::{MeasurementPipeline, MeasurementPipelineBuilder};
