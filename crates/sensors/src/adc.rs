//! Analog-to-digital conversion with saturation and quantization.

use gfsc_units::Celsius;

/// How the ADC maps an analog value onto its digital code grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Rounding {
    /// Truncate toward the code below (how real successive-approximation
    /// ADCs behave); reconstruction error lies in `[0, step)`.
    #[default]
    Floor,
    /// Round to the nearest code; reconstruction error lies in
    /// `(−step/2, step/2]`.
    Nearest,
}

/// An N-bit ADC digitizing values over a fixed full-scale range.
///
/// The paper attributes the 1 °C quantization of server temperature
/// telemetry to "the standardized usage of 8-bit A/D converters": 256 codes
/// over a 0–255 °C span (the [`AdcQuantizer::date14`] preset) is exactly a
/// 1 °C step. Readings outside the range saturate at the end codes.
///
/// # Examples
///
/// ```
/// use gfsc_sensors::AdcQuantizer;
/// use gfsc_units::Celsius;
///
/// let adc = AdcQuantizer::date14();
/// assert_eq!(adc.step(), 1.0);
/// assert_eq!(adc.quantize_celsius(Celsius::new(55.7)), Celsius::new(55.0));
/// assert_eq!(adc.quantize_celsius(Celsius::new(300.0)), Celsius::new(255.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcQuantizer {
    lo: f64,
    hi: f64,
    levels: u32,
    rounding: Rounding,
}

impl AdcQuantizer {
    /// Creates an ADC with `bits` of resolution over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 24, or if `lo >= hi`.
    #[must_use]
    pub fn new(bits: u8, lo: f64, hi: f64, rounding: Rounding) -> Self {
        assert!((1..=24).contains(&bits), "ADC resolution must be 1..=24 bits");
        assert!(lo < hi, "ADC range must satisfy lo < hi");
        Self { lo, hi, levels: 1u32 << bits, rounding }
    }

    /// The DATE'14 temperature ADC: 8 bits over 0–255 °C (1 °C per code),
    /// floor rounding.
    #[must_use]
    pub fn date14() -> Self {
        Self::new(8, 0.0, 255.0, Rounding::Floor)
    }

    /// The quantization step (LSB size) in the measured unit.
    #[must_use]
    pub fn step(&self) -> f64 {
        (self.hi - self.lo) / (self.levels - 1) as f64
    }

    /// The rounding mode.
    #[must_use]
    pub fn rounding(&self) -> Rounding {
        self.rounding
    }

    /// The full-scale range `(lo, hi)`.
    #[must_use]
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Digitizes `x`: the reconstructed value of the nearest representable
    /// code, saturating outside the full-scale range.
    #[must_use]
    pub fn quantize(&self, x: f64) -> f64 {
        assert!(!x.is_nan(), "cannot quantize NaN");
        let step = self.step();
        let clamped = x.clamp(self.lo, self.hi);
        let code = match self.rounding {
            Rounding::Floor => ((clamped - self.lo) / step).floor(),
            Rounding::Nearest => ((clamped - self.lo) / step).round(),
        };
        let code = code.min((self.levels - 1) as f64);
        self.lo + code * step
    }

    /// Digitizes a temperature (convenience wrapper over
    /// [`AdcQuantizer::quantize`]).
    #[must_use]
    pub fn quantize_celsius(&self, t: Celsius) -> Celsius {
        Celsius::new(self.quantize(t.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date14_has_one_degree_step() {
        let adc = AdcQuantizer::date14();
        assert_eq!(adc.step(), 1.0);
        assert_eq!(adc.range(), (0.0, 255.0));
        assert_eq!(adc.rounding(), Rounding::Floor);
    }

    #[test]
    fn floor_truncates() {
        let adc = AdcQuantizer::date14();
        assert_eq!(adc.quantize(55.0), 55.0);
        assert_eq!(adc.quantize(55.49), 55.0);
        assert_eq!(adc.quantize(55.99), 55.0);
        assert_eq!(adc.quantize(56.0), 56.0);
    }

    #[test]
    fn nearest_rounds() {
        let adc = AdcQuantizer::new(8, 0.0, 255.0, Rounding::Nearest);
        assert_eq!(adc.quantize(55.4), 55.0);
        assert_eq!(adc.quantize(55.6), 56.0);
    }

    #[test]
    fn saturates_at_range_ends() {
        let adc = AdcQuantizer::date14();
        assert_eq!(adc.quantize(-40.0), 0.0);
        assert_eq!(adc.quantize(1000.0), 255.0);
    }

    #[test]
    fn idempotent_on_grid_values() {
        let adc = AdcQuantizer::date14();
        for code in [0.0, 1.0, 77.0, 255.0] {
            assert_eq!(adc.quantize(code), code);
        }
    }

    #[test]
    fn finer_adc_has_smaller_step() {
        let adc12 = AdcQuantizer::new(12, 0.0, 255.0, Rounding::Floor);
        assert!(adc12.step() < 0.1);
        let coarse = AdcQuantizer::new(4, 0.0, 150.0, Rounding::Floor);
        assert_eq!(coarse.step(), 10.0);
    }

    #[test]
    fn celsius_wrapper() {
        let adc = AdcQuantizer::date14();
        assert_eq!(adc.quantize_celsius(Celsius::new(74.9)), Celsius::new(74.0));
    }

    #[test]
    #[should_panic(expected = "1..=24")]
    fn invalid_bits_rejected() {
        let _ = AdcQuantizer::new(0, 0.0, 255.0, Rounding::Floor);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn inverted_range_rejected() {
        let _ = AdcQuantizer::new(8, 10.0, 10.0, Rounding::Floor);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = AdcQuantizer::date14().quantize(f64::NAN);
    }
}
