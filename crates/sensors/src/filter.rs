//! Smoothing filters for noisy telemetry and utilization prediction.

use std::collections::VecDeque;

/// A sliding-window moving-average filter.
///
/// The paper's predictive set-point scheme (Section V-B) "filters out the
/// noise term in the CPU utilization \[with\] a moving average filter for the
/// prediction" (after Coskun et al., TCAD'09). Until the window fills, the
/// average runs over the samples seen so far.
///
/// # Examples
///
/// ```
/// use gfsc_sensors::MovingAverage;
///
/// let mut f = MovingAverage::new(4);
/// f.update(1.0);
/// f.update(2.0);
/// assert_eq!(f.value(), Some(1.5));
/// f.update(3.0);
/// f.update(4.0);
/// f.update(5.0); // 1.0 falls out of the window
/// assert_eq!(f.value(), Some(3.5));
/// ```
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl MovingAverage {
    /// Creates a filter averaging over the last `window` samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must hold at least one sample");
        Self { window, buf: VecDeque::with_capacity(window), sum: 0.0 }
    }

    /// The configured window length.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of samples currently in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` before the first sample.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Feeds a sample and returns the updated average.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn update(&mut self, x: f64) -> f64 {
        assert!(!x.is_nan(), "filter input must not be NaN");
        self.buf.push_back(x);
        self.sum += x;
        if self.buf.len() > self.window {
            if let Some(evicted) = self.buf.pop_front() {
                self.sum -= evicted;
            }
        }
        // Recompute periodically to cancel accumulated rounding drift.
        if self.buf.len() == self.window && self.sum.abs() > 1e12 {
            self.sum = self.buf.iter().sum();
        }
        // `x` was just pushed, so `value()` is Some; and a one-sample
        // average *is* `x`, which makes it the natural fallback.
        self.value().unwrap_or(x)
    }

    /// The current average, or `None` before any sample.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.sum / self.buf.len() as f64)
        }
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
    }
}

/// An exponentially-weighted moving average: `y ← α·x + (1−α)·y`.
///
/// A cheaper alternative to [`MovingAverage`] with infinite memory decay;
/// offered for ablation studies of the predictor choice.
///
/// # Examples
///
/// ```
/// use gfsc_sensors::Ewma;
///
/// let mut f = Ewma::new(0.5);
/// assert_eq!(f.update(10.0), 10.0); // first sample seeds the state
/// assert_eq!(f.update(20.0), 15.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    state: Option<f64>,
}

impl Ewma {
    /// Creates a filter with smoothing factor `alpha ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must lie in (0, 1]");
        Self { alpha, state: None }
    }

    /// The smoothing factor.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Feeds a sample and returns the updated average. The first sample
    /// seeds the filter state directly.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn update(&mut self, x: f64) -> f64 {
        assert!(!x.is_nan(), "filter input must not be NaN");
        let next = match self.state {
            Some(y) => self.alpha * x + (1.0 - self.alpha) * y,
            None => x,
        };
        self.state = Some(next);
        next
    }

    /// The current average, or `None` before any sample.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.state
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_partial_window() {
        let mut f = MovingAverage::new(5);
        assert_eq!(f.value(), None);
        assert!(f.is_empty());
        assert_eq!(f.update(2.0), 2.0);
        assert_eq!(f.update(4.0), 3.0);
        assert_eq!(f.len(), 2);
        assert_eq!(f.window(), 5);
    }

    #[test]
    fn moving_average_slides() {
        let mut f = MovingAverage::new(3);
        for x in [1.0, 2.0, 3.0] {
            f.update(x);
        }
        assert_eq!(f.value(), Some(2.0));
        f.update(10.0); // window now [2, 3, 10]
        assert_eq!(f.value(), Some(5.0));
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn moving_average_constant_signal_is_fixed_point() {
        let mut f = MovingAverage::new(8);
        for _ in 0..100 {
            // Within rounding, a constant input is a fixed point.
            assert!((f.update(0.7) - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn moving_average_reset() {
        let mut f = MovingAverage::new(3);
        f.update(5.0);
        f.reset();
        assert_eq!(f.value(), None);
        assert_eq!(f.update(1.0), 1.0);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut f = Ewma::new(0.3);
        for _ in 0..200 {
            f.update(0.42);
        }
        assert!((f.value().unwrap() - 0.42).abs() < 1e-12);
    }

    #[test]
    fn ewma_first_sample_seeds() {
        let mut f = Ewma::new(0.1);
        assert_eq!(f.value(), None);
        assert_eq!(f.update(7.0), 7.0);
        assert_eq!(f.alpha(), 0.1);
    }

    #[test]
    fn ewma_alpha_one_tracks_input_exactly() {
        let mut f = Ewma::new(1.0);
        f.update(3.0);
        assert_eq!(f.update(9.0), 9.0);
    }

    #[test]
    fn ewma_reset() {
        let mut f = Ewma::new(0.5);
        f.update(4.0);
        f.reset();
        assert_eq!(f.value(), None);
    }

    #[test]
    fn ewma_smooths_alternating_noise_more_with_small_alpha() {
        let noisy: Vec<f64> = (0..100).map(|k| if k % 2 == 0 { 0.0 } else { 1.0 }).collect();
        let spread = |alpha: f64| {
            let mut f = Ewma::new(alpha);
            let out: Vec<f64> = noisy.iter().map(|&x| f.update(x)).collect();
            let tail = &out[50..];
            tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - tail.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(spread(0.1) < spread(0.9));
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = MovingAverage::new(0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let _ = Ewma::new(0.0);
    }
}
