//! Mechanistic model of the shared I2C management bus.
//!
//! The paper attributes the ~10 s telemetry lag to "the limited bandwidth
//! of [the] I2C bus which has become a de-facto standard on the bus
//! protocol used for temperature measurement systems", aggravated by "the
//! increased number of temperature sensors in each new server platform".
//! This module reproduces that mechanism rather than hard-coding a delay:
//! a [`TelemetryScanner`] polls `n` sensors round-robin over an
//! [`I2cBusModel`]; each slot costs the bus transaction plus firmware
//! overhead, so a full scan of a many-sensor platform takes seconds, and a
//! given sensor's value refreshes only once per scan round.

use gfsc_units::Seconds;

/// Electrical/protocol timing of an I2C bus segment.
///
/// A standard-mode temperature read moves ~5 protocol bytes (address,
/// register pointer, repeated start, two data bytes) at 9 bits on the wire
/// each. The service processor adds per-slot firmware overhead (scheduling,
/// retries, record-keeping) that dominates the wire time on real BMCs.
///
/// # Examples
///
/// ```
/// use gfsc_sensors::I2cBusModel;
///
/// let bus = I2cBusModel::standard_mode();
/// // 45 wire bits at 100 kHz: 0.45 ms per transaction.
/// assert!((bus.transaction_time().value() - 0.45e-3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct I2cBusModel {
    clock_hz: f64,
    bits_per_transaction: u32,
}

impl I2cBusModel {
    /// Creates a bus with the given SCL clock and transaction size.
    ///
    /// # Panics
    ///
    /// Panics if `clock_hz` is not positive or `bits_per_transaction` is 0.
    #[must_use]
    pub fn new(clock_hz: f64, bits_per_transaction: u32) -> Self {
        assert!(clock_hz > 0.0, "bus clock must be positive");
        assert!(bits_per_transaction > 0, "transaction must move at least one bit");
        Self { clock_hz, bits_per_transaction }
    }

    /// Standard-mode I2C (100 kHz) with a 5-byte (45-bit) temperature read.
    #[must_use]
    pub fn standard_mode() -> Self {
        Self::new(100_000.0, 45)
    }

    /// The SCL clock frequency in hertz.
    #[must_use]
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Wire time of one sensor read.
    #[must_use]
    pub fn transaction_time(&self) -> Seconds {
        Seconds::new(f64::from(self.bits_per_transaction) / self.clock_hz)
    }
}

/// Round-robin polling of many sensors sharing one bus, as performed by the
/// service-processor firmware.
///
/// Each sensor slot costs `transaction_time + firmware_overhead`; a full
/// round visits every sensor once. The scanner latches each sensor's value
/// at its slot instant; consumers (the DTM) read the latch, which is
/// therefore up to one full round stale. With the
/// [`TelemetryScanner::date14`] parameters (64 sensors, ~156 ms slots) the
/// round time is 10.0 s — the paper's measured lag.
///
/// # Examples
///
/// ```
/// use gfsc_sensors::TelemetryScanner;
///
/// let scan = TelemetryScanner::date14();
/// assert!((scan.round_time().value() - 10.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct TelemetryScanner {
    bus: I2cBusModel,
    num_sensors: u32,
    firmware_overhead: Seconds,
    latch: Vec<f64>,
    // Absolute time of the next slot boundary and the sensor it samples.
    next_slot_time: f64,
    next_slot_sensor: u32,
}

impl TelemetryScanner {
    /// Creates a scanner for `num_sensors` sensors with the given per-slot
    /// firmware overhead. All latches start at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `num_sensors` is zero.
    #[must_use]
    pub fn new(
        bus: I2cBusModel,
        num_sensors: u32,
        firmware_overhead: Seconds,
        initial: f64,
    ) -> Self {
        assert!(num_sensors > 0, "scanner needs at least one sensor");
        Self {
            bus,
            num_sensors,
            firmware_overhead,
            latch: vec![initial; num_sensors as usize],
            next_slot_time: 0.0,
            next_slot_sensor: 0,
        }
    }

    /// The DATE'14 telemetry configuration: standard-mode bus, 64 sensors,
    /// 155.8 ms firmware overhead per slot → 10.0 s scan round.
    #[must_use]
    pub fn date14() -> Self {
        Self::new(I2cBusModel::standard_mode(), 64, Seconds::new(0.155_8), 0.0)
    }

    /// Number of sensors on the bus.
    #[must_use]
    pub fn num_sensors(&self) -> u32 {
        self.num_sensors
    }

    /// Time per sensor slot: bus transaction + firmware overhead.
    #[must_use]
    pub fn slot_time(&self) -> Seconds {
        self.bus.transaction_time() + self.firmware_overhead
    }

    /// Duration of one full scan round — the worst-case telemetry staleness.
    #[must_use]
    pub fn round_time(&self) -> Seconds {
        self.slot_time() * f64::from(self.num_sensors)
    }

    /// Advances the scan to time `now`, sampling each sensor whose slot
    /// boundary has passed. `read` maps a sensor index to its current true
    /// value.
    ///
    /// Call this once per simulation step with monotonically non-decreasing
    /// `now`; slot boundaries falling inside the step are processed in
    /// order.
    pub fn advance<F: FnMut(u32) -> f64>(&mut self, now: Seconds, mut read: F) {
        let slot = self.slot_time().value();
        while self.next_slot_time <= now.value() {
            let value = read(self.next_slot_sensor);
            assert!(!value.is_nan(), "sensor read must not be NaN");
            self.latch[self.next_slot_sensor as usize] = value;
            self.next_slot_sensor = (self.next_slot_sensor + 1) % self.num_sensors;
            self.next_slot_time += slot;
        }
    }

    /// The latched (possibly stale) value of sensor `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn latched(&self, index: u32) -> f64 {
        self.latch[index as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_mode_transaction_time() {
        let bus = I2cBusModel::standard_mode();
        assert!((bus.transaction_time().value() - 45.0 / 100_000.0).abs() < 1e-12);
        assert_eq!(bus.clock_hz(), 100_000.0);
    }

    #[test]
    fn date14_round_is_ten_seconds() {
        let scan = TelemetryScanner::date14();
        assert_eq!(scan.num_sensors(), 64);
        let round = scan.round_time().value();
        assert!((round - 10.0).abs() < 0.05, "round {round}");
    }

    #[test]
    fn more_sensors_mean_longer_rounds() {
        let bus = I2cBusModel::standard_mode();
        let small = TelemetryScanner::new(bus, 16, Seconds::new(0.1), 0.0);
        let large = TelemetryScanner::new(bus, 128, Seconds::new(0.1), 0.0);
        assert!(large.round_time() > small.round_time());
        // Round time scales linearly in sensor count.
        let ratio = large.round_time() / small.round_time();
        assert!((ratio - 8.0).abs() < 1e-9);
    }

    #[test]
    fn latch_updates_once_per_round() {
        // 4 sensors, 1 s slots -> 4 s round.
        let bus = I2cBusModel::standard_mode();
        let mut scan = TelemetryScanner::new(bus, 4, Seconds::new(1.0), 0.0);
        let slot = scan.slot_time().value();

        // Sensor 0 is sampled at t=0, sensor 1 at one slot, etc.
        let mut t = 0.0;
        let mut value = 100.0;
        // First round: all sensors latch 100.
        for _ in 0..4 {
            scan.advance(Seconds::new(t), |_| value);
            t += slot;
        }
        assert_eq!(scan.latched(0), 100.0);
        assert_eq!(scan.latched(3), 100.0);

        // True value changes; sensor 0 only refreshes at its next slot.
        value = 200.0;
        scan.advance(Seconds::new(t), |_| value); // sensor 0's second slot
        assert_eq!(scan.latched(0), 200.0);
        assert_eq!(scan.latched(1), 100.0, "sensor 1 still stale");
    }

    #[test]
    fn staleness_is_bounded_by_round_time() {
        let bus = I2cBusModel::standard_mode();
        let mut scan = TelemetryScanner::new(bus, 8, Seconds::new(0.5), 0.0);
        let round = scan.round_time().value();
        // Feed value = time; after advancing to T, every latch must hold a
        // timestamp within [T - round, T].
        let mut now = 0.0;
        while now < 30.0 {
            scan.advance(Seconds::new(now), |_| now);
            now += 0.25;
        }
        for i in 0..8 {
            let age = (30.0 - 0.25) - scan.latched(i);
            assert!(age <= round + 1e-9, "sensor {i} is {age}s stale (round {round})");
            assert!(age >= 0.0);
        }
    }

    #[test]
    fn advance_processes_multiple_slots_in_one_call() {
        let bus = I2cBusModel::standard_mode();
        let mut scan = TelemetryScanner::new(bus, 4, Seconds::new(1.0), -1.0);
        // Jump over 2.5 rounds in a single advance.
        scan.advance(Seconds::new(10.0), f64::from);
        for i in 0..4 {
            assert_eq!(scan.latched(i), f64::from(i), "sensor {i}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one sensor")]
    fn zero_sensors_rejected() {
        let _ = TelemetryScanner::new(I2cBusModel::standard_mode(), 0, Seconds::new(0.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_bus_rejected() {
        let _ = I2cBusModel::new(0.0, 45);
    }
}
