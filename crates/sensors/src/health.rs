//! Per-sensor staleness and validity tracking for streamed telemetry.
//!
//! A batch simulation always has a reading; a live daemon does not. Reads
//! drop (bus contention, BMC timeouts), and — worse — a failed sensor can
//! keep *answering* with the same latched value forever, which looks
//! exactly like a healthy sensor at steady state unless something watches
//! for it. [`SensorHealth`] is that something: a tiny per-sensor state
//! machine fed one `observe` per poll cycle that classifies the sensor as
//! [`SensorStatus::Fresh`], [`SensorStatus::Stale`] (no successful read
//! for longer than the staleness budget) or [`SensorStatus::Frozen`]
//! (successful reads whose value has not moved for longer than the freeze
//! budget). The daemon's watchdog treats anything non-fresh as sensor
//! loss (error magnitudes and failure modes grounded by the Intel sensor
//! characterization in PAPERS.md).
//!
//! Freeze detection is optional (`freeze_after = None` disables it):
//! a quantized sensor at thermal steady state legitimately reports the
//! same integer for minutes, so the freeze budget must be chosen against
//! the plant's time constants — or left off where a constant reading is
//! expected (e.g. the bit-for-bit daemon parity harness).

use gfsc_units::Seconds;

/// The classification of one sensor at the latest poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorStatus {
    /// A successful, recently-moving reading.
    Fresh,
    /// No successful reading for longer than the staleness budget.
    Stale,
    /// Readings arrive but the value has not moved for longer than the
    /// freeze budget — the latched-sensor failure mode.
    Frozen,
}

impl SensorStatus {
    /// Whether the value may be acted on by a closed-loop controller.
    #[must_use]
    pub fn is_usable(self) -> bool {
        matches!(self, SensorStatus::Fresh)
    }
}

/// Per-sensor staleness/freeze tracker (one instance per sensor).
///
/// # Examples
///
/// ```
/// use gfsc_sensors::{SensorHealth, SensorStatus};
/// use gfsc_units::Seconds;
///
/// let mut health = SensorHealth::new(Seconds::new(3.0), None);
/// assert_eq!(health.observe(Seconds::new(0.0), Some(45.0)), SensorStatus::Fresh);
/// // Reads keep failing: fresh until the budget runs out, stale after.
/// assert_eq!(health.observe(Seconds::new(2.0), None), SensorStatus::Fresh);
/// assert_eq!(health.observe(Seconds::new(4.0), None), SensorStatus::Stale);
/// // One good reading recovers immediately.
/// assert_eq!(health.observe(Seconds::new(5.0), Some(46.0)), SensorStatus::Fresh);
/// ```
#[derive(Debug, Clone)]
pub struct SensorHealth {
    stale_after: Seconds,
    freeze_after: Option<Seconds>,
    /// Time of the last successful read, if any ever succeeded.
    last_read: Option<Seconds>,
    /// The last successfully read value and when it last *changed*.
    last_value: Option<(f64, Seconds)>,
    status: SensorStatus,
}

impl SensorHealth {
    /// Creates a tracker: a sensor with no successful read for
    /// `stale_after` is stale; one whose value has not changed for
    /// `freeze_after` (if given) is frozen.
    ///
    /// # Panics
    ///
    /// Panics if a budget is not positive.
    #[must_use]
    pub fn new(stale_after: Seconds, freeze_after: Option<Seconds>) -> Self {
        assert!(stale_after.value() > 0.0, "staleness budget must be positive");
        if let Some(freeze) = freeze_after {
            assert!(freeze.value() > 0.0, "freeze budget must be positive");
        }
        Self {
            stale_after,
            freeze_after,
            last_read: None,
            last_value: None,
            status: SensorStatus::Stale,
        }
    }

    /// Feeds one poll result: `Some(value)` for a successful read, `None`
    /// for a failed one. Returns the resulting classification.
    pub fn observe(&mut self, now: Seconds, reading: Option<f64>) -> SensorStatus {
        // A NaN reading is a *failed* read, not a fresh one: NaN != NaN,
        // so without this guard the change-detector below would count the
        // same garbage as "the value moved, the sensor is alive" on every
        // single poll — a poisoned sensor would never go stale.
        let reading = reading.filter(|v| !v.is_nan());
        if let Some(value) = reading {
            match self.last_value {
                // A changed value proves the sensor is alive end to end.
                Some((previous, _)) if value != previous => self.last_value = Some((value, now)),
                Some(_) => {}
                None => self.last_value = Some((value, now)),
            }
            self.last_read = Some(now);
        }
        self.status = match self.last_read {
            None => SensorStatus::Stale,
            Some(at) if now - at > self.stale_after.value() => SensorStatus::Stale,
            Some(_) => match (self.freeze_after, self.last_value) {
                (Some(freeze), Some((_, changed_at))) if now - changed_at > freeze.value() => {
                    SensorStatus::Frozen
                }
                _ => SensorStatus::Fresh,
            },
        };
        self.status
    }

    /// The classification after the most recent [`SensorHealth::observe`].
    #[must_use]
    pub fn status(&self) -> SensorStatus {
        self.status
    }

    /// The most recent successfully read value, if any.
    #[must_use]
    pub fn last_value(&self) -> Option<f64> {
        self.last_value.map(|(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: f64) -> Seconds {
        Seconds::new(v)
    }

    #[test]
    fn starts_stale_until_the_first_read() {
        let mut h = SensorHealth::new(s(5.0), None);
        assert_eq!(h.status(), SensorStatus::Stale);
        assert_eq!(h.observe(s(0.0), None), SensorStatus::Stale);
        assert_eq!(h.observe(s(1.0), Some(40.0)), SensorStatus::Fresh);
        assert_eq!(h.last_value(), Some(40.0));
    }

    #[test]
    fn staleness_uses_the_budget_not_the_poll_count() {
        let mut h = SensorHealth::new(s(5.0), None);
        h.observe(s(0.0), Some(40.0));
        // Many failed polls inside the budget stay fresh…
        for k in 1..=5 {
            assert_eq!(h.observe(s(k as f64), None), SensorStatus::Fresh, "t={k}");
        }
        // …and the first poll past it is stale.
        assert_eq!(h.observe(s(5.5), None), SensorStatus::Stale);
        // Recovery is immediate on success.
        assert_eq!(h.observe(s(6.0), Some(41.0)), SensorStatus::Fresh);
    }

    #[test]
    fn frozen_value_is_detected_and_recovers_on_change() {
        let mut h = SensorHealth::new(s(100.0), Some(s(3.0)));
        h.observe(s(0.0), Some(50.0));
        assert_eq!(h.observe(s(2.0), Some(50.0)), SensorStatus::Fresh);
        // Same value past the freeze budget: frozen, even though every
        // read "succeeds".
        assert_eq!(h.observe(s(4.0), Some(50.0)), SensorStatus::Frozen);
        assert!(!h.status().is_usable());
        // Any movement proves life.
        assert_eq!(h.observe(s(5.0), Some(51.0)), SensorStatus::Fresh);
    }

    #[test]
    fn freeze_detection_can_be_disabled() {
        let mut h = SensorHealth::new(s(10.0), None);
        for k in 0..100 {
            assert_eq!(h.observe(s(k as f64 * 0.5), Some(50.0)), SensorStatus::Fresh);
        }
    }

    #[test]
    fn nan_readings_count_as_failed_reads() {
        let mut h = SensorHealth::new(s(5.0), None);
        h.observe(s(0.0), Some(40.0));
        // A poisoned sensor delivering NaN every poll must drain the
        // staleness budget exactly like a dead one — NaN != NaN would
        // otherwise read as "changed" (alive) forever.
        for k in 1..=5 {
            assert_eq!(h.observe(s(k as f64), Some(f64::NAN)), SensorStatus::Fresh, "t={k}");
        }
        assert_eq!(h.observe(s(5.5), Some(f64::NAN)), SensorStatus::Stale);
        // The last good value survives the poison.
        assert_eq!(h.last_value(), Some(40.0));
        // A real reading recovers immediately.
        assert_eq!(h.observe(s(6.0), Some(41.0)), SensorStatus::Fresh);
    }

    #[test]
    #[should_panic(expected = "staleness budget")]
    fn zero_stale_budget_rejected() {
        let _ = SensorHealth::new(s(0.0), None);
    }
}
