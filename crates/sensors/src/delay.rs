//! Fixed transport delay as a sample ring buffer.

use gfsc_units::Seconds;
use std::collections::VecDeque;

/// A fixed transport delay of `n` samples.
///
/// Pushing a new sample returns the sample observed `n` pushes ago. When
/// pushed once per sample interval `Δt`, this realizes a pure transport
/// delay of `n·Δt` — the distilled form of the ~10 s I2C telemetry lag the
/// paper measures (Fig. 1). The line starts pre-filled with an initial
/// value, modeling a sensor chain that has been reporting a quiescent
/// value since before the experiment began.
///
/// # Examples
///
/// ```
/// use gfsc_sensors::DelayLine;
///
/// let mut line = DelayLine::new(3, 20.0);
/// assert_eq!(line.push(1.0), 20.0); // still draining the initial fill
/// assert_eq!(line.push(2.0), 20.0);
/// assert_eq!(line.push(3.0), 20.0);
/// assert_eq!(line.push(4.0), 1.0); // first real sample emerges
/// ```
#[derive(Debug, Clone)]
pub struct DelayLine<T = f64> {
    buf: VecDeque<T>,
    depth: usize,
}

impl<T: Copy> DelayLine<T> {
    /// Creates a delay of `depth` samples, pre-filled with `initial`.
    ///
    /// A depth of 0 is a pass-through (no delay).
    #[must_use]
    pub fn new(depth: usize, initial: T) -> Self {
        let mut buf = VecDeque::with_capacity(depth);
        for _ in 0..depth {
            buf.push_back(initial);
        }
        Self { buf, depth }
    }

    /// Creates a delay of `delay` seconds for a signal sampled every
    /// `sample_interval`, rounding the depth to the nearest whole sample.
    ///
    /// # Panics
    ///
    /// Panics if `sample_interval` is zero.
    #[must_use]
    pub fn with_delay(delay: Seconds, sample_interval: Seconds, initial: T) -> Self {
        assert!(!sample_interval.is_zero(), "sample interval must be positive");
        let depth = (delay / sample_interval).round() as usize;
        Self::new(depth, initial)
    }

    /// The delay depth in samples.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Pushes the newest sample and returns the delayed output.
    pub fn push(&mut self, sample: T) -> T {
        if self.depth == 0 {
            return sample;
        }
        self.buf.push_back(sample);
        // Just pushed, so the line cannot be empty; passing the input
        // through beats panicking if that invariant ever breaks.
        self.buf.pop_front().unwrap_or(sample)
    }

    /// The value that will be emitted on the next push (the oldest sample),
    /// or the input itself for a zero-depth line (`None` here, since there
    /// is no buffered sample).
    #[must_use]
    pub fn peek(&self) -> Option<T> {
        self.buf.front().copied()
    }

    /// Re-fills the entire line with `value`, restarting the quiescent
    /// state.
    pub fn refill(&mut self, value: T) {
        for slot in &mut self.buf {
            *slot = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_depth_is_passthrough() {
        let mut line = DelayLine::new(0, 0.0);
        assert_eq!(line.push(5.0), 5.0);
        assert_eq!(line.depth(), 0);
        assert_eq!(line.peek(), None);
    }

    #[test]
    fn delays_by_exactly_depth_samples() {
        let mut line = DelayLine::new(10, 0.0);
        for k in 1..=10 {
            assert_eq!(line.push(k as f64), 0.0, "initial fill at k={k}");
        }
        for k in 11..=30 {
            assert_eq!(line.push(k as f64), (k - 10) as f64);
        }
    }

    #[test]
    fn with_delay_computes_depth() {
        let line = DelayLine::with_delay(Seconds::new(10.0), Seconds::new(1.0), 0.0f64);
        assert_eq!(line.depth(), 10);
        let line = DelayLine::with_delay(Seconds::new(10.0), Seconds::new(0.5), 0.0f64);
        assert_eq!(line.depth(), 20);
        let line = DelayLine::with_delay(Seconds::new(0.0), Seconds::new(1.0), 0.0f64);
        assert_eq!(line.depth(), 0);
        // Non-integral ratios round to the nearest sample.
        let line = DelayLine::with_delay(Seconds::new(10.0), Seconds::new(3.0), 0.0f64);
        assert_eq!(line.depth(), 3);
    }

    #[test]
    fn peek_previews_next_output() {
        let mut line = DelayLine::new(2, 7.0);
        assert_eq!(line.peek(), Some(7.0));
        line.push(1.0);
        line.push(2.0);
        assert_eq!(line.peek(), Some(1.0));
        assert_eq!(line.push(3.0), 1.0);
    }

    #[test]
    fn refill_restores_quiescence() {
        let mut line = DelayLine::new(3, 0.0);
        line.push(1.0);
        line.push(2.0);
        line.refill(9.0);
        assert_eq!(line.push(5.0), 9.0);
        assert_eq!(line.push(5.0), 9.0);
        assert_eq!(line.push(5.0), 9.0);
        assert_eq!(line.push(5.0), 5.0);
    }

    #[test]
    fn works_with_non_float_payloads() {
        let mut line: DelayLine<(u32, bool)> = DelayLine::new(1, (0, false));
        assert_eq!(line.push((1, true)), (0, false));
        assert_eq!(line.push((2, false)), (1, true));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sample_interval_rejected() {
        let _ = DelayLine::with_delay(Seconds::new(1.0), Seconds::new(0.0), 0.0f64);
    }
}
