//! The composed sensor-to-firmware measurement chain.

use crate::{AdcQuantizer, DelayLine};
use gfsc_units::{Celsius, Seconds};

/// The full non-ideal measurement chain: periodic sampling → ADC
/// quantization → transport delay → zero-order hold.
///
/// This is the distilled form of the telemetry path (sensor, 8-bit ADC,
/// shared I2C bus, BMC firmware) that the simulator places between the true
/// junction temperature and every controller. The
/// [`MeasurementPipeline::date14`] preset matches the paper's measured
/// figures: 1 s sampling, 1 °C quantization, 10 s lag.
///
/// For studies of the lag *mechanism* (bus contention growing with sensor
/// count) use [`crate::TelemetryScanner`] instead; for control experiments
/// this pipeline is the faithful and much cheaper abstraction.
///
/// # Examples
///
/// ```
/// use gfsc_sensors::MeasurementPipeline;
/// use gfsc_units::{Celsius, Seconds};
///
/// let mut chain = MeasurementPipeline::builder()
///     .sample_interval(Seconds::new(1.0))
///     .delay(Seconds::new(3.0))
///     .initial(25.0)
///     .build();
/// // The true value steps to 80 at t = 0 but emerges only after the lag.
/// assert_eq!(chain.observe(Seconds::new(0.0), 80.0), 25.0);
/// assert_eq!(chain.observe(Seconds::new(2.0), 80.0), 25.0);
/// assert_eq!(chain.observe(Seconds::new(3.0), 80.0), 80.0);
/// ```
#[derive(Debug, Clone)]
pub struct MeasurementPipeline {
    sample_interval: Seconds,
    adc: Option<AdcQuantizer>,
    delay: DelayLine<f64>,
    next_sample: f64,
    output: f64,
}

impl MeasurementPipeline {
    /// Starts building a pipeline.
    #[must_use]
    pub fn builder() -> MeasurementPipelineBuilder {
        MeasurementPipelineBuilder::default()
    }

    /// The DATE'14 chain: 1 s sampling, 8-bit/1 °C ADC, 10 s lag, starting
    /// from a 0 °C quiescent reading.
    #[must_use]
    pub fn date14() -> Self {
        Self::builder()
            .sample_interval(Seconds::new(1.0))
            .adc(AdcQuantizer::date14())
            .delay(Seconds::new(10.0))
            .build()
    }

    /// The sampling interval of the chain.
    #[must_use]
    pub fn sample_interval(&self) -> Seconds {
        self.sample_interval
    }

    /// The quantization step of the ADC stage, if one is configured.
    ///
    /// Controllers use this as the `|T_Q|` bound in the paper's
    /// quantization-elimination rule (Eq. 10).
    #[must_use]
    pub fn quantization_step(&self) -> Option<f64> {
        self.adc.map(|a| a.step())
    }

    /// The configured transport delay in whole samples.
    #[must_use]
    pub fn delay_samples(&self) -> usize {
        self.delay.depth()
    }

    /// Feeds the true value at time `now` and returns what the firmware
    /// currently sees.
    ///
    /// Call once per simulation step with non-decreasing `now`; sampling
    /// instants falling inside the step are processed in order (holding the
    /// supplied `true_value` across them, which is exact when the step is
    /// no coarser than the sample interval).
    pub fn observe(&mut self, now: Seconds, true_value: f64) -> f64 {
        assert!(!true_value.is_nan(), "true value must not be NaN");
        while self.next_sample <= now.value() + self.sample_interval.value() * 1e-9 {
            let digitized = match &self.adc {
                Some(adc) => adc.quantize(true_value),
                None => true_value,
            };
            self.output = self.delay.push(digitized);
            self.next_sample += self.sample_interval.value();
        }
        self.output
    }

    /// Typed convenience for temperature chains.
    pub fn observe_celsius(&mut self, now: Seconds, t: Celsius) -> Celsius {
        Celsius::new(self.observe(now, t.value()))
    }

    /// The value the firmware currently sees, without advancing the chain.
    #[must_use]
    pub fn current(&self) -> f64 {
        self.output
    }
}

/// Builder for [`MeasurementPipeline`] (see there for an example).
#[derive(Debug, Clone)]
pub struct MeasurementPipelineBuilder {
    sample_interval: Seconds,
    adc: Option<AdcQuantizer>,
    delay: Seconds,
    initial: f64,
}

impl Default for MeasurementPipelineBuilder {
    fn default() -> Self {
        Self {
            sample_interval: Seconds::new(1.0),
            adc: None,
            delay: Seconds::new(0.0),
            initial: 0.0,
        }
    }
}

impl MeasurementPipelineBuilder {
    /// Sets the sampling interval (default 1 s).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn sample_interval(mut self, interval: Seconds) -> Self {
        assert!(!interval.is_zero(), "sample interval must be positive");
        self.sample_interval = interval;
        self
    }

    /// Adds an ADC quantization stage (default: none).
    #[must_use]
    pub fn adc(mut self, adc: AdcQuantizer) -> Self {
        self.adc = Some(adc);
        self
    }

    /// Sets the transport delay (default: none). Rounded to whole samples.
    #[must_use]
    pub fn delay(mut self, delay: Seconds) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the quiescent value the chain reports until real samples
    /// propagate through (default 0).
    #[must_use]
    pub fn initial(mut self, value: f64) -> Self {
        self.initial = value;
        self
    }

    /// Builds the pipeline.
    #[must_use]
    pub fn build(self) -> MeasurementPipeline {
        let delay = DelayLine::with_delay(self.delay, self.sample_interval, self.initial);
        MeasurementPipeline {
            sample_interval: self.sample_interval,
            adc: self.adc,
            delay,
            next_sample: 0.0,
            output: self.initial,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date14_preset_shape() {
        let chain = MeasurementPipeline::date14();
        assert_eq!(chain.sample_interval(), Seconds::new(1.0));
        assert_eq!(chain.quantization_step(), Some(1.0));
        assert_eq!(chain.delay_samples(), 10);
    }

    #[test]
    fn step_change_emerges_after_exactly_the_lag() {
        let mut chain = MeasurementPipeline::builder()
            .sample_interval(Seconds::new(1.0))
            .delay(Seconds::new(10.0))
            .initial(50.0)
            .build();
        for k in 0..10 {
            let seen = chain.observe(Seconds::new(k as f64), 80.0);
            assert_eq!(seen, 50.0, "still quiescent at t={k}");
        }
        assert_eq!(chain.observe(Seconds::new(10.0), 80.0), 80.0);
    }

    #[test]
    fn quantization_applies_before_transport() {
        let mut chain = MeasurementPipeline::builder()
            .adc(AdcQuantizer::date14())
            .delay(Seconds::new(2.0))
            .initial(0.0)
            .build();
        chain.observe(Seconds::new(0.0), 74.6);
        chain.observe(Seconds::new(1.0), 74.6);
        let seen = chain.observe(Seconds::new(2.0), 74.6);
        assert_eq!(seen, 74.0);
    }

    #[test]
    fn no_stages_is_sampled_passthrough() {
        let mut chain = MeasurementPipeline::builder().build();
        assert_eq!(chain.observe(Seconds::new(0.0), 42.5), 42.5);
        assert_eq!(chain.observe(Seconds::new(1.0), 43.5), 43.5);
    }

    #[test]
    fn holds_between_samples() {
        let mut chain = MeasurementPipeline::builder().sample_interval(Seconds::new(1.0)).build();
        assert_eq!(chain.observe(Seconds::new(0.0), 10.0), 10.0);
        // t = 0.5: no new sample; the change is invisible.
        assert_eq!(chain.observe(Seconds::new(0.5), 99.0), 10.0);
        assert_eq!(chain.current(), 10.0);
        assert_eq!(chain.observe(Seconds::new(1.0), 99.0), 99.0);
    }

    #[test]
    fn coarse_observation_steps_catch_up() {
        let mut chain = MeasurementPipeline::builder()
            .sample_interval(Seconds::new(1.0))
            .delay(Seconds::new(3.0))
            .initial(0.0)
            .build();
        // Jump straight to t = 10: the held input propagates fully.
        assert_eq!(chain.observe(Seconds::new(10.0), 7.0), 7.0);
    }

    #[test]
    fn celsius_convenience() {
        let mut chain = MeasurementPipeline::builder().adc(AdcQuantizer::date14()).build();
        let seen = chain.observe_celsius(Seconds::new(0.0), Celsius::new(61.9));
        assert_eq!(seen, Celsius::new(61.0));
    }

    #[test]
    fn sub_second_sampling() {
        let mut chain = MeasurementPipeline::builder()
            .sample_interval(Seconds::new(0.5))
            .delay(Seconds::new(1.0))
            .initial(0.0)
            .build();
        assert_eq!(chain.delay_samples(), 2);
        chain.observe(Seconds::new(0.0), 5.0);
        chain.observe(Seconds::new(0.5), 5.0);
        assert_eq!(chain.observe(Seconds::new(1.0), 5.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_input_rejected() {
        let mut chain = MeasurementPipeline::builder().build();
        let _ = chain.observe(Seconds::new(0.0), f64::NAN);
    }
}
