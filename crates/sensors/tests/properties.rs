//! Property-based tests for the measurement subsystem.

use gfsc_sensors::{AdcQuantizer, DelayLine, Ewma, MeasurementPipeline, MovingAverage, Rounding};
use gfsc_units::Seconds;
use proptest::prelude::*;

proptest! {
    /// Quantization error is bounded by one step (floor mode: `[0, step)`).
    #[test]
    fn quantizer_error_bounded(x in 0.0f64..255.0) {
        let adc = AdcQuantizer::date14();
        let q = adc.quantize(x);
        prop_assert!(q <= x && x - q < adc.step() + 1e-12);
    }

    /// Nearest-mode error is bounded by half a step.
    #[test]
    fn nearest_error_bounded(x in 0.0f64..255.0) {
        let adc = AdcQuantizer::new(8, 0.0, 255.0, Rounding::Nearest);
        let q = adc.quantize(x);
        prop_assert!((q - x).abs() <= adc.step() / 2.0 + 1e-12);
    }

    /// Quantization is monotone: a hotter input never reads colder.
    #[test]
    fn quantizer_monotone(a in -50.0f64..300.0, b in -50.0f64..300.0) {
        let adc = AdcQuantizer::date14();
        if a <= b {
            prop_assert!(adc.quantize(a) <= adc.quantize(b));
        }
    }

    /// Quantization is idempotent.
    #[test]
    fn quantizer_idempotent(x in -50.0f64..300.0) {
        let adc = AdcQuantizer::date14();
        let q = adc.quantize(x);
        prop_assert_eq!(adc.quantize(q), q);
    }

    /// A delay line reproduces its input shifted by exactly `depth`.
    #[test]
    fn delay_line_shifts_exactly(depth in 0usize..50, n in 1usize..200) {
        let mut line = DelayLine::new(depth, f64::NEG_INFINITY);
        let inputs: Vec<f64> = (0..n).map(|k| k as f64).collect();
        let outputs: Vec<f64> = inputs.iter().map(|&x| line.push(x)).collect();
        for (k, &out) in outputs.iter().enumerate() {
            if k >= depth {
                prop_assert_eq!(out, inputs[k - depth]);
            } else {
                prop_assert_eq!(out, f64::NEG_INFINITY);
            }
        }
    }

    /// The moving average always lies within the range of its window.
    #[test]
    fn moving_average_within_window_range(
        window in 1usize..20,
        samples in proptest::collection::vec(-100.0f64..100.0, 1..100),
    ) {
        let mut f = MovingAverage::new(window);
        for chunk_end in 1..=samples.len() {
            let avg = f.update(samples[chunk_end - 1]);
            let start = chunk_end.saturating_sub(window);
            let lo = samples[start..chunk_end].iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = samples[start..chunk_end].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
        }
    }

    /// EWMA output always lies between the previous state and the input.
    #[test]
    fn ewma_between_state_and_input(
        alpha in 0.01f64..=1.0,
        samples in proptest::collection::vec(-100.0f64..100.0, 2..50),
    ) {
        let mut f = Ewma::new(alpha);
        let mut prev = f.update(samples[0]);
        for &x in &samples[1..] {
            let y = f.update(x);
            let lo = prev.min(x);
            let hi = prev.max(x);
            prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
            prev = y;
        }
    }

    /// End-to-end: a constant input eventually reads back (quantized) and
    /// never produces values outside the ADC range.
    #[test]
    fn pipeline_converges_to_quantized_constant(value in 0.0f64..250.0, lag in 0.0f64..20.0) {
        let mut chain = MeasurementPipeline::builder()
            .sample_interval(Seconds::new(1.0))
            .adc(AdcQuantizer::date14())
            .delay(Seconds::new(lag))
            .initial(0.0)
            .build();
        let mut seen = 0.0;
        for k in 0..=(lag as usize + 2) {
            seen = chain.observe(Seconds::new(k as f64), value);
            prop_assert!((0.0..=255.0).contains(&seen));
        }
        prop_assert_eq!(seen, value.floor());
    }

    /// The pipeline's reported value is always a value the input actually
    /// took (quantized), never an interpolation artifact.
    #[test]
    fn pipeline_never_invents_values(lag in 0usize..15) {
        let mut chain = MeasurementPipeline::builder()
            .sample_interval(Seconds::new(1.0))
            .delay(Seconds::new(lag as f64))
            .initial(-1.0)
            .build();
        let inputs: Vec<f64> = (0..40).map(|k| (k * 7 % 13) as f64).collect();
        for (k, &x) in inputs.iter().enumerate() {
            let seen = chain.observe(Seconds::new(k as f64), x);
            prop_assert!(seen == -1.0 || inputs.contains(&seen));
        }
    }
}
