//! Server thermal topologies: how many heat sources share the one fan.
//!
//! The paper's global fan controller exists because a single fan serves
//! several coupled heat sources. A [`Topology`] describes that structure as
//! plain data — per-socket load weights, airflow derates for downstream
//! sockets in the shared plenum, and an optional chassis spreader that
//! couples the sockets thermally — and the builders below provide the
//! variants the experiments sweep:
//!
//! - [`Topology::single_socket`]: the paper's 2-node server (the
//!   bit-compatible default — simulated by the exact-exponential
//!   [`crate::ServerThermalModel`], not the RC network),
//! - [`Topology::dual_socket`] / [`Topology::quad_socket`]: 2S/4S boards
//!   where downstream sockets see pre-heated air,
//! - [`Topology::dual_socket_imbalanced`]: a 2S board with a skewed
//!   per-socket load split (NUMA-pinned workloads),
//! - [`Topology::blade_chassis`]: two sockets coupled through a shared
//!   chassis spreader — the strongest inter-source coupling.
//!
//! Adding a new variant is a constructor returning a `Topology` value; the
//! plant ([`crate::MultiSocketPlant`]), the server simulator and the
//! scenario grid all consume the same description.

use gfsc_units::KelvinPerWatt;

/// One socket's placement in the shared-fan airflow and load balance.
#[derive(Debug, Clone, PartialEq)]
pub struct SocketDef {
    /// Node-name stem (`die-{name}` / `sink-{name}` in the network).
    pub name: String,
    /// Relative load multiplier: socket `i` executes
    /// `clamp(u × load_weight)` of the server-wide demand `u`, so each
    /// socket dissipates its *own* CPU power (an N-socket board under the
    /// same demand burns ~N× the single-socket power — that is what makes
    /// the shared fan contended). 1.0 everywhere = balanced SMP; the
    /// builders keep the weights averaging 1 so total work stays
    /// comparable across topologies.
    pub load_weight: f64,
    /// Multiplier on the heat-sink law's airflow coefficient: 1.0 for the
    /// socket facing the inlet, > 1.0 for sockets breathing pre-heated or
    /// shadowed air further down the plenum.
    pub airflow_derate: f64,
    /// Multiplier on the junction-to-sink resistance (die/package spread
    /// across sockets).
    pub r_jc_scale: f64,
}

impl SocketDef {
    fn new(name: &str, load_weight: f64, airflow_derate: f64, r_jc_scale: f64) -> Self {
        Self { name: name.to_owned(), load_weight, airflow_derate, r_jc_scale }
    }
}

/// A shared chassis/spreader node coupling every socket's heat sink.
#[derive(Debug, Clone, PartialEq)]
pub struct ChassisDef {
    /// Sink-to-chassis coupling resistance, per socket.
    pub coupling: KelvinPerWatt,
    /// Chassis-to-ambient exhaust resistance (the fan-independent leak
    /// path through the enclosure walls).
    pub exhaust: KelvinPerWatt,
    /// Chassis thermal capacitance as a multiple of one socket's sink
    /// capacitance.
    pub capacitance_scale: f64,
}

/// The thermal structure of the simulated server: which heat sources share
/// the fan, and how they couple.
///
/// # Examples
///
/// ```
/// use gfsc_thermal::Topology;
///
/// let topo = Topology::quad_socket();
/// assert_eq!(topo.sockets().len(), 4);
/// assert!(!topo.is_single());
/// let mean: f64 = topo.sockets().iter().map(|s| s.load_weight).sum::<f64>() / 4.0;
/// assert!((mean - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    label: String,
    sockets: Vec<SocketDef>,
    chassis: Option<ChassisDef>,
    /// Fin segments per heat sink: 0 keeps the classic lumped sink, `k > 0`
    /// expands each sink into a base plate plus `k` mutually-coupled fin
    /// nodes (see [`Topology::finned`]).
    sink_segments: usize,
}

impl Topology {
    /// The paper's single-socket server: one die on one heat sink. This is
    /// the bit-compatible default — the server simulator steps it through
    /// the exact-exponential [`crate::ServerThermalModel`], not the
    /// backward-Euler network.
    #[must_use]
    pub fn single_socket() -> Self {
        Self {
            label: "1S".to_owned(),
            sockets: vec![SocketDef::new("cpu0", 1.0, 1.0, 1.0)],
            chassis: None,
            sink_segments: 0,
        }
    }

    /// A balanced dual-socket board: both sockets execute the full demand,
    /// the downstream socket breathing pre-heated air (+25 % on the
    /// convective term).
    #[must_use]
    pub fn dual_socket() -> Self {
        Self {
            label: "2S".to_owned(),
            sockets: vec![
                SocketDef::new("cpu0", 1.0, 1.0, 1.0),
                SocketDef::new("cpu1", 1.0, 1.25, 1.0),
            ],
            chassis: None,
            sink_segments: 0,
        }
    }

    /// A dual-socket board with a NUMA-skewed 130/70 load split — the hot
    /// socket sits upstream, so airflow and load imbalance fight.
    #[must_use]
    pub fn dual_socket_imbalanced() -> Self {
        Self {
            label: "2S-imb".to_owned(),
            sockets: vec![
                SocketDef::new("cpu0", 1.3, 1.0, 1.0),
                SocketDef::new("cpu1", 0.7, 1.25, 1.0),
            ],
            chassis: None,
            sink_segments: 0,
        }
    }

    /// A quad-socket board: balanced load, progressively derated airflow
    /// down the plenum.
    #[must_use]
    pub fn quad_socket() -> Self {
        Self {
            label: "4S".to_owned(),
            sockets: vec![
                SocketDef::new("cpu0", 1.0, 1.0, 1.0),
                SocketDef::new("cpu1", 1.0, 1.12, 1.0),
                SocketDef::new("cpu2", 1.0, 1.25, 1.0),
                SocketDef::new("cpu3", 1.0, 1.4, 1.0),
            ],
            chassis: None,
            sink_segments: 0,
        }
    }

    /// A blade enclosure: two sockets whose sinks couple through a shared
    /// chassis spreader (0.5 K/W per sink) with a weak fan-independent
    /// exhaust (2 K/W) — heat produced by one socket measurably warms the
    /// other, the strongest version of the many-sources/one-fan structure.
    #[must_use]
    pub fn blade_chassis() -> Self {
        Self {
            label: "blade".to_owned(),
            sockets: vec![
                SocketDef::new("cpu0", 1.0, 1.0, 1.0),
                SocketDef::new("cpu1", 1.0, 1.25, 1.0),
            ],
            chassis: Some(ChassisDef {
                coupling: KelvinPerWatt::new(0.5),
                exhaust: KelvinPerWatt::new(2.0),
                capacitance_scale: 2.0,
            }),
            sink_segments: 0,
        }
    }

    /// An N-socket board whose heat sinks are modeled as folded fin arrays:
    /// each sink becomes a base plate plus `segments` fin nodes that couple
    /// to the base, to *each other* (the reduced-order remnant of the air
    /// volume shared by the fins — eliminating the fast air node from a
    /// detailed model leaves exactly this dense fin-to-fin coupling), and
    /// each to ambient through its own share of the fan law.
    ///
    /// This is the detailed-plant variant: its backward-Euler matrix has a
    /// dense `(segments + 1)²` block per socket, so re-factorization — not
    /// substitution — dominates stepping whenever the fan is in motion.
    /// That makes it the stress topology for the batched sweep engine,
    /// whose cross-lane/cross-step factor memo exists to absorb exactly
    /// that cost.
    ///
    /// # Panics
    ///
    /// Panics if `sockets` or `segments` is zero.
    #[must_use]
    pub fn finned(sockets: usize, segments: usize) -> Self {
        assert!(sockets > 0, "finned topology needs at least one socket");
        assert!(segments > 0, "finned topology needs at least one fin segment");
        let defs = (0..sockets)
            .map(|i| {
                // Same progressive plenum derate slope as `quad_socket`.
                let derate = 1.0 + 0.13 * i as f64;
                SocketDef::new(&format!("cpu{i}"), 1.0, derate, 1.0)
            })
            .collect();
        let topo = Self {
            label: format!("{sockets}Sx{segments}f"),
            sockets: defs,
            chassis: None,
            sink_segments: segments,
        };
        topo.validate();
        topo
    }

    /// Fin segments per heat sink (0 = classic lumped sink).
    #[must_use]
    pub fn sink_segments(&self) -> usize {
        self.sink_segments
    }

    /// Replaces the per-socket load weights (must match the socket count
    /// and average 1, so total work stays comparable across topologies).
    ///
    /// # Panics
    ///
    /// Panics if the weight count differs from the socket count, any
    /// weight is not positive, or the weights do not average 1.
    #[must_use]
    pub fn with_load_weights(mut self, weights: &[f64]) -> Self {
        assert_eq!(weights.len(), self.sockets.len(), "one weight per socket");
        for (socket, &weight) in self.sockets.iter_mut().zip(weights) {
            socket.load_weight = weight;
        }
        self.validate();
        self
    }

    /// The topology's short display label (`1S`, `2S`, `4S`, `blade`, …).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The sockets, inlet-first.
    #[must_use]
    pub fn sockets(&self) -> &[SocketDef] {
        &self.sockets
    }

    /// The chassis spreader, if this topology has one.
    #[must_use]
    pub fn chassis(&self) -> Option<&ChassisDef> {
        self.chassis.as_ref()
    }

    /// Whether this is the paper's plain single-socket server (no derate,
    /// no chassis) — the shape the exact two-node model covers.
    #[must_use]
    pub fn is_single(&self) -> bool {
        self.sockets.len() == 1 && self.chassis.is_none() && self.sink_segments == 0
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if there are no sockets, weights/derates/scales are not
    /// positive, or the load weights do not average 1.
    pub fn validate(&self) {
        assert!(!self.sockets.is_empty(), "topology needs at least one socket");
        let mut sum = 0.0;
        for s in &self.sockets {
            assert!(s.load_weight > 0.0, "socket `{}` load weight must be positive", s.name);
            assert!(s.airflow_derate > 0.0, "socket `{}` airflow derate must be positive", s.name);
            assert!(s.r_jc_scale > 0.0, "socket `{}` r_jc scale must be positive", s.name);
            sum += s.load_weight;
        }
        let mean = sum / self.sockets.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9, "load weights must average 1, got mean {mean}");
        if let Some(ch) = &self.chassis {
            assert!(ch.capacitance_scale > 0.0, "chassis capacitance scale must be positive");
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::single_socket()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_validate() {
        for topo in [
            Topology::single_socket(),
            Topology::dual_socket(),
            Topology::dual_socket_imbalanced(),
            Topology::quad_socket(),
            Topology::blade_chassis(),
        ] {
            topo.validate();
        }
    }

    #[test]
    fn single_socket_is_the_default_and_single() {
        assert_eq!(Topology::default(), Topology::single_socket());
        assert!(Topology::single_socket().is_single());
        assert!(!Topology::dual_socket().is_single());
        assert!(!Topology::blade_chassis().is_single());
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            Topology::single_socket().label().to_owned(),
            Topology::dual_socket().label().to_owned(),
            Topology::dual_socket_imbalanced().label().to_owned(),
            Topology::quad_socket().label().to_owned(),
            Topology::blade_chassis().label().to_owned(),
        ];
        let mut dedup = labels.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn with_load_weights_replaces_split() {
        let topo = Topology::dual_socket().with_load_weights(&[1.4, 0.6]);
        assert_eq!(topo.sockets()[0].load_weight, 1.4);
        assert_eq!(topo.sockets()[1].load_weight, 0.6);
    }

    #[test]
    #[should_panic(expected = "average 1")]
    fn bad_weights_rejected() {
        let _ = Topology::dual_socket().with_load_weights(&[1.4, 1.4]);
    }

    #[test]
    fn blade_has_a_chassis() {
        assert!(Topology::blade_chassis().chassis().is_some());
        assert!(Topology::quad_socket().chassis().is_none());
    }

    #[test]
    fn finned_shape_and_labels() {
        let topo = Topology::finned(2, 32);
        topo.validate();
        assert_eq!(topo.sockets().len(), 2);
        assert_eq!(topo.sink_segments(), 32);
        assert_eq!(topo.label(), "2Sx32f");
        assert_ne!(Topology::finned(2, 32).label(), Topology::finned(2, 40).label());
        // Same plenum-derate shape as the lumped builders: inlet socket
        // at 1.0, downstream sockets progressively worse.
        let derates: Vec<f64> =
            Topology::finned(3, 8).sockets().iter().map(|s| s.airflow_derate).collect();
        assert_eq!(derates[0], 1.0);
        assert!(derates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn finned_is_never_single() {
        // Even one finned socket needs the RC network: the exact two-node
        // model has no fin states, so is_single() must say "network path".
        assert!(!Topology::finned(1, 4).is_single());
        assert!(!Topology::finned(2, 32).is_single());
    }

    #[test]
    #[should_panic(expected = "at least one fin segment")]
    fn finned_rejects_zero_segments() {
        let _ = Topology::finned(2, 0);
    }

    #[test]
    #[should_panic(expected = "at least one socket")]
    fn finned_rejects_zero_sockets() {
        let _ = Topology::finned(0, 8);
    }
}
