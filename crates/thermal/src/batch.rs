//! Lockstep batch stepping of same-structure RC networks.
//!
//! A scenario sweep runs B copies of the *same* thermal topology whose
//! parameters (fan-dependent conductances, powers, boundaries) differ per
//! cell. Stepped one by one, every cell pays its own LU factorization each
//! time its fan speed moves; stepped in lockstep through a
//! [`BatchRcNetwork`], lanes whose backward-Euler matrices are bitwise
//! identical share one factorization, and factors are memoized across steps
//! — fan slews walk a small lattice of speeds (±slew·dt from a common
//! start) and quantized fan commands revisit a handful of grid speeds, so
//! the same matrices recur constantly both across lanes and across time.
//!
//! State is column-major structure-of-arrays, `[node][slot]`, with lanes
//! packed in factor-group order each step: every group's columns are
//! contiguous, so the multi-lane substitution reads each factor entry once
//! per *group* and streams dense slot runs underneath it. The per-lane
//! arithmetic replays [`RcNetwork::step`]'s exact operation order — same
//! assembly, same factorization, same substitution guards — so a batched
//! trajectory is **bitwise identical** to stepping each lane's network
//! alone. That contract is what lets the sweep engine swap the batched
//! path in underneath the repo's parallel==serial determinism guarantee.
//!
//! Factor resolution is two-tier. Each lane's network carries a memo of the
//! factor it used last (generation-stamped, validated against the network's
//! matrix-parameter version and the step's `dt` bits), so a lane whose fan
//! held still since its previous batch step re-joins its factor in O(1).
//! Only lanes whose parameters actually moved rebuild their signature and
//! consult the factor arena — and the signature is *compact*: capacitances
//! have no mutation API and the batch verifies at construction which links
//! differ across lanes, so a matrix is fully determined by `dt` plus the
//! conductances of the links that vary (construction differences ∪ links
//! any lane has mutated, a set the batch widens on the fly if a lane
//! touches a new one). A fin-array plant with hundreds of static
//! fin-to-fin links signs its matrix by its handful of fan-driven links.
//!
//! Steady-state probes ([`RcNetwork::steady_state_with`],
//! `min_safe_fan_speed` bisections) never touch the step cache, so a lane
//! being batch-stepped can still be probed freely between steps.
//!
//! # Examples
//!
//! ```
//! use gfsc_thermal::{BatchRcNetwork, RcNetworkBuilder};
//! use gfsc_units::{Celsius, JoulesPerKelvin, KelvinPerWatt, Seconds, Watts};
//!
//! let build = || {
//!     RcNetworkBuilder::new()
//!         .node("die", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
//!         .boundary("ambient", Celsius::new(30.0))
//!         .link("die", "ambient", KelvinPerWatt::new(0.2))
//!         .build()
//!         .unwrap()
//! };
//! let mut lanes = vec![build(), build()];
//! let die = lanes[0].node_id("die").unwrap();
//! lanes[1].set_power(die, Watts::new(100.0));
//! let mut batch = BatchRcNetwork::new(&lanes.iter().collect::<Vec<_>>())?;
//! let mut refs: Vec<&mut _> = lanes.iter_mut().collect();
//! batch.step(&mut refs, Seconds::new(0.5));
//! assert!(lanes[1].temperature(die) > lanes[0].temperature(die));
//! # Ok::<(), gfsc_thermal::NetworkError>(())
//! ```

use crate::network::{assemble_matrix, lu_factorize, Endpoint, NetworkError, RcNetwork};
use gfsc_units::Seconds;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bound on memoized factorizations. Factors are small (n² + n words), but
/// an adversarial sweep could mint a fresh matrix every step; past the cap
/// the arena is dropped wholesale and the batch generation bumped (which
/// invalidates every lane memo) — deterministic, and the next step simply
/// refactorizes (performance changes, results never do).
const FACTOR_CACHE_CAP: usize = 512;

/// Source of unique batch generations: lane memos written by a dropped or
/// cleared batch must never validate against another, so each
/// [`BatchRcNetwork`] (and each post-clear incarnation) draws a fresh one.
static GENERATION: AtomicU64 = AtomicU64::new(1);

/// One memoized LU factorization: a pure function of the assembled matrix,
/// so any lane whose (dt, varying-parameter) bits match may reuse it and
/// still land on scalar-identical temperatures — the non-varying
/// parameters were proven shared at batch construction. The compact
/// signature is kept alongside for exact confirmation on arena lookups.
#[derive(Debug, Clone)]
struct CachedFactor {
    sig: Vec<u64>,
    factor: Vec<f64>,
    pivots: Vec<usize>,
}

/// Steps B same-structure [`RcNetwork`]s in lockstep through shared,
/// memoized LU factorizations (see the module docs for the layout and the
/// bitwise contract).
///
/// The batch does not own the lane networks: each [`BatchRcNetwork::step`]
/// borrows them, reads their state into the SoA right-hand sides, solves,
/// and writes the temperatures back. All scratch is pre-allocated at
/// construction; a step with warm factor memos performs **zero** heap
/// allocations.
#[derive(Debug)]
pub struct BatchRcNetwork {
    /// Generation stamp lane memos are validated against; bumped whenever
    /// the factor arena is cleared.
    generation: u64,
    /// Nodes per lane (identical across lanes by construction).
    nodes: usize,
    /// Lane count B.
    lanes: usize,
    /// Link endpoint structure captured at construction; every `step`
    /// asserts the borrowed lanes still match it.
    links: Vec<(Endpoint, Endpoint)>,
    /// `(node, boundary, link index)` for every node↔boundary link, in link
    /// order — the right-hand-side boundary injection without re-matching
    /// endpoints per lane per step.
    boundary_links: Vec<(usize, usize, usize)>,
    boundaries: usize,
    /// Capacitance indices that differ across lanes (rare — capacitances
    /// are fixed at build, so this only captures lanes from differently
    /// parameterized builders). Part of the signature.
    sig_caps: Vec<u32>,
    /// Link indices whose conductances may differ between two matrices the
    /// batch compares: construction-time differences plus every link some
    /// lane has mutated since build. Grows monotonically; growing it
    /// invalidates the arena (previously cached signatures said nothing
    /// about the new link).
    sig_links: Vec<u32>,
    /// Membership mask over link indices for `sig_links`.
    in_sig: Vec<bool>,
    /// SoA right-hand-side / solution columns, `[node * lanes + slot]`.
    state: Vec<f64>,
    /// Back-substitution accumulators, one per slot.
    sums: Vec<f64>,
    /// Forward-substitution broadcast buffer: the source column row,
    /// snapshotted once per elimination column.
    colbuf: Vec<f64>,
    /// Signature scratch: dt bits + varying capacitance bits + varying
    /// link conductance bits.
    sig: Vec<u64>,
    /// Arena index of each lane's factor for the current step.
    lane_factor: Vec<usize>,
    /// Lane → group index for the current step.
    group_of: Vec<usize>,
    /// Each group's factor arena index, in first-seen lane order.
    group_factor: Vec<usize>,
    /// Lanes counting-sorted by group, then `group_bounds[g]` slices them.
    members: Vec<usize>,
    group_bounds: Vec<(usize, usize)>,
    group_sizes: Vec<usize>,
    /// Factor arena, shared across lanes *and* steps.
    factors: Vec<CachedFactor>,
    /// Signature hash → arena indices (collision candidates confirmed by
    /// exact signature comparison).
    index: HashMap<u64, Vec<usize>>,
}

impl BatchRcNetwork {
    /// Builds a batch stepper over the given lanes, validating that every
    /// lane shares lane 0's structure (node/boundary names and link
    /// endpoints, in order — parameters are free to differ: any parameter
    /// differing across lanes is folded into the matrix signature).
    ///
    /// # Errors
    ///
    /// [`NetworkError::Empty`] with no lanes;
    /// [`NetworkError::BatchMismatch`] if a lane's structure differs.
    pub fn new(nets: &[&RcNetwork]) -> Result<Self, NetworkError> {
        let template = *nets.first().ok_or(NetworkError::Empty)?;
        for (i, net) in nets.iter().enumerate().skip(1) {
            if !template.structure_eq(net) {
                return Err(NetworkError::BatchMismatch(format!(
                    "lane {i} does not share lane 0's node/link structure"
                )));
            }
        }
        let nodes = template.node_count();
        let lanes = nets.len();
        let links = template.links_raw().iter().map(|l| (l.a, l.b)).collect::<Vec<_>>();
        let boundary_links = links
            .iter()
            .enumerate()
            .filter_map(|(idx, &(a, b))| match (a, b) {
                (Endpoint::Node(i), Endpoint::Boundary(k))
                | (Endpoint::Boundary(k), Endpoint::Node(i)) => Some((i, k, idx)),
                _ => None,
            })
            .collect();

        // Varying-parameter census: a capacitance or conductance belongs in
        // the signature iff it differs across lanes now (different
        // builders) or might start differing later (some lane has a
        // mutation on record; links touched after this point are absorbed
        // on the fly by `step`). Everything else is bitwise-shared and
        // immutable, so equal signatures imply equal matrices.
        let mut sig_caps: Vec<u32> = Vec::new();
        for i in 0..nodes {
            let bits = template.capacitances_raw()[i].to_bits();
            if nets.iter().any(|n| n.capacitances_raw()[i].to_bits() != bits) {
                sig_caps.push(i as u32);
            }
        }
        let mut in_sig = vec![false; links.len()];
        for (l, link) in template.links_raw().iter().enumerate() {
            let bits = link.conductance.to_bits();
            if nets.iter().any(|n| n.links_raw()[l].conductance.to_bits() != bits) {
                in_sig[l] = true;
            }
        }
        for net in nets {
            for &l in net.changed_links() {
                in_sig[l as usize] = true;
            }
        }
        let sig_links: Vec<u32> = (0..links.len() as u32).filter(|&l| in_sig[l as usize]).collect();

        let sig_len = 1 + sig_caps.len() + sig_links.len();
        Ok(Self {
            generation: GENERATION.fetch_add(1, Ordering::Relaxed),
            nodes,
            lanes,
            links,
            boundary_links,
            boundaries: template.boundary_temps_raw().len(),
            sig_caps,
            sig_links,
            in_sig,
            state: vec![0.0; nodes * lanes],
            sums: vec![0.0; lanes],
            colbuf: vec![0.0; lanes],
            sig: vec![0; sig_len],
            lane_factor: vec![0; lanes],
            group_of: vec![0; lanes],
            group_factor: Vec::with_capacity(lanes),
            members: vec![0; lanes],
            group_bounds: Vec::with_capacity(lanes),
            group_sizes: Vec::with_capacity(lanes),
            factors: Vec::new(),
            index: HashMap::new(),
        })
    }

    /// Lane count B.
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.lanes
    }

    /// Nodes per lane.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Distinct factorizations currently memoized (diagnostics; the batch
    /// throughput story is "this stays small while scalar refactorizes").
    #[must_use]
    pub fn cached_factor_count(&self) -> usize {
        self.factors.len()
    }

    /// Widens the signature with any link this lane has mutated that the
    /// batch is not yet signing. Returns `true` (after clearing the arena
    /// and bumping the generation) if the signature grew — previously
    /// cached signatures said nothing about the new links, so neither the
    /// arena nor any lane memo may survive.
    fn absorb_changed_links(&mut self, net: &RcNetwork) -> bool {
        let mut grew = false;
        for &l in net.changed_links() {
            if !self.in_sig[l as usize] {
                self.in_sig[l as usize] = true;
                grew = true;
            }
        }
        if grew {
            self.sig_links =
                (0..self.links.len() as u32).filter(|&l| self.in_sig[l as usize]).collect();
            self.sig.resize(1 + self.sig_caps.len() + self.sig_links.len(), 0);
            self.factors.clear();
            self.index.clear();
            self.generation = GENERATION.fetch_add(1, Ordering::Relaxed);
        }
        grew
    }

    /// Resolves the factor for a lane whose memo went stale: rebuilds the
    /// lane's compact matrix signature, finds or builds the matching arena
    /// entry, and returns the arena index.
    fn resolve_factor(&mut self, net: &RcNetwork, dt: f64) -> usize {
        let caps = net.capacitances_raw();
        let links = net.links_raw();
        // `sig` is sized `1 + caps + links` at construction; `first_mut`
        // keeps the signature write index-panic-free regardless.
        if let Some(slot) = self.sig.first_mut() {
            *slot = dt.to_bits();
        }
        let mut w = 1;
        for &i in &self.sig_caps {
            self.sig[w] = caps[i as usize].to_bits();
            w += 1;
        }
        for &l in &self.sig_links {
            self.sig[w] = links[l as usize].conductance.to_bits();
            w += 1;
        }
        let hash = fnv64(&self.sig);
        if let Some(candidates) = self.index.get(&hash) {
            for &idx in candidates {
                if self.factors[idx].sig == self.sig {
                    return idx;
                }
            }
        }
        let n = self.nodes;
        let mut cached =
            CachedFactor { sig: self.sig.clone(), factor: vec![0.0; n * n], pivots: vec![0; n] };
        assemble_matrix(caps, links, dt, &mut cached.factor);
        lu_factorize(&mut cached.factor, &mut cached.pivots, n);
        let idx = self.factors.len();
        self.factors.push(cached);
        self.index.entry(hash).or_default().push(idx);
        idx
    }

    /// Advances every lane by one backward-Euler step of `dt`, bitwise
    /// identical to calling [`RcNetwork::step`] on each lane alone.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero, the lane count differs from construction,
    /// or a lane's structure no longer matches (structure is fixed after
    /// [`RcNetworkBuilder::build`](crate::RcNetworkBuilder::build), so the
    /// latter indicates lanes were reordered or swapped out).
    pub fn step(&mut self, nets: &mut [&mut RcNetwork], dt: Seconds) {
        assert!(!dt.is_zero(), "step size must be positive");
        assert_eq!(nets.len(), self.lanes, "lane count is fixed at construction");
        let (n, b) = (self.nodes, self.lanes);
        for net in nets.iter() {
            assert!(
                net.node_count() == n
                    && net.links_raw().len() == self.links.len()
                    && net.boundary_temps_raw().len() == self.boundaries,
                "lane structure changed since construction"
            );
            debug_assert!(net
                .links_raw()
                .iter()
                .zip(&self.links)
                .all(|(l, (a, b))| l.a == *a && l.b == *b));
        }
        let dt_bits = dt.value().to_bits();
        let inv_dt = 1.0 / dt.value();

        // Evict between steps, never inside the lane loop: a mid-loop clear
        // would strand the arena indices already recorded for earlier lanes
        // this step. The arena can overshoot the cap by at most B entries.
        if self.factors.len() >= FACTOR_CACHE_CAP {
            self.factors.clear();
            self.index.clear();
            self.generation = GENERATION.fetch_add(1, Ordering::Relaxed);
        }

        // 1. Per-lane factor resolution. The network-resident memo settles
        //    lanes whose matrix parameters and dt are unchanged since their
        //    last batch step in O(1); everyone else rebuilds a signature
        //    (the bits the system matrix is a pure function of, given the
        //    construction census — equal signature ⇒ bitwise-equal matrix ⇒
        //    the factorization, itself a pure function of the matrix, is
        //    shareable without perturbing a single result bit) and consults
        //    the arena. If a lane mutated a link the signature doesn't
        //    cover yet, the signature widens, the arena drops, and the loop
        //    restarts — every memo just died with the old generation.
        'resolve: loop {
            for (lane, net) in nets.iter_mut().enumerate() {
                let net = &mut **net;
                let (generation, idx, version, memo_dt) = net.batch_memo;
                let idx = if generation == self.generation
                    && version == net.params_version()
                    && memo_dt == dt_bits
                {
                    idx
                } else {
                    if self.absorb_changed_links(net) {
                        continue 'resolve;
                    }
                    let idx = self.resolve_factor(net, dt.value());
                    net.batch_memo = (self.generation, idx, net.params_version(), dt_bits);
                    idx
                };
                self.lane_factor[lane] = idx;
            }
            break;
        }

        // 2. Group lanes by factor (plain integer identity now).
        self.group_factor.clear();
        for lane in 0..b {
            let f = self.lane_factor[lane];
            self.group_of[lane] = match self.group_factor.iter().position(|&g| g == f) {
                Some(g) => g,
                None => {
                    self.group_factor.push(f);
                    self.group_factor.len() - 1
                }
            };
        }
        let groups = self.group_factor.len();

        // Counting sort: lanes ordered by group, lane order kept in-group.
        self.group_sizes.clear();
        self.group_sizes.resize(groups, 0);
        for lane in 0..b {
            self.group_sizes[self.group_of[lane]] += 1;
        }
        self.group_bounds.clear();
        let mut start = 0;
        for &size in &self.group_sizes {
            self.group_bounds.push((start, start + size));
            start += size;
        }
        let mut cursor: Vec<usize> = self.group_bounds.iter().map(|&(s, _)| s).collect();
        for lane in 0..b {
            let g = self.group_of[lane];
            self.members[cursor[g]] = lane;
            cursor[g] += 1;
        }

        // 3. Assemble every lane's right-hand side into the SoA columns in
        //    *member* order, so each group's columns are contiguous and the
        //    substitution inner loops sweep dense slot ranges. The per-lane
        //    expression sequence is exactly the scalar step's (the
        //    boundary-link list preserves link order, so the additions land
        //    in the scalar order); where a lane's column lives does not
        //    touch its arithmetic.
        for (slot, &lane) in self.members.iter().enumerate() {
            let net = &nets[lane];
            let caps = net.capacitances_raw();
            let temps = net.temperatures_raw();
            let powers = net.powers_raw();
            for i in 0..n {
                self.state[i * b + slot] = caps[i] * inv_dt * temps[i] + powers[i];
            }
            let bt = net.boundary_temps_raw();
            let links = net.links_raw();
            for &(i, k, l) in &self.boundary_links {
                self.state[i * b + slot] += links[l].conductance * bt[k];
            }
        }

        // 4. Substitute each group's columns through its shared factors.
        for g in 0..groups {
            let cached = &self.factors[self.group_factor[g]];
            let (lo, hi) = self.group_bounds[g];
            solve_columns(
                &cached.factor,
                &cached.pivots,
                &mut self.state,
                &mut self.sums,
                &mut self.colbuf,
                lo,
                hi,
                n,
                b,
            );
        }

        // 5. Write the solved columns back as the lanes' new temperatures.
        for (slot, &lane) in self.members.iter().enumerate() {
            for (i, t) in nets[lane].temperatures_raw_mut().iter_mut().enumerate() {
                *t = self.state[i * b + slot];
            }
        }
    }
}

/// Multi-column forward/back substitution: solves `L·U·x = P·b` for every
/// column in the contiguous slot range `[lo, hi)`, replaying the scalar
/// `lu_solve` arithmetic per column — same operation order (columns
/// ascending in the forward pass, `k` ascending in each back-substitution
/// row) and the same zero guards, which matter bitwise (`x -= 0.0 * y` can
/// flip a signed zero). Contiguity is the point: every factor entry is
/// read once per *group* while the inner loops stream dense slot runs.
#[allow(clippy::too_many_arguments)]
fn solve_columns(
    a: &[f64],
    piv: &[usize],
    state: &mut [f64],
    sums: &mut [f64],
    colbuf: &mut [f64],
    lo: usize,
    hi: usize,
    n: usize,
    b: usize,
) {
    for (col, &pivot) in piv.iter().enumerate() {
        if pivot != col {
            for s in lo..hi {
                state.swap(col * b + s, pivot * b + s);
            }
        }
    }
    // Forward substitution. Scalar order per column: for each (col, row)
    // pair in lexicographic order apply `b[row] -= factor · b[col]`,
    // skipped when `b[col] == 0` or `factor == 0`. `b[col]` is never
    // written by the rows below it, so snapshotting it once per `col` is
    // the same value the scalar path re-reads. The snapshot also decides
    // the `b[col] == 0` guard for the whole column: a zero-free snapshot
    // (the overwhelmingly common case — these are temperatures) runs the
    // guard-free kernel, which performs the identical operation sequence
    // because no element would have been skipped.
    for col in 0..n {
        let w = hi - lo;
        colbuf[..w].copy_from_slice(&state[col * b + lo..col * b + hi]);
        let any_zero = colbuf[..w].contains(&0.0);
        for row in (col + 1)..n {
            let factor = a[row * n + col];
            if factor == 0.0 {
                continue;
            }
            let dst = &mut state[row * b + lo..row * b + hi];
            if any_zero {
                for (d, &bc) in dst.iter_mut().zip(&colbuf[..w]) {
                    if bc != 0.0 {
                        *d -= factor * bc;
                    }
                }
            } else {
                for (d, &bc) in dst.iter_mut().zip(&colbuf[..w]) {
                    *d -= factor * bc;
                }
            }
        }
    }
    // Back-substitution, `k` ascending per row exactly as the scalar path
    // (which applies every term unguarded, so no zero-skip here either).
    for row in (0..n).rev() {
        sums[lo..hi].copy_from_slice(&state[row * b + lo..row * b + hi]);
        for k in (row + 1)..n {
            let a_rk = a[row * n + k];
            let sk = &state[k * b + lo..k * b + hi];
            for (s, &x) in sums[lo..hi].iter_mut().zip(sk) {
                *s -= a_rk * x;
            }
        }
        let diag = a[row * n + row];
        for s in lo..hi {
            state[row * b + s] = sums[s] / diag;
        }
    }
}

/// FNV-1a over signature words — a cheap, deterministic pre-filter for the
/// factor arena's index (exact signature comparison confirms every match,
/// so the hash influences performance only, never results).
fn fnv64(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HeatSinkLaw, RcNetworkBuilder};
    use gfsc_units::{Celsius, JoulesPerKelvin, KelvinPerWatt, Rpm, Watts};

    fn two_node() -> RcNetwork {
        RcNetworkBuilder::new()
            .node("die", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .node("sink", JoulesPerKelvin::new(300.0), Celsius::new(30.0))
            .boundary("ambient", Celsius::new(30.0))
            .link("die", "sink", KelvinPerWatt::new(0.1))
            .link("sink", "ambient", KelvinPerWatt::new(0.25))
            .build()
            .unwrap()
    }

    #[test]
    fn single_lane_matches_scalar_step_bitwise() {
        let mut batched = two_node();
        let mut scalar = two_node();
        let die = scalar.node_id("die").unwrap();
        let sink = scalar.node_id("sink").unwrap();
        let link = scalar.link_id("sink", "ambient").unwrap();
        let mut batch = BatchRcNetwork::new(&[&batched]).unwrap();
        let law = HeatSinkLaw::date14();
        for k in 0..400 {
            // Fan-style conductance motion plus power steps: every
            // invalidation path the scalar cache has.
            let fan = Rpm::new(1500.0 + 500.0 * f64::from(k % 12));
            let p = Watts::new(40.0 + f64::from(k % 7) * 20.0);
            for net in [&mut batched, &mut scalar] {
                net.set_link_resistance_by_id(link, law.resistance(fan));
                net.set_power(die, p);
            }
            let dt = Seconds::new(if k % 2 == 0 { 0.5 } else { 1.0 });
            batch.step(&mut [&mut batched], dt);
            scalar.step(dt);
            for id in [die, sink] {
                assert_eq!(
                    batched.temperature(id).value().to_bits(),
                    scalar.temperature(id).value().to_bits(),
                    "diverged at step {k}"
                );
            }
        }
    }

    #[test]
    fn mixed_lanes_match_per_lane_scalar_stepping() {
        // 8 lanes, three distinct conductance groups, per-lane powers and
        // boundaries: the grouped solve must replay each lane's scalar
        // trajectory bit for bit.
        let b = 8;
        let mut batched: Vec<RcNetwork> = (0..b).map(|_| two_node()).collect();
        let mut scalar: Vec<RcNetwork> = (0..b).map(|_| two_node()).collect();
        let die = scalar[0].node_id("die").unwrap();
        let sink = scalar[0].node_id("sink").unwrap();
        let link = scalar[0].link_id("sink", "ambient").unwrap();
        for lane in 0..b {
            let p = Watts::new(30.0 + 17.0 * lane as f64);
            let amb = Celsius::new(25.0 + lane as f64);
            let r = KelvinPerWatt::new(0.2 + 0.05 * (lane % 3) as f64);
            for net in [&mut batched[lane], &mut scalar[lane]] {
                net.set_power(die, p);
                net.set_boundary("ambient", amb).unwrap();
                net.set_link_resistance_by_id(link, r);
            }
        }
        let mut batch = BatchRcNetwork::new(&batched.iter().collect::<Vec<_>>()).unwrap();
        let dt = Seconds::new(0.5);
        for k in 0..300 {
            if k % 40 == 0 {
                // Regroup mid-flight: lanes migrate between conductance
                // groups as a fan sweep would move them.
                for lane in 0..b {
                    let r = KelvinPerWatt::new(0.2 + 0.05 * ((lane + k / 40) % 3) as f64);
                    batched[lane].set_link_resistance_by_id(link, r);
                    scalar[lane].set_link_resistance_by_id(link, r);
                }
            }
            let mut refs: Vec<&mut RcNetwork> = batched.iter_mut().collect();
            batch.step(&mut refs, dt);
            for lane in 0..b {
                scalar[lane].step(dt);
                for id in [die, sink] {
                    assert_eq!(
                        batched[lane].temperature(id).value().to_bits(),
                        scalar[lane].temperature(id).value().to_bits(),
                        "lane {lane} diverged at step {k}"
                    );
                }
            }
        }
        // Three conductance groups over a shared dt: the memo holds one
        // factor per distinct matrix, not one per lane per step.
        assert!(batch.cached_factor_count() <= 9, "memo grew past the distinct-matrix count");
    }

    #[test]
    fn factors_are_shared_across_lanes_and_steps() {
        let mut lanes: Vec<RcNetwork> = (0..4).map(|_| two_node()).collect();
        let mut batch = BatchRcNetwork::new(&lanes.iter().collect::<Vec<_>>()).unwrap();
        let dt = Seconds::new(0.5);
        for _ in 0..10 {
            let mut refs: Vec<&mut RcNetwork> = lanes.iter_mut().collect();
            batch.step(&mut refs, dt);
        }
        // Identical lanes, fixed dt: exactly one factorization ever built.
        assert_eq!(batch.cached_factor_count(), 1);
    }

    #[test]
    fn lane_memos_survive_scalar_interleaving_and_batch_swaps() {
        // A lane stepped by batch A, then scalar-stepped, then handed to
        // batch B must never reuse A's arena index: the generation stamp
        // forces a clean re-resolve, and results stay scalar-identical.
        let mut lane = two_node();
        let mut scalar = two_node();
        let die = scalar.node_id("die").unwrap();
        let sink = scalar.node_id("sink").unwrap();
        for net in [&mut lane, &mut scalar] {
            net.set_power(die, Watts::new(120.0));
        }
        let dt = Seconds::new(0.5);
        let mut batch_a = BatchRcNetwork::new(&[&lane]).unwrap();
        batch_a.step(&mut [&mut lane], dt);
        scalar.step(dt);
        lane.step(dt); // scalar interleave on the batched lane
        scalar.step(dt);
        let mut batch_b = BatchRcNetwork::new(&[&lane]).unwrap();
        for _ in 0..5 {
            batch_b.step(&mut [&mut lane], dt);
            scalar.step(dt);
        }
        for id in [die, sink] {
            assert_eq!(
                lane.temperature(id).value().to_bits(),
                scalar.temperature(id).value().to_bits()
            );
        }
    }

    #[test]
    fn signature_widens_when_an_unsigned_link_moves_mid_run() {
        // The fan link is signed from construction; the die→sink link is
        // static until one lane suddenly re-parameterizes it mid-run. The
        // batch must widen its signature (and drop the arena) rather than
        // keep sharing factors that no longer agree on that link.
        let b = 4;
        let mut batched: Vec<RcNetwork> = (0..b).map(|_| two_node()).collect();
        let mut scalar: Vec<RcNetwork> = (0..b).map(|_| two_node()).collect();
        let die = scalar[0].node_id("die").unwrap();
        let sink = scalar[0].node_id("sink").unwrap();
        let jc = scalar[0].link_id("die", "sink").unwrap();
        for lane in 0..b {
            let p = Watts::new(50.0 + 10.0 * lane as f64);
            batched[lane].set_power(die, p);
            scalar[lane].set_power(die, p);
        }
        let mut batch = BatchRcNetwork::new(&batched.iter().collect::<Vec<_>>()).unwrap();
        let dt = Seconds::new(0.5);
        for k in 0..100 {
            if k == 37 {
                batched[2].set_link_resistance_by_id(jc, KelvinPerWatt::new(0.17));
                scalar[2].set_link_resistance_by_id(jc, KelvinPerWatt::new(0.17));
            }
            let mut refs: Vec<&mut RcNetwork> = batched.iter_mut().collect();
            batch.step(&mut refs, dt);
            for lane in 0..b {
                scalar[lane].step(dt);
                for id in [die, sink] {
                    assert_eq!(
                        batched[lane].temperature(id).value().to_bits(),
                        scalar[lane].temperature(id).value().to_bits(),
                        "lane {lane} diverged at step {k}"
                    );
                }
            }
        }
        // Post-widening: one factor for the mutated lane, one shared by
        // the other three.
        assert_eq!(batch.cached_factor_count(), 2);
    }

    #[test]
    fn construction_census_catches_differently_built_lanes() {
        // Lane 1 is built with a different static die→sink resistance (no
        // post-build mutation, so `changed_links` is empty): the
        // construction census must fold that link into the signature, and
        // both lanes must still replay their scalar trajectories exactly.
        let build = |r_jc: f64| {
            RcNetworkBuilder::new()
                .node("die", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
                .node("sink", JoulesPerKelvin::new(300.0), Celsius::new(30.0))
                .boundary("ambient", Celsius::new(30.0))
                .link("die", "sink", KelvinPerWatt::new(r_jc))
                .link("sink", "ambient", KelvinPerWatt::new(0.25))
                .build()
                .unwrap()
        };
        let mut batched = [build(0.1), build(0.2)];
        let mut scalar = [build(0.1), build(0.2)];
        let die = scalar[0].node_id("die").unwrap();
        for lane in 0..2 {
            batched[lane].set_power(die, Watts::new(100.0));
            scalar[lane].set_power(die, Watts::new(100.0));
        }
        let mut batch = BatchRcNetwork::new(&batched.iter().collect::<Vec<_>>()).unwrap();
        let dt = Seconds::new(0.5);
        for _ in 0..50 {
            let mut refs: Vec<&mut RcNetwork> = batched.iter_mut().collect();
            batch.step(&mut refs, dt);
            for lane in 0..2 {
                scalar[lane].step(dt);
                assert_eq!(
                    batched[lane].temperature(die).value().to_bits(),
                    scalar[lane].temperature(die).value().to_bits()
                );
            }
        }
        assert_eq!(batch.cached_factor_count(), 2);
    }

    #[test]
    fn rejects_structure_mismatch() {
        let a = two_node();
        let b = RcNetworkBuilder::new()
            .node("die", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .boundary("ambient", Celsius::new(30.0))
            .link("die", "ambient", KelvinPerWatt::new(0.3))
            .build()
            .unwrap();
        assert!(matches!(BatchRcNetwork::new(&[&a, &b]), Err(NetworkError::BatchMismatch(_))));
        assert!(matches!(BatchRcNetwork::new(&[]), Err(NetworkError::Empty)));
    }

    #[test]
    fn probes_between_batch_steps_leave_trajectories_untouched() {
        // steady_state_with runs beside the batch exactly as beside the
        // scalar cache: read-only.
        let mut batched = two_node();
        let mut scalar = two_node();
        let die = scalar.node_id("die").unwrap();
        scalar.set_power(die, Watts::new(90.0));
        batched.set_power(die, Watts::new(90.0));
        let mut batch = BatchRcNetwork::new(&[&batched]).unwrap();
        let dt = Seconds::new(0.5);
        for _ in 0..50 {
            batch.step(&mut [&mut batched], dt);
            let _ = batched.steady_state_with(&[], &[(die, Watts::new(500.0))]);
            scalar.step(dt);
            assert_eq!(
                batched.temperature(die).value().to_bits(),
                scalar.temperature(die).value().to_bits()
            );
        }
    }
}
