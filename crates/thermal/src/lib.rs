//! Compact thermal models for air-cooled server sockets.
//!
//! Implements the temperature modeling of Section III-B of the paper using
//! the well-known duality between thermal and electrical phenomena (HotSpot
//! methodology, Huang et al., IEEE TVLSI 2006):
//!
//! - [`HeatSinkLaw`]: the fan-speed-dependent heat-sink thermal resistance
//!   `R_hs(V) = 0.141 + 132.51 / V^0.923` K/W (paper Table I),
//! - [`HeatSinkNode`]: a single RC node integrated with the exact
//!   exponential update of Eq. (2)–(3),
//! - [`DieNode`]: the CPU die, whose 0.1 s time constant is far below the
//!   heat-sink's 60 s, justifying the paper's quasi-steady treatment,
//! - [`ServerThermalModel`]: die-on-heat-sink composition used by the
//!   `gfsc-server` simulator,
//! - [`RcNetwork`]: a general N-node RC thermal network (builder +
//!   backward-Euler integrator) for cross-validation and extensions,
//! - [`Topology`]: a plain-data description of how many heat sources share
//!   the one fan (1S/2S/4S boards, blade chassis with a coupled spreader),
//! - [`MultiSocketPlant`]: a [`Topology`] compiled onto the cached
//!   [`RcNetwork`] — the N-socket plant behind the multi-socket
//!   closed-loop scenarios,
//! - [`BatchRcNetwork`]: B same-structure [`RcNetwork`]s stepped in
//!   lockstep through shared, memoized LU factorizations — bitwise
//!   identical to scalar stepping, built for wide scenario sweeps,
//! - [`FanZoneMap`]: the explicit fan→link mapping — which
//!   airflow-dependent links follow which fan. The single-zone map is the
//!   legacy "every sink→ambient link follows the one fan" rule;
//!   multi-zone maps are what rack-scale plants (`gfsc_rack`) build on.
//!
//! # Examples
//!
//! ```
//! use gfsc_thermal::{HeatSinkLaw, ServerThermalModel};
//! use gfsc_units::{Celsius, Rpm, Seconds, Watts};
//!
//! let mut model = ServerThermalModel::date14(Celsius::new(30.0));
//! // one minute at 140.8 W (u = 0.7) and 3000 rpm
//! for _ in 0..600 {
//!     model.step(Seconds::new(0.1), Watts::new(140.8), Rpm::new(3000.0));
//! }
//! let t = model.junction();
//! assert!(t > Celsius::new(40.0) && t < Celsius::new(100.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod die;
mod heatsink;
mod multi_socket;
mod network;
mod server_model;
mod topology;
mod zone;

pub use batch::BatchRcNetwork;
pub use die::DieNode;
pub use heatsink::{HeatSinkLaw, HeatSinkNode};
pub use multi_socket::{MultiSocketPlant, PlantCalibration};
pub use network::{BoundaryId, LinkId, NetworkError, NodeId, RcNetwork, RcNetworkBuilder};
pub use server_model::ServerThermalModel;
pub use topology::{ChassisDef, SocketDef, Topology};
pub use zone::{FanZoneMap, ZoneId};
