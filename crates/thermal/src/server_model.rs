//! Die-on-heat-sink composition used by the server simulator.

use crate::{DieNode, HeatSinkLaw, HeatSinkNode};
use gfsc_units::{Celsius, KelvinPerWatt, Rpm, Seconds, Watts};

/// The paper's two-node socket thermal model: a fast CPU die stacked on a
/// slow heat sink cooled by a variable-speed fan.
///
/// Per Section III-B, the heat-sink time constant (60 s at max airflow)
/// dominates the die's (0.1 s), so each step advances the sink with the
/// exact exponential update (Eq. 2) and then settles the die quasi-steadily
/// on top of it.
///
/// # Examples
///
/// ```
/// use gfsc_thermal::ServerThermalModel;
/// use gfsc_units::{Celsius, Rpm, Seconds, Watts};
///
/// let mut model = ServerThermalModel::date14(Celsius::new(30.0));
/// let t_j = model.step(Seconds::new(1.0), Watts::new(140.8), Rpm::new(3000.0));
/// assert!(t_j > Celsius::new(30.0));
/// ```
#[derive(Debug, Clone)]
pub struct ServerThermalModel {
    ambient: Celsius,
    sink: HeatSinkNode,
    die: DieNode,
}

impl ServerThermalModel {
    /// Creates the model from explicit nodes and ambient temperature.
    #[must_use]
    pub fn new(ambient: Celsius, sink: HeatSinkNode, die: DieNode) -> Self {
        Self { ambient, sink, die }
    }

    /// The DATE'14 Table I model at the given ambient temperature, starting
    /// in thermal equilibrium with the ambient.
    #[must_use]
    pub fn date14(ambient: Celsius) -> Self {
        Self { ambient, sink: HeatSinkNode::date14(ambient), die: DieNode::date14(ambient) }
    }

    /// Ambient (inlet air) temperature.
    #[must_use]
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// Changes the ambient (inlet air) temperature.
    pub fn set_ambient(&mut self, ambient: Celsius) {
        self.ambient = ambient;
    }

    /// Current heat-sink temperature.
    #[must_use]
    pub fn heat_sink(&self) -> Celsius {
        self.sink.temperature()
    }

    /// Current junction (die) temperature — what the CPU sensor measures.
    #[must_use]
    pub fn junction(&self) -> Celsius {
        self.die.temperature()
    }

    /// The heat-sink resistance law (for model-based controllers).
    #[must_use]
    pub fn law(&self) -> &HeatSinkLaw {
        self.sink.law()
    }

    /// The junction-to-sink resistance (for model-based controllers).
    #[must_use]
    pub fn r_jc(&self) -> KelvinPerWatt {
        self.die.r_jc()
    }

    /// Advances the model by `dt` under CPU power `power` and fan speed
    /// `fan`; returns the new junction temperature.
    pub fn step(&mut self, dt: Seconds, power: Watts, fan: Rpm) -> Celsius {
        let sink_t = self.sink.step(dt, self.ambient, power, fan);
        if dt.value() >= 1.0 {
            self.die.settle(sink_t, power)
        } else {
            self.die.step(dt, sink_t, power)
        }
    }

    /// Steady-state junction temperature at an operating point:
    /// `T_amb + (R_hs(V) + R_jc) · P`.
    #[must_use]
    pub fn steady_state_junction(&self, power: Watts, fan: Rpm) -> Celsius {
        let sink_ss = self.sink.steady_state(self.ambient, power, fan);
        self.die.quasi_steady(sink_ss, power)
    }

    /// The minimum fan speed keeping the steady-state junction at or below
    /// `limit` for power `power`, or `None` if even infinite airflow cannot
    /// (i.e. `T_amb + (R_base + R_jc)·P > limit`).
    ///
    /// This is the model inversion used by E-coord and single-step fan
    /// scaling to descend to the lowest thermally-safe speed.
    #[must_use]
    pub fn min_safe_fan_speed(&self, power: Watts, limit: Celsius) -> Option<Rpm> {
        let p = power.value();
        if p <= 0.0 {
            // No dissipation: any speed is safe.
            return Some(Rpm::new(0.0));
        }
        let budget_k = limit - self.ambient; // total allowed rise
        let r_total_max = budget_k / p; // K/W available across sink+die
        let r_hs_max = r_total_max - self.die.r_jc().value();
        if r_hs_max <= 0.0 {
            return None;
        }
        match self.law().speed_for_resistance(KelvinPerWatt::new(r_hs_max)) {
            Some(v) => Some(v),
            // Resistance above what even a stopped fan presents: safe at 0.
            None if r_hs_max >= self.law().base_resistance().value() => Some(Rpm::new(0.0)),
            None => None,
        }
    }

    /// Resets both nodes to thermal equilibrium with the ambient.
    pub fn reset(&mut self) {
        self.sink.set_temperature(self.ambient);
        self.die.set_temperature(self.ambient);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const U07_POWER: f64 = 96.0 + 64.0 * 0.7; // 140.8 W

    #[test]
    fn junction_tracks_load_and_fan() {
        let mut m = ServerThermalModel::date14(Celsius::new(30.0));
        for _ in 0..3000 {
            m.step(Seconds::new(1.0), Watts::new(U07_POWER), Rpm::new(3000.0));
        }
        let slow = m.junction();
        m.reset();
        for _ in 0..3000 {
            m.step(Seconds::new(1.0), Watts::new(U07_POWER), Rpm::new(8500.0));
        }
        let fast = m.junction();
        assert!(slow > fast, "higher fan speed must cool: {slow} vs {fast}");
    }

    #[test]
    fn steady_state_junction_matches_long_simulation() {
        let mut m = ServerThermalModel::date14(Celsius::new(30.0));
        let p = Watts::new(U07_POWER);
        let fan = Rpm::new(4000.0);
        for _ in 0..20_000 {
            m.step(Seconds::new(1.0), p, fan);
        }
        let predicted = m.steady_state_junction(p, fan);
        assert!((m.junction() - predicted).abs() < 1e-3);
    }

    #[test]
    fn operating_envelope_brackets_reference_window() {
        // DESIGN.md §4: the 70–80 °C reference window must be reachable.
        let m = ServerThermalModel::date14(Celsius::new(30.0));
        // Low load, max fan: comfortably below 70.
        let cold = m.steady_state_junction(Watts::new(96.0 + 64.0 * 0.1), Rpm::new(8500.0));
        assert!(cold < Celsius::new(70.0), "cold point {cold}");
        // High load, slow fan: above 80 (forces the controller to act).
        let hot = m.steady_state_junction(Watts::new(160.0), Rpm::new(1500.0));
        assert!(hot > Celsius::new(80.0), "hot point {hot}");
    }

    #[test]
    fn min_safe_fan_speed_inverts_steady_state() {
        let m = ServerThermalModel::date14(Celsius::new(30.0));
        let p = Watts::new(U07_POWER);
        let limit = Celsius::new(75.0);
        let v = m.min_safe_fan_speed(p, limit).expect("reachable");
        let at_v = m.steady_state_junction(p, v);
        assert!((at_v - limit).abs() < 0.01, "at_v {at_v}");
        // Slightly faster is safe, slightly slower is not.
        assert!(m.steady_state_junction(p, v + 100.0) < limit);
        assert!(m.steady_state_junction(p, v - 100.0) > limit);
    }

    #[test]
    fn min_safe_fan_speed_unreachable_limit() {
        let m = ServerThermalModel::date14(Celsius::new(30.0));
        // 160 W across R_jc alone is a 16 K rise; asking for < ambient+16
        // is impossible at any fan speed.
        assert!(m.min_safe_fan_speed(Watts::new(160.0), Celsius::new(40.0)).is_none());
    }

    #[test]
    fn min_safe_fan_speed_zero_power() {
        let m = ServerThermalModel::date14(Celsius::new(30.0));
        assert_eq!(m.min_safe_fan_speed(Watts::new(0.0), Celsius::new(35.0)), Some(Rpm::new(0.0)));
    }

    #[test]
    fn ambient_change_shifts_equilibrium() {
        let mut m = ServerThermalModel::date14(Celsius::new(30.0));
        let a = m.steady_state_junction(Watts::new(120.0), Rpm::new(4000.0));
        m.set_ambient(Celsius::new(40.0));
        let b = m.steady_state_junction(Watts::new(120.0), Rpm::new(4000.0));
        assert!((b - a - 10.0).abs() < 1e-9);
        assert_eq!(m.ambient(), Celsius::new(40.0));
    }

    #[test]
    fn reset_restores_equilibrium() {
        let mut m = ServerThermalModel::date14(Celsius::new(30.0));
        m.step(Seconds::new(100.0), Watts::new(160.0), Rpm::new(2000.0));
        assert!(m.junction() > Celsius::new(30.0));
        m.reset();
        assert_eq!(m.junction(), Celsius::new(30.0));
        assert_eq!(m.heat_sink(), Celsius::new(30.0));
    }

    #[test]
    fn agrees_with_generic_rc_network_at_steady_state() {
        use crate::RcNetworkBuilder;
        use gfsc_units::JoulesPerKelvin;

        let m = ServerThermalModel::date14(Celsius::new(30.0));
        let fan = Rpm::new(3500.0);
        let p = Watts::new(U07_POWER);
        let r_hs = m.law().resistance(fan);
        let mut net = RcNetworkBuilder::new()
            .node("die", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .node("sink", JoulesPerKelvin::new(348.0), Celsius::new(30.0))
            .boundary("ambient", Celsius::new(30.0))
            .link("die", "sink", m.r_jc())
            .link("sink", "ambient", r_hs)
            .build()
            .unwrap();
        let die = net.node_id("die").unwrap();
        net.set_power(die, p);
        let ss = net.steady_state();
        let expected = m.steady_state_junction(p, fan);
        assert!((ss[0] - expected).abs() < 1e-9, "network {} vs model {expected}", ss[0]);
    }
}
