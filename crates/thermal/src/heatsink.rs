//! Heat-sink thermal resistance law and RC node.

use gfsc_units::{Celsius, JoulesPerKelvin, KelvinPerWatt, Rpm, Seconds, Watts};

/// The fan-speed-dependent heat-sink thermal resistance law
/// `R_hs(V) = base + coeff / V^exponent` (K/W, V in rpm).
///
/// The defaults of [`HeatSinkLaw::date14`] are the paper's Table I values:
/// `R_hs = 0.141 + 132.51 / V^0.923`. Higher airflow (faster fan) lowers the
/// convective resistance, which is what makes the temperature–fan-speed
/// plant non-linear and motivates the adaptive PID scheme.
///
/// # Examples
///
/// ```
/// use gfsc_thermal::HeatSinkLaw;
/// use gfsc_units::Rpm;
///
/// let law = HeatSinkLaw::date14();
/// let slow = law.resistance(Rpm::new(2000.0));
/// let fast = law.resistance(Rpm::new(8500.0));
/// assert!(slow > fast);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatSinkLaw {
    base: f64,
    coeff: f64,
    exponent: f64,
    min_speed: f64,
}

impl HeatSinkLaw {
    /// The DATE'14 Table I law: `0.141 + 132.51 / V^0.923` K/W.
    #[must_use]
    pub fn date14() -> Self {
        Self::new(0.141, 132.51, 0.923)
    }

    /// Creates a custom law `base + coeff / V^exponent`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not positive, `coeff` is negative, or `exponent`
    /// is not positive.
    #[must_use]
    pub fn new(base: f64, coeff: f64, exponent: f64) -> Self {
        assert!(base > 0.0, "base resistance must be positive");
        assert!(coeff >= 0.0, "airflow coefficient must be non-negative");
        assert!(exponent > 0.0, "airflow exponent must be positive");
        // Below ~100 rpm the power law diverges unphysically; callers never
        // operate fans that slow, so evaluate the law no lower than this.
        Self { base, coeff, exponent, min_speed: 100.0 }
    }

    /// Evaluates the thermal resistance at fan speed `v`.
    ///
    /// Speeds below 100 rpm are evaluated at 100 rpm: the fitted power law
    /// diverges as `V → 0` while a real heat sink still conducts passively.
    #[must_use]
    pub fn resistance(&self, v: Rpm) -> KelvinPerWatt {
        let v = v.value().max(self.min_speed);
        KelvinPerWatt::new(self.base + self.coeff / v.powf(self.exponent))
    }

    /// Inverts the law: the fan speed at which the resistance equals `r`.
    ///
    /// Returns `None` when `r` is at or below the base (asymptotic)
    /// resistance, which no finite fan speed can reach. This inversion is
    /// what model-based descent schemes (E-coord, single-step scaling) use
    /// to pick the lowest thermally-safe fan speed.
    #[must_use]
    pub fn speed_for_resistance(&self, r: KelvinPerWatt) -> Option<Rpm> {
        let excess = r.value() - self.base;
        if excess <= 0.0 || self.coeff == 0.0 {
            return None;
        }
        let v = (self.coeff / excess).powf(1.0 / self.exponent);
        Some(Rpm::new(v.max(self.min_speed)))
    }

    /// The asymptotic (infinite-airflow) resistance floor in K/W.
    #[must_use]
    pub fn base_resistance(&self) -> KelvinPerWatt {
        KelvinPerWatt::new(self.base)
    }

    /// The airflow coefficient `coeff` of `base + coeff / V^exponent`.
    #[must_use]
    pub fn airflow_coefficient(&self) -> f64 {
        self.coeff
    }

    /// The airflow exponent of `base + coeff / V^exponent`.
    #[must_use]
    pub fn airflow_exponent(&self) -> f64 {
        self.exponent
    }

    /// The same law with the airflow coefficient scaled by `derate` — how a
    /// downstream socket in a shared plenum sees the common fan: the same
    /// asymptotic conduction floor, but pre-heated/starved air raises the
    /// convective term at every speed.
    ///
    /// # Panics
    ///
    /// Panics if `derate` is not positive.
    #[must_use]
    pub fn with_airflow_derate(&self, derate: f64) -> Self {
        assert!(derate > 0.0, "airflow derate must be positive");
        Self::new(self.base, self.coeff * derate, self.exponent)
    }
}

/// A heat-sink thermal node integrated with the exact exponential update of
/// the paper's Eq. (2)–(3):
///
/// ```text
/// T_hs(t+Δt) = T_hs^ss + (T_hs(t) − T_hs^ss) · exp(−Δt / (R_hs·C_hs))
/// T_hs^ss    = T_amb + R_hs · P_cpu
/// ```
///
/// The capacitance is calibrated from a quoted time constant at a reference
/// fan speed (Table I: 60 s at maximum airflow), so `τ(V) = R_hs(V) · C_hs`
/// *grows* as the fan slows — the slower the fan, the more sluggish the
/// sink.
#[derive(Debug, Clone)]
pub struct HeatSinkNode {
    law: HeatSinkLaw,
    capacitance: JoulesPerKelvin,
    temperature: Celsius,
}

impl HeatSinkNode {
    /// Creates a heat-sink node whose time constant is `tau` at fan speed
    /// `tau_speed`, starting at temperature `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is zero.
    #[must_use]
    pub fn new(law: HeatSinkLaw, tau: Seconds, tau_speed: Rpm, initial: Celsius) -> Self {
        let r_ref = law.resistance(tau_speed);
        let capacitance = JoulesPerKelvin::from_time_constant(tau, r_ref);
        Self { law, capacitance, temperature: initial }
    }

    /// The DATE'14 node: Table I law, τ = 60 s at 8500 rpm.
    #[must_use]
    pub fn date14(initial: Celsius) -> Self {
        Self::new(HeatSinkLaw::date14(), Seconds::new(60.0), Rpm::new(8500.0), initial)
    }

    /// Current heat-sink temperature.
    #[must_use]
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// The resistance law in use.
    #[must_use]
    pub fn law(&self) -> &HeatSinkLaw {
        &self.law
    }

    /// The calibrated thermal capacitance.
    #[must_use]
    pub fn capacitance(&self) -> JoulesPerKelvin {
        self.capacitance
    }

    /// Steady-state temperature at the given operating point (Eq. 3).
    #[must_use]
    pub fn steady_state(&self, ambient: Celsius, power: Watts, fan: Rpm) -> Celsius {
        ambient + self.law.resistance(fan) * power
    }

    /// Time constant `R_hs(V)·C_hs` at fan speed `fan`.
    #[must_use]
    pub fn time_constant(&self, fan: Rpm) -> Seconds {
        self.law.resistance(fan) * self.capacitance
    }

    /// Advances the node by `dt` with the exact exponential update (Eq. 2)
    /// and returns the new temperature.
    pub fn step(&mut self, dt: Seconds, ambient: Celsius, power: Watts, fan: Rpm) -> Celsius {
        let t_ss = self.steady_state(ambient, power, fan);
        let tau = self.time_constant(fan);
        let decay = (-(dt.value()) / tau.value()).exp();
        self.temperature = t_ss + (self.temperature - t_ss) * decay;
        self.temperature
    }

    /// Overrides the node temperature (for test setup and re-initialisation).
    pub fn set_temperature(&mut self, t: Celsius) {
        self.temperature = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date14_law_matches_published_points() {
        let law = HeatSinkLaw::date14();
        // Spot values computed directly from the formula.
        let at = |v: f64| law.resistance(Rpm::new(v)).value();
        assert!((at(8500.0) - (0.141 + 132.51 / 8500f64.powf(0.923))).abs() < 1e-12);
        assert!((at(2000.0) - (0.141 + 132.51 / 2000f64.powf(0.923))).abs() < 1e-12);
        // Sanity: resistance decreases with speed.
        assert!(at(1000.0) > at(2000.0));
        assert!(at(2000.0) > at(6000.0));
        assert!(at(6000.0) > at(8500.0));
    }

    #[test]
    fn law_saturates_below_min_speed() {
        let law = HeatSinkLaw::date14();
        assert_eq!(law.resistance(Rpm::new(0.0)), law.resistance(Rpm::new(100.0)));
        assert_eq!(law.resistance(Rpm::new(50.0)), law.resistance(Rpm::new(100.0)));
    }

    #[test]
    fn inversion_round_trips() {
        let law = HeatSinkLaw::date14();
        for v in [1000.0, 2000.0, 4000.0, 8500.0] {
            let r = law.resistance(Rpm::new(v));
            let back = law.speed_for_resistance(r).expect("invertible");
            assert!((back.value() - v).abs() / v < 1e-9, "v={v} back={back}");
        }
    }

    #[test]
    fn inversion_rejects_unreachable_resistance() {
        let law = HeatSinkLaw::date14();
        assert!(law.speed_for_resistance(KelvinPerWatt::new(0.141)).is_none());
        assert!(law.speed_for_resistance(KelvinPerWatt::new(0.05)).is_none());
        assert_eq!(law.base_resistance(), KelvinPerWatt::new(0.141));
    }

    #[test]
    fn steady_state_is_ambient_plus_ir_drop() {
        let node = HeatSinkNode::date14(Celsius::new(30.0));
        let ss = node.steady_state(Celsius::new(30.0), Watts::new(100.0), Rpm::new(8500.0));
        let r = node.law().resistance(Rpm::new(8500.0)).value();
        assert!((ss.value() - (30.0 + 100.0 * r)).abs() < 1e-9);
    }

    #[test]
    fn time_constant_is_60s_at_max_airflow() {
        let node = HeatSinkNode::date14(Celsius::new(30.0));
        let tau = node.time_constant(Rpm::new(8500.0));
        assert!((tau.value() - 60.0).abs() < 1e-9);
        // Slower fan -> higher R -> longer time constant.
        assert!(node.time_constant(Rpm::new(2000.0)) > tau);
    }

    #[test]
    fn step_converges_to_steady_state() {
        let mut node = HeatSinkNode::date14(Celsius::new(30.0));
        let amb = Celsius::new(30.0);
        let p = Watts::new(140.8);
        let fan = Rpm::new(3000.0);
        for _ in 0..10_000 {
            node.step(Seconds::new(0.5), amb, p, fan);
        }
        let ss = node.steady_state(amb, p, fan);
        assert!((node.temperature() - ss).abs() < 1e-6);
    }

    #[test]
    fn step_matches_analytic_solution() {
        let mut node = HeatSinkNode::date14(Celsius::new(30.0));
        let amb = Celsius::new(30.0);
        let p = Watts::new(160.0);
        let fan = Rpm::new(8500.0);
        let ss = node.steady_state(amb, p, fan).value();
        // Integrate 90 s in odd-sized steps; exact exponential must land on
        // the analytic value regardless of step partitioning.
        for dt in [1.0, 2.0, 7.0, 30.0, 50.0] {
            node.step(Seconds::new(dt), amb, p, fan);
        }
        let expected = ss + (30.0 - ss) * (-90.0f64 / 60.0).exp();
        assert!((node.temperature().value() - expected).abs() < 1e-9);
    }

    #[test]
    fn cooling_transient_descends_monotonically() {
        let mut node = HeatSinkNode::date14(Celsius::new(80.0));
        let mut prev = node.temperature();
        for _ in 0..100 {
            let t = node.step(
                Seconds::new(1.0),
                Celsius::new(30.0),
                Watts::new(96.0),
                Rpm::new(8500.0),
            );
            assert!(t <= prev);
            prev = t;
        }
    }

    #[test]
    fn set_temperature_overrides_state() {
        let mut node = HeatSinkNode::date14(Celsius::new(30.0));
        node.set_temperature(Celsius::new(55.0));
        assert_eq!(node.temperature(), Celsius::new(55.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_law_rejected() {
        let _ = HeatSinkLaw::new(0.0, 132.51, 0.923);
    }
}
