//! CPU die thermal node.

use gfsc_units::{Celsius, KelvinPerWatt, Seconds, Watts};

/// The CPU die as a first-order thermal node above the heat sink.
///
/// The die couples to the heat sink through the junction-to-sink resistance
/// `R_jc` and has a very small time constant (Table I: 0.1 s) compared to
/// both the heat sink (60 s) and every control interval (1 s / 30 s). The
/// paper therefore solves the die assuming the heat-sink temperature is
/// constant over a die step; [`DieNode::quasi_steady`] takes that to the
/// limit and is what multi-second simulations should use.
///
/// The paper does not publish `R_jc`; the default 0.10 K/W places the
/// operating envelope inside the 70–80 °C reference window used by the
/// predictive set-point scheme (see DESIGN.md §4/§5).
///
/// # Examples
///
/// ```
/// use gfsc_thermal::DieNode;
/// use gfsc_units::{Celsius, Watts};
///
/// let die = DieNode::date14(Celsius::new(30.0));
/// let t_j = die.quasi_steady(Celsius::new(60.0), Watts::new(140.0));
/// assert_eq!(t_j, Celsius::new(74.0)); // 60 + 0.1 * 140
/// ```
#[derive(Debug, Clone)]
pub struct DieNode {
    r_jc: KelvinPerWatt,
    tau: Seconds,
    temperature: Celsius,
}

impl DieNode {
    /// Creates a die node with junction-to-sink resistance `r_jc` and time
    /// constant `tau`, starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is zero.
    #[must_use]
    pub fn new(r_jc: KelvinPerWatt, tau: Seconds, initial: Celsius) -> Self {
        assert!(!tau.is_zero(), "die time constant must be positive");
        Self { r_jc, tau, temperature: initial }
    }

    /// The DATE'14 die: τ = 0.1 s, calibrated `R_jc` = 0.10 K/W.
    #[must_use]
    pub fn date14(initial: Celsius) -> Self {
        Self::new(KelvinPerWatt::new(0.10), Seconds::new(0.1), initial)
    }

    /// Current junction temperature.
    #[must_use]
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// The junction-to-sink thermal resistance.
    #[must_use]
    pub fn r_jc(&self) -> KelvinPerWatt {
        self.r_jc
    }

    /// The die thermal time constant.
    #[must_use]
    pub fn time_constant(&self) -> Seconds {
        self.tau
    }

    /// The junction temperature the die relaxes to for a fixed sink
    /// temperature and power: `T_hs + R_jc · P`.
    #[must_use]
    pub fn quasi_steady(&self, sink: Celsius, power: Watts) -> Celsius {
        sink + self.r_jc * power
    }

    /// Advances the die by `dt` with the sink held at `sink` (exact
    /// exponential step) and returns the new junction temperature.
    ///
    /// For `dt ≫ τ` (any step above ~1 s) this is indistinguishable from
    /// [`DieNode::quasi_steady`]; it exists for sub-second studies of
    /// workload spikes.
    pub fn step(&mut self, dt: Seconds, sink: Celsius, power: Watts) -> Celsius {
        let target = self.quasi_steady(sink, power);
        let decay = (-(dt.value()) / self.tau.value()).exp();
        self.temperature = target + (self.temperature - target) * decay;
        self.temperature
    }

    /// Snaps the die to its quasi-steady temperature (used by coarse-step
    /// simulations where the die transient is unobservable).
    pub fn settle(&mut self, sink: Celsius, power: Watts) -> Celsius {
        self.temperature = self.quasi_steady(sink, power);
        self.temperature
    }

    /// Overrides the junction temperature (test setup).
    pub fn set_temperature(&mut self, t: Celsius) {
        self.temperature = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quasi_steady_adds_jc_drop() {
        let die = DieNode::date14(Celsius::new(30.0));
        let t = die.quasi_steady(Celsius::new(55.0), Watts::new(160.0));
        assert!((t.value() - 71.0).abs() < 1e-12);
    }

    #[test]
    fn step_converges_within_a_second() {
        let mut die = DieNode::date14(Celsius::new(30.0));
        // After 1 s = 10 time constants the transient is gone (e^-10).
        die.step(Seconds::new(1.0), Celsius::new(60.0), Watts::new(140.0));
        let target = die.quasi_steady(Celsius::new(60.0), Watts::new(140.0));
        // Residual transient is e^{-10} of the initial 44 K gap ≈ 2 mK.
        assert!((die.temperature() - target).abs() < 5e-3);
    }

    #[test]
    fn step_matches_analytic_solution() {
        let mut die = DieNode::new(KelvinPerWatt::new(0.2), Seconds::new(0.5), Celsius::new(40.0));
        let sink = Celsius::new(50.0);
        let p = Watts::new(100.0);
        die.step(Seconds::new(0.25), sink, p);
        let target = 50.0 + 0.2 * 100.0;
        let expected = target + (40.0 - target) * (-0.5f64).exp();
        assert!((die.temperature().value() - expected).abs() < 1e-12);
    }

    #[test]
    fn settle_equals_quasi_steady() {
        let mut die = DieNode::date14(Celsius::new(30.0));
        let t = die.settle(Celsius::new(62.0), Watts::new(120.0));
        assert_eq!(t, die.quasi_steady(Celsius::new(62.0), Watts::new(120.0)));
        assert_eq!(t, die.temperature());
    }

    #[test]
    fn accessors() {
        let die = DieNode::date14(Celsius::new(30.0));
        assert_eq!(die.r_jc(), KelvinPerWatt::new(0.10));
        assert_eq!(die.time_constant(), Seconds::new(0.1));
        assert_eq!(die.temperature(), Celsius::new(30.0));
    }

    #[test]
    fn set_temperature_overrides() {
        let mut die = DieNode::date14(Celsius::new(30.0));
        die.set_temperature(Celsius::new(85.0));
        assert_eq!(die.temperature(), Celsius::new(85.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tau_rejected() {
        let _ = DieNode::new(KelvinPerWatt::new(0.1), Seconds::new(0.0), Celsius::new(30.0));
    }
}
