//! The explicit fan→link mapping: which airflow-dependent links follow
//! which fan.
//!
//! The original multi-socket plant hard-coded the rule "every sink→ambient
//! link follows *the* fan" — fine for one server with one fan, wrong for a
//! rack where front and rear fan walls each drive their own set of
//! convective paths. A [`FanZoneMap`] makes the association data: each
//! [`ZoneId`] owns a fan speed and the set of [`crate::RcNetwork`] links
//! whose resistance moves with that fan (each through its own, possibly
//! derated, [`HeatSinkLaw`]). The single-zone map reproduces the legacy
//! behavior exactly; [`crate::MultiSocketPlant`] is routed through it.
//!
//! # Examples
//!
//! ```
//! use gfsc_thermal::{FanZoneMap, HeatSinkLaw, RcNetworkBuilder};
//! use gfsc_units::{Celsius, JoulesPerKelvin, KelvinPerWatt, Rpm, Seconds, Watts};
//!
//! let law = HeatSinkLaw::date14();
//! let mut net = RcNetworkBuilder::new()
//!     .node("sink", JoulesPerKelvin::new(300.0), Celsius::new(30.0))
//!     .boundary("ambient", Celsius::new(30.0))
//!     .link("sink", "ambient", law.resistance(Rpm::new(8500.0)))
//!     .build()?;
//! let mut zones = FanZoneMap::new();
//! let front = zones.add_zone("front", Rpm::new(8500.0));
//! zones.attach(front, net.link_id("sink", "ambient")?, law);
//! // Slowing the zone fan re-parameterizes every attached link.
//! zones.set_fan(&mut net, front, Rpm::new(2000.0));
//! # Ok::<(), gfsc_thermal::NetworkError>(())
//! ```

use crate::{HeatSinkLaw, LinkId, RcNetwork};
use gfsc_units::{KelvinPerWatt, Rpm};

/// Identifier of a fan zone inside a [`FanZoneMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ZoneId(usize);

impl ZoneId {
    /// The zone's position in [`FanZoneMap`] insertion order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Inverse of [`ZoneId::index`], for callers that enumerate zones by
    /// position (e.g. a per-zone controller bank).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self(index)
    }
}

#[derive(Debug, Clone)]
struct ZoneEntry {
    name: String,
    /// Every airflow-dependent link this zone's fan drives, each through
    /// its own (derated) resistance law.
    links: Vec<(LinkId, HeatSinkLaw)>,
    fan: Rpm,
}

/// The fan→link mapping of a zoned thermal network.
///
/// Owns no network state beyond the association; [`FanZoneMap::set_fan`]
/// pushes a zone's speed into the network by re-parameterizing every
/// attached link (the setter skips unchanged conductances, so a held fan
/// speed keeps the network's LU factorization warm).
#[derive(Debug, Clone, Default)]
pub struct FanZoneMap {
    zones: Vec<ZoneEntry>,
}

impl FanZoneMap {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a zone whose fan starts at `initial_fan`.
    pub fn add_zone(&mut self, name: impl Into<String>, initial_fan: Rpm) -> ZoneId {
        self.zones.push(ZoneEntry { name: name.into(), links: Vec::new(), fan: initial_fan });
        ZoneId(self.zones.len() - 1)
    }

    /// Attaches an airflow-dependent link to a zone: from now on the link's
    /// resistance is `law.resistance(zone fan speed)`.
    ///
    /// # Panics
    ///
    /// Panics if `zone` does not belong to this map.
    pub fn attach(&mut self, zone: ZoneId, link: LinkId, law: HeatSinkLaw) {
        self.zones[zone.0].links.push((link, law));
    }

    /// Number of zones.
    #[must_use]
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// The zone's display name.
    ///
    /// # Panics
    ///
    /// Panics if `zone` does not belong to this map.
    #[must_use]
    pub fn zone_name(&self, zone: ZoneId) -> &str {
        &self.zones[zone.0].name
    }

    /// Number of links the zone's fan drives.
    ///
    /// # Panics
    ///
    /// Panics if `zone` does not belong to this map.
    #[must_use]
    pub fn link_count(&self, zone: ZoneId) -> usize {
        self.zones[zone.0].links.len()
    }

    /// The fan speed most recently applied to (or declared for) the zone.
    ///
    /// # Panics
    ///
    /// Panics if `zone` does not belong to this map.
    #[must_use]
    pub fn fan(&self, zone: ZoneId) -> Rpm {
        self.zones[zone.0].fan
    }

    /// Sets the zone's fan speed, re-parameterizing every attached link in
    /// `net`. Allocation-free; unchanged speeds leave the network's cached
    /// factorization untouched.
    ///
    /// # Panics
    ///
    /// Panics if `zone` does not belong to this map or a link handle does
    /// not belong to `net`.
    pub fn set_fan(&mut self, net: &mut RcNetwork, zone: ZoneId, fan: Rpm) {
        let entry = &mut self.zones[zone.0];
        if entry.fan == fan {
            // The attached links already hold `law.resistance(fan)` for this
            // exact speed; re-deriving them would set identical resistances.
            return;
        }
        entry.fan = fan;
        // Consecutive links often share one law (a fin array breathing the
        // same derated airflow): evaluate the power law once per run.
        let mut last: Option<(HeatSinkLaw, KelvinPerWatt)> = None;
        for (link, law) in &entry.links {
            let r = match last {
                Some((cached_law, r)) if cached_law == *law => r,
                _ => {
                    let r = law.resistance(fan);
                    last = Some((*law, r));
                    r
                }
            };
            net.set_link_resistance_by_id(*link, r);
        }
    }

    /// Appends the link-resistance overrides a steady-state probe would
    /// need to evaluate the zone at a hypothetical fan speed, without
    /// touching the live network (pairs with
    /// [`RcNetwork::steady_state_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `zone` does not belong to this map.
    pub fn extend_overrides(&self, zone: ZoneId, fan: Rpm, out: &mut Vec<(LinkId, KelvinPerWatt)>) {
        for (link, law) in &self.zones[zone.0].links {
            out.push((*link, law.resistance(fan)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RcNetworkBuilder;
    use gfsc_units::{Celsius, JoulesPerKelvin, Seconds, Watts};

    fn law() -> HeatSinkLaw {
        HeatSinkLaw::date14()
    }

    /// Two sinks behind one boundary; front zone drives sink-a, rear zone
    /// drives sink-b.
    fn two_zone_world() -> (RcNetwork, FanZoneMap, ZoneId, ZoneId) {
        let net = RcNetworkBuilder::new()
            .node("sink-a", JoulesPerKelvin::new(300.0), Celsius::new(30.0))
            .node("sink-b", JoulesPerKelvin::new(300.0), Celsius::new(30.0))
            .boundary("ambient", Celsius::new(30.0))
            .link("sink-a", "ambient", law().resistance(Rpm::new(8500.0)))
            .link("sink-b", "ambient", law().resistance(Rpm::new(8500.0)))
            .build()
            .unwrap();
        let mut zones = FanZoneMap::new();
        let front = zones.add_zone("front", Rpm::new(8500.0));
        let rear = zones.add_zone("rear", Rpm::new(8500.0));
        let mut zones2 = zones;
        zones2.attach(front, net.link_id("sink-a", "ambient").unwrap(), law());
        zones2.attach(rear, net.link_id("sink-b", "ambient").unwrap(), law());
        (net, zones2, front, rear)
    }

    #[test]
    fn zones_drive_only_their_own_links() {
        let (mut net, mut zones, front, rear) = two_zone_world();
        let a = net.node_id("sink-a").unwrap();
        let b = net.node_id("sink-b").unwrap();
        net.set_power(a, Watts::new(100.0));
        net.set_power(b, Watts::new(100.0));
        // Slow the front fan only: sink-a must settle hotter than sink-b.
        zones.set_fan(&mut net, front, Rpm::new(1500.0));
        zones.set_fan(&mut net, rear, Rpm::new(8500.0));
        let ss = net.steady_state();
        assert!(
            ss[a.index()].value() > ss[b.index()].value() + 3.0,
            "front sink {} not hotter than rear {}",
            ss[a.index()],
            ss[b.index()]
        );
        assert_eq!(zones.fan(front), Rpm::new(1500.0));
        assert_eq!(zones.fan(rear), Rpm::new(8500.0));
    }

    #[test]
    fn accessors_and_ids() {
        let (_, zones, front, rear) = two_zone_world();
        assert_eq!(zones.zone_count(), 2);
        assert_eq!(zones.zone_name(front), "front");
        assert_eq!(zones.zone_name(rear), "rear");
        assert_eq!(zones.link_count(front), 1);
        assert_eq!(front.index(), 0);
        assert_eq!(ZoneId::from_index(1), rear);
    }

    #[test]
    fn single_zone_matches_direct_link_updates() {
        // The legacy rule as a one-zone map: bitwise-identical trajectories
        // to re-parameterizing the link by hand.
        let build = || {
            RcNetworkBuilder::new()
                .node("die", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
                .node("sink", JoulesPerKelvin::new(300.0), Celsius::new(30.0))
                .boundary("ambient", Celsius::new(30.0))
                .link("die", "sink", KelvinPerWatt::new(0.1))
                .link("sink", "ambient", law().resistance(Rpm::new(8500.0)))
                .build()
                .unwrap()
        };
        let mut zoned = build();
        let mut manual = build();
        let die = zoned.node_id("die").unwrap();
        zoned.set_power(die, Watts::new(120.0));
        manual.set_power(die, Watts::new(120.0));
        let link = zoned.link_id("sink", "ambient").unwrap();
        let mut zones = FanZoneMap::new();
        let z0 = zones.add_zone("z0", Rpm::new(8500.0));
        zones.attach(z0, link, law());
        for k in 0..400 {
            let fan = Rpm::new(2000.0 + 10.0 * f64::from(k % 100));
            zones.set_fan(&mut zoned, z0, fan);
            manual.set_link_resistance_by_id(link, law().resistance(fan));
            zoned.step(Seconds::new(0.5));
            manual.step(Seconds::new(0.5));
            assert_eq!(
                zoned.temperature(die).value().to_bits(),
                manual.temperature(die).value().to_bits(),
                "diverged at step {k}"
            );
        }
    }

    #[test]
    fn overrides_match_attached_laws() {
        let (net, zones, front, _) = two_zone_world();
        let mut overrides = Vec::new();
        zones.extend_overrides(front, Rpm::new(3000.0), &mut overrides);
        assert_eq!(overrides.len(), 1);
        assert_eq!(overrides[0].0, net.link_id("sink-a", "ambient").unwrap());
        assert_eq!(overrides[0].1, law().resistance(Rpm::new(3000.0)));
    }
}
