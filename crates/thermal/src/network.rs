//! A general N-node RC thermal network.
//!
//! [`HeatSinkNode`](crate::HeatSinkNode)/[`DieNode`](crate::DieNode) hard-code
//! the paper's two-node topology. This module provides the general compact
//! thermal model in the HotSpot spirit (Huang et al., TVLSI'06): named
//! capacitive nodes, fixed-temperature boundary nodes (ambient), and
//! resistive links. Integration is unconditionally-stable backward Euler,
//! so stiff networks (0.1 s die next to a 60 s sink) can be stepped at the
//! controller rate without blowing up.

use core::fmt;
use gfsc_units::{Celsius, JoulesPerKelvin, KelvinPerWatt, Seconds, Watts};

/// Identifier of a capacitive node inside an [`RcNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// Error produced while building or mutating an [`RcNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A node or boundary name was used twice.
    DuplicateName(String),
    /// A link or lookup referenced a name that does not exist.
    UnknownName(String),
    /// A link connects two boundaries, which has no effect on any node.
    BoundaryToBoundary(String, String),
    /// A node has no resistive path to any boundary, so its temperature
    /// would diverge under constant power injection.
    FloatingNode(String),
    /// The network has no capacitive nodes.
    Empty,
    /// No link exists between the two named endpoints.
    NoSuchLink(String, String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            NetworkError::UnknownName(n) => write!(f, "unknown node name `{n}`"),
            NetworkError::BoundaryToBoundary(a, b) => {
                write!(f, "link `{a}`–`{b}` connects two boundaries")
            }
            NetworkError::FloatingNode(n) => {
                write!(f, "node `{n}` has no path to any boundary")
            }
            NetworkError::Empty => write!(f, "network has no capacitive nodes"),
            NetworkError::NoSuchLink(a, b) => write!(f, "no link between `{a}` and `{b}`"),
        }
    }
}

impl std::error::Error for NetworkError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Node(usize),
    Boundary(usize),
}

#[derive(Debug, Clone)]
struct Link {
    a: Endpoint,
    b: Endpoint,
    conductance: f64, // W/K
}

/// Builder for [`RcNetwork`].
///
/// # Examples
///
/// ```
/// use gfsc_thermal::RcNetworkBuilder;
/// use gfsc_units::{Celsius, JoulesPerKelvin, KelvinPerWatt, Seconds, Watts};
///
/// let mut net = RcNetworkBuilder::new()
///     .node("die", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
///     .node("sink", JoulesPerKelvin::new(300.0), Celsius::new(30.0))
///     .boundary("ambient", Celsius::new(30.0))
///     .link("die", "sink", KelvinPerWatt::new(0.1))
///     .link("sink", "ambient", KelvinPerWatt::new(0.2))
///     .build()?;
/// let die = net.node_id("die").unwrap();
/// net.set_power(die, Watts::new(100.0));
/// net.step(Seconds::new(1.0));
/// assert!(net.temperature(die) > Celsius::new(30.0));
/// # Ok::<(), gfsc_thermal::NetworkError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RcNetworkBuilder {
    node_names: Vec<String>,
    capacitances: Vec<f64>,
    initials: Vec<f64>,
    boundary_names: Vec<String>,
    boundary_temps: Vec<f64>,
    links: Vec<(String, String, f64)>,
}

impl RcNetworkBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a capacitive node.
    #[must_use]
    pub fn node(
        mut self,
        name: impl Into<String>,
        capacitance: JoulesPerKelvin,
        initial: Celsius,
    ) -> Self {
        self.node_names.push(name.into());
        self.capacitances.push(capacitance.value());
        self.initials.push(initial.value());
        self
    }

    /// Adds a fixed-temperature boundary node (e.g. ambient air).
    #[must_use]
    pub fn boundary(mut self, name: impl Into<String>, temperature: Celsius) -> Self {
        self.boundary_names.push(name.into());
        self.boundary_temps.push(temperature.value());
        self
    }

    /// Adds a resistive link between two named endpoints.
    #[must_use]
    pub fn link(
        mut self,
        a: impl Into<String>,
        b: impl Into<String>,
        resistance: KelvinPerWatt,
    ) -> Self {
        self.links.push((a.into(), b.into(), 1.0 / resistance.value()));
        self
    }

    /// Validates the topology and builds the network.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if names collide, a link references an
    /// unknown name or joins two boundaries, the network is empty, or any
    /// node lacks a path to a boundary.
    pub fn build(self) -> Result<RcNetwork, NetworkError> {
        if self.node_names.is_empty() {
            return Err(NetworkError::Empty);
        }
        // Name uniqueness across nodes *and* boundaries.
        let mut all: Vec<&str> = self
            .node_names
            .iter()
            .map(String::as_str)
            .chain(self.boundary_names.iter().map(String::as_str))
            .collect();
        all.sort_unstable();
        for w in all.windows(2) {
            if w[0] == w[1] {
                return Err(NetworkError::DuplicateName(w[0].to_owned()));
            }
        }

        let resolve = |name: &str| -> Result<Endpoint, NetworkError> {
            if let Some(i) = self.node_names.iter().position(|n| n == name) {
                Ok(Endpoint::Node(i))
            } else if let Some(i) = self.boundary_names.iter().position(|n| n == name) {
                Ok(Endpoint::Boundary(i))
            } else {
                Err(NetworkError::UnknownName(name.to_owned()))
            }
        };

        let mut links = Vec::with_capacity(self.links.len());
        for (a, b, g) in &self.links {
            let ea = resolve(a)?;
            let eb = resolve(b)?;
            if matches!((ea, eb), (Endpoint::Boundary(_), Endpoint::Boundary(_))) {
                return Err(NetworkError::BoundaryToBoundary(a.clone(), b.clone()));
            }
            links.push(Link { a: ea, b: eb, conductance: *g });
        }

        // Every node must reach a boundary (flood fill from boundaries).
        let n = self.node_names.len();
        let mut reached = vec![false; n];
        let mut frontier: Vec<usize> = Vec::new();
        for link in &links {
            match (link.a, link.b) {
                (Endpoint::Node(i), Endpoint::Boundary(_))
                | (Endpoint::Boundary(_), Endpoint::Node(i)) => {
                    if !reached[i] {
                        reached[i] = true;
                        frontier.push(i);
                    }
                }
                _ => {}
            }
        }
        while let Some(i) = frontier.pop() {
            for link in &links {
                if let (Endpoint::Node(p), Endpoint::Node(q)) = (link.a, link.b) {
                    let other = if p == i {
                        Some(q)
                    } else if q == i {
                        Some(p)
                    } else {
                        None
                    };
                    if let Some(o) = other {
                        if !reached[o] {
                            reached[o] = true;
                            frontier.push(o);
                        }
                    }
                }
            }
        }
        if let Some(i) = reached.iter().position(|&r| !r) {
            return Err(NetworkError::FloatingNode(self.node_names[i].clone()));
        }

        Ok(RcNetwork {
            node_names: self.node_names,
            capacitances: self.capacitances,
            temperatures: self.initials,
            powers: vec![0.0; n],
            boundary_names: self.boundary_names,
            boundary_temps: self.boundary_temps,
            links,
        })
    }
}

/// An N-node RC thermal network integrated with backward Euler.
#[derive(Debug, Clone)]
pub struct RcNetwork {
    node_names: Vec<String>,
    capacitances: Vec<f64>,
    temperatures: Vec<f64>,
    powers: Vec<f64>,
    boundary_names: Vec<String>,
    boundary_temps: Vec<f64>,
    links: Vec<Link>,
}

impl RcNetwork {
    /// Looks up a capacitive node by name.
    #[must_use]
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.node_names.iter().position(|n| n == name).map(NodeId)
    }

    /// The capacitive node names, in insertion order.
    #[must_use]
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// Current temperature of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    #[must_use]
    pub fn temperature(&self, id: NodeId) -> Celsius {
        Celsius::new(self.temperatures[id.0])
    }

    /// Sets the heat injected into a node (e.g. CPU dynamic power).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn set_power(&mut self, id: NodeId, power: Watts) {
        self.powers[id.0] = power.value();
    }

    /// Sets a boundary temperature by name.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownName`] for unknown boundaries.
    pub fn set_boundary(&mut self, name: &str, temperature: Celsius) -> Result<(), NetworkError> {
        match self.boundary_names.iter().position(|n| n == name) {
            Some(i) => {
                self.boundary_temps[i] = temperature.value();
                Ok(())
            }
            None => Err(NetworkError::UnknownName(name.to_owned())),
        }
    }

    /// Re-parameterizes the resistance of the link between two named
    /// endpoints (e.g. sink→ambient as fan speed changes).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownName`] if a name is unknown or
    /// [`NetworkError::NoSuchLink`] if the endpoints are not linked.
    pub fn set_link_resistance(
        &mut self,
        a: &str,
        b: &str,
        resistance: KelvinPerWatt,
    ) -> Result<(), NetworkError> {
        let ea = self.resolve(a)?;
        let eb = self.resolve(b)?;
        for link in &mut self.links {
            if (link.a == ea && link.b == eb) || (link.a == eb && link.b == ea) {
                link.conductance = 1.0 / resistance.value();
                return Ok(());
            }
        }
        Err(NetworkError::NoSuchLink(a.to_owned(), b.to_owned()))
    }

    fn resolve(&self, name: &str) -> Result<Endpoint, NetworkError> {
        if let Some(i) = self.node_names.iter().position(|n| n == name) {
            Ok(Endpoint::Node(i))
        } else if let Some(i) = self.boundary_names.iter().position(|n| n == name) {
            Ok(Endpoint::Boundary(i))
        } else {
            Err(NetworkError::UnknownName(name.to_owned()))
        }
    }

    /// Assembles and solves the backward-Euler system for one step of `dt`,
    /// updating all node temperatures.
    ///
    /// Backward Euler: `(C/dt + G) · T' = C/dt · T + P + G_b · T_b`, which is
    /// unconditionally stable — stiff node pairs (0.1 s die, 60 s sink) can
    /// be stepped at 1 s without oscillation, only with first-order damping
    /// error.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero.
    pub fn step(&mut self, dt: Seconds) {
        assert!(!dt.is_zero(), "step size must be positive");
        let n = self.node_names.len();
        let inv_dt = 1.0 / dt.value();
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n];
        for i in 0..n {
            a[i * n + i] = self.capacitances[i] * inv_dt;
            b[i] = self.capacitances[i] * inv_dt * self.temperatures[i] + self.powers[i];
        }
        for link in &self.links {
            match (link.a, link.b) {
                (Endpoint::Node(i), Endpoint::Node(j)) => {
                    a[i * n + i] += link.conductance;
                    a[j * n + j] += link.conductance;
                    a[i * n + j] -= link.conductance;
                    a[j * n + i] -= link.conductance;
                }
                (Endpoint::Node(i), Endpoint::Boundary(k))
                | (Endpoint::Boundary(k), Endpoint::Node(i)) => {
                    a[i * n + i] += link.conductance;
                    b[i] += link.conductance * self.boundary_temps[k];
                }
                (Endpoint::Boundary(_), Endpoint::Boundary(_)) => unreachable!("rejected at build"),
            }
        }
        let x = solve_dense(&mut a, &mut b, n);
        self.temperatures = x;
    }

    /// Solves for the steady-state temperatures under the current powers,
    /// boundaries and link conductances (the `dt → ∞` limit of
    /// [`RcNetwork::step`]).
    #[must_use]
    pub fn steady_state(&self) -> Vec<Celsius> {
        let n = self.node_names.len();
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n];
        for i in 0..n {
            b[i] = self.powers[i];
        }
        for link in &self.links {
            match (link.a, link.b) {
                (Endpoint::Node(i), Endpoint::Node(j)) => {
                    a[i * n + i] += link.conductance;
                    a[j * n + j] += link.conductance;
                    a[i * n + j] -= link.conductance;
                    a[j * n + i] -= link.conductance;
                }
                (Endpoint::Node(i), Endpoint::Boundary(k))
                | (Endpoint::Boundary(k), Endpoint::Node(i)) => {
                    a[i * n + i] += link.conductance;
                    b[i] += link.conductance * self.boundary_temps[k];
                }
                (Endpoint::Boundary(_), Endpoint::Boundary(_)) => unreachable!("rejected at build"),
            }
        }
        solve_dense(&mut a, &mut b, n).into_iter().map(Celsius::new).collect()
    }
}

/// Solves `A·x = b` (row-major `a`, length `n²`) by Gaussian elimination
/// with partial pivoting. The assembled thermal matrices are strictly
/// diagonally dominant, hence non-singular.
fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Vec<f64> {
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row * n + col].abs() > a[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        assert!(diag.abs() > 1e-30, "singular thermal matrix");
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in (row + 1)..n {
            sum -= a[row * n + k] * x[k];
        }
        x[row] = sum / a[row * n + row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_two_node() -> RcNetwork {
        RcNetworkBuilder::new()
            .node("die", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .node("sink", JoulesPerKelvin::new(300.0), Celsius::new(30.0))
            .boundary("ambient", Celsius::new(30.0))
            .link("die", "sink", KelvinPerWatt::new(0.1))
            .link("sink", "ambient", KelvinPerWatt::new(0.25))
            .build()
            .unwrap()
    }

    #[test]
    fn steady_state_matches_hand_calculation() {
        let mut net = simple_two_node();
        let die = net.node_id("die").unwrap();
        net.set_power(die, Watts::new(100.0));
        let ss = net.steady_state();
        // T_sink = 30 + 0.25*100 = 55; T_die = 55 + 0.1*100 = 65.
        assert!((ss[0].value() - 65.0).abs() < 1e-9, "die {}", ss[0]);
        assert!((ss[1].value() - 55.0).abs() < 1e-9, "sink {}", ss[1]);
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let mut net = simple_two_node();
        let die = net.node_id("die").unwrap();
        net.set_power(die, Watts::new(100.0));
        let ss = net.steady_state();
        for _ in 0..100_000 {
            net.step(Seconds::new(0.5));
        }
        let sink = net.node_id("sink").unwrap();
        assert!((net.temperature(die) - ss[0]).abs() < 1e-6);
        assert!((net.temperature(sink) - ss[1]).abs() < 1e-6);
    }

    #[test]
    fn single_node_matches_exponential_solution_to_first_order() {
        // One node, R = 0.2, C = 300 -> tau = 60 s.
        let mut net = RcNetworkBuilder::new()
            .node("sink", JoulesPerKelvin::new(300.0), Celsius::new(30.0))
            .boundary("ambient", Celsius::new(30.0))
            .link("sink", "ambient", KelvinPerWatt::new(0.2))
            .build()
            .unwrap();
        let sink = net.node_id("sink").unwrap();
        net.set_power(sink, Watts::new(150.0));
        // Integrate 60 s at 0.1 s steps; backward Euler first-order error.
        for _ in 0..600 {
            net.step(Seconds::new(0.1));
        }
        let ss = 30.0 + 0.2 * 150.0;
        let expected = ss + (30.0 - ss) * (-1.0f64).exp();
        assert!(
            (net.temperature(sink).value() - expected).abs() < 0.05,
            "got {}, expected {expected}",
            net.temperature(sink)
        );
    }

    #[test]
    fn stiff_step_is_stable_at_coarse_dt() {
        // Die tau = 0.1 s stepped at 1 s: backward Euler must not oscillate.
        let mut net = simple_two_node();
        let die = net.node_id("die").unwrap();
        net.set_power(die, Watts::new(160.0));
        let mut prev = net.temperature(die).value();
        for _ in 0..200 {
            net.step(Seconds::new(1.0));
            let t = net.temperature(die).value();
            assert!(t >= prev - 1e-9, "non-monotonic heating: {t} after {prev}");
            prev = t;
        }
    }

    #[test]
    fn zero_power_relaxes_to_boundary() {
        let mut net = simple_two_node();
        let die = net.node_id("die").unwrap();
        let sink = net.node_id("sink").unwrap();
        // Heat it up first, then cut power and let it relax.
        net.set_power(die, Watts::new(150.0));
        for _ in 0..1000 {
            net.step(Seconds::new(1.0));
        }
        assert!(net.temperature(die) > Celsius::new(35.0));
        net.set_power(die, Watts::new(0.0));
        for _ in 0..100_000 {
            net.step(Seconds::new(1.0));
        }
        assert!((net.temperature(die).value() - 30.0).abs() < 1e-6);
        assert!((net.temperature(sink).value() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn set_boundary_and_link_resistance_take_effect() {
        let mut net = simple_two_node();
        let die = net.node_id("die").unwrap();
        net.set_power(die, Watts::new(100.0));
        net.set_boundary("ambient", Celsius::new(40.0)).unwrap();
        net.set_link_resistance("sink", "ambient", KelvinPerWatt::new(0.15)).unwrap();
        let ss = net.steady_state();
        assert!((ss[1].value() - (40.0 + 0.15 * 100.0)).abs() < 1e-9);
    }

    #[test]
    fn builder_rejects_duplicate_names() {
        let err = RcNetworkBuilder::new()
            .node("x", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .node("x", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .boundary("amb", Celsius::new(30.0))
            .link("x", "amb", KelvinPerWatt::new(1.0))
            .build()
            .unwrap_err();
        assert_eq!(err, NetworkError::DuplicateName("x".into()));
    }

    #[test]
    fn builder_rejects_unknown_link_endpoint() {
        let err = RcNetworkBuilder::new()
            .node("x", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .boundary("amb", Celsius::new(30.0))
            .link("x", "nope", KelvinPerWatt::new(1.0))
            .build()
            .unwrap_err();
        assert_eq!(err, NetworkError::UnknownName("nope".into()));
    }

    #[test]
    fn builder_rejects_floating_node() {
        let err = RcNetworkBuilder::new()
            .node("x", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .node("orphan", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .boundary("amb", Celsius::new(30.0))
            .link("x", "amb", KelvinPerWatt::new(1.0))
            .build()
            .unwrap_err();
        assert_eq!(err, NetworkError::FloatingNode("orphan".into()));
    }

    #[test]
    fn builder_rejects_boundary_to_boundary_link() {
        let err = RcNetworkBuilder::new()
            .node("x", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .boundary("a", Celsius::new(30.0))
            .boundary("b", Celsius::new(30.0))
            .link("x", "a", KelvinPerWatt::new(1.0))
            .link("a", "b", KelvinPerWatt::new(1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, NetworkError::BoundaryToBoundary(_, _)));
    }

    #[test]
    fn builder_rejects_empty_network() {
        assert_eq!(RcNetworkBuilder::new().build().unwrap_err(), NetworkError::Empty);
    }

    #[test]
    fn mutators_report_unknown_names() {
        let mut net = simple_two_node();
        assert!(net.set_boundary("nope", Celsius::new(1.0)).is_err());
        assert!(net
            .set_link_resistance("die", "ambient", KelvinPerWatt::new(1.0))
            .is_err()); // no direct die-ambient link
        assert!(net.node_id("nope").is_none());
        assert_eq!(net.node_names(), &["die".to_owned(), "sink".to_owned()]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = NetworkError::FloatingNode("sink2".into());
        assert!(e.to_string().contains("sink2"));
    }
}
