//! A general N-node RC thermal network.
//!
//! [`HeatSinkNode`](crate::HeatSinkNode)/[`DieNode`](crate::DieNode) hard-code
//! the paper's two-node topology. This module provides the general compact
//! thermal model in the HotSpot spirit (Huang et al., TVLSI'06): named
//! capacitive nodes, fixed-temperature boundary nodes (ambient), and
//! resistive links. Integration is unconditionally-stable backward Euler,
//! so stiff networks (0.1 s die next to a 60 s sink) can be stepped at the
//! controller rate without blowing up.

use core::fmt;
use gfsc_units::{Celsius, JoulesPerKelvin, KelvinPerWatt, Seconds, Watts};

/// Identifier of a capacitive node inside an [`RcNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// The node's position in [`RcNetwork::node_names`] order (the order
    /// [`RcNetwork::steady_state`] reports temperatures in).
    pub(crate) fn from_index(index: usize) -> Self {
        Self(index)
    }

    /// The node's position in [`RcNetwork::node_names`] order — the index
    /// of this node's entry in the vectors [`RcNetwork::steady_state`] and
    /// [`RcNetwork::steady_state_with`] return.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a resistive link inside an [`RcNetwork`], resolved once
/// via [`RcNetwork::link_id`] so per-step re-parameterization (e.g. the
/// sink→ambient conductance moving with fan speed) skips the name scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkId(usize);

/// Identifier of a boundary node inside an [`RcNetwork`], resolved once
/// via [`RcNetwork::boundary_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoundaryId(usize);

/// Error produced while building or mutating an [`RcNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A node or boundary name was used twice.
    DuplicateName(String),
    /// A link or lookup referenced a name that does not exist.
    UnknownName(String),
    /// A link connects two boundaries, which has no effect on any node.
    BoundaryToBoundary(String, String),
    /// A node has no resistive path to any boundary, so its temperature
    /// would diverge under constant power injection.
    FloatingNode(String),
    /// The network has no capacitive nodes.
    Empty,
    /// No link exists between the two named endpoints.
    NoSuchLink(String, String),
    /// A lane handed to [`crate::BatchRcNetwork`] does not share the batch's
    /// node/link structure.
    BatchMismatch(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            NetworkError::UnknownName(n) => write!(f, "unknown node name `{n}`"),
            NetworkError::BoundaryToBoundary(a, b) => {
                write!(f, "link `{a}`–`{b}` connects two boundaries")
            }
            NetworkError::FloatingNode(n) => {
                write!(f, "node `{n}` has no path to any boundary")
            }
            NetworkError::Empty => write!(f, "network has no capacitive nodes"),
            NetworkError::NoSuchLink(a, b) => write!(f, "no link between `{a}` and `{b}`"),
            NetworkError::BatchMismatch(why) => write!(f, "batch structure mismatch: {why}"),
        }
    }
}

impl std::error::Error for NetworkError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Endpoint {
    Node(usize),
    Boundary(usize),
}

#[derive(Debug, Clone)]
pub(crate) struct Link {
    pub(crate) a: Endpoint,
    pub(crate) b: Endpoint,
    pub(crate) conductance: f64, // W/K
}

/// Builder for [`RcNetwork`].
///
/// # Examples
///
/// ```
/// use gfsc_thermal::RcNetworkBuilder;
/// use gfsc_units::{Celsius, JoulesPerKelvin, KelvinPerWatt, Seconds, Watts};
///
/// let mut net = RcNetworkBuilder::new()
///     .node("die", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
///     .node("sink", JoulesPerKelvin::new(300.0), Celsius::new(30.0))
///     .boundary("ambient", Celsius::new(30.0))
///     .link("die", "sink", KelvinPerWatt::new(0.1))
///     .link("sink", "ambient", KelvinPerWatt::new(0.2))
///     .build()?;
/// let die = net.node_id("die").unwrap();
/// net.set_power(die, Watts::new(100.0));
/// net.step(Seconds::new(1.0));
/// assert!(net.temperature(die) > Celsius::new(30.0));
/// # Ok::<(), gfsc_thermal::NetworkError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct RcNetworkBuilder {
    node_names: Vec<String>,
    capacitances: Vec<f64>,
    initials: Vec<f64>,
    boundary_names: Vec<String>,
    boundary_temps: Vec<f64>,
    links: Vec<(String, String, f64)>,
}

impl RcNetworkBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a capacitive node.
    #[must_use]
    pub fn node(
        mut self,
        name: impl Into<String>,
        capacitance: JoulesPerKelvin,
        initial: Celsius,
    ) -> Self {
        self.node_names.push(name.into());
        self.capacitances.push(capacitance.value());
        self.initials.push(initial.value());
        self
    }

    /// Adds a fixed-temperature boundary node (e.g. ambient air).
    #[must_use]
    pub fn boundary(mut self, name: impl Into<String>, temperature: Celsius) -> Self {
        self.boundary_names.push(name.into());
        self.boundary_temps.push(temperature.value());
        self
    }

    /// Adds a resistive link between two named endpoints.
    #[must_use]
    pub fn link(
        mut self,
        a: impl Into<String>,
        b: impl Into<String>,
        resistance: KelvinPerWatt,
    ) -> Self {
        self.links.push((a.into(), b.into(), 1.0 / resistance.value()));
        self
    }

    /// Validates the topology and builds the network.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if names collide, a link references an
    /// unknown name or joins two boundaries, the network is empty, or any
    /// node lacks a path to a boundary.
    pub fn build(self) -> Result<RcNetwork, NetworkError> {
        if self.node_names.is_empty() {
            return Err(NetworkError::Empty);
        }
        // Name uniqueness across nodes *and* boundaries.
        let mut all: Vec<&str> = self
            .node_names
            .iter()
            .map(String::as_str)
            .chain(self.boundary_names.iter().map(String::as_str))
            .collect();
        all.sort_unstable();
        for pair in all.windows(2) {
            let [first, second] = pair else { continue };
            if first == second {
                return Err(NetworkError::DuplicateName((*first).to_owned()));
            }
        }

        let resolve = |name: &str| -> Result<Endpoint, NetworkError> {
            if let Some(i) = self.node_names.iter().position(|n| n == name) {
                Ok(Endpoint::Node(i))
            } else if let Some(i) = self.boundary_names.iter().position(|n| n == name) {
                Ok(Endpoint::Boundary(i))
            } else {
                Err(NetworkError::UnknownName(name.to_owned()))
            }
        };

        let mut links = Vec::with_capacity(self.links.len());
        for (a, b, g) in &self.links {
            let ea = resolve(a)?;
            let eb = resolve(b)?;
            if matches!((ea, eb), (Endpoint::Boundary(_), Endpoint::Boundary(_))) {
                return Err(NetworkError::BoundaryToBoundary(a.clone(), b.clone()));
            }
            links.push(Link { a: ea, b: eb, conductance: *g });
        }

        // Every node must reach a boundary (flood fill from boundaries).
        let n = self.node_names.len();
        let mut reached = vec![false; n];
        let mut frontier: Vec<usize> = Vec::new();
        for link in &links {
            match (link.a, link.b) {
                (Endpoint::Node(i), Endpoint::Boundary(_))
                | (Endpoint::Boundary(_), Endpoint::Node(i))
                    if !reached[i] =>
                {
                    reached[i] = true;
                    frontier.push(i);
                }
                _ => {}
            }
        }
        while let Some(i) = frontier.pop() {
            for link in &links {
                if let (Endpoint::Node(p), Endpoint::Node(q)) = (link.a, link.b) {
                    let other = if p == i {
                        Some(q)
                    } else if q == i {
                        Some(p)
                    } else {
                        None
                    };
                    if let Some(o) = other {
                        if !reached[o] {
                            reached[o] = true;
                            frontier.push(o);
                        }
                    }
                }
            }
        }
        if let Some(i) = reached.iter().position(|&r| !r) {
            return Err(NetworkError::FloatingNode(self.node_names[i].clone()));
        }

        Ok(RcNetwork {
            node_names: self.node_names,
            capacitances: self.capacitances,
            temperatures: self.initials,
            powers: vec![0.0; n],
            boundary_names: self.boundary_names,
            boundary_temps: self.boundary_temps,
            links,
            factor: vec![0.0; n * n],
            pivots: vec![0; n],
            factored_dt: f64::NAN,
            matrix_dirty: true,
            params_version: 0,
            changed_links: Vec::new(),
            rhs: vec![0.0; n],
            batch_memo: (0, 0, 0, 0),
        })
    }
}

/// An N-node RC thermal network integrated with backward Euler.
///
/// The backward-Euler system matrix `C/dt + G` depends only on `dt`, the
/// conductances and the capacitances — not on temperatures, powers or
/// boundary values — so [`RcNetwork::step`] caches its LU factorization
/// and re-factorizes only when `dt` changes or a conductance is
/// re-parameterized (the common case in the fan loop: only the
/// sink→ambient link moves with fan speed). All per-step work runs in
/// pre-allocated scratch buffers; steady-state stepping performs **zero**
/// heap allocations.
#[derive(Debug, Clone)]
pub struct RcNetwork {
    node_names: Vec<String>,
    capacitances: Vec<f64>,
    temperatures: Vec<f64>,
    powers: Vec<f64>,
    boundary_names: Vec<String>,
    boundary_temps: Vec<f64>,
    links: Vec<Link>,
    /// LU factors of `C/dt + G` (unit-lower multipliers below the
    /// diagonal, upper triangle above), row-major `n × n`.
    factor: Vec<f64>,
    /// Partial-pivoting row swaps recorded during factorization.
    pivots: Vec<usize>,
    /// The `dt` the cached factorization was assembled for (NaN = none).
    factored_dt: f64,
    /// Set by conductance mutators; forces re-factorization on next step.
    matrix_dirty: bool,
    /// Bumped by every *effective* conductance mutation. Capacitances are
    /// fixed at build and boundaries/powers are right-hand-side-only, so an
    /// unchanged version guarantees the system matrix at a given `dt` is
    /// bit-for-bit the one already seen — the batched stepper keys its
    /// per-lane signature memo on this.
    params_version: u64,
    /// Sorted indices of every link whose conductance has *effectively*
    /// changed since build. Conductances are the only matrix parameters
    /// with a mutation API, so links outside this set still hold their
    /// as-built values — the batched stepper exploits that to sign a
    /// lane's matrix by just these links instead of the full table.
    changed_links: Vec<u32>,
    /// Right-hand-side / solution scratch.
    rhs: Vec<f64>,
    /// [`crate::BatchRcNetwork`]'s per-lane factor memo, carried by the
    /// network itself so lanes may be dropped, cloned or re-ordered without
    /// aliasing another lane's factor: `(batch generation, factor index,
    /// params version at memo time, dt bits at memo time)`. Valid only
    /// while the generation matches the batch that wrote it *and* the
    /// version/dt still match.
    pub(crate) batch_memo: (u64, usize, u64, u64),
}

impl RcNetwork {
    /// Looks up a capacitive node by name.
    #[must_use]
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.node_names.iter().position(|n| n == name).map(NodeId)
    }

    /// The capacitive node names, in insertion order.
    #[must_use]
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// Current temperature of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    #[must_use]
    pub fn temperature(&self, id: NodeId) -> Celsius {
        Celsius::new(self.temperatures[id.0])
    }

    /// Sets the heat injected into a node (e.g. CPU dynamic power).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn set_power(&mut self, id: NodeId, power: Watts) {
        self.powers[id.0] = power.value();
    }

    /// Overrides a node's temperature directly (equilibration and test
    /// setup). State-only: the cached factorization is untouched.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn set_temperature(&mut self, id: NodeId, temperature: Celsius) {
        self.temperatures[id.0] = temperature.value();
    }

    /// Sets a boundary temperature by name.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownName`] for unknown boundaries.
    pub fn set_boundary(&mut self, name: &str, temperature: Celsius) -> Result<(), NetworkError> {
        match self.boundary_names.iter().position(|n| n == name) {
            Some(i) => {
                self.boundary_temps[i] = temperature.value();
                Ok(())
            }
            None => Err(NetworkError::UnknownName(name.to_owned())),
        }
    }

    /// Looks up a boundary node by name, for repeated
    /// [`RcNetwork::set_boundary_by_id`] calls without the name scan.
    #[must_use]
    pub fn boundary_id(&self, name: &str) -> Option<BoundaryId> {
        self.boundary_names.iter().position(|n| n == name).map(BoundaryId)
    }

    /// Sets a boundary temperature by pre-resolved handle.
    ///
    /// Boundary temperatures enter only the right-hand side, so this never
    /// invalidates the cached factorization.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn set_boundary_by_id(&mut self, id: BoundaryId, temperature: Celsius) {
        self.boundary_temps[id.0] = temperature.value();
    }

    /// Resolves the link between two named endpoints to a handle, for
    /// repeated re-parameterization without the O(links × names) scan —
    /// resolve once at build time, then call
    /// [`RcNetwork::set_link_resistance_by_id`] per step.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownName`] if a name is unknown or
    /// [`NetworkError::NoSuchLink`] if the endpoints are not linked.
    pub fn link_id(&self, a: &str, b: &str) -> Result<LinkId, NetworkError> {
        let ea = self.resolve(a)?;
        let eb = self.resolve(b)?;
        self.links
            .iter()
            .position(|link| (link.a == ea && link.b == eb) || (link.a == eb && link.b == ea))
            .map(LinkId)
            .ok_or_else(|| NetworkError::NoSuchLink(a.to_owned(), b.to_owned()))
    }

    /// The link's current resistance, by pre-resolved handle — the read
    /// side of [`RcNetwork::set_link_resistance_by_id`], letting tests
    /// and diagnostics audit what a fan-zone update actually applied.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    #[must_use]
    pub fn link_resistance_by_id(&self, id: LinkId) -> KelvinPerWatt {
        KelvinPerWatt::new(1.0 / self.links[id.0].conductance)
    }

    /// Re-parameterizes a link's resistance by pre-resolved handle,
    /// invalidating the cached factorization.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn set_link_resistance_by_id(&mut self, id: LinkId, resistance: KelvinPerWatt) {
        let conductance = 1.0 / resistance.value();
        // An unchanged conductance (fan speed held between controller
        // epochs) keeps the factorization warm.
        if self.links[id.0].conductance != conductance {
            self.links[id.0].conductance = conductance;
            self.matrix_dirty = true;
            self.params_version += 1;
            let idx = id.0 as u32;
            if let Err(pos) = self.changed_links.binary_search(&idx) {
                self.changed_links.insert(pos, idx);
            }
        }
    }

    /// Re-parameterizes the resistance of the link between two named
    /// endpoints (e.g. sink→ambient as fan speed changes). Convenience
    /// wrapper over [`RcNetwork::link_id`] +
    /// [`RcNetwork::set_link_resistance_by_id`]; resolve the handle once
    /// when calling in a loop.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::UnknownName`] if a name is unknown or
    /// [`NetworkError::NoSuchLink`] if the endpoints are not linked.
    pub fn set_link_resistance(
        &mut self,
        a: &str,
        b: &str,
        resistance: KelvinPerWatt,
    ) -> Result<(), NetworkError> {
        let id = self.link_id(a, b)?;
        self.set_link_resistance_by_id(id, resistance);
        Ok(())
    }

    fn resolve(&self, name: &str) -> Result<Endpoint, NetworkError> {
        if let Some(i) = self.node_names.iter().position(|n| n == name) {
            Ok(Endpoint::Node(i))
        } else if let Some(i) = self.boundary_names.iter().position(|n| n == name) {
            Ok(Endpoint::Boundary(i))
        } else {
            Err(NetworkError::UnknownName(name.to_owned()))
        }
    }

    /// Solves the backward-Euler system for one step of `dt`, updating all
    /// node temperatures.
    ///
    /// Backward Euler: `(C/dt + G) · T' = C/dt · T + P + G_b · T_b`, which is
    /// unconditionally stable — stiff node pairs (0.1 s die, 60 s sink) can
    /// be stepped at 1 s without oscillation, only with first-order damping
    /// error.
    ///
    /// The system matrix is factorized lazily and reused across steps (see
    /// the type-level docs); with an unchanged `dt` and conductances each
    /// step is one forward/backward substitution in pre-allocated scratch —
    /// no assembly, no elimination, no heap allocation. Results are
    /// identical to [`RcNetwork::step_uncached`]: the cached path replays
    /// the exact same elimination arithmetic from the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero.
    pub fn step(&mut self, dt: Seconds) {
        assert!(!dt.is_zero(), "step size must be positive");
        if self.matrix_dirty || self.factored_dt != dt.value() {
            self.refactorize(dt.value());
        }
        let n = self.node_names.len();
        let inv_dt = 1.0 / dt.value();
        for i in 0..n {
            self.rhs[i] = self.capacitances[i] * inv_dt * self.temperatures[i] + self.powers[i];
        }
        for link in &self.links {
            if let (Endpoint::Node(i), Endpoint::Boundary(k))
            | (Endpoint::Boundary(k), Endpoint::Node(i)) = (link.a, link.b)
            {
                self.rhs[i] += link.conductance * self.boundary_temps[k];
            }
        }
        lu_solve(&self.factor, &self.pivots, &mut self.rhs, n);
        self.temperatures.copy_from_slice(&self.rhs);
    }

    /// The reference integrator: assembles and eliminates the full system
    /// every call (the pre-caching behavior). Kept public as the oracle for
    /// the cached path — the property tests and the `hot_paths` benchmarks
    /// compare [`RcNetwork::step`] against it.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero.
    pub fn step_uncached(&mut self, dt: Seconds) {
        assert!(!dt.is_zero(), "step size must be positive");
        let n = self.node_names.len();
        let inv_dt = 1.0 / dt.value();
        let mut a = vec![0.0; n * n];
        let mut b = vec![0.0; n];
        for i in 0..n {
            a[i * n + i] = self.capacitances[i] * inv_dt;
            b[i] = self.capacitances[i] * inv_dt * self.temperatures[i] + self.powers[i];
        }
        for link in &self.links {
            match (link.a, link.b) {
                (Endpoint::Node(i), Endpoint::Node(j)) => {
                    a[i * n + i] += link.conductance;
                    a[j * n + j] += link.conductance;
                    a[i * n + j] -= link.conductance;
                    a[j * n + i] -= link.conductance;
                }
                (Endpoint::Node(i), Endpoint::Boundary(k))
                | (Endpoint::Boundary(k), Endpoint::Node(i)) => {
                    a[i * n + i] += link.conductance;
                    b[i] += link.conductance * self.boundary_temps[k];
                }
                // Rejected at build (BoundaryToBoundary); such a link
                // couples no node, so skipping it is the faithful no-op.
                (Endpoint::Boundary(_), Endpoint::Boundary(_)) => {}
            }
        }
        solve_dense(&mut a, &mut b, n);
        self.temperatures.copy_from_slice(&b);
    }

    /// Assembles `C/dt + G` into the factor buffer and LU-factorizes it in
    /// place with partial pivoting.
    fn refactorize(&mut self, dt: f64) {
        let n = self.node_names.len();
        assemble_matrix(&self.capacitances, &self.links, dt, &mut self.factor);
        lu_factorize(&mut self.factor, &mut self.pivots, n);
        self.factored_dt = dt;
        self.matrix_dirty = false;
    }

    /// Solves for the steady-state temperatures under the current powers,
    /// boundaries and link conductances (the `dt → ∞` limit of
    /// [`RcNetwork::step`]).
    #[must_use]
    pub fn steady_state(&self) -> Vec<Celsius> {
        self.steady_state_with(&[], &[])
    }

    /// Snaps every node to its steady-state temperature under the current
    /// powers, boundaries and conductances — equilibration in one call.
    /// State-only: the cached factorization is untouched.
    pub fn snap_to_steady_state(&mut self) {
        let temps = self.steady_state();
        for (slot, t) in self.temperatures.iter_mut().zip(&temps) {
            *slot = t.value();
        }
    }

    /// [`RcNetwork::steady_state`] with temporary link-resistance and
    /// node-power overrides, **without mutating the network** — the current
    /// temperatures, powers, conductances and the cached factorization are
    /// all left untouched.
    ///
    /// This is the probe behind model inversions that ask "what would the
    /// equilibrium be at fan speed `v` / power `p`?" (e.g. the multi-socket
    /// `min_safe_fan_speed` bisection) while the transient simulation keeps
    /// running undisturbed.
    ///
    /// # Panics
    ///
    /// Panics if an override handle does not belong to this network.
    #[must_use]
    pub fn steady_state_with(
        &self,
        link_overrides: &[(LinkId, KelvinPerWatt)],
        power_overrides: &[(NodeId, Watts)],
    ) -> Vec<Celsius> {
        let mut matrix = Vec::new();
        let mut temps = Vec::new();
        self.steady_state_with_into(link_overrides, power_overrides, &mut matrix, &mut temps);
        temps.into_iter().map(Celsius::new).collect()
    }

    /// [`RcNetwork::steady_state_with`] writing into caller-provided
    /// buffers: `matrix` holds the assembled `n × n` system, `out` the
    /// solved temperatures (indexed by [`NodeId::index`]). With warm
    /// buffers the probe performs **zero** heap allocations — the variant
    /// model-inversion bisections (40+ probes per decision) run on.
    ///
    /// # Panics
    ///
    /// Panics if an override handle does not belong to this network.
    pub fn steady_state_with_into(
        &self,
        link_overrides: &[(LinkId, KelvinPerWatt)],
        power_overrides: &[(NodeId, Watts)],
        matrix: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) {
        let n = self.node_names.len();
        let conductance = |idx: usize| -> f64 {
            link_overrides
                .iter()
                .find(|(id, _)| id.0 == idx)
                .map_or(self.links[idx].conductance, |(_, r)| 1.0 / r.value())
        };
        matrix.clear();
        matrix.resize(n * n, 0.0);
        out.clear();
        out.extend_from_slice(&self.powers);
        let (a, b) = (matrix, out);
        for (id, p) in power_overrides {
            b[id.0] = p.value();
        }
        for (idx, link) in self.links.iter().enumerate() {
            let g = conductance(idx);
            match (link.a, link.b) {
                (Endpoint::Node(i), Endpoint::Node(j)) => {
                    a[i * n + i] += g;
                    a[j * n + j] += g;
                    a[i * n + j] -= g;
                    a[j * n + i] -= g;
                }
                (Endpoint::Node(i), Endpoint::Boundary(k))
                | (Endpoint::Boundary(k), Endpoint::Node(i)) => {
                    a[i * n + i] += g;
                    b[i] += g * self.boundary_temps[k];
                }
                // Rejected at build (BoundaryToBoundary); such a link
                // couples no node, so skipping it is the faithful no-op.
                (Endpoint::Boundary(_), Endpoint::Boundary(_)) => {}
            }
        }
        solve_dense(a, b, n);
    }

    // ---- crate-internal raw views for the batched stepper ----------------
    //
    // `crate::BatchRcNetwork` replays `step`'s exact arithmetic across many
    // lanes at once; it needs the raw state vectors and the link table, but
    // nothing here widens the public mutation surface.

    /// Number of capacitive nodes.
    pub(crate) fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Node heat capacitances, J/K, indexed by [`NodeId::index`].
    pub(crate) fn capacitances_raw(&self) -> &[f64] {
        &self.capacitances
    }

    /// Node temperatures, °C, indexed by [`NodeId::index`].
    pub(crate) fn temperatures_raw(&self) -> &[f64] {
        &self.temperatures
    }

    /// Mutable node temperatures — the batched stepper's write-back path.
    /// State-only, exactly like [`RcNetwork::set_temperature`]: the cached
    /// factorization is untouched.
    pub(crate) fn temperatures_raw_mut(&mut self) -> &mut [f64] {
        &mut self.temperatures
    }

    /// Injected node powers, W, indexed by [`NodeId::index`].
    pub(crate) fn powers_raw(&self) -> &[f64] {
        &self.powers
    }

    /// Boundary temperatures, °C, in boundary insertion order.
    pub(crate) fn boundary_temps_raw(&self) -> &[f64] {
        &self.boundary_temps
    }

    /// The link table (endpoints + current conductances) in insertion order.
    pub(crate) fn links_raw(&self) -> &[Link] {
        &self.links
    }

    /// Matrix-parameter mutation counter (see the field docs) — the batched
    /// stepper's cheap "did anything change since I last looked?" probe.
    pub(crate) fn params_version(&self) -> u64 {
        self.params_version
    }

    /// Sorted indices of every link mutated since build (see the field
    /// docs).
    pub(crate) fn changed_links(&self) -> &[u32] {
        &self.changed_links
    }

    /// Whether two networks share the same *structure*: node and boundary
    /// names in the same order and links joining the same endpoints in the
    /// same order. Capacitances, conductances, powers, temperatures and
    /// boundary values are free to differ — structure is what the batched
    /// stepper's SoA layout and signature grouping key on.
    pub(crate) fn structure_eq(&self, other: &RcNetwork) -> bool {
        self.node_names == other.node_names
            && self.boundary_names == other.boundary_names
            && self.links.len() == other.links.len()
            && self.links.iter().zip(&other.links).all(|(a, b)| a.a == b.a && a.b == b.b)
    }
}

/// Assembles the backward-Euler system matrix `C/dt + G` (row-major, the
/// length of `a` must be `n²` for `n = capacitances.len()`). Shared by the
/// scalar [`RcNetwork::step`] cache and the batched stepper
/// ([`crate::BatchRcNetwork`]): both must produce bitwise-identical
/// matrices from identical capacitances/conductances, so there is exactly
/// one assembly routine.
pub(crate) fn assemble_matrix(capacitances: &[f64], links: &[Link], dt: f64, a: &mut [f64]) {
    let n = capacitances.len();
    let inv_dt = 1.0 / dt;
    a.fill(0.0);
    for (i, c) in capacitances.iter().enumerate() {
        a[i * n + i] = c * inv_dt;
    }
    for link in links {
        match (link.a, link.b) {
            (Endpoint::Node(i), Endpoint::Node(j)) => {
                a[i * n + i] += link.conductance;
                a[j * n + j] += link.conductance;
                a[i * n + j] -= link.conductance;
                a[j * n + i] -= link.conductance;
            }
            (Endpoint::Node(i), Endpoint::Boundary(_))
            | (Endpoint::Boundary(_), Endpoint::Node(i)) => {
                a[i * n + i] += link.conductance;
            }
            // Rejected at build (BoundaryToBoundary); such a link
            // couples no node, so skipping it is the faithful no-op.
            (Endpoint::Boundary(_), Endpoint::Boundary(_)) => {}
        }
    }
}

/// LU-factorizes row-major `a` (length `n²`) in place with partial
/// pivoting: unit-lower multipliers land below the diagonal, the upper
/// triangle above; `piv[col]` records the row swapped into `col`. The
/// assembled thermal matrices are strictly diagonally dominant, hence
/// non-singular.
pub(crate) fn lu_factorize(a: &mut [f64], piv: &mut [usize], n: usize) {
    for col in 0..n {
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row * n + col].abs() > a[pivot * n + col].abs() {
                pivot = row;
            }
        }
        piv[col] = pivot;
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
        }
        let diag = a[col * n + col];
        assert!(diag.abs() > 1e-30, "singular thermal matrix");
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            a[row * n + col] = factor;
            if factor == 0.0 {
                continue;
            }
            for k in (col + 1)..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
        }
    }
}

/// Solves `L·U·x = P·b` from [`lu_factorize`]'s output, overwriting `b`
/// with `x`. Allocation-free; the substitution applies the same arithmetic,
/// in the same order, as eliminating `b` alongside the matrix would.
fn lu_solve(a: &[f64], piv: &[usize], b: &mut [f64], n: usize) {
    for (col, &pivot) in piv.iter().enumerate() {
        if pivot != col {
            b.swap(col, pivot);
        }
    }
    // Forward substitution through the unit-lower multipliers, column-major
    // to mirror the elimination order of `solve_dense` exactly.
    for col in 0..n {
        let bc = b[col];
        if bc == 0.0 {
            continue;
        }
        for row in (col + 1)..n {
            let factor = a[row * n + col];
            if factor != 0.0 {
                b[row] -= factor * bc;
            }
        }
    }
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in (row + 1)..n {
            sum -= a[row * n + k] * b[k];
        }
        b[row] = sum / a[row * n + row];
    }
}

/// Solves `A·x = b` (row-major `a`, length `n²`) by Gaussian elimination
/// with partial pivoting, overwriting `b` with `x` — allocation-free. The
/// assembled thermal matrices are strictly diagonally dominant, hence
/// non-singular.
fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) {
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row * n + col].abs() > a[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        let diag = a[col * n + col];
        assert!(diag.abs() > 1e-30, "singular thermal matrix");
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back-substitution in place: `b[k]` for `k > row` already holds the
    // solved `x[k]`, so overwriting `b` reproduces the out-of-place
    // arithmetic bit for bit.
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in (row + 1)..n {
            sum -= a[row * n + k] * b[k];
        }
        b[row] = sum / a[row * n + row];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_two_node() -> RcNetwork {
        RcNetworkBuilder::new()
            .node("die", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .node("sink", JoulesPerKelvin::new(300.0), Celsius::new(30.0))
            .boundary("ambient", Celsius::new(30.0))
            .link("die", "sink", KelvinPerWatt::new(0.1))
            .link("sink", "ambient", KelvinPerWatt::new(0.25))
            .build()
            .unwrap()
    }

    #[test]
    fn steady_state_matches_hand_calculation() {
        let mut net = simple_two_node();
        let die = net.node_id("die").unwrap();
        net.set_power(die, Watts::new(100.0));
        let ss = net.steady_state();
        // T_sink = 30 + 0.25*100 = 55; T_die = 55 + 0.1*100 = 65.
        assert!((ss[0].value() - 65.0).abs() < 1e-9, "die {}", ss[0]);
        assert!((ss[1].value() - 55.0).abs() < 1e-9, "sink {}", ss[1]);
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let mut net = simple_two_node();
        let die = net.node_id("die").unwrap();
        net.set_power(die, Watts::new(100.0));
        let ss = net.steady_state();
        for _ in 0..100_000 {
            net.step(Seconds::new(0.5));
        }
        let sink = net.node_id("sink").unwrap();
        assert!((net.temperature(die) - ss[0]).abs() < 1e-6);
        assert!((net.temperature(sink) - ss[1]).abs() < 1e-6);
    }

    #[test]
    fn single_node_matches_exponential_solution_to_first_order() {
        // One node, R = 0.2, C = 300 -> tau = 60 s.
        let mut net = RcNetworkBuilder::new()
            .node("sink", JoulesPerKelvin::new(300.0), Celsius::new(30.0))
            .boundary("ambient", Celsius::new(30.0))
            .link("sink", "ambient", KelvinPerWatt::new(0.2))
            .build()
            .unwrap();
        let sink = net.node_id("sink").unwrap();
        net.set_power(sink, Watts::new(150.0));
        // Integrate 60 s at 0.1 s steps; backward Euler first-order error.
        for _ in 0..600 {
            net.step(Seconds::new(0.1));
        }
        let ss = 30.0 + 0.2 * 150.0;
        let expected = ss + (30.0 - ss) * (-1.0f64).exp();
        assert!(
            (net.temperature(sink).value() - expected).abs() < 0.05,
            "got {}, expected {expected}",
            net.temperature(sink)
        );
    }

    #[test]
    fn stiff_step_is_stable_at_coarse_dt() {
        // Die tau = 0.1 s stepped at 1 s: backward Euler must not oscillate.
        let mut net = simple_two_node();
        let die = net.node_id("die").unwrap();
        net.set_power(die, Watts::new(160.0));
        let mut prev = net.temperature(die).value();
        for _ in 0..200 {
            net.step(Seconds::new(1.0));
            let t = net.temperature(die).value();
            assert!(t >= prev - 1e-9, "non-monotonic heating: {t} after {prev}");
            prev = t;
        }
    }

    #[test]
    fn zero_power_relaxes_to_boundary() {
        let mut net = simple_two_node();
        let die = net.node_id("die").unwrap();
        let sink = net.node_id("sink").unwrap();
        // Heat it up first, then cut power and let it relax.
        net.set_power(die, Watts::new(150.0));
        for _ in 0..1000 {
            net.step(Seconds::new(1.0));
        }
        assert!(net.temperature(die) > Celsius::new(35.0));
        net.set_power(die, Watts::new(0.0));
        for _ in 0..100_000 {
            net.step(Seconds::new(1.0));
        }
        assert!((net.temperature(die).value() - 30.0).abs() < 1e-6);
        assert!((net.temperature(sink).value() - 30.0).abs() < 1e-6);
    }

    #[test]
    fn set_boundary_and_link_resistance_take_effect() {
        let mut net = simple_two_node();
        let die = net.node_id("die").unwrap();
        net.set_power(die, Watts::new(100.0));
        net.set_boundary("ambient", Celsius::new(40.0)).unwrap();
        net.set_link_resistance("sink", "ambient", KelvinPerWatt::new(0.15)).unwrap();
        let ss = net.steady_state();
        assert!((ss[1].value() - (40.0 + 0.15 * 100.0)).abs() < 1e-9);
    }

    #[test]
    fn builder_rejects_duplicate_names() {
        let err = RcNetworkBuilder::new()
            .node("x", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .node("x", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .boundary("amb", Celsius::new(30.0))
            .link("x", "amb", KelvinPerWatt::new(1.0))
            .build()
            .unwrap_err();
        assert_eq!(err, NetworkError::DuplicateName("x".into()));
    }

    #[test]
    fn builder_rejects_unknown_link_endpoint() {
        let err = RcNetworkBuilder::new()
            .node("x", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .boundary("amb", Celsius::new(30.0))
            .link("x", "nope", KelvinPerWatt::new(1.0))
            .build()
            .unwrap_err();
        assert_eq!(err, NetworkError::UnknownName("nope".into()));
    }

    #[test]
    fn builder_rejects_floating_node() {
        let err = RcNetworkBuilder::new()
            .node("x", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .node("orphan", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .boundary("amb", Celsius::new(30.0))
            .link("x", "amb", KelvinPerWatt::new(1.0))
            .build()
            .unwrap_err();
        assert_eq!(err, NetworkError::FloatingNode("orphan".into()));
    }

    #[test]
    fn builder_rejects_boundary_to_boundary_link() {
        let err = RcNetworkBuilder::new()
            .node("x", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .boundary("a", Celsius::new(30.0))
            .boundary("b", Celsius::new(30.0))
            .link("x", "a", KelvinPerWatt::new(1.0))
            .link("a", "b", KelvinPerWatt::new(1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, NetworkError::BoundaryToBoundary(_, _)));
    }

    #[test]
    fn builder_rejects_empty_network() {
        assert_eq!(RcNetworkBuilder::new().build().unwrap_err(), NetworkError::Empty);
    }

    #[test]
    fn mutators_report_unknown_names() {
        let mut net = simple_two_node();
        assert!(net.set_boundary("nope", Celsius::new(1.0)).is_err());
        assert!(net.set_link_resistance("die", "ambient", KelvinPerWatt::new(1.0)).is_err()); // no direct die-ambient link
        assert!(net.node_id("nope").is_none());
        assert_eq!(net.node_names(), &["die".to_owned(), "sink".to_owned()]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = NetworkError::FloatingNode("sink2".into());
        assert!(e.to_string().contains("sink2"));
    }

    #[test]
    fn cached_step_matches_uncached_reference_bitwise() {
        let mut cached = simple_two_node();
        let mut naive = simple_two_node();
        let die = cached.node_id("die").unwrap();
        let sink = cached.node_id("sink").unwrap();
        cached.set_power(die, Watts::new(120.0));
        naive.set_power(die, Watts::new(120.0));
        let link = cached.link_id("sink", "ambient").unwrap();
        for k in 0..500 {
            // Exercise every invalidation path mid-run: conductance moves
            // (fan-speed style) every 50 steps, dt switches every 200.
            if k % 50 == 0 {
                let r = KelvinPerWatt::new(0.25 + 0.1 * f64::from(k / 50));
                cached.set_link_resistance_by_id(link, r);
                naive.set_link_resistance("sink", "ambient", r).unwrap();
            }
            let dt = if (k / 200) % 2 == 0 { 0.5 } else { 2.0 };
            cached.step(Seconds::new(dt));
            naive.step_uncached(Seconds::new(dt));
            for id in [die, sink] {
                assert_eq!(
                    cached.temperature(id).value().to_bits(),
                    naive.temperature(id).value().to_bits(),
                    "diverged at step {k}"
                );
            }
        }
    }

    #[test]
    fn boundary_changes_take_effect_without_refactorization() {
        let mut net = simple_two_node();
        let die = net.node_id("die").unwrap();
        net.set_power(die, Watts::new(100.0));
        net.step(Seconds::new(1.0));
        let ambient = net.boundary_id("ambient").unwrap();
        net.set_boundary_by_id(ambient, Celsius::new(50.0));
        // Matrix untouched (boundary is rhs-only), yet the step sees it.
        assert!(!net.matrix_dirty);
        let before = net.temperature(die);
        for _ in 0..10_000 {
            net.step(Seconds::new(1.0));
        }
        assert!(net.temperature(die) > before + 10.0);
    }

    #[test]
    fn unchanged_resistance_keeps_factorization_warm() {
        let mut net = simple_two_node();
        net.step(Seconds::new(1.0));
        let link = net.link_id("sink", "ambient").unwrap();
        net.set_link_resistance_by_id(link, KelvinPerWatt::new(0.25)); // same value
        assert!(!net.matrix_dirty, "identical conductance must not dirty the cache");
        net.set_link_resistance_by_id(link, KelvinPerWatt::new(0.3));
        assert!(net.matrix_dirty);
    }

    #[test]
    fn link_id_reports_unknown_and_missing_links() {
        let net = simple_two_node();
        assert!(matches!(net.link_id("die", "nope"), Err(NetworkError::UnknownName(_))));
        assert!(matches!(net.link_id("die", "ambient"), Err(NetworkError::NoSuchLink(_, _))));
        assert!(net.boundary_id("nope").is_none());
        // Handles are order-insensitive.
        assert_eq!(
            net.link_id("sink", "ambient").unwrap(),
            net.link_id("ambient", "sink").unwrap()
        );
    }
}
