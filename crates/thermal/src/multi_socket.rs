//! The RC-network-backed multi-socket plant.
//!
//! [`crate::ServerThermalModel`] hard-codes the paper's two-node topology.
//! [`MultiSocketPlant`] generalizes it: a [`crate::Topology`] (N sockets,
//! optional chassis spreader) is compiled into a cached-factorization
//! [`crate::RcNetwork`], every socket's sink→ambient link moves with the
//! shared fan speed through its (possibly derated) [`crate::HeatSinkLaw`],
//! and the per-step work is one forward/backward substitution — the LU
//! cache makes N-node stepping as cheap as the hand-rolled pair.

use crate::{
    BoundaryId, FanZoneMap, HeatSinkLaw, LinkId, NetworkError, NodeId, RcNetwork, RcNetworkBuilder,
    Topology, ZoneId,
};
use gfsc_units::{Celsius, JoulesPerKelvin, KelvinPerWatt, Rpm, Seconds, Watts};

/// The base per-socket calibration shared by every socket before topology
/// scaling — the same constants [`crate::ServerThermalModel::date14`] uses,
/// lifted out so the server spec can supply its own values.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantCalibration {
    /// Inlet air temperature.
    pub ambient: Celsius,
    /// Undereated heat-sink resistance law (Table I).
    pub law: HeatSinkLaw,
    /// Heat-sink time constant at `tau_speed`.
    pub sink_tau: Seconds,
    /// The fan speed `sink_tau` is quoted at (Table I: maximum airflow).
    pub tau_speed: Rpm,
    /// Junction-to-sink resistance before per-socket scaling.
    pub r_jc: KelvinPerWatt,
    /// Die thermal time constant.
    pub die_tau: Seconds,
}

/// Per-socket handles resolved once at build time so the step path does no
/// name scans. The fan-dependent sink→ambient links live in the plant's
/// single-zone [`FanZoneMap`], not here.
#[derive(Debug, Clone)]
struct SocketHandles {
    die: NodeId,
    sink: NodeId,
}

/// An N-socket thermal plant on the cached RC network.
///
/// # Examples
///
/// ```
/// use gfsc_thermal::{HeatSinkLaw, MultiSocketPlant, PlantCalibration, Topology};
/// use gfsc_units::{Celsius, KelvinPerWatt, Rpm, Seconds, Watts};
///
/// let cal = PlantCalibration {
///     ambient: Celsius::new(30.0),
///     law: HeatSinkLaw::date14(),
///     sink_tau: Seconds::new(60.0),
///     tau_speed: Rpm::new(8500.0),
///     r_jc: KelvinPerWatt::new(0.10),
///     die_tau: Seconds::new(0.1),
/// };
/// let mut plant = MultiSocketPlant::new(&cal, &Topology::dual_socket()).unwrap();
/// let powers = [Watts::new(140.8), Watts::new(140.8)]; // each socket at u = 0.7
/// for _ in 0..600 {
///     plant.step(Seconds::new(1.0), &powers, Rpm::new(4000.0));
/// }
/// // The downstream socket (derated airflow) runs hotter.
/// assert!(plant.junction(1) > plant.junction(0));
/// ```
#[derive(Debug, Clone)]
pub struct MultiSocketPlant {
    net: RcNetwork,
    sockets: Vec<SocketHandles>,
    /// The one-fan special case of the general fan→link mapping: a single
    /// zone driving every socket's sink→ambient link.
    zones: FanZoneMap,
    zone: ZoneId,
    ambient: Celsius,
    /// Resolved once at build so `set_ambient` never does a name lookup
    /// (or a fallible one) on the runtime path.
    ambient_boundary: BoundaryId,
}

impl MultiSocketPlant {
    /// Compiles `topology` against the base calibration, starting in
    /// equilibrium with the ambient at `cal.tau_speed` airflow.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the compiled network is inconsistent
    /// (cannot happen for the stock topology builders).
    ///
    /// # Panics
    ///
    /// Panics if `topology` fails [`Topology::validate`].
    pub fn new(cal: &PlantCalibration, topology: &Topology) -> Result<Self, NetworkError> {
        topology.validate();
        let fan0 = cal.tau_speed;
        let segments = topology.sink_segments();
        let mut builder = RcNetworkBuilder::new().boundary("ambient", cal.ambient);
        let mut sink_cap_sum = 0.0;
        for socket in topology.sockets() {
            let law = cal.law.with_airflow_derate(socket.airflow_derate);
            let r_jc = KelvinPerWatt::new(cal.r_jc.value() * socket.r_jc_scale);
            // Capacitances from the quoted time constants, exactly as the
            // hand-rolled nodes calibrate them: C = tau / R(tau_speed) for
            // the sink, C = die_tau / R_jc for the die.
            let sink_cap = JoulesPerKelvin::from_time_constant(cal.sink_tau, law.resistance(fan0));
            let die_cap = JoulesPerKelvin::from_time_constant(cal.die_tau, r_jc);
            sink_cap_sum += sink_cap.value();
            let die = format!("die-{}", socket.name);
            let sink = format!("sink-{}", socket.name);
            builder = builder.node(die.clone(), die_cap, cal.ambient).link(die, sink.clone(), r_jc);
            if segments == 0 {
                builder = builder.node(sink.clone(), sink_cap, cal.ambient).link(
                    sink,
                    "ambient",
                    law.resistance(fan0),
                );
                continue;
            }
            // Folded fin-array sink: the lumped capacitance splits evenly
            // between base plate and fins, each fin carries `segments`× the
            // sink law's resistance (so the fins in parallel reproduce the
            // lumped convective path), the base spreads into every fin, and
            // the fins couple pairwise — the dense Schur-complement remnant
            // of eliminating the fast shared-air node from a detailed model.
            let fin_law = law.with_airflow_derate(segments as f64);
            let node_cap = JoulesPerKelvin::new(sink_cap.value() / (segments + 1) as f64);
            let spread = KelvinPerWatt::new(0.2);
            let mix = KelvinPerWatt::new(0.8);
            builder = builder.node(sink.clone(), node_cap, cal.ambient);
            for j in 0..segments {
                let fin = format!("fin{j}-{}", socket.name);
                builder = builder
                    .node(fin.clone(), node_cap, cal.ambient)
                    .link(sink.clone(), fin.clone(), spread)
                    .link(fin.clone(), "ambient", fin_law.resistance(fan0));
                for i in 0..j {
                    builder = builder.link(format!("fin{i}-{}", socket.name), fin.clone(), mix);
                }
            }
        }
        if let Some(chassis) = topology.chassis() {
            let cap = JoulesPerKelvin::new(
                chassis.capacitance_scale * sink_cap_sum / topology.sockets().len() as f64,
            );
            builder = builder.node("chassis", cap, cal.ambient);
            for socket in topology.sockets() {
                builder =
                    builder.link(format!("sink-{}", socket.name), "chassis", chassis.coupling);
            }
            builder = builder.link("chassis", "ambient", chassis.exhaust);
        }
        let net = builder.build()?;
        let mut zones = FanZoneMap::new();
        let zone = zones.add_zone("fan", fan0);
        let node = |name: String| net.node_id(&name).ok_or(NetworkError::UnknownName(name));
        let mut sockets = Vec::with_capacity(topology.sockets().len());
        for socket in topology.sockets() {
            let sink_name = format!("sink-{}", socket.name);
            let law = cal.law.with_airflow_derate(socket.airflow_derate);
            if segments == 0 {
                zones.attach(zone, net.link_id(&sink_name, "ambient")?, law);
            } else {
                // Every fin breathes the shared fan; identical laws per
                // socket let the zone evaluate the law once per socket.
                let fin_law = law.with_airflow_derate(segments as f64);
                for j in 0..segments {
                    zones.attach(
                        zone,
                        net.link_id(&format!("fin{j}-{}", socket.name), "ambient")?,
                        fin_law,
                    );
                }
            }
            sockets.push(SocketHandles {
                die: node(format!("die-{}", socket.name))?,
                sink: node(sink_name)?,
            });
        }
        let ambient_boundary =
            net.boundary_id("ambient").ok_or(NetworkError::UnknownName("ambient".to_owned()))?;
        Ok(Self { net, sockets, zones, zone, ambient: cal.ambient, ambient_boundary })
    }

    /// Number of sockets.
    #[must_use]
    pub fn socket_count(&self) -> usize {
        self.sockets.len()
    }

    /// Junction (die) temperature of socket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn junction(&self, i: usize) -> Celsius {
        self.net.temperature(self.sockets[i].die)
    }

    /// Heat-sink temperature of socket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn heat_sink(&self, i: usize) -> Celsius {
        self.net.temperature(self.sockets[i].sink)
    }

    /// The hottest junction across all sockets — what a global max
    /// aggregation of ideal sensors would report.
    #[must_use]
    pub fn hottest_junction(&self) -> Celsius {
        let mut hottest = self.junction(0);
        for i in 1..self.sockets.len() {
            hottest = hottest.max(self.junction(i));
        }
        hottest
    }

    /// Inlet air temperature.
    #[must_use]
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// Changes the inlet air temperature (right-hand-side only; the cached
    /// factorization stays warm).
    pub fn set_ambient(&mut self, ambient: Celsius) {
        self.ambient = ambient;
        self.net.set_boundary_by_id(self.ambient_boundary, ambient);
    }

    /// Advances the plant by `dt` under per-socket CPU powers `powers`
    /// (one entry per socket — each socket burns its *own* power; the
    /// caller derives the split from its load model) and shared fan speed
    /// `fan`.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` differs from the socket count.
    pub fn step(&mut self, dt: Seconds, powers: &[Watts], fan: Rpm) {
        assert_eq!(powers.len(), self.sockets.len(), "one power per socket");
        for (socket, &power) in self.sockets.iter().zip(powers) {
            self.net.set_power(socket.die, power);
        }
        // Unchanged fan speed keeps the factorization warm (the setter
        // skips identical conductances).
        self.zones.set_fan(&mut self.net, self.zone, fan);
        self.net.step(dt);
    }

    /// Everything [`MultiSocketPlant::step`] does *except* solving the
    /// network: applies per-socket powers and the fan speed's conductances.
    /// The batched sweep engine calls this per lane, then advances all
    /// lanes' networks together through one
    /// [`crate::BatchRcNetwork::step`] — bitwise identical to calling
    /// [`MultiSocketPlant::step`] on each plant alone.
    ///
    /// After preparing, the caller **must** step [`Self::network_mut`]
    /// (scalar or batched) to complete the plant step.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` differs from the socket count.
    pub fn prepare_step(&mut self, powers: &[Watts], fan: Rpm) {
        assert_eq!(powers.len(), self.sockets.len(), "one power per socket");
        for (socket, &power) in self.sockets.iter().zip(powers) {
            self.net.set_power(socket.die, power);
        }
        self.zones.set_fan(&mut self.net, self.zone, fan);
    }

    /// The plant's RC network — read access for batch-lane registration
    /// and structure checks.
    #[must_use]
    pub fn network(&self) -> &RcNetwork {
        &self.net
    }

    /// Mutable access to the plant's RC network, for the batched stepper
    /// to solve after [`MultiSocketPlant::prepare_step`]. Mutating anything
    /// but the step state through this handle voids the plant's handles;
    /// it exists for the batch engine, not for re-plumbing.
    #[must_use]
    pub fn network_mut(&mut self) -> &mut RcNetwork {
        &mut self.net
    }

    /// Steady-state junction temperatures at `(powers, fan)` without
    /// disturbing the transient state.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` differs from the socket count.
    #[must_use]
    pub fn steady_state_junctions(&self, powers: &[Watts], fan: Rpm) -> Vec<Celsius> {
        let temps = self.probe(powers, fan);
        self.sockets.iter().map(|s| temps[s.die_index()]).collect()
    }

    /// The hottest steady-state junction at `(powers, fan)`.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` differs from the socket count.
    #[must_use]
    pub fn steady_state_hottest(&self, powers: &[Watts], fan: Rpm) -> Celsius {
        let temps = self.probe(powers, fan);
        let Some((first, rest)) = self.sockets.split_first() else {
            // A socketless topology cannot compile; ambient is the honest
            // "nothing to scan" answer rather than an index panic.
            return self.ambient;
        };
        let mut hottest = temps[first.die_index()];
        for s in rest {
            hottest = hottest.hotter(temps[s.die_index()]);
        }
        hottest
    }

    /// Non-mutating steady-state probe at a hypothetical operating point.
    fn probe(&self, powers: &[Watts], fan: Rpm) -> Vec<Celsius> {
        assert_eq!(powers.len(), self.sockets.len(), "one power per socket");
        let mut link_overrides: Vec<(LinkId, KelvinPerWatt)> = Vec::new();
        self.zones.extend_overrides(self.zone, fan, &mut link_overrides);
        let power_overrides: Vec<(NodeId, Watts)> =
            self.sockets.iter().zip(powers).map(|(s, &p)| (s.die, p)).collect();
        self.net.steady_state_with(&link_overrides, &power_overrides)
    }

    /// The minimum fan speed keeping every steady-state junction at or
    /// below `limit` under per-socket `powers`, or `None` if even
    /// unbounded airflow cannot.
    ///
    /// The two-node model inverts its law analytically; an N-socket plant
    /// with chassis coupling has no closed form, so this bisects the
    /// monotone hottest-junction curve over the steady-state probe
    /// (deterministic: fixed bracket, fixed iteration count).
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` differs from the socket count.
    #[must_use]
    pub fn min_safe_fan_speed(&self, powers: &[Watts], limit: Celsius) -> Option<Rpm> {
        if powers.iter().all(|p| p.value() <= 0.0) {
            return Some(Rpm::new(0.0));
        }
        // The law saturates below 100 rpm, so v = 100 is the stopped-fan
        // envelope; 1e6 rpm is numerically indistinguishable from the
        // infinite-airflow asymptote.
        let (lo, hi) = (100.0, 1e6);
        if self.steady_state_hottest(powers, Rpm::new(lo)) <= limit {
            return Some(Rpm::new(0.0));
        }
        if self.steady_state_hottest(powers, Rpm::new(hi)) > limit {
            return None;
        }
        // 40 halvings take the 1e6-wide bracket to ~1e-6 rpm — far past
        // any fan actuator's resolution; more iterations cannot change the
        // commanded speed and each costs a dense steady-state solve.
        let (mut lo, mut hi) = (lo, hi);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if self.steady_state_hottest(powers, Rpm::new(mid)) > limit {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(Rpm::new(hi))
    }

    /// Snaps the whole network (dies, sinks, chassis) to its equilibrium at
    /// `(powers, fan)` and makes that the active operating point.
    ///
    /// # Panics
    ///
    /// Panics if `powers.len()` differs from the socket count.
    pub fn equilibrate(&mut self, powers: &[Watts], fan: Rpm) {
        assert_eq!(powers.len(), self.sockets.len(), "one power per socket");
        for (socket, &power) in self.sockets.iter().zip(powers) {
            self.net.set_power(socket.die, power);
        }
        self.zones.set_fan(&mut self.net, self.zone, fan);
        self.net.snap_to_steady_state();
    }

    /// Resets every node to thermal equilibrium with the ambient (zero
    /// power).
    pub fn reset(&mut self) {
        for i in 0..self.net.node_names().len() {
            self.net.set_temperature(NodeId::from_index(i), self.ambient);
        }
    }

    /// The shared fan speed of the most recent step/equilibrate call.
    #[must_use]
    pub fn fan_speed(&self) -> Rpm {
        self.zones.fan(self.zone)
    }
}

impl SocketHandles {
    /// The die node's index into the network's node-ordered vectors.
    fn die_index(&self) -> usize {
        self.die.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> PlantCalibration {
        PlantCalibration {
            ambient: Celsius::new(30.0),
            law: HeatSinkLaw::date14(),
            sink_tau: Seconds::new(60.0),
            tau_speed: Rpm::new(8500.0),
            r_jc: KelvinPerWatt::new(0.10),
            die_tau: Seconds::new(0.1),
        }
    }

    #[test]
    fn single_socket_steady_state_matches_two_node_model() {
        use crate::ServerThermalModel;
        let plant = MultiSocketPlant::new(&cal(), &Topology::single_socket()).unwrap();
        let model = ServerThermalModel::date14(Celsius::new(30.0));
        for (p, v) in [(96.0, 2000.0), (140.8, 4000.0), (160.0, 8500.0)] {
            let net = plant.steady_state_hottest(&[Watts::new(p)], Rpm::new(v));
            let exact = model.steady_state_junction(Watts::new(p), Rpm::new(v));
            assert!((net - exact).abs() < 1e-9, "p={p} v={v}: {net} vs {exact}");
        }
    }

    #[test]
    fn downstream_socket_runs_hotter() {
        let mut plant = MultiSocketPlant::new(&cal(), &Topology::quad_socket()).unwrap();
        plant.equilibrate(&[Watts::new(140.8); 4], Rpm::new(4000.0));
        for i in 1..4 {
            assert!(
                plant.junction(i) > plant.junction(i - 1),
                "socket {i} not hotter: {} vs {}",
                plant.junction(i),
                plant.junction(i - 1)
            );
        }
        assert_eq!(plant.hottest_junction(), plant.junction(3));
    }

    #[test]
    fn chassis_couples_the_sockets() {
        // All power on socket 0: with the chassis spreader, socket 1's sink
        // must sit measurably above ambient purely through coupling.
        let hot_idle = [Watts::new(160.0), Watts::new(0.0)];
        let mut plant = MultiSocketPlant::new(&cal(), &Topology::blade_chassis()).unwrap();
        plant.equilibrate(&hot_idle, Rpm::new(3000.0));
        assert!(
            plant.heat_sink(1) > Celsius::new(30.5),
            "no cross-socket coupling: sink1 at {}",
            plant.heat_sink(1)
        );
        // Without a chassis the idle socket stays at ambient.
        let mut plant = MultiSocketPlant::new(&cal(), &Topology::dual_socket()).unwrap();
        plant.equilibrate(&hot_idle, Rpm::new(3000.0));
        assert!(plant.heat_sink(1) < Celsius::new(30.1));
    }

    #[test]
    fn transient_converges_to_probed_steady_state() {
        let mut plant = MultiSocketPlant::new(&cal(), &Topology::dual_socket()).unwrap();
        let (p, v) = ([Watts::new(140.8); 2], Rpm::new(4000.0));
        let ss = plant.steady_state_junctions(&p, v);
        for _ in 0..100_000 {
            plant.step(Seconds::new(1.0), &p, v);
        }
        for (i, &ss_i) in ss.iter().enumerate() {
            assert!((plant.junction(i) - ss_i).abs() < 1e-6, "socket {i}");
        }
        // The probe itself never disturbed the live state.
        assert_eq!(plant.fan_speed(), v);
    }

    #[test]
    fn min_safe_fan_speed_is_tight_and_monotone() {
        let plant = MultiSocketPlant::new(&cal(), &Topology::dual_socket()).unwrap();
        let p = [Watts::new(140.8); 2];
        let limit = Celsius::new(75.0);
        let v = plant.min_safe_fan_speed(&p, limit).expect("reachable");
        let at = plant.steady_state_hottest(&p, v);
        assert!((at - limit).abs() < 0.01, "at {at}");
        assert!(plant.steady_state_hottest(&p, v + 100.0) < limit);
        assert!(plant.steady_state_hottest(&p, v - 100.0) > limit);
    }

    #[test]
    fn min_safe_fan_speed_edge_cases() {
        let plant = MultiSocketPlant::new(&cal(), &Topology::dual_socket()).unwrap();
        assert_eq!(
            plant.min_safe_fan_speed(&[Watts::new(0.0); 2], Celsius::new(35.0)),
            Some(Rpm::new(0.0))
        );
        // 160 W per socket through the shared floor cannot hold 40 °C at
        // 30 °C ambient.
        assert!(plant.min_safe_fan_speed(&[Watts::new(160.0); 2], Celsius::new(40.0)).is_none());
        // Trivially safe limit: even a stopped fan suffices.
        assert_eq!(
            plant.min_safe_fan_speed(&[Watts::new(0.5); 2], Celsius::new(90.0)),
            Some(Rpm::new(0.0))
        );
    }

    #[test]
    fn finned_plant_behaves_like_a_server() {
        // The fin-array expansion changes the matrix structure, not the
        // physics: downstream sockets still run hotter, more airflow still
        // cools, and the min-safe probe still lands tight on the limit.
        let mut plant = MultiSocketPlant::new(&cal(), &Topology::finned(2, 8)).unwrap();
        let p = [Watts::new(140.8); 2];
        plant.equilibrate(&p, Rpm::new(4000.0));
        assert!(plant.junction(1) > plant.junction(0), "downstream socket not hotter");
        assert!(plant.hottest_junction() > plant.ambient());
        let slow = plant.steady_state_hottest(&p, Rpm::new(3000.0));
        let fast = plant.steady_state_hottest(&p, Rpm::new(6000.0));
        assert!(fast < slow, "more airflow must cool the fins: {fast} vs {slow}");
        let limit = Celsius::new(75.0);
        let v = plant.min_safe_fan_speed(&p, limit).expect("reachable");
        let at = plant.steady_state_hottest(&p, v);
        assert!((at - limit).abs() < 0.01, "at {at}");
        assert!(plant.steady_state_hottest(&p, v + 100.0) < limit);
        assert!(plant.steady_state_hottest(&p, v - 100.0) > limit);
    }

    #[test]
    fn finned_transient_converges_to_probed_steady_state() {
        let mut plant = MultiSocketPlant::new(&cal(), &Topology::finned(2, 8)).unwrap();
        let (p, v) = ([Watts::new(140.8); 2], Rpm::new(4000.0));
        let ss = plant.steady_state_junctions(&p, v);
        for _ in 0..100_000 {
            plant.step(Seconds::new(1.0), &p, v);
        }
        for (i, &ss_i) in ss.iter().enumerate() {
            assert!((plant.junction(i) - ss_i).abs() < 1e-6, "socket {i}");
        }
    }

    #[test]
    fn ambient_shifts_equilibrium() {
        let mut plant = MultiSocketPlant::new(&cal(), &Topology::dual_socket()).unwrap();
        let p = [Watts::new(100.0); 2];
        let a = plant.steady_state_hottest(&p, Rpm::new(4000.0));
        plant.set_ambient(Celsius::new(40.0));
        let b = plant.steady_state_hottest(&p, Rpm::new(4000.0));
        assert!((b - a - 10.0).abs() < 1e-9);
        assert_eq!(plant.ambient(), Celsius::new(40.0));
    }

    #[test]
    fn reset_returns_to_ambient() {
        let mut plant = MultiSocketPlant::new(&cal(), &Topology::dual_socket()).unwrap();
        plant.equilibrate(&[Watts::new(140.8); 2], Rpm::new(3000.0));
        assert!(plant.hottest_junction() > Celsius::new(50.0));
        plant.reset();
        for i in 0..2 {
            assert_eq!(plant.junction(i), Celsius::new(30.0));
            assert_eq!(plant.heat_sink(i), Celsius::new(30.0));
        }
    }
}
