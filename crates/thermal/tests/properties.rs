//! Property-based tests for the thermal models.

use gfsc_thermal::{
    FanZoneMap, HeatSinkLaw, HeatSinkNode, MultiSocketPlant, PlantCalibration, RcNetworkBuilder,
    ServerThermalModel, Topology, ZoneId,
};
use gfsc_units::{Celsius, JoulesPerKelvin, KelvinPerWatt, Rpm, Seconds, Watts};
use proptest::prelude::*;

fn date14_calibration() -> PlantCalibration {
    PlantCalibration {
        ambient: Celsius::new(30.0),
        law: HeatSinkLaw::date14(),
        sink_tau: Seconds::new(60.0),
        tau_speed: Rpm::new(8500.0),
        r_jc: KelvinPerWatt::new(0.10),
        die_tau: Seconds::new(0.1),
    }
}

proptest! {
    /// The resistance law is strictly decreasing in fan speed.
    #[test]
    fn law_is_monotonically_decreasing(v in 200.0f64..8400.0, dv in 1.0f64..500.0) {
        let law = HeatSinkLaw::date14();
        let r1 = law.resistance(Rpm::new(v)).value();
        let r2 = law.resistance(Rpm::new(v + dv)).value();
        prop_assert!(r2 < r1);
    }

    /// The law inversion is a right inverse over the operating range.
    #[test]
    fn law_inversion_round_trips(v in 150.0f64..20_000.0) {
        let law = HeatSinkLaw::date14();
        let r = law.resistance(Rpm::new(v));
        let back = law.speed_for_resistance(r).unwrap();
        prop_assert!((back.value() - v).abs() / v < 1e-6);
    }

    /// One exact-exponential step always lands between the starting
    /// temperature and the steady state (no overshoot, ever).
    #[test]
    fn heatsink_step_contracts_toward_steady_state(
        t0 in 10.0f64..120.0,
        p in 0.0f64..200.0,
        v in 500.0f64..8500.0,
        dt in 0.01f64..300.0,
    ) {
        let mut node = HeatSinkNode::date14(Celsius::new(t0));
        let amb = Celsius::new(30.0);
        let ss = node.steady_state(amb, Watts::new(p), Rpm::new(v));
        let before = node.temperature();
        let after = node.step(Seconds::new(dt), amb, Watts::new(p), Rpm::new(v));
        let lo = before.min(ss);
        let hi = before.max(ss);
        prop_assert!(after >= lo - 1e-9 && after <= hi + 1e-9,
            "step left [{lo}, {hi}]: {after}");
    }

    /// Splitting a step in two gives the same result as one big step
    /// (semigroup property of the exact exponential integrator).
    #[test]
    fn heatsink_step_is_a_semigroup(
        t0 in 10.0f64..120.0,
        p in 0.0f64..200.0,
        v in 500.0f64..8500.0,
        dt in 0.1f64..100.0,
    ) {
        let amb = Celsius::new(30.0);
        let mut one = HeatSinkNode::date14(Celsius::new(t0));
        one.step(Seconds::new(dt), amb, Watts::new(p), Rpm::new(v));
        let mut two = HeatSinkNode::date14(Celsius::new(t0));
        two.step(Seconds::new(dt / 2.0), amb, Watts::new(p), Rpm::new(v));
        two.step(Seconds::new(dt / 2.0), amb, Watts::new(p), Rpm::new(v));
        prop_assert!((one.temperature() - two.temperature()).abs() < 1e-9);
    }

    /// Steady-state junction temperature increases with power and decreases
    /// with fan speed.
    #[test]
    fn junction_monotone_in_power_and_fan(
        p in 96.0f64..159.0,
        v in 1000.0f64..8000.0,
    ) {
        let m = ServerThermalModel::date14(Celsius::new(30.0));
        let base = m.steady_state_junction(Watts::new(p), Rpm::new(v));
        let hotter = m.steady_state_junction(Watts::new(p + 1.0), Rpm::new(v));
        let cooler = m.steady_state_junction(Watts::new(p), Rpm::new(v + 500.0));
        prop_assert!(hotter > base);
        prop_assert!(cooler < base);
    }

    /// `min_safe_fan_speed` really is the boundary of safety when it exists.
    #[test]
    fn min_safe_fan_speed_is_tight(
        p in 100.0f64..160.0,
        limit in 60.0f64..95.0,
    ) {
        let m = ServerThermalModel::date14(Celsius::new(30.0));
        if let Some(v) = m.min_safe_fan_speed(Watts::new(p), Celsius::new(limit)) {
            if v.value() > 150.0 {
                let at = m.steady_state_junction(Watts::new(p), v);
                prop_assert!(at <= Celsius::new(limit + 0.01), "unsafe at v: {at}");
                let below = m.steady_state_junction(Watts::new(p), v - 50.0);
                prop_assert!(below >= Celsius::new(limit - 0.01), "not minimal: {below}");
            }
        }
    }

    /// The RC-network-backed two-node plant matches `ServerThermalModel`
    /// step for step: identical steady states (the equilibrium is
    /// integrator-independent, so agreement is to solver precision) and
    /// transient junction trajectories within the backward-Euler
    /// first-order error bound, across random power/fan operating
    /// sequences at the production 0.5 s step.
    #[test]
    fn network_two_node_plant_tracks_server_model_step_for_step(
        powers in proptest::collection::vec(96.0f64..160.0, 1..5),
        fans in proptest::collection::vec(1500.0f64..8500.0, 1..5),
    ) {
        let cal = date14_calibration();
        let mut network = MultiSocketPlant::new(&cal, &Topology::single_socket()).unwrap();
        let mut exact = ServerThermalModel::date14(Celsius::new(30.0));
        let phases = powers.len().min(fans.len());
        for k in 0..phases {
            let (p, v) = (Watts::new(powers[k]), Rpm::new(fans[k]));
            // Steady states agree to solver precision at every phase's
            // operating point.
            let ss_net = network.steady_state_hottest(&[p], v);
            let ss_exact = exact.steady_state_junction(p, v);
            prop_assert!((ss_net - ss_exact).abs() < 1e-9,
                "steady state diverged: {ss_net} vs {ss_exact}");
            // 400 s of transient per phase at the production step: the
            // integrators differ (backward Euler vs exact exponential) by
            // at most the first-order bound dt/(2 tau) of the 60 s sink —
            // well under 0.5 K on any Table I excursion. The first ~2 s
            // after a power/fan step are excluded: there the 0.1 s die
            // node's sub-step transient (which the exact model resolves and
            // a 0.5 s backward-Euler step legitimately smears over a few
            // steps) dominates, and no controller samples that fast.
            for s in 0..800 {
                network.step(Seconds::new(0.5), &[p], v);
                exact.step(Seconds::new(0.5), p, v);
                let (a, b) = (network.hottest_junction(), exact.junction());
                prop_assert!(s < 4 || (a - b).abs() < 0.5,
                    "transient diverged at (p={p}, v={v}), step {s}: {a} vs {b}");
            }
        }
        // Hold the last operating point: both settle onto the *same*
        // equilibrium.
        let (p, v) = (Watts::new(powers[phases - 1]), Rpm::new(fans[phases - 1]));
        for _ in 0..40_000 {
            network.step(Seconds::new(0.5), &[p], v);
            exact.step(Seconds::new(0.5), p, v);
        }
        let (a, b) = (network.hottest_junction(), exact.junction());
        prop_assert!((a - b).abs() < 1e-6, "settled states differ: {a} vs {b}");
    }

    /// Multi-socket min-safe-speed bisection agrees with the analytic
    /// two-node inversion when the topology is the plain single socket.
    #[test]
    fn network_min_safe_speed_matches_analytic_inversion(
        p in 100.0f64..160.0,
        limit in 60.0f64..95.0,
    ) {
        let plant = MultiSocketPlant::new(&date14_calibration(), &Topology::single_socket()).unwrap();
        let exact = ServerThermalModel::date14(Celsius::new(30.0));
        let a = plant.min_safe_fan_speed(&[Watts::new(p)], Celsius::new(limit));
        let b = exact.min_safe_fan_speed(Watts::new(p), Celsius::new(limit));
        match (a, b) {
            (Some(va), Some(vb)) => {
                // Both clamp to the law floor below 100 rpm; above it the
                // bisection must land on the analytic root.
                if vb.value() > 150.0 {
                    prop_assert!((va - vb).abs() / vb.value() < 1e-6,
                        "roots differ: {va} vs {vb}");
                }
            }
            (None, None) => {}
            (a, b) => prop_assert!(false, "feasibility disagrees: {a:?} vs {b:?}"),
        }
    }

    /// Backward-Euler networks never escape the envelope spanned by the
    /// boundary temperature and the hottest steady state.
    #[test]
    fn network_temperatures_stay_in_physical_envelope(
        p in 0.0f64..200.0,
        steps in 1usize..200,
        dt in 0.1f64..10.0,
    ) {
        let mut net = RcNetworkBuilder::new()
            .node("die", JoulesPerKelvin::new(1.0), Celsius::new(30.0))
            .node("sink", JoulesPerKelvin::new(300.0), Celsius::new(30.0))
            .boundary("ambient", Celsius::new(30.0))
            .link("die", "sink", KelvinPerWatt::new(0.1))
            .link("sink", "ambient", KelvinPerWatt::new(0.25))
            .build()
            .unwrap();
        let die = net.node_id("die").unwrap();
        net.set_power(die, Watts::new(p));
        let ss = net.steady_state();
        let hi = ss[0].value().max(ss[1].value()).max(30.0) + 1e-6;
        for _ in 0..steps {
            net.step(Seconds::new(dt));
            for id in [net.node_id("die").unwrap(), net.node_id("sink").unwrap()] {
                let t = net.temperature(id).value();
                prop_assert!(t >= 30.0 - 1e-6 && t <= hi, "escaped envelope: {t}");
            }
        }
    }

    /// The cached-factorization `step` matches the naive assemble-and-solve
    /// reference to 1e-9 on random networks — random node counts,
    /// capacitances, resistances, powers and step sizes — including a
    /// mid-run conductance change and a mid-run `dt` change, the two events
    /// that invalidate the cache.
    #[test]
    fn cached_step_matches_naive_reference_on_random_networks(
        caps in proptest::collection::vec(0.5f64..500.0, 2..7),
        resistances in proptest::collection::vec(0.05f64..2.0, 2..7),
        powers in proptest::collection::vec(0.0f64..200.0, 2..7),
        dt1 in 0.05f64..5.0,
        dt2 in 0.05f64..5.0,
        new_r in 0.05f64..2.0,
        steps in 2usize..40,
    ) {
        // A chain topology: node0 - node1 - ... - ambient; length set by the
        // shortest generated vector.
        let n = caps.len().min(resistances.len()).min(powers.len());
        let mut builder = RcNetworkBuilder::new();
        for (i, &c) in caps.iter().take(n).enumerate() {
            builder = builder.node(format!("n{i}"), JoulesPerKelvin::new(c), Celsius::new(30.0));
        }
        builder = builder.boundary("ambient", Celsius::new(30.0));
        for (i, &r) in resistances.iter().take(n).enumerate() {
            let to = if i + 1 == n { "ambient".to_owned() } else { format!("n{}", i + 1) };
            builder = builder.link(format!("n{i}"), to, KelvinPerWatt::new(r));
        }
        let mut cached = builder.build().unwrap();
        let mut naive = cached.clone();
        for (i, &p) in powers.iter().take(n).enumerate() {
            let id = cached.node_id(&format!("n{i}")).unwrap();
            cached.set_power(id, Watts::new(p));
            naive.set_power(id, Watts::new(p));
        }
        let last_link = cached.link_id(&format!("n{}", n - 1), "ambient").unwrap();
        for k in 0..steps {
            // Mid-run invalidations: swap dt halfway, move the
            // sink→ambient-style conductance two thirds in.
            let dt = if k < steps / 2 { dt1 } else { dt2 };
            if k == (2 * steps) / 3 {
                cached.set_link_resistance_by_id(last_link, KelvinPerWatt::new(new_r));
                naive
                    .set_link_resistance(&format!("n{}", n - 1), "ambient", KelvinPerWatt::new(new_r))
                    .unwrap();
            }
            cached.step(Seconds::new(dt));
            naive.step_uncached(Seconds::new(dt));
            for i in 0..n {
                let id = cached.node_id(&format!("n{i}")).unwrap();
                let a = cached.temperature(id).value();
                let b = naive.temperature(id).value();
                prop_assert!((a - b).abs() < 1e-9, "node {i} diverged at step {k}: {a} vs {b}");
            }
        }
    }
}

proptest! {
    /// The fan→link mapping is a true partition with a lossless round
    /// trip: for a random assignment of sink links across a random number
    /// of zones, (a) each zone's probe overrides are exactly its own
    /// attached links at its own law — the union covers every attached
    /// link, pairwise disjoint; (b) `set_fan` re-parameterizes exactly the
    /// zone's own links (bitwise equal to setting them by hand) and
    /// leaves every other zone's links untouched; (c) the zone's declared
    /// fan speed reads back exactly.
    #[test]
    fn fan_zone_map_link_partition_round_trips(
        sinks in 2usize..9,
        zone_count in 1usize..5,
        assignment_seed in 0u64..4096,
        fan in 500.0f64..9000.0,
    ) {
        let law = HeatSinkLaw::date14();
        let mut builder = RcNetworkBuilder::new().boundary("ambient", Celsius::new(30.0));
        for i in 0..sinks {
            builder = builder.node(format!("sink{i}"), JoulesPerKelvin::new(300.0), Celsius::new(30.0)).link(
                format!("sink{i}"),
                "ambient",
                law.with_airflow_derate(1.0 + 0.1 * i as f64).resistance(Rpm::new(8500.0)),
            );
        }
        let mut net = builder.build().unwrap();

        // Deterministic pseudo-random link→zone assignment.
        let mut state = assignment_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut zones = FanZoneMap::new();
        let ids: Vec<ZoneId> =
            (0..zone_count).map(|z| zones.add_zone(format!("z{z}"), Rpm::new(8500.0))).collect();
        let mut owner = vec![0usize; sinks];
        for (i, slot) in owner.iter_mut().enumerate() {
            *slot = (next() as usize) % zone_count;
            let link = net.link_id(&format!("sink{i}"), "ambient").unwrap();
            zones.attach(ids[*slot], link, law.with_airflow_derate(1.0 + 0.1 * i as f64));
        }

        // (a) Partition: per-zone overrides are exactly the zone's links,
        // the union is all attached links, and no link appears twice.
        let mut seen = vec![false; sinks];
        let mut total = 0usize;
        for (z, &zone) in ids.iter().enumerate() {
            let mut overrides = Vec::new();
            zones.extend_overrides(zone, Rpm::new(fan), &mut overrides);
            prop_assert_eq!(overrides.len(), zones.link_count(zone));
            for (link, resistance) in overrides {
                let i = (0..sinks)
                    .find(|&i| net.link_id(&format!("sink{i}"), "ambient").unwrap() == link)
                    .expect("override refers to an attached link");
                prop_assert_eq!(owner[i], z, "link {} surfaced in zone {}", i, z);
                prop_assert!(!seen[i], "link {} appeared in two zones", i);
                seen[i] = true;
                total += 1;
                // Each link is probed through its own derated law.
                let expected = law.with_airflow_derate(1.0 + 0.1 * i as f64)
                    .resistance(Rpm::new(fan));
                prop_assert_eq!(resistance.value().to_bits(), expected.value().to_bits());
            }
        }
        prop_assert_eq!(total, sinks, "some attached link surfaced in no zone");

        // (b) + (c) Round trip: set one zone's fan; exactly its links move
        // (bitwise to the hand-set value), everything else holds.
        let target = ids[(next() as usize) % zone_count];
        zones.set_fan(&mut net, target, Rpm::new(fan));
        prop_assert_eq!(zones.fan(target).value().to_bits(), fan.to_bits());
        for i in 0..sinks {
            let link = net.link_id(&format!("sink{i}"), "ambient").unwrap();
            let expected = if ids[owner[i]] == target {
                law.with_airflow_derate(1.0 + 0.1 * i as f64).resistance(Rpm::new(fan))
            } else {
                law.with_airflow_derate(1.0 + 0.1 * i as f64).resistance(Rpm::new(8500.0))
            };
            // The network stores conductances, so the read-back passes
            // through 1/(1/r): compare to double-rounding precision.
            let got = net.link_resistance_by_id(link).value();
            prop_assert!(
                (got - expected.value()).abs() <= 1e-12 * expected.value(),
                "link {} moved unexpectedly: {} vs {}", i, got, expected.value()
            );
        }
    }
}

proptest! {
    /// The batched stepper is a drop-in for the scalar integrator: over
    /// random chain-with-cross-link topologies, random capacitances and
    /// resistances, and a random power/conductance schedule, every lane of
    /// a [`gfsc_thermal::BatchRcNetwork`] (including the degenerate B=1
    /// batch) replays `RcNetwork::step` bit for bit.
    #[test]
    fn batch_lanes_match_scalar_step_bitwise(
        n in 2usize..6,
        lanes in 1usize..4,
        caps in proptest::collection::vec(0.5f64..400.0, 6..7),
        res in proptest::collection::vec(0.05f64..2.0, 8..9),
        powers in proptest::collection::vec(0.0f64..200.0, 24..25),
        dt in 0.05f64..5.0,
    ) {
        use gfsc_thermal::{BatchRcNetwork, RcNetwork};
        let build = || {
            let mut b = RcNetworkBuilder::new();
            for (i, &cap) in caps.iter().enumerate().take(n) {
                b = b.node(format!("n{i}"), JoulesPerKelvin::new(cap), Celsius::new(30.0));
            }
            b = b.boundary("amb", Celsius::new(30.0));
            for (i, &r) in res.iter().enumerate().take(n - 1) {
                b = b.link(format!("n{i}"), format!("n{}", i + 1), KelvinPerWatt::new(r));
            }
            b = b.link(format!("n{}", n - 1), "amb", KelvinPerWatt::new(res[n - 1]));
            if n >= 3 {
                // A cross link makes the matrix genuinely 2-D, not tridiagonal.
                b = b.link("n0", "n2", KelvinPerWatt::new(res[n]));
            }
            b.build().unwrap()
        };
        let mut batched: Vec<RcNetwork> = (0..lanes).map(|_| build()).collect();
        let mut scalar: Vec<RcNetwork> = (0..lanes).map(|_| build()).collect();
        let hot = batched[0].node_id("n0").unwrap();
        let tail_link = batched[0]
            .link_id(&format!("n{}", n - 1), "amb")
            .unwrap();
        let mut batch = BatchRcNetwork::new(&batched.iter().collect::<Vec<_>>()).unwrap();
        for (step, &p) in powers.iter().enumerate() {
            for lane in 0..lanes {
                // Per-lane power schedule plus a conductance move every
                // fourth step: the scalar caches refactorize, the batch
                // regroups — trajectories must stay identical.
                let lane_p = Watts::new(p + 11.0 * lane as f64);
                let r = KelvinPerWatt::new(res[(step / 4 + lane) % res.len()]);
                for net in [&mut batched[lane], &mut scalar[lane]] {
                    net.set_power(hot, lane_p);
                    if step % 4 == 0 {
                        net.set_link_resistance_by_id(tail_link, r);
                    }
                }
            }
            let mut refs: Vec<&mut RcNetwork> = batched.iter_mut().collect();
            batch.step(&mut refs, Seconds::new(dt));
            for lane in 0..lanes {
                scalar[lane].step(Seconds::new(dt));
                for i in 0..n {
                    let id = scalar[lane].node_id(&format!("n{i}")).unwrap();
                    prop_assert_eq!(
                        batched[lane].temperature(id).value().to_bits(),
                        scalar[lane].temperature(id).value().to_bits(),
                        "lane {} node {} diverged at step {}", lane, i, step
                    );
                }
            }
        }
    }
}
