//! Hardware-in-the-loop fault drills — the `daemon-hil` CI stage.
//!
//! Each scenario runs the daemon over [`SimTelemetry`] on the 2U×4
//! preset with one injected fault and asserts the watchdog contract:
//! firmware fallback engages within its deadline, the transition is
//! exported in the metrics, closed-loop control re-engages after the
//! fault clears plus the recovery window, and the rack's *true*
//! junction temperatures stay bounded throughout. Everything is
//! deterministic (pinned seeds, simulated clock), so a failure replays
//! exactly.
//!
//! Each scenario also appends its event log and final metric snapshot
//! to `target/daemon-hil/<scenario>.log` — the artifact the nightly
//! workflow uploads.

use gfsc_coord::{RackControl, RackControlConfig};
use gfsc_daemon::{
    Daemon, DaemonConfig, DaemonEvent, DaemonRunOutcome, FallbackReason, FaultPlan, SimTelemetry,
};
use gfsc_obs::{explain, EventKind, Recorder};
use gfsc_rack::{RackSpec, RackTopology};
use gfsc_sim::FaultSchedule;
use gfsc_units::Seconds;
use gfsc_workload::{SquareWave, Workload};
use std::io::Write as _;

/// Junction ceiling for every drill: the 80 °C safe limit plus the
/// transient margin a fault window is allowed to consume.
const JUNCTION_CEILING_C: f64 = 90.0;

/// A 60 s square wave with per-epoch noise: natural readings change at
/// least at every phase flip, so a freeze budget above half a period
/// can never false-trip on a healthy sensor.
fn workload() -> Workload {
    Workload::builder(SquareWave::new(0.25, 0.65, Seconds::new(60.0), 0.5))
        .gaussian_noise(0.04, 7)
        .build()
}

fn run_scenario(name: &str, faults: FaultPlan, cfg_tune: impl FnOnce(&mut DaemonConfig)) -> Drill {
    let spec = RackSpec::new(RackTopology::rack_2u_x4());
    let mut cfg = DaemonConfig::new(RackControlConfig::new(RackControl::Coordinated {
        adaptive_reference: true,
    }));
    // Every drill flies with the recorder armed: the `.events` artifact
    // is what `gfsc-explain` turns into a causal timeline in CI.
    cfg.control.recorder = Recorder::armed(4096);
    cfg.stale_after = Seconds::new(5.0);
    cfg_tune(&mut cfg);
    let backend =
        SimTelemetry::new(spec.clone(), workload(), cfg.start_utilization, cfg.start_fan, faults);
    let mut daemon = Daemon::new(backend, spec, cfg);
    let outcome = daemon.run(Seconds::new(480.0));
    let max_junction = daemon.backend().max_junction();
    write_log(name, &outcome, max_junction.value());
    assert!(
        max_junction.value() < JUNCTION_CEILING_C,
        "{name}: true junction peaked at {:.1} °C (ceiling {JUNCTION_CEILING_C} °C)",
        max_junction.value()
    );
    assert!(
        !daemon.backend().in_firmware_fallback(),
        "{name}: firmware still holds the rack at the end of the run"
    );
    Drill { outcome }
}

struct Drill {
    outcome: DaemonRunOutcome,
}

impl Drill {
    /// Asserts exactly one fallback round-trip: entered for `reason`
    /// within `[from, deadline]`, exited within `[exit_from, exit_by]`.
    fn assert_round_trip(
        &self,
        reason: FallbackReason,
        from: f64,
        deadline: f64,
        exit_from: f64,
        exit_by: f64,
    ) {
        let entries: Vec<_> = self
            .outcome
            .events
            .iter()
            .filter_map(|e| match e {
                DaemonEvent::FallbackEntered { at, reason } => Some((at.value(), *reason)),
                DaemonEvent::FallbackExited { .. } => None,
            })
            .collect();
        let exits: Vec<_> = self
            .outcome
            .events
            .iter()
            .filter_map(|e| match e {
                DaemonEvent::FallbackExited { at } => Some(at.value()),
                DaemonEvent::FallbackEntered { .. } => None,
            })
            .collect();
        assert_eq!(entries.len(), 1, "one fallback entry, got {entries:?}");
        assert_eq!(exits.len(), 1, "one fallback exit, got {exits:?}");
        let (entered_at, entered_for) = entries[0];
        assert_eq!(entered_for, reason, "fallback reason");
        assert!(
            (from..=deadline).contains(&entered_at),
            "fallback entered at {entered_at} s, watchdog deadline was [{from}, {deadline}] s"
        );
        assert!(
            (exit_from..=exit_by).contains(&exits[0]),
            "closed loop re-engaged at {} s, expected [{exit_from}, {exit_by}] s",
            exits[0]
        );

        // The transitions are exported, not just logged.
        let metrics = &self.outcome.metrics;
        assert_eq!(metrics.fallback_entries, 1);
        assert_eq!(metrics.fallback_exits, 1);
        assert!(!metrics.in_fallback);
        let rendered = metrics.render();
        assert!(rendered.contains("fallback_entries=1u"), "metrics export: {rendered}");
        assert!(rendered.contains("fallback_exits=1u"), "metrics export: {rendered}");
        assert!(rendered.contains("in_fallback=false"), "metrics export: {rendered}");
    }
}

/// Appends the scenario's event log + metric snapshot under
/// `target/daemon-hil/` for CI artifact upload, plus the flight
/// recorder snapshot as `<name>.events` (the `gfsc-explain` input).
fn write_log(name: &str, outcome: &DaemonRunOutcome, max_junction_c: f64) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/daemon-hil");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let Ok(mut file) = std::fs::File::create(format!("{dir}/{name}.log")) else { return };
    let _ = writeln!(file, "# daemon-hil scenario: {name}");
    let _ = writeln!(
        file,
        "# horizon: {} s, max true junction: {max_junction_c:.2} C",
        outcome.horizon.value()
    );
    for event in &outcome.events {
        let _ = writeln!(file, "{event:?}");
    }
    let _ = write!(file, "{}", outcome.metrics.render());
    if let Some(flight) = &outcome.flight {
        let _ = std::fs::write(format!("{dir}/{name}.events"), flight.to_text());
    }
}

#[test]
fn frozen_sensor_trips_freeze_budget_then_recovers() {
    let faults = FaultPlan {
        frozen_sensor: Some((3, FaultSchedule::once(Seconds::new(120.0), Seconds::new(300.0)))),
        ..FaultPlan::none()
    };
    let drill = run_scenario("frozen-sensor", faults, |cfg| {
        cfg.freeze_after = Some(Seconds::new(45.0));
    });
    // The latched value can only be noticed once it has not moved for
    // the 45 s freeze budget; recovery needs the 10 s clean window
    // after the fault clears at 300 s.
    drill.assert_round_trip(FallbackReason::SensorLoss, 120.0, 170.0, 300.0, 315.0);
    assert_eq!(drill.outcome.metrics.controller_panics, 0);

    // The fallback round-trip is on the flight recorder's event stream
    // too, with the reason encoded — the causal chain `gfsc-explain`
    // renders from the uploaded `.events` artifact.
    let flight = drill.outcome.flight.as_ref().expect("recorder was armed");
    let entered: Vec<_> =
        flight.events.iter().filter(|e| e.kind == EventKind::FallbackEntered).collect();
    let exited: Vec<_> =
        flight.events.iter().filter(|e| e.kind == EventKind::FallbackExited).collect();
    assert_eq!(entered.len(), 1, "one recorded fallback entry: {entered:?}");
    assert_eq!(exited.len(), 1, "one recorded fallback exit: {exited:?}");
    assert_eq!(entered[0].value, 0.0, "sensor-loss reason code");
    // The bank is suspended while firmware holds the rack, so the exit
    // lands on the same (or a later) epoch stamp — never an earlier one.
    assert!(entered[0].epoch <= exited[0].epoch, "entry precedes exit");
    let timeline = explain::render_timeline(flight);
    assert!(
        timeline.contains("watchdog entered firmware fallback (sensor-loss)"),
        "timeline misses the fallback-entry chain:\n{timeline}"
    );
    assert!(
        timeline.contains("closed loop re-engaged (after sensor-loss)"),
        "timeline misses the recovery:\n{timeline}"
    );
}

#[test]
fn dropped_reads_burst_exhausts_retries_then_recovers() {
    let faults = FaultPlan {
        dropped_reads: FaultSchedule::once(Seconds::new(120.0), Seconds::new(140.0)),
        ..FaultPlan::none()
    };
    let drill = run_scenario("dropped-reads", faults, |_| {});
    // Whichever budget trips first — three retries on the 1 s cadence
    // or the 5 s staleness budget — fallback is due within ~6 s.
    drill.assert_round_trip(FallbackReason::ReadFailures, 120.0, 126.0, 140.0, 155.0);
    assert!(drill.outcome.metrics.read_failures >= 4, "every burst cycle counted");
}

#[test]
fn nan_poisoned_sensor_goes_stale_then_recovers() {
    let faults = FaultPlan {
        nan_sensor: Some((2, FaultSchedule::once(Seconds::new(120.0), Seconds::new(200.0)))),
        ..FaultPlan::none()
    };
    let drill = run_scenario("nan-sensor", faults, |_| {});
    // The NaN never reaches a controller: `Celsius::try_new` turns the
    // poisoned wire value into a *missing* reading at the telemetry
    // boundary, so socket 2 simply stops reading and the 5 s staleness
    // budget trips sensor-loss — the same path a dead sensor takes.
    drill.assert_round_trip(FallbackReason::SensorLoss, 120.0, 127.0, 200.0, 215.0);
    // Poisoned data must degrade, never crash.
    assert_eq!(drill.outcome.metrics.controller_panics, 0);
}

#[test]
fn actuator_nack_exhausts_retries_then_recovers() {
    let faults = FaultPlan {
        actuation_nack: FaultSchedule::once(Seconds::new(120.0), Seconds::new(200.0)),
        ..FaultPlan::none()
    };
    let drill = run_scenario("actuator-nack", faults, |_| {});
    // Cap writes run every epoch, so NACKs burn the retry budget in
    // max_retries + 1 cycles even if no fan write is due; resume itself
    // NACKs until the window closes at 200 s.
    drill.assert_round_trip(FallbackReason::ActuationFailures, 120.0, 126.0, 200.0, 215.0);
    assert!(drill.outcome.metrics.write_failures >= 4, "every NACKed cycle counted");
}

#[test]
fn poll_panic_is_caught_and_falls_back() {
    let faults = FaultPlan { panic_poll_at: Some(Seconds::new(120.0)), ..FaultPlan::none() };
    let drill = run_scenario("poll-panic", faults, |_| {});
    // The panic is one-shot: the very next cycle polls cleanly, so the
    // recovery window starts immediately after the trip.
    drill.assert_round_trip(FallbackReason::ControllerPanic, 120.0, 121.0, 130.0, 140.0);
    assert_eq!(drill.outcome.metrics.controller_panics, 1);
    let rendered = drill.outcome.metrics.render();
    assert!(rendered.contains("controller_panics=1u"), "metrics export: {rendered}");
}

#[test]
fn fault_free_run_never_trips_the_watchdog() {
    let drill = run_scenario("fault-free", FaultPlan::none(), |cfg| {
        cfg.freeze_after = Some(Seconds::new(45.0));
    });
    assert!(drill.outcome.events.is_empty(), "events: {:?}", drill.outcome.events);
    assert_eq!(drill.outcome.metrics.fallback_entries, 0);
    assert!(drill.outcome.total_epochs > 0, "closed loop actually ran");
    // Fans were actually driven: at least one write per fan epoch.
    assert!(drill.outcome.metrics.zones.iter().any(|z| z.writes > 0));
}
