//! The IPMI garbage-tolerance corpus: real-world-shaped `ipmitool` /
//! `sensors` output, including the hostile cases — truncated rows,
//! `No Reading` / `ns` / `Disabled` placeholders, locale decimal
//! commas, stderr interleaved with stdout.
//!
//! The invariant under test: **an unreadable sensor is `None`, never a
//! fabricated `0.0`** — and through [`gfsc_sensors::SensorHealth`] a
//! `None` classifies as `Stale`, which is exactly what routes the
//! daemon to firmware fallback instead of releasing every cap against
//! a phantom 0 °C socket.

use gfsc_daemon::{
    discover_socket_sensors, parse_sdr_temperatures, parse_sensors_temperatures, IpmiReading,
};
use gfsc_sensors::{SensorHealth, SensorStatus};
use gfsc_units::{Celsius, Seconds};

fn value_of(readings: &[IpmiReading], name: &str) -> Option<Celsius> {
    readings.iter().find(|r| r.name == name).unwrap_or_else(|| panic!("row {name}")).value
}

/// No parser output, on any fixture, may ever be a fabricated zero.
fn assert_no_fabricated_zero(readings: &[IpmiReading]) {
    for r in readings {
        if let Some(v) = r.value {
            assert_ne!(v.value(), 0.0, "{}: unreadable sensor surfaced as 0.0 C", r.name);
        }
    }
}

#[test]
fn clean_sdr_parses_every_row() {
    let readings = parse_sdr_temperatures(include_str!("fixtures/sdr_clean.txt"));
    assert_eq!(readings.len(), 4);
    assert_eq!(value_of(&readings, "Inlet Temp"), Some(Celsius::new(24.0)));
    assert_eq!(value_of(&readings, "CPU0 Temp"), Some(Celsius::new(45.0)));
    assert_eq!(value_of(&readings, "CPU1 Temp"), Some(Celsius::new(47.5)));
    assert_eq!(value_of(&readings, "Exhaust Temp"), Some(Celsius::new(38.0)));
}

#[test]
fn truncated_rows_are_skipped_not_zeroed() {
    let readings = parse_sdr_temperatures(include_str!("fixtures/sdr_truncated.txt"));
    // Only the intact first row and the row truncated *after* its
    // numeric reading survive; rows cut before the reading field (and
    // the row with a blank name) vanish entirely.
    assert_eq!(readings.len(), 2);
    assert_eq!(value_of(&readings, "Inlet Temp"), Some(Celsius::new(24.0)));
    assert_eq!(value_of(&readings, "Exhaust Temp"), Some(Celsius::new(38.0)));
    assert!(readings.iter().all(|r| !r.name.starts_with("CPU")), "truncated CPU rows dropped");
    assert_no_fabricated_zero(&readings);
}

#[test]
fn placeholder_readings_parse_as_none_never_zero() {
    let readings = parse_sdr_temperatures(include_str!("fixtures/sdr_no_reading.txt"));
    assert_eq!(readings.len(), 5);
    assert_eq!(value_of(&readings, "CPU0 Temp"), None, "'No Reading' must be None");
    assert_eq!(value_of(&readings, "CPU1 Temp"), None, "'ns' must be None");
    assert_eq!(value_of(&readings, "PCH Temp"), None, "'Disabled' must be None");
    assert_eq!(value_of(&readings, "Inlet Temp"), Some(Celsius::new(24.0)));
    assert_no_fabricated_zero(&readings);
}

#[test]
fn na_and_hex_state_placeholders_parse_as_none_never_zero() {
    // Vendor spellings beyond `No Reading`: bare `na` / `N/A`, and raw
    // hex state words (`0x0180`) some BMCs print for discrete sensors.
    // The thousands-separated reading exercises the shared float-token
    // parser (realistic on rpm/power rows that flow through it too).
    let readings = parse_sdr_temperatures(include_str!("fixtures/sdr_placeholders.txt"));
    assert_eq!(readings.len(), 7);
    assert_eq!(value_of(&readings, "CPU0 Temp"), None, "'N/A' must be None");
    assert_eq!(value_of(&readings, "CPU1 Temp"), None, "'na' must be None");
    assert_eq!(value_of(&readings, "PCH Temp"), None, "'0x0180' must be None");
    assert_eq!(value_of(&readings, "VR Temp"), None, "'0xFF' must be None");
    assert_eq!(
        value_of(&readings, "CPU2 Temp"),
        Some(Celsius::new(1234.5)),
        "1,234.5 is a thousands separator, not the locale decimal 1.2345"
    );
    assert_eq!(value_of(&readings, "Inlet Temp"), Some(Celsius::new(24.0)));
    assert_no_fabricated_zero(&readings);
}

#[test]
fn discovery_keeps_unreadable_sockets_in_numeric_order() {
    // The fixture lists CPU1 before CPU0 and leaves both unreadable:
    // discovery must still map socket i → `CPUi Temp` — readability is
    // the poll path's concern, and dropping a dead sensor would remap
    // every later socket.
    let names = discover_socket_sensors(include_str!("fixtures/sdr_placeholders.txt"));
    assert_eq!(names, vec!["CPU0 Temp", "CPU1 Temp", "CPU2 Temp"]);
}

#[test]
fn locale_decimal_commas_are_accepted() {
    let readings = parse_sdr_temperatures(include_str!("fixtures/sdr_locale_commas.txt"));
    assert_eq!(value_of(&readings, "Inlet Temp"), Some(Celsius::new(24.0)));
    assert_eq!(value_of(&readings, "CPU0 Temp"), Some(Celsius::new(45.5)));
    assert_eq!(value_of(&readings, "CPU1 Temp"), Some(Celsius::new(47.25)));
}

#[test]
fn interleaved_stderr_lines_are_ignored() {
    let readings = parse_sdr_temperatures(include_str!("fixtures/sdr_interleaved_stderr.txt"));
    // The three diagnostics carry no pipes and are skipped outright;
    // the garbage reading stays a named row with value None.
    assert_eq!(readings.len(), 4);
    assert_eq!(value_of(&readings, "Inlet Temp"), Some(Celsius::new(24.0)));
    assert_eq!(value_of(&readings, "CPU0 Temp"), Some(Celsius::new(45.0)));
    assert_eq!(value_of(&readings, "CPU1 Temp"), None, "garbage token must be None");
    assert_eq!(value_of(&readings, "Exhaust Temp"), Some(Celsius::new(38.0)));
    assert_no_fabricated_zero(&readings);
}

#[test]
fn lm_sensors_temperature_rows_only() {
    let readings = parse_sensors_temperatures(include_str!("fixtures/sensors_lm.txt"));
    // Voltages, fans, and adapter headers are not temperatures.
    assert_eq!(readings.len(), 4);
    assert_eq!(value_of(&readings, "Package id 0"), Some(Celsius::new(52.0)));
    assert_eq!(value_of(&readings, "Core 0"), Some(Celsius::new(45.0)));
    assert_eq!(value_of(&readings, "Core 1"), Some(Celsius::new(47.5)), "comma locale");
    assert_eq!(value_of(&readings, "SYSTIN"), Some(Celsius::new(38.0)));
    assert!(readings.iter().all(|r| r.name != "Vcore" && r.name != "fan1"));
}

#[test]
fn unreadable_sensor_classifies_stale_through_health() {
    // The end-to-end contract: a placeholder reading (None) feeds the
    // daemon's per-sensor budget as a *missed* read, so it goes Stale
    // once the budget elapses — it never shows up as a cold socket.
    let readings = parse_sdr_temperatures(include_str!("fixtures/sdr_no_reading.txt"));
    let dead = value_of(&readings, "CPU0 Temp").map(|c| c.value());
    assert_eq!(dead, None);

    let mut health = SensorHealth::new(Seconds::new(3.0), None);
    assert_eq!(health.observe(Seconds::new(0.0), Some(45.0)), SensorStatus::Fresh);
    for t in 1..=3 {
        health.observe(Seconds::new(f64::from(t)), dead);
    }
    assert_eq!(health.observe(Seconds::new(4.0), dead), SensorStatus::Stale);
    assert_eq!(health.last_value(), Some(45.0), "the budget holds the last real value");
}
