//! Wall-clock pacing drills — the `daemon-paced` CI stage.
//!
//! Three contracts, all fully deterministic under [`MockClock`]:
//!
//! 1. **Pacing is transparent.** A config-file-built daemon run under
//!    `run_paced` with an idle mock clock replays the hand-built
//!    library `Daemon::run` bit for bit — pacing may only ever *wait*,
//!    never touch the control path.
//! 2. **Pacing trouble is accounted.** A scripted overrun burst is
//!    counted (misses, overruns, worst lateness), recorded on the
//!    flight event stream, and a persistent streak hands the rack to
//!    firmware exactly like sensor loss — including the recovery
//!    round-trip once cycles land on time again.
//! 3. **The horizon boundary is parity, not an off-by-one.** The step
//!    loop is `0..=steps` with the plant advanced after the final
//!    control cycle, mirroring `RackLoopSim::run`; the backend ends one
//!    sim step past the horizon in both worlds. Pinned here so a
//!    well-meaning "fix" shows up as a red test, not a shifted golden
//!    trace.
//!
//! Artifacts land in `target/daemon-paced/` for CI upload.

use gfsc_coord::{RackControl, RackControlConfig, RackLoopSim};
use gfsc_daemon::{
    Daemon, DaemonConfig, DaemonEvent, DaemondSpec, FallbackReason, FaultPlan, MockClock,
    SimTelemetry,
};
use gfsc_obs::{explain, EventKind, Recorder};
use gfsc_rack::{RackSpec, RackTopology};
use gfsc_sim::TraceSet;
use gfsc_units::Seconds;
use gfsc_workload::{SquareWave, Workload};

const HORIZON: f64 = 600.0;

fn fixture_spec() -> DaemondSpec {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/daemond_sim.toml");
    DaemondSpec::load(std::path::Path::new(path)).expect("parity fixture parses")
}

/// The rack_golden evaluation workload — what `preset = "rack-golden"`
/// must expand to.
fn golden_workload() -> Workload {
    Workload::builder(SquareWave::date14())
        .gaussian_noise(0.04, 42)
        .spikes(1.0 / 240.0, Seconds::new(30.0), 0.8, 43)
        .build()
}

/// Every compared channel of one run, flattened to bit patterns.
fn bits_of(traces: &TraceSet, zones: usize, sockets: usize) -> Vec<(String, Vec<u64>, Vec<u64>)> {
    let mut channels = vec!["u_demand".to_owned()];
    for z in 0..zones {
        channels.push(format!("z{z}_fan_rpm"));
        channels.push(format!("z{z}_t_meas_c"));
    }
    for i in 0..sockets {
        channels.push(format!("s{i}_cap"));
    }
    channels
        .into_iter()
        .map(|name| {
            let trace = traces.require(&name).expect("channel present in both runs");
            let times = trace.times().iter().map(|v| v.to_bits()).collect();
            let values = trace.values().iter().map(|v| v.to_bits()).collect();
            (name, times, values)
        })
        .collect()
}

fn write_artifacts(stem: &str, outcome: &gfsc_daemon::DaemonRunOutcome) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/daemon-paced");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let _ = std::fs::write(format!("{dir}/{stem}.metrics"), outcome.metrics.render());
    if let Some(flight) = &outcome.flight {
        let _ = std::fs::write(format!("{dir}/{stem}.events"), flight.to_text());
        let _ = std::fs::write(format!("{dir}/{stem}.timeline"), explain::render_timeline(flight));
    }
}

#[test]
fn config_built_paced_run_replays_the_library_loop_bit_for_bit() {
    let spec = fixture_spec();
    assert_eq!(spec.horizon, Seconds::new(HORIZON), "fixture pins the golden horizon");

    // The reference: the hand-built library daemon, unpaced, exactly as
    // tests/parity.rs constructs it (recorder armed to match the
    // fixture — recording must not matter, and this proves it).
    let rack = RackSpec::new(RackTopology::rack_2u_x4());
    let mut cfg = DaemonConfig::new(RackControlConfig::new(RackControl::Coordinated {
        adaptive_reference: true,
    }));
    cfg.control.recorder = Recorder::armed(4096);
    let backend = SimTelemetry::new(
        rack.clone(),
        golden_workload(),
        cfg.start_utilization,
        cfg.start_fan,
        FaultPlan::none(),
    );
    let zones = backend.server().zone_count();
    let sockets = backend.server().socket_count();
    let mut library = Daemon::new(backend, rack, cfg);
    let reference = library.run(Seconds::new(HORIZON));

    // The deployment shape: config file → daemon → run_paced on a mock
    // wall clock with no scripted trouble.
    let mut deployed = spec.build_sim_daemon().expect("fixture builds");
    let mut clock = MockClock::new();
    let paced = deployed.run_paced(spec.horizon, &mut clock, spec.pacing);

    assert_eq!(paced.metrics.deadline_misses, 0, "an idle mock clock never misses");
    assert_eq!(paced.metrics.cycle_overruns, 0, "an idle mock clock never overruns");
    assert_eq!(paced.metrics.worst_lateness_s, 0.0);
    assert_eq!(paced.metrics.fallback_entries, 0);

    let want = bits_of(&reference.traces, zones, sockets);
    let got = bits_of(&paced.traces, zones, sockets);
    for ((name, want_t, want_v), (_, got_t, got_v)) in want.iter().zip(&got) {
        assert_eq!(want_t, got_t, "{name}: sample times diverge under pacing");
        assert_eq!(want_v, got_v, "{name}: sample values diverge under pacing");
    }
    assert_eq!(paced.total_violations, reference.total_violations);
    assert_eq!(paced.total_epochs, reference.total_epochs);
    write_artifacts("parity", &paced);
}

#[test]
fn overrun_burst_is_accounted_and_streak_fallback_round_trips() {
    let spec = fixture_spec();
    let mut daemon = spec.build_sim_daemon().expect("fixture builds");
    let mut clock = MockClock::new();
    // Cycles 120..130 each cost 1.5 wall periods: ten overruns, the
    // streak budget (5) trips at cycle 124, and the loop finishes the
    // burst 5 s behind the wall — misses persist until the grid catches
    // up at cycle 135, then the 10 s recovery window runs.
    clock.inject_overrun(120..130, Seconds::new(1.5));
    let outcome = daemon.run_paced(spec.horizon, &mut clock, spec.pacing);
    let m = &outcome.metrics;

    assert_eq!(m.cycle_overruns, 10, "one overrun per injected cycle");
    assert_eq!(m.deadline_misses, 14, "cycles 121..=134 start late");
    assert_eq!(m.worst_lateness_s, 5.0, "the burst ends 5 wall s behind");
    assert_eq!(m.overrun_streak, 0, "streak gauge cleared after the burst");
    assert_eq!(m.fallback_entries, 1);
    assert_eq!(m.fallback_exits, 1);
    assert!(!m.in_fallback, "recovered by the horizon");

    // The round trip on the event log, with deterministic windows: the
    // streak budget trips on the 5th consecutive overrun (cycle 124),
    // and recovery = grid catch-up (cycle 135) + the 10 s clean window.
    let entries: Vec<_> = outcome
        .events
        .iter()
        .filter_map(|e| match e {
            DaemonEvent::FallbackEntered { at, reason } => Some((at.value(), *reason)),
            DaemonEvent::FallbackExited { .. } => None,
        })
        .collect();
    let exits: Vec<_> = outcome
        .events
        .iter()
        .filter_map(|e| match e {
            DaemonEvent::FallbackExited { at } => Some(at.value()),
            DaemonEvent::FallbackEntered { .. } => None,
        })
        .collect();
    assert_eq!(entries.len(), 1, "one fallback entry: {entries:?}");
    assert_eq!(entries[0].1, FallbackReason::OverrunStreak);
    assert!(
        (123.0..=127.0).contains(&entries[0].0),
        "streak fallback due at ~124 s, got {} s",
        entries[0].0
    );
    assert_eq!(exits.len(), 1, "one fallback exit: {exits:?}");
    assert!((143.0..=148.0).contains(&exits[0]), "recovery due at ~145 s, got {} s", exits[0]);

    // Every miss and overrun is on the flight event stream, and the
    // fallback entry carries the overrun-streak reason code.
    let flight = outcome.flight.as_ref().expect("recorder armed by the fixture");
    let missed = flight.events.iter().filter(|e| e.kind == EventKind::DeadlineMissed).count();
    let overran = flight.events.iter().filter(|e| e.kind == EventKind::CycleOverrun).count();
    assert_eq!(missed, 14, "recorded deadline misses");
    assert_eq!(overran, 10, "recorded overruns");
    let entered: Vec<_> =
        flight.events.iter().filter(|e| e.kind == EventKind::FallbackEntered).collect();
    assert_eq!(entered.len(), 1);
    assert_eq!(entered[0].value, FallbackReason::OverrunStreak.code());

    // And the human-facing timeline narrates the whole chain.
    let timeline = explain::render_timeline(flight);
    assert!(
        timeline.contains("watchdog entered firmware fallback (overrun-streak)"),
        "timeline misses the streak fallback:\n{timeline}"
    );
    assert!(
        timeline.contains("past its wall deadline"),
        "timeline misses the lateness:\n{timeline}"
    );
    assert!(
        timeline.contains("overran its period"),
        "timeline misses the overrun narration:\n{timeline}"
    );
    write_artifacts("drill-overruns", &outcome);
}

#[test]
fn horizon_boundary_is_parity_with_the_batch_loop_not_an_off_by_one() {
    // The `0..=steps` loop advances the plant once more after the final
    // control cycle, so the backend ends at horizon + sim_dt. That is
    // the *batch loop's* shape, audited and kept: both worlds must land
    // on the same (bit-identical) end time.
    let horizon = Seconds::new(60.0);
    let rack = RackSpec::new(RackTopology::rack_2u_x4());

    let mut batch = RackLoopSim::builder(rack.clone())
        .workload(golden_workload())
        .control(RackControl::Coordinated { adaptive_reference: true })
        .build();
    let _ = batch.run(horizon);
    let batch_end = batch.server().now();

    let cfg = DaemonConfig::new(RackControlConfig::new(RackControl::Coordinated {
        adaptive_reference: true,
    }));
    let backend = SimTelemetry::new(
        rack.clone(),
        golden_workload(),
        cfg.start_utilization,
        cfg.start_fan,
        FaultPlan::none(),
    );
    let sim_dt = rack.server.sim_dt;
    let mut daemon = Daemon::new(backend, rack, cfg);
    let _ = daemon.run(horizon);
    let daemon_end = daemon.backend().now();

    assert_eq!(
        daemon_end.value().to_bits(),
        batch_end.value().to_bits(),
        "daemon ends at {} s, batch loop at {} s",
        daemon_end.value(),
        batch_end.value()
    );
    let expected = horizon.value() + sim_dt.value();
    assert!(
        (daemon_end.value() - expected).abs() < 1e-9,
        "both loops end one sim step past the horizon ({expected} s), got {} s",
        daemon_end.value()
    );
}

#[test]
fn paced_and_unpaced_runs_agree_from_the_same_config() {
    // Same config, both code paths, shorter horizon: the cheap
    // always-on guard next to the full 600 s parity drill.
    let mut spec = fixture_spec();
    spec.horizon = Seconds::new(120.0);
    let mut unpaced = spec.build_sim_daemon().expect("fixture builds");
    let reference = unpaced.run(spec.horizon);
    let mut paced_daemon = spec.build_sim_daemon().expect("fixture builds");
    let mut clock = MockClock::new();
    let paced = paced_daemon.run_paced(spec.horizon, &mut clock, spec.pacing);
    let rack = spec.rack_spec().expect("fixture topology");
    let zones = rack.rack.zones().len();
    let sockets = rack.rack.total_sockets();
    assert_eq!(
        bits_of(&reference.traces, zones, sockets),
        bits_of(&paced.traces, zones, sockets),
        "run() and run_paced() diverge from the same config"
    );
}
