//! Acceptance pin: the daemon over [`SimTelemetry`] with no faults
//! armed replays the batch `RackLoopSim` **bit for bit** on the
//! fan / cap / measured trace surface.
//!
//! Only the channels driven by polled telemetry are compared
//! (`u_demand`, per-zone `z{z}_fan_rpm` / `z{z}_t_meas_c`, per-socket
//! `s{i}_cap`): the hot-spot / junction / reference channels read the
//! bank's plant model, which in the daemon is the un-stepped mirror —
//! by design, a daemon only sees what telemetry carries.

use gfsc_coord::{RackControl, RackControlConfig, RackLoopSim};
use gfsc_daemon::{Daemon, DaemonConfig, FaultPlan, SimTelemetry};
use gfsc_rack::{RackSpec, RackTopology};
use gfsc_sim::TraceSet;
use gfsc_units::Seconds;
use gfsc_workload::{SquareWave, Workload};

const HORIZON: f64 = 600.0;

fn workload() -> Workload {
    // The rack_golden evaluation workload: DATE'14 square wave, noise
    // and spikes at pinned seeds.
    Workload::builder(SquareWave::date14())
        .gaussian_noise(0.04, 42)
        .spikes(1.0 / 240.0, Seconds::new(30.0), 0.8, 43)
        .build()
}

/// Every compared channel of one run, flattened to bit patterns.
fn bits_of(traces: &TraceSet, zones: usize, sockets: usize) -> Vec<(String, Vec<u64>, Vec<u64>)> {
    let mut channels = vec!["u_demand".to_owned()];
    for z in 0..zones {
        channels.push(format!("z{z}_fan_rpm"));
        channels.push(format!("z{z}_t_meas_c"));
    }
    for i in 0..sockets {
        channels.push(format!("s{i}_cap"));
    }
    channels
        .into_iter()
        .map(|name| {
            let trace = traces.require(&name).expect("channel present in both runs");
            let times = trace.times().iter().map(|v| v.to_bits()).collect();
            let values = trace.values().iter().map(|v| v.to_bits()).collect();
            (name, times, values)
        })
        .collect()
}

fn assert_parity(control: RackControl) {
    let spec = RackSpec::new(RackTopology::rack_2u_x4());

    let mut sim = RackLoopSim::builder(spec.clone()).workload(workload()).control(control).build();
    let batch = sim.run(Seconds::new(HORIZON));

    let cfg = DaemonConfig::new(RackControlConfig::new(control));
    let backend = SimTelemetry::new(
        spec.clone(),
        workload(),
        cfg.start_utilization,
        cfg.start_fan,
        FaultPlan::none(),
    );
    let zones = backend.server().zone_count();
    let sockets = backend.server().socket_count();
    let mut daemon = Daemon::new(backend, spec, cfg);
    let streamed = daemon.run(Seconds::new(HORIZON));

    assert_eq!(streamed.metrics.fallback_entries, 0, "no fault may trip the watchdog");
    assert_eq!(streamed.total_violations, batch.total_violations, "violation accounting");
    assert_eq!(streamed.total_epochs, batch.total_epochs, "epoch accounting");

    let want = bits_of(&batch.traces, zones, sockets);
    let got = bits_of(&streamed.traces, zones, sockets);
    for ((name, want_t, want_v), (_, got_t, got_v)) in want.iter().zip(&got) {
        assert_eq!(want_t, got_t, "{name}: sample times diverge");
        assert_eq!(want_v, got_v, "{name}: sample values diverge");
    }
}

#[test]
fn coordinated_replays_batch_loop_bit_for_bit() {
    assert_parity(RackControl::Coordinated { adaptive_reference: true });
}

#[test]
fn global_ecoord_replays_batch_loop_bit_for_bit() {
    assert_parity(RackControl::GlobalECoord);
}
