//! The watchdog-safe daemon loop: poll → classify → decide → actuate,
//! with firmware fallback as the unconditional safe state.
//!
//! [`Daemon::run`] drives the exact multi-rate schedule of the batch
//! `RackLoopSim` — plant time advanced by the backend at `sim_dt`, one
//! control cycle per CPU epoch, fan decisions at the fan interval — so
//! a fault-free run over [`crate::SimTelemetry`] replays the batch loop
//! bit-for-bit (fan/cap/measured traces; `tests/parity.rs`).
//! [`Daemon::run_paced`] is the same loop paced on a [`WallClock`]:
//! cycles start on a real-time grid, late starts and overrunning work
//! are counted and recorded, and a persistent overrun streak is treated
//! as a watchdog matter like any other telemetry failure.
//!
//! The watchdog wraps every cycle:
//!
//! - each sensor runs a [`SensorHealth`] staleness/freeze budget; any
//!   non-fresh sensor is sensor loss,
//! - failed polls and NACKed writes retry next cycle (the actuation
//!   simply holds — a safe backoff on a 1 s cadence) up to a bounded
//!   count,
//! - the controller itself runs under `catch_unwind`,
//!
//! and any of those tripping enters **firmware fallback**: fans handed
//! back to platform auto-control (max cooling), caps released. The
//! daemon keeps polling; after `recovery_window` of clean, fresh
//! telemetry it takes manual control back and re-arms the bank
//! bumplessly ([`gfsc_coord::RackControlBank::reset_after_fallback`]).
//! Every transition is counted in [`DaemonMetrics`] and timestamped in
//! the run's event log.

use crate::{
    DaemonMetrics, DaemonRackView, FanActuator, MetricsEndpoint, PacingConfig, TelemetrySource,
    WallClock,
};
use gfsc_coord::{RackChannels, RackControlBank, RackControlConfig, RackView};
use gfsc_obs::{EventKind, FlightSnapshot, Source};
use gfsc_rack::RackSpec;
use gfsc_sensors::{SensorHealth, SensorStatus};
use gfsc_sim::{Clock, Periodic, TraceSet};
use gfsc_units::{Celsius, Rpm, Seconds, Utilization};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Why the watchdog engaged firmware fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// A sensor went stale or frozen past its budget.
    SensorLoss,
    /// Polls kept failing past the retry bound.
    ReadFailures,
    /// Writes kept NACKing past the retry bound.
    ActuationFailures,
    /// The poll or control path panicked.
    ControllerPanic,
    /// Paced cycles kept overrunning their wall period past the streak
    /// budget — the loop cannot keep the control cadence, so the rack
    /// goes back to firmware until cycles land on time again.
    OverrunStreak,
}

impl FallbackReason {
    /// The stable numeric code this reason carries on the flight-
    /// recorder event stream (decoded by
    /// [`gfsc_obs::fallback_reason_label`]).
    #[must_use]
    pub fn code(self) -> f64 {
        match self {
            Self::SensorLoss => 0.0,
            Self::ReadFailures => 1.0,
            Self::ActuationFailures => 2.0,
            Self::ControllerPanic => 3.0,
            Self::OverrunStreak => 4.0,
        }
    }
}

/// One timestamped watchdog transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DaemonEvent {
    /// Firmware fallback engaged.
    FallbackEntered {
        /// When the watchdog tripped.
        at: Seconds,
        /// What tripped it.
        reason: FallbackReason,
    },
    /// Closed-loop control re-engaged after a clean recovery window.
    FallbackExited {
        /// When manual control resumed.
        at: Seconds,
    },
}

/// Everything that parameterizes a daemon beyond the rack spec: the
/// control mode and the watchdog budgets.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The control bank configuration (mode + controller tunables).
    pub control: RackControlConfig,
    /// The assumed starting operating point (must match the plant's).
    pub start_utilization: Utilization,
    /// The assumed starting fan speed (must match the plant's).
    pub start_fan: Rpm,
    /// A sensor with no successful read for this long is stale.
    pub stale_after: Seconds,
    /// A sensor whose value has not moved for this long is frozen
    /// (`None` disables freeze detection — required for bit-for-bit
    /// parity, where quantized steady-state readings legitimately hold).
    pub freeze_after: Option<Seconds>,
    /// Fan writes smaller than this many rpm from the last
    /// acknowledged target are skipped (0 = write on any change, the
    /// parity setting).
    pub deadzone_rpm: f64,
    /// Consecutive failed cycles tolerated before fallback (each retry
    /// waits one cycle — the backoff on a fixed cadence).
    pub max_retries: u32,
    /// Clean, all-fresh telemetry required before leaving fallback.
    pub recovery_window: Seconds,
}

impl DaemonConfig {
    /// Watchdog defaults around a control configuration: 3-epoch
    /// staleness budget, freeze detection off, no deadzone, 3 retries,
    /// 10 s recovery window.
    #[must_use]
    pub fn new(control: RackControlConfig) -> Self {
        Self {
            control,
            start_utilization: Utilization::new(0.1),
            start_fan: Rpm::new(1500.0),
            stale_after: Seconds::new(3.0),
            freeze_after: None,
            deadzone_rpm: 0.0,
            max_retries: 3,
            recovery_window: Seconds::new(10.0),
        }
    }
}

/// Everything a finished daemon run reports.
#[derive(Debug)]
pub struct DaemonRunOutcome {
    /// Epoch-rate traces, recorded by the bank with the same channel
    /// set as `RackLoopSim` (`u_demand`, per-zone `z{z}_fan_rpm` / …,
    /// per-socket `s{i}_cap` / …). Fallback cycles record nothing —
    /// the bank was not consulted.
    pub traces: TraceSet,
    /// Timestamped watchdog transitions.
    pub events: Vec<DaemonEvent>,
    /// Final metric snapshot.
    pub metrics: DaemonMetrics,
    /// Violated socket-epochs (closed-loop cycles only).
    pub total_violations: u64,
    /// Total socket-epochs (closed-loop cycles only).
    pub total_epochs: u64,
    /// Simulated duration.
    pub horizon: Seconds,
    /// The decision-event recording, when the control config armed the
    /// flight recorder (`None` otherwise). Watchdog fallback entry/exit
    /// rides the same stream as the controller decisions.
    pub flight: Option<FlightSnapshot>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LoopState {
    Closed,
    Fallback { clean_since: Option<Seconds> },
}

/// The daemon: one backend, one mirror, one control bank, one watchdog.
pub struct Daemon<B: TelemetrySource + FanActuator> {
    backend: B,
    view: DaemonRackView,
    bank: RackControlBank,
    cfg: DaemonConfig,
    health: Vec<SensorHealth>,
    metrics: DaemonMetrics,
    state: LoopState,
    events: Vec<DaemonEvent>,
    endpoint: Option<MetricsEndpoint>,
    temp_scratch: Vec<Option<Celsius>>,
    tach_scratch: Vec<Rpm>,
    /// Last acknowledged per-zone target (the deadzone reference).
    last_acked: Vec<Rpm>,
    consecutive_failures: u32,
    /// The reason behind the current/most recent fallback, so the exit
    /// event can name what it recovered from.
    fallback_reason: Option<FallbackReason>,
}

impl<B: TelemetrySource + FanActuator> std::fmt::Debug for Daemon<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon").field("control", &self.bank.control()).finish_non_exhaustive()
    }
}

impl<B: TelemetrySource + FanActuator> Daemon<B> {
    /// Assembles a daemon for `spec` over `backend`.
    ///
    /// # Panics
    ///
    /// Panics if the backend's structure disagrees with the spec or the
    /// config is inconsistent.
    #[must_use]
    pub fn new(backend: B, spec: RackSpec, cfg: DaemonConfig) -> Self {
        let view = DaemonRackView::new(spec, cfg.start_utilization, cfg.start_fan);
        assert_eq!(backend.socket_count(), view.socket_count(), "backend/spec socket mismatch");
        assert_eq!(backend.zone_count(), view.zone_count(), "backend/spec zone mismatch");
        let bank = RackControlBank::new(
            cfg.control.clone(),
            view.spec(),
            view.plant(),
            cfg.start_utilization,
        );
        let sockets = view.socket_count();
        let zones = view.zone_count();
        let start = view.spec().server.fan_bounds.clamp(cfg.start_fan);
        let mut metrics = DaemonMetrics::new(zones);
        for (slot, zone) in metrics.zones.iter_mut().zip(view.spec().rack.zones()) {
            slot.label = zone.name.clone();
        }
        Self {
            backend,
            bank,
            health: (0..sockets)
                .map(|_| SensorHealth::new(cfg.stale_after, cfg.freeze_after))
                .collect(),
            metrics,
            state: LoopState::Closed,
            events: Vec::new(),
            endpoint: None,
            temp_scratch: vec![None; sockets],
            tach_scratch: vec![start; zones],
            last_acked: vec![start; zones],
            consecutive_failures: 0,
            fallback_reason: None,
            cfg,
            view,
        }
    }

    /// Attaches a metrics endpoint, served once per control cycle.
    pub fn serve_metrics(&mut self, endpoint: MetricsEndpoint) {
        self.endpoint = Some(endpoint);
    }

    /// The backend (read-only) — HIL tests inspect the plant through
    /// it.
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The current metric snapshot.
    #[must_use]
    pub fn metrics(&self) -> &DaemonMetrics {
        &self.metrics
    }

    /// Runs the loop for `horizon` simulated seconds, as fast as the
    /// CPU allows (no wall-clock pacing — the batch-parity mode).
    pub fn run(&mut self, horizon: Seconds) -> DaemonRunOutcome {
        self.run_inner(horizon, None)
    }

    /// Runs the **identical** loop, but paced on `wall`: control cycle
    /// `k` starts at wall time `k · cpu_control_interval · time_scale`,
    /// with deadline misses and overruns accounted into the metrics and
    /// the flight recorder, and a persistent overrun streak driving
    /// firmware fallback ([`FallbackReason::OverrunStreak`]).
    ///
    /// Pacing never touches the control path — under a
    /// [`crate::MockClock`] with no injected overruns the traces are
    /// bit-identical to [`Self::run`] (pinned by `tests/paced.rs`).
    pub fn run_paced(
        &mut self,
        horizon: Seconds,
        wall: &mut dyn WallClock,
        pacing: PacingConfig,
    ) -> DaemonRunOutcome {
        self.run_inner(horizon, Some((wall, pacing)))
    }

    /// The shared loop behind [`Self::run`] / [`Self::run_paced`].
    ///
    /// Loop-boundary note, pinned by `tests/paced.rs`: the step loop is
    /// `0..=steps` with the plant advanced *after* the final control
    /// cycle, so the backend ends at `horizon + sim_dt`. That mirrors
    /// `RackLoopSim::run` exactly (same `0..=steps` shape, same trailing
    /// plant step) and is required for the bit-for-bit parity contract —
    /// an off-by-one "fix" here would shift every golden trace.
    fn run_inner(
        &mut self,
        horizon: Seconds,
        mut pacing: Option<(&mut dyn WallClock, PacingConfig)>,
    ) -> DaemonRunOutcome {
        let spec = self.view.spec().server.clone();
        let mut clock = Clock::new(spec.sim_dt);
        let mut cpu_epoch = Periodic::new(spec.cpu_control_interval);
        let mut fan_epoch = Periodic::new(spec.fan_control_interval);
        let mut traces = TraceSet::new();
        let epochs = (horizon.value() / spec.cpu_control_interval.value()).floor() as usize + 2;
        let channels = RackChannels::resolve(
            &mut traces,
            epochs,
            self.view.zone_count(),
            self.view.socket_count(),
        );

        // Wall-pacing state: cycle k's deadline is origin + k periods.
        let period_wall = pacing
            .as_ref()
            .map_or(0.0, |(_, cfg)| spec.cpu_control_interval.value() * cfg.time_scale);
        let wall_origin = pacing.as_mut().map_or(0.0, |(wall, _)| wall.now().value());
        let mut overrun_streak: u32 = 0;

        let steps = clock.steps_for(horizon);
        let mut cycle_idx = 0u64;
        for _ in 0..=steps {
            let now = clock.now();
            if cpu_epoch.is_due(now) {
                // Sleep to this cycle's wall deadline; how late the
                // cycle actually starts is the miss statistic.
                let mut wall_start = 0.0;
                if let Some((wall, _)) = pacing.as_mut() {
                    let deadline = wall_origin + cycle_idx as f64 * period_wall;
                    wall.sleep_until(Seconds::new(deadline));
                    wall_start = wall.now().value();
                }
                // Latency is sampled (every 16th cycle, or every cycle
                // while an endpoint is attached so each snapshot carries
                // a fresh reading): observability must not tax the loop
                // it observes — the clock pair is a measurable slice of
                // the <5 % front-end overhead budget `perf_report` gates.
                let started =
                    (self.endpoint.is_some() || cycle_idx.trailing_zeros() >= 4).then(Instant::now);
                self.cycle(now, fan_epoch.is_due(now), &mut traces, &channels);
                if let Some(started) = started {
                    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    self.metrics.observe_latency(ns);
                }
                if let Some((wall, cfg)) = pacing.as_mut() {
                    wall.on_cycle_complete(cycle_idx);
                    let deadline = wall_origin + cycle_idx as f64 * period_wall;
                    let lateness = Seconds::new(wall_start - deadline);
                    let duration = Seconds::new(wall.now().value() - wall_start);
                    let cfg = *cfg;
                    self.account_pacing(
                        now,
                        lateness,
                        duration,
                        Seconds::new(period_wall),
                        cfg,
                        &mut overrun_streak,
                    );
                }
                if let Some(endpoint) = &self.endpoint {
                    let mut snapshot = self.metrics.render();
                    if let Some(flight) = self.bank.recorder().flight() {
                        flight.render_counters(&mut snapshot);
                    }
                    endpoint.poll_serve(&snapshot);
                }
                cycle_idx += 1;
            }
            self.backend.advance(spec.sim_dt);
            clock.tick();
        }

        DaemonRunOutcome {
            traces,
            events: self.events.clone(),
            metrics: self.metrics.clone(),
            total_violations: self.bank.violations(),
            total_epochs: self.bank.socket_epochs(),
            horizon,
            flight: self.bank.recorder().snapshot(),
        }
    }

    /// One control cycle: poll, classify, (maybe) decide, actuate.
    fn cycle(
        &mut self,
        now: Seconds,
        fan_due: bool,
        traces: &mut TraceSet,
        channels: &RackChannels,
    ) {
        self.metrics.loop_cycles += 1;

        // --- poll (panic-guarded: a poisoned read must not kill the
        // daemon — it must hand the rack to firmware). -----------------
        let backend = &mut self.backend;
        let temp_scratch = &mut self.temp_scratch;
        let tach_scratch = &mut self.tach_scratch;
        let polled = catch_unwind(AssertUnwindSafe(|| {
            let temps = backend.poll_temperatures(temp_scratch);
            let tachs = backend.poll_fan_speeds(tach_scratch);
            let demand = backend.poll_demand();
            (temps, tachs, demand)
        }));
        let Ok((temps, tachs, demand)) = polled else {
            self.metrics.controller_panics += 1;
            self.enter_fallback(now, FallbackReason::ControllerPanic);
            return;
        };

        // --- classify every sensor against its budgets. ---------------
        let temps_ok = temps.is_ok();
        let mut stale = 0u64;
        let mut frozen = 0u64;
        for (i, health) in self.health.iter_mut().enumerate() {
            let reading = if temps_ok { self.temp_scratch[i].map(|c| c.value()) } else { None };
            match health.observe(now, reading) {
                SensorStatus::Fresh => {}
                SensorStatus::Stale => stale += 1,
                SensorStatus::Frozen => {
                    stale += 1;
                    frozen += 1;
                }
            }
        }
        self.metrics.stale_sensors = stale;
        self.metrics.frozen_sensors = frozen;

        // --- refresh the mirror with whatever arrived. ----------------
        if temps_ok {
            self.view.ingest_temperatures(&self.temp_scratch);
        }
        if tachs.is_ok() {
            self.view.ingest_fan_speeds(&self.tach_scratch);
        }
        let read_err = !temps_ok || tachs.is_err() || demand.is_err();
        if read_err {
            self.metrics.read_failures += 1;
        }

        match self.state {
            LoopState::Fallback { clean_since } => {
                // Firmware holds the rack; watch for a clean window.
                if read_err || stale > 0 {
                    self.state = LoopState::Fallback { clean_since: None };
                    return;
                }
                let since = clean_since.unwrap_or(now);
                self.state = LoopState::Fallback { clean_since: Some(since) };
                if now - since >= self.cfg.recovery_window.value()
                    && self.backend.resume_manual_control().is_ok()
                {
                    // Re-arm bumplessly: caps released, fan integrators
                    // reset, mirror targets at what firmware commanded.
                    self.bank.reset_after_fallback();
                    let hi = self.view.spec().server.fan_bounds.hi();
                    self.view.force_targets(hi);
                    for (acked, z) in self.last_acked.iter_mut().zip(0usize..) {
                        *acked = self.view.zone_fan_target(z);
                    }
                    self.state = LoopState::Closed;
                    self.consecutive_failures = 0;
                    self.metrics.fallback_exits += 1;
                    self.metrics.in_fallback = false;
                    self.events.push(DaemonEvent::FallbackExited { at: now });
                    let code = self.fallback_reason.take().map_or(0.0, FallbackReason::code);
                    let epoch = self.bank.epoch_index();
                    self.bank.recorder_mut().record(
                        epoch,
                        Source::Rack,
                        EventKind::FallbackExited,
                        code,
                    );
                }
            }
            LoopState::Closed => {
                if stale > 0 {
                    self.enter_fallback(now, FallbackReason::SensorLoss);
                    return;
                }
                if read_err {
                    // Hold the previous actuation and retry next cycle.
                    self.consecutive_failures += 1;
                    if self.consecutive_failures > self.cfg.max_retries {
                        self.enter_fallback(now, FallbackReason::ReadFailures);
                    }
                    return;
                }
                // `read_err` returned above for the Err case; if that
                // coupling ever breaks, holding the actuation (the same
                // response as a read failure) beats panicking the loop.
                let Ok(demand) = demand else { return };

                // --- decide (panic-guarded like the polls). -----------
                let bank = &mut self.bank;
                let view = &mut self.view;
                let decided = catch_unwind(AssertUnwindSafe(|| {
                    bank.epoch(view, now, demand, fan_due, traces, channels);
                }));
                if decided.is_err() {
                    self.metrics.controller_panics += 1;
                    self.enter_fallback(now, FallbackReason::ControllerPanic);
                    return;
                }

                // --- actuate: migrations, fan targets (deadzoned),
                // caps. ------------------------------------------------
                let mut write_err = false;
                for shift in self.view.take_shifts() {
                    if self.backend.migrate_load(shift.from, shift.to, shift.amount).is_err() {
                        write_err = true;
                    }
                }
                for z in 0..self.view.zone_count() {
                    let desired = self.view.zone_fan_target(z);
                    if (desired.value() - self.last_acked[z].value()).abs() <= self.cfg.deadzone_rpm
                    {
                        continue;
                    }
                    self.metrics.zones[z].commanded_rpm = desired.value();
                    match self.backend.write_fan_target(z, desired) {
                        Ok(acked) => {
                            self.last_acked[z] = acked;
                            self.metrics.zones[z].acked_rpm = acked.value();
                            self.metrics.zones[z].writes += 1;
                        }
                        Err(_) => {
                            write_err = true;
                            self.metrics.zones[z].nacks += 1;
                        }
                    }
                }
                if self.backend.write_caps(self.bank.caps()).is_err() {
                    write_err = true;
                }
                self.view.mirror_executed(self.bank.executed());

                if write_err {
                    self.metrics.write_failures += 1;
                    self.consecutive_failures += 1;
                    if self.consecutive_failures > self.cfg.max_retries {
                        self.enter_fallback(now, FallbackReason::ActuationFailures);
                    }
                } else {
                    self.consecutive_failures = 0;
                }
            }
        }
    }

    /// Books one paced cycle's timing: deadline-miss and overrun
    /// counters, flight-recorder events, the overrun-streak fallback
    /// trigger, and the clean-recovery reset — a disturbed cycle must
    /// not count toward leaving fallback.
    fn account_pacing(
        &mut self,
        now: Seconds,
        lateness: Seconds,
        duration: Seconds,
        period_wall: Seconds,
        cfg: PacingConfig,
        overrun_streak: &mut u32,
    ) {
        let missed = lateness.value() > cfg.miss_tolerance.value();
        if missed {
            self.metrics.deadline_misses += 1;
            if lateness.value() > self.metrics.worst_lateness_s {
                self.metrics.worst_lateness_s = lateness.value();
            }
            let epoch = self.bank.epoch_index();
            self.bank.recorder_mut().record(
                epoch,
                Source::Rack,
                EventKind::DeadlineMissed,
                lateness.value(),
            );
        }
        let overran = duration.value() > period_wall.value();
        if overran {
            self.metrics.cycle_overruns += 1;
            *overrun_streak += 1;
            let epoch = self.bank.epoch_index();
            self.bank.recorder_mut().record(
                epoch,
                Source::Rack,
                EventKind::CycleOverrun,
                duration.value(),
            );
            if *overrun_streak >= cfg.max_overrun_streak {
                self.enter_fallback(now, FallbackReason::OverrunStreak);
            }
        } else {
            *overrun_streak = 0;
        }
        self.metrics.overrun_streak = u64::from(*overrun_streak);
        if (missed || overran) && matches!(self.state, LoopState::Fallback { .. }) {
            // Pacing is still disturbed: the recovery window restarts
            // from the next on-time cycle with clean telemetry.
            self.state = LoopState::Fallback { clean_since: None };
        }
    }

    /// Engages firmware fallback (idempotent).
    fn enter_fallback(&mut self, now: Seconds, reason: FallbackReason) {
        if matches!(self.state, LoopState::Fallback { .. }) {
            return;
        }
        // The safe switch is firmware-internal and deliberately not
        // retried through the failing command path; `SimTelemetry`
        // models it as infallible and a real BMC reasserts
        // auto-control on its own watchdog anyway.
        let _ = self.backend.enter_firmware_fallback();
        self.state = LoopState::Fallback { clean_since: None };
        self.consecutive_failures = 0;
        self.metrics.fallback_entries += 1;
        self.metrics.in_fallback = true;
        self.events.push(DaemonEvent::FallbackEntered { at: now, reason });
        self.fallback_reason = Some(reason);
        let epoch = self.bank.epoch_index();
        self.bank.recorder_mut().record(
            epoch,
            Source::Rack,
            EventKind::FallbackEntered,
            reason.code(),
        );
    }
}
