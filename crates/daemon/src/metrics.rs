//! Daemon observability: counters, gauges, and a line-protocol export.
//!
//! Every watchdog transition is counted — fallback entries and exits,
//! read/write failures, controller panics — alongside loop latency and
//! the per-wall commanded-vs-acked rpm pair, and the whole snapshot
//! renders as influx line protocol (`measurement,tag=v field=v ...`)
//! either on demand ([`DaemonMetrics::render`]) or over a plain-text
//! TCP endpoint ([`MetricsEndpoint`], one snapshot per connection — the
//! `nc host port` contract).

use gfsc_obs::lineproto::escape_name;
use gfsc_obs::LogHistogram;
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener};

/// Per-zone actuation bookkeeping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ZoneActuation {
    /// The zone's human-facing label from the rack topology, exported
    /// as an (escaped) `name` tag when non-empty.
    pub label: String,
    /// The last rpm the daemon commanded.
    pub commanded_rpm: f64,
    /// The last rpm the platform acknowledged.
    pub acked_rpm: f64,
    /// Acknowledged writes.
    pub writes: u64,
    /// Rejected writes.
    pub nacks: u64,
}

/// The daemon's metric set — plain fields, updated by the loop, read by
/// tests and the endpoint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DaemonMetrics {
    /// Control cycles run.
    pub loop_cycles: u64,
    /// Sampled cycle latencies, in nanoseconds (the loop samples latency
    /// rather than timing every cycle — see `Daemon::run`). The shared
    /// `gfsc-obs` log-linear histogram: exact last/max, p50/p95/p99
    /// within 6.25 %.
    pub loop_latency: LogHistogram,
    /// Sensors currently classified non-fresh (gauge).
    pub stale_sensors: u64,
    /// Sensors currently classified frozen (gauge, subset of stale).
    pub frozen_sensors: u64,
    /// Firmware-fallback entries.
    pub fallback_entries: u64,
    /// Recoveries back to closed-loop control.
    pub fallback_exits: u64,
    /// Whether firmware currently holds the rack (gauge).
    pub in_fallback: bool,
    /// Cycles with a failed poll.
    pub read_failures: u64,
    /// Cycles with a rejected write.
    pub write_failures: u64,
    /// Panics caught by the loop's watchdog.
    pub controller_panics: u64,
    /// Paced cycles that started later than deadline + tolerance
    /// (zero unless the loop runs under `Daemon::run_paced`).
    pub deadline_misses: u64,
    /// Paced cycles whose work outlasted the wall period.
    pub cycle_overruns: u64,
    /// Current consecutive-overrun streak (gauge; fallback trips at the
    /// configured budget).
    pub overrun_streak: u64,
    /// Worst cycle-start lateness seen, wall seconds (gauge).
    pub worst_lateness_s: f64,
    /// Per-zone actuation state.
    pub zones: Vec<ZoneActuation>,
}

impl DaemonMetrics {
    /// A zeroed metric set for `zones` fan walls.
    #[must_use]
    pub fn new(zones: usize) -> Self {
        Self { zones: vec![ZoneActuation::default(); zones], ..Self::default() }
    }

    /// Records one cycle's wall-clock latency.
    pub fn observe_latency(&mut self, ns: u64) {
        self.loop_latency.record(ns);
    }

    /// The most recently sampled cycle latency, in nanoseconds — the
    /// field this used to be, kept as an accessor (and as a rendered
    /// field name) so existing scrapes don't break.
    #[must_use]
    pub fn loop_latency_last_ns(&self) -> u64 {
        self.loop_latency.last()
    }

    /// Worst sampled cycle latency, in nanoseconds (alias, see
    /// [`Self::loop_latency_last_ns`]).
    #[must_use]
    pub fn loop_latency_max_ns(&self) -> u64 {
        self.loop_latency.max()
    }

    /// Renders the snapshot as influx line protocol: one
    /// `gfsc_daemon` line of loop/watchdog fields (latency last/max
    /// plus histogram p50/p95/p99), one `gfsc_daemon_wall,zone=<z>`
    /// line per fan wall (with an escaped `name` tag when the wall is
    /// labelled).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gfsc_daemon loop_cycles={}u,loop_latency_last_ns={}u,loop_latency_max_ns={}u,\
             loop_latency_p50_ns={}u,loop_latency_p95_ns={}u,loop_latency_p99_ns={}u,\
             stale_sensors={}u,frozen_sensors={}u,fallback_entries={}u,fallback_exits={}u,\
             in_fallback={},read_failures={}u,write_failures={}u,controller_panics={}u,\
             deadline_misses={}u,cycle_overruns={}u,overrun_streak={}u,worst_lateness_s={}",
            self.loop_cycles,
            self.loop_latency.last(),
            self.loop_latency.max(),
            self.loop_latency.quantile(0.50),
            self.loop_latency.quantile(0.95),
            self.loop_latency.quantile(0.99),
            self.stale_sensors,
            self.frozen_sensors,
            self.fallback_entries,
            self.fallback_exits,
            self.in_fallback,
            self.read_failures,
            self.write_failures,
            self.controller_panics,
            self.deadline_misses,
            self.cycle_overruns,
            self.overrun_streak,
            self.worst_lateness_s,
        );
        for (z, wall) in self.zones.iter().enumerate() {
            let _ = write!(out, "gfsc_daemon_wall,zone={z}");
            if !wall.label.is_empty() {
                let _ = write!(out, ",name={}", escape_name(&wall.label));
            }
            let _ = writeln!(
                out,
                " commanded_rpm={},acked_rpm={},writes={}u,nacks={}u",
                wall.commanded_rpm, wall.acked_rpm, wall.writes, wall.nacks,
            );
        }
        out
    }
}

/// A non-blocking plain-text metrics endpoint: each accepted connection
/// receives one line-protocol snapshot and is closed.
#[derive(Debug)]
pub struct MetricsEndpoint {
    listener: TcpListener,
}

impl MetricsEndpoint {
    /// Binds the endpoint (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Returns the bind/configure error.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self { listener })
    }

    /// The bound address (for tests and log lines).
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves `snapshot` to every connection currently waiting, without
    /// blocking the control loop. Returns the number of connections
    /// served.
    pub fn poll_serve(&self, snapshot: &str) -> usize {
        let mut served = 0;
        loop {
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    let _ = stream.write_all(snapshot.as_bytes());
                    served += 1;
                }
                Err(_) => return served,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    #[test]
    fn render_is_line_protocol() {
        let mut metrics = DaemonMetrics::new(2);
        metrics.loop_cycles = 3;
        metrics.fallback_entries = 1;
        metrics.in_fallback = true;
        metrics.zones[1].commanded_rpm = 4200.0;
        let text = metrics.render();
        assert!(text.contains("gfsc_daemon loop_cycles=3u"));
        assert!(text.contains("fallback_entries=1u"));
        assert!(text.contains("in_fallback=true"));
        assert!(text.contains("gfsc_daemon_wall,zone=1 commanded_rpm=4200"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn pacing_counters_render_on_the_daemon_line() {
        let mut metrics = DaemonMetrics::new(1);
        metrics.deadline_misses = 4;
        metrics.cycle_overruns = 2;
        metrics.overrun_streak = 2;
        metrics.worst_lateness_s = 1.25;
        let text = metrics.render();
        assert!(text.contains("deadline_misses=4u"), "{text}");
        assert!(text.contains("cycle_overruns=2u"), "{text}");
        assert!(text.contains("overrun_streak=2u"), "{text}");
        assert!(text.contains("worst_lateness_s=1.25"), "{text}");
        // Still one gfsc_daemon row plus the wall row.
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn latency_tracks_last_and_max() {
        let mut metrics = DaemonMetrics::new(1);
        metrics.observe_latency(500);
        metrics.observe_latency(200);
        assert_eq!(metrics.loop_latency_last_ns(), 200);
        assert_eq!(metrics.loop_latency_max_ns(), 500);
    }

    #[test]
    fn latency_percentiles_render_alongside_the_aliases() {
        let mut metrics = DaemonMetrics::new(1);
        for ns in 1..=1000u64 {
            metrics.observe_latency(ns);
        }
        let text = metrics.render();
        // The pre-histogram field names survive as aliases…
        assert!(text.contains("loop_latency_last_ns=1000u"), "{text}");
        assert!(text.contains("loop_latency_max_ns=1000u"), "{text}");
        // …and the histogram adds the percentiles (log-linear, ≤ 6.25 %
        // error on a uniform 1..=1000 ramp).
        for (key, expect) in [
            ("loop_latency_p50_ns", 500.0),
            ("loop_latency_p95_ns", 950.0),
            ("loop_latency_p99_ns", 990.0),
        ] {
            let value: f64 = text
                .split(&format!("{key}="))
                .nth(1)
                .and_then(|rest| rest.split('u').next())
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{key} missing: {text}"));
            assert!((value - expect).abs() / expect <= 0.0625, "{key}={value}, expected ~{expect}");
        }
    }

    #[test]
    fn zone_labels_render_as_escaped_name_tags() {
        // Regression: labels with spaces/commas used to corrupt the row
        // (influx splits tags on unescaped spaces and commas).
        let mut metrics = DaemonMetrics::new(2);
        metrics.zones[0].label = "front wall".to_string();
        metrics.zones[1].label = "cold aisle, rear".to_string();
        metrics.zones[1].commanded_rpm = 4200.0;
        let text = metrics.render();
        assert!(
            text.contains("gfsc_daemon_wall,zone=0,name=front\\ wall commanded_rpm="),
            "space not escaped: {text}"
        );
        assert!(
            text.contains("gfsc_daemon_wall,zone=1,name=cold\\ aisle\\,\\ rear commanded_rpm=4200"),
            "comma not escaped: {text}"
        );
        // Each wall stays a single line-protocol row.
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn endpoint_serves_one_snapshot_per_connection() {
        let endpoint = MetricsEndpoint::bind("127.0.0.1:0").expect("ephemeral bind");
        let addr = endpoint.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        // The non-blocking accept may lag the connect on a contended
        // box: retry against a generous wall deadline instead of a
        // fixed iteration count — the test ends at first success, so
        // the deadline only bounds the pathological case.
        let give_up = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let mut served = 0;
        while served == 0 && std::time::Instant::now() < give_up {
            served = endpoint.poll_serve("gfsc_daemon loop_cycles=1u\n");
            if served == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        assert_eq!(served, 1);
        let mut body = String::new();
        client.read_to_string(&mut body).unwrap();
        assert_eq!(body, "gfsc_daemon loop_cycles=1u\n");
    }
}
