//! `gfsc-daemond` configuration — a hand-rolled TOML-subset parser in
//! the `lint.toml` mold (the container is offline; no serde, no TOML
//! crate).
//!
//! The supported subset: `[section]` headers; `key = "string"`,
//! `key = 123`, `key = 1.5`; `key = ["a", "b"]` string arrays (which
//! may span lines); `#` comments outside quotes. Unknown sections or
//! keys are errors — a typo'd budget silently falling back to a
//! default is exactly the config failure a watchdog daemon cannot
//! afford.
//!
//! See the README's "Running as a daemon" section for the full schema;
//! `tests/fixtures/daemond_sim.toml` is the parity exemplar.

use crate::enforce::{CapEnforcer, NullEnforcer, RaplEnforcer};
use crate::{
    Daemon, DaemonConfig, FaultPlan, IpmiAdapter, IpmiTelemetry, MetricsEndpoint, PacingConfig,
    ProcessRunner, SimTelemetry,
};
use gfsc_coord::{RackControl, RackControlConfig};
use gfsc_obs::Recorder;
use gfsc_rack::{RackSpec, RackTopology};
use gfsc_units::{Bounds, Rpm, Seconds, Utilization, Watts};
use gfsc_workload::{SquareWave, Workload};

/// Which backend the daemon drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The simulated rack plant (`SimTelemetry`) — HIL drills, parity
    /// checks, and dry runs.
    #[default]
    Sim,
    /// A real BMC through `ipmitool` (`IpmiTelemetry`).
    Ipmi,
}

/// The `[workload]` block (sim backend only).
#[derive(Debug, Clone, Default)]
pub struct WorkloadSpec {
    /// `preset = "rack-golden"` (the parity/evaluation workload:
    /// DATE'14 square wave + pinned-seed noise and spikes) or
    /// `"date14"` (the bare square wave).
    pub preset: Option<String>,
    /// Custom square wave low level (with `square_high` /
    /// `square_period_s` / `square_duty`; mutually exclusive with
    /// `preset`).
    pub square_low: Option<f64>,
    /// Custom square wave high level.
    pub square_high: Option<f64>,
    /// Custom square wave period.
    pub square_period: Option<Seconds>,
    /// Custom square wave duty fraction.
    pub square_duty: Option<f64>,
    /// Gaussian noise sigma (with `noise_seed`).
    pub noise_sigma: Option<f64>,
    /// Gaussian noise seed.
    pub noise_seed: Option<u64>,
    /// Spike arrival rate (with the other three `spike_*` keys).
    pub spike_rate_hz: Option<f64>,
    /// Spike duration.
    pub spike_len: Option<Seconds>,
    /// Spike amplitude.
    pub spike_amplitude: Option<f64>,
    /// Spike seed.
    pub spike_seed: Option<u64>,
}

/// The `[ipmi]` block (ipmi backend only).
#[derive(Debug, Clone)]
pub struct IpmiSpec {
    /// Socket→sensor-name map; empty means auto-discover from the sdr
    /// listing ([`IpmiAdapter::discover`]).
    pub sensors: Vec<String>,
    /// Fan-wall count (must match the topology's zone count).
    pub zones: usize,
    /// Mechanical fan floor.
    pub fan_min: Rpm,
    /// Mechanical fan ceiling.
    pub fan_max: Rpm,
    /// The fixed rack-demand estimate the thermal loop runs with.
    pub demand: f64,
}

impl Default for IpmiSpec {
    fn default() -> Self {
        Self {
            sensors: Vec::new(),
            zones: 0,
            fan_min: Rpm::new(1000.0),
            fan_max: Rpm::new(9000.0),
            demand: 0.5,
        }
    }
}

/// The `[caps]` block (ipmi backend only): cap enforcement.
#[derive(Debug, Clone)]
pub struct CapsSpec {
    /// `"null"` (accept-without-enforcing) or `"rapl"`.
    pub enforcer: String,
    /// Root of the powercap sysfs tree (RAPL enforcer).
    pub rapl_root: String,
    /// Power at cap 0 (RAPL enforcer).
    pub min_power: Watts,
    /// Power at cap 1 (RAPL enforcer).
    pub max_power: Watts,
}

impl Default for CapsSpec {
    fn default() -> Self {
        Self {
            enforcer: "null".into(),
            rapl_root: RaplEnforcer::POWERCAP_ROOT.into(),
            min_power: Watts::new(40.0),
            max_power: Watts::new(120.0),
        }
    }
}

/// Everything a `gfsc-daemond` run is parameterized by — the parsed
/// config file.
#[derive(Debug, Clone)]
pub struct DaemondSpec {
    /// Control mode ([`RackControl::from_label`] of `[daemon] control`).
    pub control: RackControl,
    /// Topology preset label (`rack-2u-x4`, `rack-1u-x8`,
    /// `choked-rear-x4`, `shared-plenum:<n>`, `front-rear:<n>`).
    pub topology: String,
    /// Simulated horizon of one run.
    pub horizon: Seconds,
    /// Watchdog staleness budget.
    pub stale_after: Seconds,
    /// Watchdog freeze budget (`None` = freeze detection off).
    pub freeze_after: Option<Seconds>,
    /// Fan-write deadzone, rpm.
    pub deadzone_rpm: f64,
    /// Watchdog retry budget.
    pub max_retries: u32,
    /// Clean-telemetry window required to leave fallback.
    pub recovery_window: Seconds,
    /// Flight-recorder ring capacity (0 = disarmed).
    pub recorder_capacity: usize,
    /// TCP metrics endpoint address (`None` = not served).
    pub metrics_addr: Option<String>,
    /// The `[pacing]` block.
    pub pacing: PacingConfig,
    /// The `[backend]` block.
    pub backend: BackendKind,
    /// The `[workload]` block.
    pub workload: WorkloadSpec,
    /// The `[ipmi]` block.
    pub ipmi: IpmiSpec,
    /// The `[caps]` block.
    pub caps: CapsSpec,
}

impl Default for DaemondSpec {
    /// The library `DaemonConfig::new` defaults on the 2U×4 preset with
    /// the golden workload, real-time pacing, recorder armed.
    fn default() -> Self {
        Self {
            control: RackControl::Coordinated { adaptive_reference: true },
            topology: "rack-2u-x4".into(),
            horizon: Seconds::new(600.0),
            stale_after: Seconds::new(3.0),
            freeze_after: None,
            deadzone_rpm: 0.0,
            max_retries: 3,
            recovery_window: Seconds::new(10.0),
            recorder_capacity: 4096,
            metrics_addr: None,
            pacing: PacingConfig::default(),
            backend: BackendKind::Sim,
            workload: WorkloadSpec::default(),
            ipmi: IpmiSpec::default(),
            caps: CapsSpec::default(),
        }
    }
}

impl DaemondSpec {
    /// Reads and parses a config file.
    ///
    /// # Errors
    ///
    /// I/O failures and every [`Self::parse`] error, prefixed with the
    /// path.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses config text; unknown sections/keys and malformed values
    /// are line-numbered errors.
    ///
    /// # Errors
    ///
    /// The first construct outside the supported subset or schema.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut spec = Self::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
                section = name.trim().to_string();
                match section.as_str() {
                    "daemon" | "pacing" | "backend" | "workload" | "ipmi" | "caps" => {}
                    other => return Err(format!("line {lineno}: unknown section `[{other}]`")),
                }
                continue;
            }
            let Some((key, mut value)) = split_key_value(&line) else {
                return Err(format!("line {lineno}: expected `key = value`"));
            };
            if value.starts_with('[') && !balanced_array(&value) {
                for (_, cont) in lines.by_ref() {
                    value.push(' ');
                    value.push_str(strip_comment(cont).trim());
                    if balanced_array(&value) {
                        break;
                    }
                }
                if !balanced_array(&value) {
                    return Err(format!("line {lineno}: unterminated array for `{key}`"));
                }
            }
            apply_key(&mut spec, &section, &key, &value)
                .map_err(|e| format!("line {lineno}: {e}"))?;
        }
        Ok(spec)
    }

    /// The rack spec the topology label names.
    ///
    /// # Errors
    ///
    /// Unknown preset labels.
    pub fn rack_spec(&self) -> Result<RackSpec, String> {
        let topology = match self.topology.as_str() {
            "rack-2u-x4" => RackTopology::rack_2u_x4(),
            "rack-1u-x8" => RackTopology::rack_1u_x8(),
            "choked-rear-x4" => RackTopology::choked_rear_x4(),
            other => {
                let parse_n = |rest: &str| {
                    rest.parse::<usize>()
                        .map_err(|_| format!("bad server count in topology `{other}`"))
                };
                if let Some(rest) = other.strip_prefix("shared-plenum:") {
                    RackTopology::shared_plenum(parse_n(rest)?)
                } else if let Some(rest) = other.strip_prefix("front-rear:") {
                    RackTopology::front_rear(parse_n(rest)?)
                } else {
                    return Err(format!("unknown topology `{other}`"));
                }
            }
        };
        Ok(RackSpec::new(topology))
    }

    /// The library-level daemon configuration this spec describes
    /// (control mode, watchdog budgets, recorder arming).
    #[must_use]
    pub fn daemon_config(&self) -> DaemonConfig {
        let mut control = RackControlConfig::new(self.control);
        if self.recorder_capacity > 0 {
            control.recorder = Recorder::armed(self.recorder_capacity);
        }
        let mut cfg = DaemonConfig::new(control);
        cfg.stale_after = self.stale_after;
        cfg.freeze_after = self.freeze_after;
        cfg.deadzone_rpm = self.deadzone_rpm;
        cfg.max_retries = self.max_retries;
        cfg.recovery_window = self.recovery_window;
        cfg
    }

    /// Builds the `[workload]` block into a demand signal.
    ///
    /// # Errors
    ///
    /// Contradictory or incomplete key combinations.
    pub fn build_workload(&self) -> Result<Workload, String> {
        let w = &self.workload;
        let noise_keys = [w.noise_sigma.is_some(), w.noise_seed.is_some()];
        let spike_keys = [
            w.spike_rate_hz.is_some(),
            w.spike_len.is_some(),
            w.spike_amplitude.is_some(),
            w.spike_seed.is_some(),
        ];
        let square_keys = [
            w.square_low.is_some(),
            w.square_high.is_some(),
            w.square_period.is_some(),
            w.square_duty.is_some(),
        ];
        if w.preset.as_deref() == Some("rack-golden") {
            if noise_keys.contains(&true)
                || spike_keys.contains(&true)
                || square_keys.contains(&true)
            {
                return Err("preset \"rack-golden\" is self-contained; drop the other \
                            [workload] keys"
                    .into());
            }
            // The rack_golden evaluation workload — exactly the chain
            // the parity tests pin, so a config-driven run can be
            // compared bit-for-bit against the library loop.
            return Ok(Workload::builder(SquareWave::date14())
                .gaussian_noise(0.04, 42)
                .spikes(1.0 / 240.0, Seconds::new(30.0), 0.8, 43)
                .build());
        }
        let base = match w.preset.as_deref() {
            Some("date14") => {
                if square_keys.contains(&true) {
                    return Err("preset \"date14\" and square_* keys are mutually exclusive".into());
                }
                SquareWave::date14()
            }
            Some(other) => return Err(format!("unknown workload preset `{other}`")),
            None => {
                if square_keys.contains(&false) {
                    return Err("a custom workload needs all four square_* keys \
                                (or a preset)"
                        .into());
                }
                SquareWave::new(
                    w.square_low.unwrap_or_default(),
                    w.square_high.unwrap_or_default(),
                    w.square_period.unwrap_or(Seconds::new(1.0)),
                    w.square_duty.unwrap_or_default(),
                )
            }
        };
        let mut builder = Workload::builder(base);
        match (w.noise_sigma, w.noise_seed) {
            (Some(sigma), Some(seed)) => builder = builder.gaussian_noise(sigma, seed),
            (None, None) => {}
            _ => return Err("noise_sigma and noise_seed must be set together".into()),
        }
        match (w.spike_rate_hz, w.spike_len, w.spike_amplitude, w.spike_seed) {
            (Some(rate), Some(len), Some(amplitude), Some(seed)) => {
                builder = builder.spikes(rate, len, amplitude, seed);
            }
            (None, None, None, None) => {}
            _ => return Err("the four spike_* keys must be set together".into()),
        }
        Ok(builder.build())
    }

    /// Assembles a fresh daemon over the simulated backend (fault-free
    /// plant, metrics endpoint attached when configured).
    ///
    /// # Errors
    ///
    /// Topology/workload build errors and endpoint bind failures.
    pub fn build_sim_daemon(&self) -> Result<Daemon<SimTelemetry>, String> {
        if self.backend != BackendKind::Sim {
            return Err("config selects the ipmi backend; use build_ipmi_daemon".into());
        }
        let spec = self.rack_spec()?;
        let cfg = self.daemon_config();
        let backend = SimTelemetry::new(
            spec.clone(),
            self.build_workload()?,
            cfg.start_utilization,
            cfg.start_fan,
            FaultPlan::none(),
        );
        let mut daemon = Daemon::new(backend, spec, cfg);
        self.attach_endpoint(&mut daemon)?;
        Ok(daemon)
    }

    /// Assembles a fresh daemon over a real BMC through `ipmitool`.
    ///
    /// # Errors
    ///
    /// Topology errors, `[ipmi]`/`[caps]` validation failures, sensor
    /// discovery failures, endpoint bind failures.
    pub fn build_ipmi_daemon(&self) -> Result<Daemon<IpmiTelemetry<ProcessRunner>>, String> {
        if self.backend != BackendKind::Ipmi {
            return Err("config selects the sim backend; use build_sim_daemon".into());
        }
        let spec = self.rack_spec()?;
        let sockets = spec.rack.total_sockets();
        let zones = spec.rack.zones().len();
        if self.ipmi.zones != zones {
            return Err(format!(
                "[ipmi] zones = {} but topology `{}` has {zones} fan walls",
                self.ipmi.zones, self.topology
            ));
        }
        if !self.ipmi.sensors.is_empty() && self.ipmi.sensors.len() != sockets {
            return Err(format!(
                "[ipmi] maps {} sensors but topology `{}` has {sockets} sockets",
                self.ipmi.sensors.len(),
                self.topology
            ));
        }
        if self.ipmi.fan_min.value() >= self.ipmi.fan_max.value() {
            return Err("[ipmi] fan_min_rpm must be below fan_max_rpm".into());
        }
        let bounds = Bounds::new(self.ipmi.fan_min, self.ipmi.fan_max);
        let enforcer: Box<dyn CapEnforcer> = match self.caps.enforcer.as_str() {
            "null" => Box::new(NullEnforcer),
            "rapl" => {
                if self.caps.min_power.value() >= self.caps.max_power.value() {
                    return Err("[caps] min_power_w must be below max_power_w".into());
                }
                Box::new(RaplEnforcer::new(
                    self.caps.rapl_root.clone(),
                    self.caps.min_power,
                    self.caps.max_power,
                ))
            }
            other => return Err(format!("unknown cap enforcer `{other}`")),
        };
        let adapter = if self.ipmi.sensors.is_empty() {
            IpmiAdapter::discover(ProcessRunner, zones, bounds).map_err(|e| e.to_string())?
        } else {
            IpmiAdapter::new(ProcessRunner, self.ipmi.sensors.clone(), zones, bounds)
        }
        .with_cap_enforcer(enforcer);
        let demand =
            Utilization::try_new(self.ipmi.demand).map_err(|e| format!("[ipmi] demand: {e}"))?;
        let cfg = self.daemon_config();
        let backend = IpmiTelemetry::new(adapter, demand, cfg.start_fan);
        let mut daemon = Daemon::new(backend, spec, cfg);
        self.attach_endpoint(&mut daemon)?;
        Ok(daemon)
    }

    fn attach_endpoint<B>(&self, daemon: &mut Daemon<B>) -> Result<(), String>
    where
        B: crate::TelemetrySource + crate::FanActuator,
    {
        if let Some(addr) = &self.metrics_addr {
            let endpoint =
                MetricsEndpoint::bind(addr).map_err(|e| format!("metrics bind {addr}: {e}"))?;
            daemon.serve_metrics(endpoint);
        }
        Ok(())
    }
}

fn apply_key(spec: &mut DaemondSpec, section: &str, key: &str, value: &str) -> Result<(), String> {
    match section {
        "daemon" => match key {
            "control" => spec.control = RackControl::from_label(&parse_string(value)?)?,
            "topology" => spec.topology = parse_string(value)?,
            "horizon_s" => spec.horizon = Seconds::new(parse_f64(value)?),
            "stale_after_s" => spec.stale_after = Seconds::new(parse_f64(value)?),
            "freeze_after_s" => spec.freeze_after = Some(Seconds::new(parse_f64(value)?)),
            "deadzone_rpm" => spec.deadzone_rpm = parse_f64(value)?,
            "max_retries" => spec.max_retries = parse_int(value)?,
            "recovery_window_s" => spec.recovery_window = Seconds::new(parse_f64(value)?),
            "recorder_capacity" => spec.recorder_capacity = parse_int(value)?,
            "metrics_addr" => spec.metrics_addr = Some(parse_string(value)?),
            other => return Err(format!("unknown key `{other}` in [daemon]")),
        },
        "pacing" => match key {
            "time_scale" => spec.pacing.time_scale = parse_f64(value)?,
            "miss_tolerance_s" => spec.pacing.miss_tolerance = Seconds::new(parse_f64(value)?),
            "max_overrun_streak" => spec.pacing.max_overrun_streak = parse_int(value)?,
            other => return Err(format!("unknown key `{other}` in [pacing]")),
        },
        "backend" => match key {
            "kind" => {
                spec.backend = match parse_string(value)?.as_str() {
                    "sim" => BackendKind::Sim,
                    "ipmi" => BackendKind::Ipmi,
                    other => return Err(format!("unknown backend kind `{other}`")),
                }
            }
            other => return Err(format!("unknown key `{other}` in [backend]")),
        },
        "workload" => match key {
            "preset" => spec.workload.preset = Some(parse_string(value)?),
            "square_low" => spec.workload.square_low = Some(parse_f64(value)?),
            "square_high" => spec.workload.square_high = Some(parse_f64(value)?),
            "square_period_s" => {
                spec.workload.square_period = Some(Seconds::new(parse_f64(value)?));
            }
            "square_duty" => spec.workload.square_duty = Some(parse_f64(value)?),
            "noise_sigma" => spec.workload.noise_sigma = Some(parse_f64(value)?),
            "noise_seed" => spec.workload.noise_seed = Some(parse_int(value)?),
            "spike_rate_hz" => spec.workload.spike_rate_hz = Some(parse_f64(value)?),
            "spike_len_s" => spec.workload.spike_len = Some(Seconds::new(parse_f64(value)?)),
            "spike_amplitude" => spec.workload.spike_amplitude = Some(parse_f64(value)?),
            "spike_seed" => spec.workload.spike_seed = Some(parse_int(value)?),
            other => return Err(format!("unknown key `{other}` in [workload]")),
        },
        "ipmi" => match key {
            "sensors" => spec.ipmi.sensors = parse_string_array(value)?,
            "zones" => spec.ipmi.zones = parse_int(value)?,
            "fan_min_rpm" => spec.ipmi.fan_min = Rpm::new(parse_f64(value)?),
            "fan_max_rpm" => spec.ipmi.fan_max = Rpm::new(parse_f64(value)?),
            "demand" => spec.ipmi.demand = parse_f64(value)?,
            other => return Err(format!("unknown key `{other}` in [ipmi]")),
        },
        "caps" => match key {
            "enforcer" => spec.caps.enforcer = parse_string(value)?,
            "rapl_root" => spec.caps.rapl_root = parse_string(value)?,
            "min_power_w" => spec.caps.min_power = Watts::new(parse_f64(value)?),
            "max_power_w" => spec.caps.max_power = Watts::new(parse_f64(value)?),
            other => return Err(format!("unknown key `{other}` in [caps]")),
        },
        "" => return Err(format!("key `{key}` before any [section]")),
        other => return Err(format!("unknown section `[{other}]`")),
    }
    Ok(())
}

/// Splits `key = value`, trimming both halves.
fn split_key_value(line: &str) -> Option<(String, String)> {
    let eq = line.find('=')?;
    let key = line.get(..eq)?.trim();
    let value = line.get(eq + 1..)?.trim();
    if key.is_empty() || value.is_empty() {
        return None;
    }
    Some((key.to_string(), value.to_string()))
}

/// Removes a trailing `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return line.get(..i).unwrap_or(line),
            _ => {}
        }
        prev_backslash = ch == '\\' && !prev_backslash;
    }
    line
}

fn balanced_array(value: &str) -> bool {
    let mut in_str = false;
    for ch in value.chars() {
        match ch {
            '"' => in_str = !in_str,
            ']' if !in_str => return true,
            _ => {}
        }
    }
    false
}

fn parse_string(value: &str) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected a quoted string, got `{value}`"))
}

fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got `{value}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item)?);
    }
    Ok(out)
}

fn parse_f64(value: &str) -> Result<f64, String> {
    value
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| format!("expected a finite number, got `{value}`"))
}

fn parse_int<T: std::str::FromStr>(value: &str) -> Result<T, String> {
    value.parse::<T>().map_err(|_| format!("expected an integer, got `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_library_daemon_config() {
        let spec = DaemondSpec::default();
        let cfg = spec.daemon_config();
        let reference = DaemonConfig::new(RackControlConfig::new(spec.control));
        assert_eq!(cfg.stale_after, reference.stale_after);
        assert_eq!(cfg.freeze_after, reference.freeze_after);
        assert_eq!(cfg.max_retries, reference.max_retries);
        assert_eq!(cfg.recovery_window, reference.recovery_window);
    }

    #[test]
    fn parses_the_full_schema() {
        let spec = DaemondSpec::parse(
            r#"
# a daemond config exercising every section
[daemon]
control = "global-e-coord"
topology = "rack-1u-x8"
horizon_s = 120.0          # trailing comment
stale_after_s = 5.0
freeze_after_s = 45.0
deadzone_rpm = 25.0
max_retries = 2
recovery_window_s = 15.0
recorder_capacity = 512
metrics_addr = "127.0.0.1:0"

[pacing]
time_scale = 0.5
miss_tolerance_s = 0.1
max_overrun_streak = 3

[backend]
kind = "ipmi"

[ipmi]
sensors = [
    "CPU0 Temp",
    "CPU1 Temp",
]
zones = 2
fan_min_rpm = 1200.0
fan_max_rpm = 8000.0
demand = 0.4

[caps]
enforcer = "rapl"
rapl_root = "/tmp/powercap"
min_power_w = 50.0
max_power_w = 150.0
"#,
        )
        .expect("full schema parses");
        assert_eq!(spec.control, RackControl::GlobalECoord);
        assert_eq!(spec.topology, "rack-1u-x8");
        assert_eq!(spec.horizon, Seconds::new(120.0));
        assert_eq!(spec.freeze_after, Some(Seconds::new(45.0)));
        assert_eq!(spec.max_retries, 2);
        assert_eq!(spec.recorder_capacity, 512);
        assert_eq!(spec.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(spec.pacing.time_scale, 0.5);
        assert_eq!(spec.pacing.miss_tolerance, Seconds::new(0.1));
        assert_eq!(spec.pacing.max_overrun_streak, 3);
        assert_eq!(spec.backend, BackendKind::Ipmi);
        assert_eq!(spec.ipmi.sensors, vec!["CPU0 Temp", "CPU1 Temp"]);
        assert_eq!(spec.ipmi.zones, 2);
        assert_eq!(spec.caps.enforcer, "rapl");
        assert_eq!(spec.caps.min_power, Watts::new(50.0));
    }

    #[test]
    fn unknown_keys_and_sections_are_errors_not_defaults() {
        let err = DaemondSpec::parse("[daemon]\nstale_after = 3.0\n").unwrap_err();
        assert!(err.contains("unknown key `stale_after`"), "{err}");
        let err = DaemondSpec::parse("[deamon]\n").unwrap_err();
        assert!(err.contains("unknown section"), "{err}");
        let err = DaemondSpec::parse("control = \"lockstep\"\n").unwrap_err();
        assert!(err.contains("before any [section]"), "{err}");
    }

    #[test]
    fn golden_preset_is_self_contained() {
        let spec = DaemondSpec::parse("[workload]\npreset = \"rack-golden\"\n").unwrap();
        spec.build_workload().expect("golden preset builds");
        let spec = DaemondSpec::parse("[workload]\npreset = \"rack-golden\"\nnoise_sigma = 0.1\n")
            .unwrap();
        // noise_seed missing *and* preset collision — the collision
        // must win with a clear message.
        let err = spec.build_workload().unwrap_err();
        assert!(err.contains("self-contained"), "{err}");
    }

    #[test]
    fn custom_workloads_demand_complete_key_sets() {
        let spec = DaemondSpec::parse("[workload]\nsquare_low = 0.2\n").unwrap();
        assert!(spec.build_workload().unwrap_err().contains("all four square_*"));
        let spec =
            DaemondSpec::parse("[workload]\npreset = \"date14\"\nnoise_sigma = 0.04\n").unwrap();
        assert!(spec.build_workload().unwrap_err().contains("noise_sigma and noise_seed"));
    }

    #[test]
    fn topology_labels_resolve_including_parameterized_presets() {
        for label in ["rack-2u-x4", "rack-1u-x8", "choked-rear-x4", "shared-plenum:4"] {
            let spec = DaemondSpec { topology: label.into(), ..DaemondSpec::default() };
            spec.rack_spec().unwrap_or_else(|e| panic!("{label}: {e}"));
        }
        let spec = DaemondSpec { topology: "mobius-rack".into(), ..DaemondSpec::default() };
        assert!(spec.rack_spec().is_err());
    }

    #[test]
    fn sim_daemon_builds_from_the_parity_fixture_shape() {
        let spec = DaemondSpec::parse(
            "[daemon]\ncontrol = \"coordinated+adaptive\"\n[workload]\npreset = \"rack-golden\"\n",
        )
        .unwrap();
        let daemon = spec.build_sim_daemon().expect("sim daemon builds");
        assert_eq!(daemon.metrics().loop_cycles, 0);
    }

    #[test]
    fn ipmi_daemon_validates_structure_against_the_topology() {
        let spec = DaemondSpec::parse(
            "[backend]\nkind = \"ipmi\"\n[ipmi]\nzones = 3\nsensors = [\"CPU0\"]\n",
        )
        .unwrap();
        let err = spec.build_ipmi_daemon().unwrap_err();
        assert!(err.contains("fan walls"), "{err}");
    }
}
