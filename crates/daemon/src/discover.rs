//! Sensor-name auto-discovery from `ipmitool sdr` output.
//!
//! Hand-maintaining a per-host sensor map is how deployments end up
//! controlling socket 0 off socket 1's sensor. Discovery derives the
//! map from the same `sdr type temperature` listing the poll path
//! parses: rows whose names look like CPU/core/processor sensors, in
//! their numeric order.
//!
//! Discovery is **structural, not readability-gated**: a CPU sensor
//! that happens to print `no reading` during discovery is still the
//! right sensor for that socket — dropping it would silently remap
//! every later socket one slot over. Readability is the poll path's
//! concern (and the watchdog's).

use crate::ipmi::parse_sdr_temperatures;

/// Picks the per-socket temperature-sensor names out of
/// `ipmitool sdr type temperature` output.
///
/// A row qualifies when its name contains `cpu`, `core`, or `proc`
/// (case-insensitive) — the vendor spellings in the fixture corpus
/// (`CPU0 Temp`, `Core 2`, `Proc 1 DTS`, …). Qualifying rows are
/// ordered by the first integer embedded in the name (socket index),
/// ties and number-free names keeping listing order.
#[must_use]
pub fn discover_socket_sensors(sdr_text: &str) -> Vec<String> {
    let mut found: Vec<(u64, usize, String)> = parse_sdr_temperatures(sdr_text)
        .into_iter()
        .enumerate()
        .filter(|(_, r)| {
            let lowered = r.name.to_ascii_lowercase();
            ["cpu", "core", "proc"].iter().any(|tag| lowered.contains(tag))
        })
        .map(|(pos, r)| (first_number(&r.name).unwrap_or(u64::MAX), pos, r.name))
        .collect();
    found.sort_by_key(|entry| (entry.0, entry.1));
    found.into_iter().map(|(_, _, name)| name).collect()
}

/// The first run of ASCII digits in `name`, as a number.
fn first_number(name: &str) -> Option<u64> {
    let digits: String =
        name.chars().skip_while(|c| !c.is_ascii_digit()).take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_number_finds_the_socket_index() {
        assert_eq!(first_number("CPU0 Temp"), Some(0));
        assert_eq!(first_number("Temp CPU 12"), Some(12));
        assert_eq!(first_number("Inlet Temp"), None);
    }

    #[test]
    fn discovery_orders_by_embedded_number_not_listing_order() {
        let text = "\
CPU1 Temp        | 02h | ok  |  3.2 | 47 degrees C
Inlet Temp       | 05h | ok  |  7.1 | 28 degrees C
CPU0 Temp        | 01h | ok  |  3.1 | 45 degrees C
Exhaust Temp     | 06h | ok  |  7.2 | 41 degrees C
";
        assert_eq!(discover_socket_sensors(text), vec!["CPU0 Temp", "CPU1 Temp"]);
    }

    #[test]
    fn unreadable_cpu_sensors_keep_their_slot() {
        // Structural discovery: a momentarily-dead sensor must not
        // shift every later socket's mapping.
        let text = "\
CPU0 Temp        | 01h | ok  |  3.1 | 45 degrees C
CPU1 Temp        | 02h | ns  |  3.2 | no reading
CPU2 Temp        | 03h | ok  |  3.3 | 51 degrees C
";
        assert_eq!(discover_socket_sensors(text), vec!["CPU0 Temp", "CPU1 Temp", "CPU2 Temp"]);
    }
}
