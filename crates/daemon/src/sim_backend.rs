//! The simulated telemetry backend: the rack plant behind the streamed
//! traits, with deterministic fault injection.
//!
//! [`SimTelemetry`] owns a `gfsc_rack::RackServer` and a workload and
//! exposes them through [`TelemetrySource`] / [`FanActuator`] — the
//! hardware-in-the-loop stand-in. With [`FaultPlan::none`] the daemon
//! loop over this backend replays the batch `RackLoopSim` bit-for-bit
//! (fan/cap/measured traces; pinned by `tests/parity.rs`). With faults
//! armed, each fault is a deterministic [`FaultSchedule`] on the
//! simulation clock, so a failing HIL scenario replays exactly:
//!
//! - **frozen sensor** — one socket's reads keep succeeding but latch
//!   the value held at window entry (the failure mode
//!   `gfsc_sensors::SensorHealth` freeze detection exists for),
//! - **dropped reads** — temperature polls fail wholesale for the
//!   window (bus burst loss),
//! - **NaN sensor** — one socket's wire value goes NaN for the window;
//!   [`gfsc_units::Celsius::try_new`] maps the poison to a *missing*
//!   reading at the boundary, so it drains the same staleness budget a
//!   dead sensor would instead of flowing into the selection loops,
//! - **actuation NACK** — fan/cap/migration writes are rejected for
//!   the window,
//! - **poll panic** — one poisoned poll panics once (the daemon's
//!   `catch_unwind` watchdog path).

use crate::{FanActuator, TelemetryError, TelemetrySource};
use gfsc_rack::{RackServer, RackSpec};
use gfsc_sim::FaultSchedule;
use gfsc_units::{Celsius, Rpm, Seconds, Utilization};
use gfsc_workload::Workload;

/// The deterministic fault program of one HIL scenario.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Latch this socket's sensor at its window-entry value while any
    /// window is active.
    pub frozen_sensor: Option<(usize, FaultSchedule)>,
    /// Deliver NaN from this socket's sensor while any window is
    /// active (arrives as a missing reading; see the module docs).
    pub nan_sensor: Option<(usize, FaultSchedule)>,
    /// Fail every temperature poll while active.
    pub dropped_reads: FaultSchedule,
    /// Reject every actuation write while active.
    pub actuation_nack: FaultSchedule,
    /// Panic (once) inside the first temperature poll at or after this
    /// instant.
    pub panic_poll_at: Option<Seconds>,
}

impl FaultPlan {
    /// No faults: the bit-for-bit parity configuration.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }
}

/// The simulated rack behind the streamed traits.
#[derive(Debug)]
pub struct SimTelemetry {
    server: RackServer,
    workload: Workload,
    faults: FaultPlan,
    /// The last sampled rack demand — what the CPUs run between epochs.
    last_demand: Utilization,
    /// The caps most recently written (released in fallback).
    caps: Vec<Utilization>,
    /// The enforced utilizations the plant steps with.
    executed: Vec<Utilization>,
    /// The frozen sensor's latched value while its window is active.
    frozen_latch: Option<f64>,
    /// Firmware auto-control engaged (fans pinned at max, caps
    /// released, demand runs uncapped).
    fallback: bool,
    panicked: bool,
    /// Hottest true junction seen over the run — the HIL safety bound.
    max_junction: Celsius,
}

impl SimTelemetry {
    /// Builds the backend at thermal equilibrium at `start_utilization`
    /// / `start_fan` — the same starting point `RackLoopSim`'s builder
    /// uses.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation.
    #[must_use]
    pub fn new(
        spec: RackSpec,
        workload: Workload,
        start_utilization: Utilization,
        start_fan: Rpm,
        faults: FaultPlan,
    ) -> Self {
        let mut server = RackServer::new(spec);
        let zones = server.zone_count();
        server.equilibrate(start_utilization, &vec![start_fan; zones]);
        let executed = server.executed().to_vec();
        let sockets = executed.len();
        let max_junction = server.true_junction();
        Self {
            server,
            workload,
            faults,
            last_demand: start_utilization,
            caps: vec![Utilization::FULL; sockets],
            executed,
            frozen_latch: None,
            fallback: false,
            panicked: false,
            max_junction,
        }
    }

    /// The simulated rack (read-only) — lets HIL assertions see the
    /// *true* junction temperatures no real telemetry exposes.
    #[must_use]
    pub fn server(&self) -> &RackServer {
        &self.server
    }

    /// Simulation time.
    #[must_use]
    pub fn now(&self) -> Seconds {
        self.server.now()
    }

    /// Hottest true junction seen since construction.
    #[must_use]
    pub fn max_junction(&self) -> Celsius {
        self.max_junction
    }

    /// Whether firmware auto-control is currently engaged.
    #[must_use]
    pub fn in_firmware_fallback(&self) -> bool {
        self.fallback
    }

    fn nack_active(&self) -> bool {
        self.faults.actuation_nack.is_active(self.server.now())
    }
}

impl TelemetrySource for SimTelemetry {
    fn socket_count(&self) -> usize {
        self.server.socket_count()
    }

    fn zone_count(&self) -> usize {
        self.server.zone_count()
    }

    fn poll_temperatures(&mut self, out: &mut [Option<Celsius>]) -> Result<(), TelemetryError> {
        let now = self.server.now();
        if let Some(at) = self.faults.panic_poll_at {
            if !self.panicked && now.value() >= at.value() {
                self.panicked = true;
                // gfsc-lint: allow(panic) deliberate fault injection: the daemon's watchdog drills depend on this panic firing
                panic!("injected sensor-poll panic at t={} s", now.value());
            }
        }
        if self.faults.dropped_reads.is_active(now) {
            return Err(TelemetryError::Read("injected dropped-reads burst".into()));
        }
        assert_eq!(out.len(), self.server.socket_count(), "one reading slot per socket");
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = Some(self.server.measured_socket(i));
        }
        if let Some((socket, schedule)) = &self.faults.frozen_sensor {
            if schedule.is_active(now) {
                let held = *self
                    .frozen_latch
                    .get_or_insert_with(|| self.server.measured_socket(*socket).value());
                out[*socket] = Some(Celsius::new(held));
            } else {
                self.frozen_latch = None;
            }
        }
        if let Some((socket, schedule)) = &self.faults.nan_sensor {
            if schedule.is_active(now) {
                // The poisoned wire value. `try_new` is the NaN boundary
                // guard: the reading arrives *missing*, the daemon's
                // staleness budget decides, and nothing downstream ever
                // holds a NaN temperature.
                out[*socket] = Celsius::try_new(f64::NAN);
            }
        }
        Ok(())
    }

    fn poll_fan_speeds(&mut self, out: &mut [Rpm]) -> Result<(), TelemetryError> {
        assert_eq!(out.len(), self.server.zone_count(), "one tachometer per zone");
        for (z, slot) in out.iter_mut().enumerate() {
            *slot = self.server.zone_fan_speed(z);
        }
        Ok(())
    }

    fn poll_demand(&mut self) -> Result<Utilization, TelemetryError> {
        let demand = self.workload.sample(self.server.now());
        self.last_demand = demand;
        Ok(demand)
    }

    fn advance(&mut self, dt: Seconds) {
        if self.fallback {
            // Firmware auto-control: demand runs uncapped.
            for i in 0..self.executed.len() {
                self.executed[i] = self.server.socket_demand(i, self.last_demand);
            }
        }
        let executed = core::mem::take(&mut self.executed);
        self.server.step(dt, &executed);
        self.executed = executed;
        self.max_junction = self.max_junction.max(self.server.true_junction());
    }
}

impl FanActuator for SimTelemetry {
    fn write_fan_target(&mut self, z: usize, target: Rpm) -> Result<Rpm, TelemetryError> {
        if self.nack_active() {
            return Err(TelemetryError::Nack("injected fan-write NACK".into()));
        }
        self.server.set_zone_fan_target(z, target);
        Ok(self.server.zone_fan_target(z))
    }

    fn write_caps(&mut self, caps: &[Utilization]) -> Result<(), TelemetryError> {
        if self.nack_active() {
            return Err(TelemetryError::Nack("injected cap-write NACK".into()));
        }
        assert_eq!(caps.len(), self.caps.len(), "one cap per socket");
        self.caps.copy_from_slice(caps);
        // The enforced point until the next epoch: min(demand, cap),
        // computed exactly as the control bank computes its `executed`
        // (same weights, same demand sample) — the parity contract.
        for i in 0..self.executed.len() {
            self.executed[i] = self.server.socket_demand(i, self.last_demand).min(self.caps[i]);
        }
        Ok(())
    }

    fn migrate_load(&mut self, from: usize, to: usize, amount: f64) -> Result<(), TelemetryError> {
        if self.nack_active() {
            return Err(TelemetryError::Nack("injected migration NACK".into()));
        }
        self.server.shift_load_weight(from, to, amount);
        Ok(())
    }

    fn enter_firmware_fallback(&mut self) -> Result<(), TelemetryError> {
        // The safe state is firmware-internal: it must not depend on
        // the (possibly NACKing) command path, so it never fails here.
        self.fallback = true;
        let hi = self.server.spec().server.fan_bounds.hi();
        self.server.set_all_fan_targets(hi);
        self.caps.fill(Utilization::FULL);
        for i in 0..self.executed.len() {
            self.executed[i] = self.server.socket_demand(i, self.last_demand);
        }
        Ok(())
    }

    fn resume_manual_control(&mut self) -> Result<(), TelemetryError> {
        if self.nack_active() {
            return Err(TelemetryError::Nack("injected resume NACK".into()));
        }
        self.fallback = false;
        Ok(())
    }
}
