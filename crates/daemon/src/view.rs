//! The daemon's telemetry mirror: a [`RackView`] built from polls.
//!
//! The control bank (`gfsc_coord::RackControlBank`) reads measurements
//! and issues actuation through the [`RackView`] trait. In the batch
//! loop the view *is* the simulated rack; here it is a mirror the
//! daemon refreshes from [`crate::TelemetrySource`] polls each cycle
//! and whose commanded state the daemon flushes to the
//! [`crate::FanActuator`] afterwards.
//!
//! Every derived quantity replicates the `RackServer` arithmetic
//! operation-for-operation — zone aggregation order, demand-weight
//! products, the actuator's command-step rounding — because the daemon
//! parity contract (`tests/parity.rs`) is bit-for-bit, not "close".

use gfsc_coord::RackView;
use gfsc_rack::{RackPlant, RackSpec};
use gfsc_units::{Celsius, Rpm, Utilization, Watts};

/// One recorded load migration, queued for the actuator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadShift {
    /// Donor server index.
    pub from: usize,
    /// Recipient server index.
    pub to: usize,
    /// Demand weight moved.
    pub amount: f64,
}

/// The mirror a daemon maintains of the rack it controls: polled
/// measurements and tachometers, commanded targets, demand weights, and
/// a calibrated model plant for the controllers' steady-state probes.
#[derive(Debug)]
pub struct DaemonRackView {
    spec: RackSpec,
    /// The calibrated thermal model — structure for zone/socket maps,
    /// state-independent steady-state probes for the model-based
    /// controllers.
    model: RackPlant,
    /// Last usable per-socket measurement (held across failed polls).
    measured: Vec<Celsius>,
    /// Per-zone max aggregates, recomputed on ingest exactly as
    /// `RackServer::refresh_measured` does.
    measured_zone: Vec<Celsius>,
    /// Polled tachometer speeds, one per zone.
    tach: Vec<Rpm>,
    /// Commanded fan targets (the actuator's rounding replicated).
    targets: Vec<Rpm>,
    /// The enforced utilizations of the previous epoch.
    executed: Vec<Utilization>,
    server_weights: Vec<f64>,
    socket_base_weights: Vec<f64>,
    socket_weights: Vec<f64>,
    /// Load shifts commanded by the bank this epoch, awaiting the
    /// actuator.
    pending_shifts: Vec<LoadShift>,
    probe_powers: Vec<Watts>,
    probe_fans: Vec<Rpm>,
}

impl DaemonRackView {
    /// Builds the mirror for `spec`, with the model plant equilibrated
    /// at the same operating point the rack is assumed to start from
    /// (matching `RackServer::equilibrate` at `start_utilization` /
    /// `start_fan`).
    ///
    /// # Panics
    ///
    /// Panics if the spec fails validation.
    #[must_use]
    pub fn new(spec: RackSpec, start_utilization: Utilization, start_fan: Rpm) -> Self {
        spec.validate();
        let mut model = RackPlant::new(&spec.calibration(), &spec.rack)
            // gfsc-lint: allow(panic) construction-time only (spec.validate() just ran); documented in this fn's `# Panics` section
            .expect("stock rack topologies compile");
        let server = &spec.server;
        let zones = model.zone_count();
        let sockets = model.socket_count();
        let server_weights: Vec<f64> = spec.rack.servers().iter().map(|s| s.load_weight).collect();
        let socket_base_weights: Vec<f64> = spec
            .rack
            .servers()
            .iter()
            .flat_map(|slot| slot.board.sockets().iter().map(|socket| socket.load_weight))
            .collect();
        let socket_weights: Vec<f64> = spec
            .rack
            .servers()
            .iter()
            .flat_map(|slot| {
                slot.board.sockets().iter().map(|socket| slot.load_weight * socket.load_weight)
            })
            .collect();
        let start = server.fan_bounds.clamp(start_fan);
        let fans = vec![start; zones];
        let executed: Vec<Utilization> = (0..sockets)
            .map(|i| Utilization::new(start_utilization.value() * socket_weights[i]))
            .collect();
        let powers: Vec<Watts> = executed.iter().map(|&u| server.cpu_power.power(u)).collect();
        model.equilibrate(&powers, &fans);
        let measured: Vec<Celsius> = (0..sockets).map(|i| model.junction(i)).collect();
        let mut view = Self {
            measured,
            measured_zone: vec![spec.server.ambient; zones],
            tach: fans.clone(),
            targets: fans,
            executed,
            server_weights,
            socket_base_weights,
            socket_weights,
            pending_shifts: Vec::new(),
            probe_powers: vec![Watts::new(0.0); sockets],
            probe_fans: vec![start; zones],
            model,
            spec,
        };
        view.refresh_zone_aggregates();
        view
    }

    /// The spec the mirror was built for.
    #[must_use]
    pub fn spec(&self) -> &RackSpec {
        &self.spec
    }

    /// Ingests one temperature poll: `Some` values replace the mirror's
    /// readings, `None` holds the previous value (the daemon's health
    /// tracker decides separately whether the hold is still *usable*).
    ///
    /// # Panics
    ///
    /// Panics if `values` is not one entry per socket.
    pub fn ingest_temperatures(&mut self, values: &[Option<Celsius>]) {
        assert_eq!(values.len(), self.measured.len(), "one reading slot per socket");
        for (slot, value) in self.measured.iter_mut().zip(values) {
            if let Some(v) = value {
                *slot = *v;
            }
        }
        self.refresh_zone_aggregates();
    }

    /// Ingests one tachometer poll.
    ///
    /// # Panics
    ///
    /// Panics if `speeds` is not one entry per zone.
    pub fn ingest_fan_speeds(&mut self, speeds: &[Rpm]) {
        assert_eq!(speeds.len(), self.tach.len(), "one tachometer per zone");
        self.tach.copy_from_slice(speeds);
    }

    /// Mirrors the enforced utilizations the bank decided this epoch
    /// (what the rack executes until the next epoch).
    ///
    /// # Panics
    ///
    /// Panics if `executed` is not one entry per socket.
    pub fn mirror_executed(&mut self, executed: &[Utilization]) {
        assert_eq!(executed.len(), self.executed.len(), "one utilization per socket");
        self.executed.copy_from_slice(executed);
    }

    /// Takes the load shifts queued by the bank this epoch (empties the
    /// queue).
    pub fn take_shifts(&mut self) -> Vec<LoadShift> {
        core::mem::take(&mut self.pending_shifts)
    }

    /// Forces every mirrored target to `target` — used when firmware
    /// took over the walls (fallback) so the mirror reflects what the
    /// platform is actually commanding.
    pub fn force_targets(&mut self, target: Rpm) {
        for z in 0..self.targets.len() {
            self.set_zone_fan_target(z, target);
        }
    }

    /// Recomputes the per-zone max aggregates — the exact
    /// `RackServer::refresh_measured` loop (first socket, then `max`
    /// over the rest; a slotless zone reads the ambient).
    fn refresh_zone_aggregates(&mut self) {
        for z in 0..self.measured_zone.len() {
            let sockets = self.model.zone_sockets(z);
            let Some((&first, rest)) = sockets.split_first() else {
                self.measured_zone[z] = self.spec.server.ambient;
                continue;
            };
            let mut hottest = self.measured[first].value();
            for &i in rest {
                hottest = hottest.max(self.measured[i].value());
            }
            self.measured_zone[z] = Celsius::new(hottest);
        }
    }
}

impl RackView for DaemonRackView {
    fn zone_count(&self) -> usize {
        self.tach.len()
    }

    fn socket_count(&self) -> usize {
        self.measured.len()
    }

    fn server_count(&self) -> usize {
        self.model.server_count()
    }

    fn plant(&self) -> &RackPlant {
        &self.model
    }

    fn plant_mut(&mut self) -> &mut RackPlant {
        &mut self.model
    }

    fn measured_socket(&self, i: usize) -> Celsius {
        self.measured[i]
    }

    fn measured_zone(&self, z: usize) -> Celsius {
        self.measured_zone[z]
    }

    fn measured_rack(&self) -> Celsius {
        let Some((&first, rest)) = self.measured_zone.split_first() else {
            // A zoneless rack cannot be built (the spec validates), but
            // reading ambient beats indexing into an empty mirror.
            return self.spec.server.ambient;
        };
        let mut hottest = first;
        for &m in rest {
            hottest = hottest.hotter(m);
        }
        hottest
    }

    fn zone_fan_speed(&self, z: usize) -> Rpm {
        self.tach[z]
    }

    fn zone_fan_target(&self, z: usize) -> Rpm {
        self.targets[z]
    }

    fn set_zone_fan_target(&mut self, z: usize, target: Rpm) {
        // The platform actuator's command handling, replicated so the
        // mirror's target equals the acknowledged hardware target:
        // snap to the command grid, then clamp to the mechanical range.
        let step = self.spec.server.fan_cmd_step;
        let target =
            if step > 0.0 { Rpm::new((target.value() / step).round() * step) } else { target };
        self.targets[z] = self.spec.server.fan_bounds.clamp(target);
    }

    fn set_all_fan_targets(&mut self, target: Rpm) {
        for z in 0..self.targets.len() {
            self.set_zone_fan_target(z, target);
        }
    }

    fn executed(&self) -> &[Utilization] {
        &self.executed
    }

    fn socket_demands(&self, u: Utilization, out: &mut [Utilization]) {
        assert_eq!(out.len(), self.socket_weights.len(), "one demand per socket");
        for (slot, &w) in out.iter_mut().zip(&self.socket_weights) {
            *slot = Utilization::new(u.value() * w);
        }
    }

    fn server_load_weight(&self, s: usize) -> f64 {
        self.server_weights[s]
    }

    fn shift_load_weight(&mut self, from: usize, to: usize, amount: f64) {
        assert!(from != to, "cannot migrate a server's work onto itself");
        assert!(amount > 0.0, "migrated weight must be positive");
        assert!(
            self.server_weights[from] - amount > 0.0,
            "migration would drain server {from} (weight {}, amount {amount})",
            self.server_weights[from]
        );
        self.server_weights[from] -= amount;
        self.server_weights[to] += amount;
        for s in [from, to] {
            let weight = self.server_weights[s];
            for i in self.model.server_sockets(s) {
                self.socket_weights[i] = weight * self.socket_base_weights[i];
            }
        }
        self.pending_shifts.push(LoadShift { from, to, amount });
    }

    fn min_safe_zone_fan(&mut self, z: usize, u: Utilization, limit: Celsius) -> Option<Rpm> {
        for i in 0..self.probe_powers.len() {
            let demand = Utilization::new(u.value() * self.socket_weights[i]);
            self.probe_powers[i] = self.spec.server.cpu_power.power(demand);
        }
        self.probe_fans.copy_from_slice(&self.tach);
        self.model.min_safe_zone_fan(z, &self.probe_powers, &self.probe_fans, limit)
    }
}
