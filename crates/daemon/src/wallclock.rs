//! Wall-clock pacing: the seam between simulated control time and the
//! real seconds a deployed daemon lives in.
//!
//! `Daemon::run` steps a simulated clock as fast as the CPU allows;
//! `Daemon::run_paced` runs the *identical* loop but sleeps between
//! control cycles so cycle `k` starts at wall time `k · period ·
//! time_scale`. The sleep/measure side lives behind [`WallClock`]:
//! [`MonotonicClock`] (production — `std::time::Instant`, immune to
//! wall-time steps from NTP) and [`MockClock`] (tests — time advances
//! only when the trait is asked to advance it, and scripted per-cycle
//! work cost injects deterministic overruns).
//!
//! The accounting contract (see [`PacingConfig`]):
//!
//! - a **deadline miss** is a cycle that *starts* more than
//!   `miss_tolerance` past its nominal deadline;
//! - an **overrun** is a cycle whose *work* takes longer than the wall
//!   period itself — the next deadline is already gone before the loop
//!   can sleep;
//! - `max_overrun_streak` consecutive overruns are a pacing failure the
//!   daemon treats exactly like sensor loss: firmware fallback
//!   (`FallbackReason::OverrunStreak`), with pacing disturbances
//!   resetting the clean-recovery window until cycles land on time
//!   again.

use gfsc_units::Seconds;
use std::ops::Range;
use std::time::{Duration, Instant};

/// A monotonic wall clock the paced daemon loop sleeps and measures on.
///
/// Time is reported as seconds since an implementation-chosen origin
/// (construction). The daemon never compares instants across clocks.
pub trait WallClock {
    /// Wall seconds elapsed since the clock's origin.
    fn now(&mut self) -> Seconds;

    /// Blocks until [`Self::now`] reaches `deadline` (returns
    /// immediately if the deadline already passed).
    fn sleep_until(&mut self, deadline: Seconds);

    /// Hook called once per control cycle, after the cycle's work,
    /// while the pacer is still timing it. Production clocks ignore it;
    /// [`MockClock`] uses it to charge scripted work cost to the cycle
    /// deterministically.
    fn on_cycle_complete(&mut self, cycle: u64) {
        let _ = cycle;
    }
}

/// The production clock: `std::time::Instant` under the hood, so it is
/// monotonic and unaffected by NTP steps.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    #[must_use]
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl WallClock for MonotonicClock {
    fn now(&mut self) -> Seconds {
        Seconds::new(self.origin.elapsed().as_secs_f64())
    }

    fn sleep_until(&mut self, deadline: Seconds) {
        let remaining = deadline.value() - self.origin.elapsed().as_secs_f64();
        if remaining > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(remaining));
        }
    }
}

/// The deterministic test clock: sleeping jumps time forward instantly,
/// and [`Self::inject_overrun`] charges a scripted work cost to a range
/// of cycle indices — the only way mock time advances outside a sleep.
///
/// With no injections armed, every cycle's work costs zero wall time,
/// every deadline is met exactly, and a paced run is bit-identical to
/// the unpaced library loop.
#[derive(Debug, Default)]
pub struct MockClock {
    now_s: f64,
    /// Scripted work cost per cycle-index range, charged in
    /// [`WallClock::on_cycle_complete`].
    overruns: Vec<(Range<u64>, f64)>,
}

impl MockClock {
    /// A clock at `t = 0` with no overruns scripted.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges every control cycle in `cycles` a work cost of `cost`
    /// wall seconds (cumulative across overlapping injections).
    pub fn inject_overrun(&mut self, cycles: Range<u64>, cost: Seconds) {
        self.overruns.push((cycles, cost.value()));
    }
}

impl WallClock for MockClock {
    fn now(&mut self) -> Seconds {
        Seconds::new(self.now_s)
    }

    fn sleep_until(&mut self, deadline: Seconds) {
        if deadline.value() > self.now_s {
            self.now_s = deadline.value();
        }
    }

    fn on_cycle_complete(&mut self, cycle: u64) {
        for (range, cost) in &self.overruns {
            if range.contains(&cycle) {
                self.now_s += cost;
            }
        }
    }
}

/// How the paced loop maps control time to wall time and when pacing
/// trouble becomes a watchdog matter.
#[derive(Debug, Clone, Copy)]
pub struct PacingConfig {
    /// Wall seconds per simulated control second (1.0 = real time; 0.1
    /// runs the schedule at 10× speed — useful for soak tests).
    pub time_scale: f64,
    /// Lateness a cycle start may carry before it counts as a deadline
    /// miss (scheduler jitter allowance).
    pub miss_tolerance: Seconds,
    /// Consecutive overrunning cycles tolerated before the watchdog
    /// hands the rack to firmware
    /// ([`crate::FallbackReason::OverrunStreak`]).
    pub max_overrun_streak: u32,
}

impl Default for PacingConfig {
    /// Real time, 50 ms jitter allowance, 5-cycle overrun budget.
    fn default() -> Self {
        Self { time_scale: 1.0, miss_tolerance: Seconds::new(0.05), max_overrun_streak: 5 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_sleep_jumps_forward_never_back() {
        let mut clock = MockClock::new();
        clock.sleep_until(Seconds::new(2.5));
        assert_eq!(clock.now(), Seconds::new(2.5));
        clock.sleep_until(Seconds::new(1.0));
        assert_eq!(clock.now(), Seconds::new(2.5), "a past deadline must not rewind time");
    }

    #[test]
    fn mock_clock_charges_injected_cost_to_the_scripted_cycles_only() {
        let mut clock = MockClock::new();
        clock.inject_overrun(3..5, Seconds::new(1.5));
        clock.on_cycle_complete(2);
        assert_eq!(clock.now(), Seconds::new(0.0));
        clock.on_cycle_complete(3);
        assert_eq!(clock.now(), Seconds::new(1.5));
        clock.on_cycle_complete(4);
        assert_eq!(clock.now(), Seconds::new(3.0));
        clock.on_cycle_complete(5);
        assert_eq!(clock.now(), Seconds::new(3.0), "range end is exclusive");
    }

    #[test]
    fn overlapping_injections_accumulate() {
        let mut clock = MockClock::new();
        clock.inject_overrun(0..2, Seconds::new(1.0));
        clock.inject_overrun(1..2, Seconds::new(0.25));
        clock.on_cycle_complete(1);
        assert_eq!(clock.now(), Seconds::new(1.25));
    }

    #[test]
    fn monotonic_clock_reports_elapsed_time_and_honours_past_deadlines() {
        let mut clock = MonotonicClock::new();
        let t0 = clock.now();
        // A deadline already in the past returns without sleeping.
        clock.sleep_until(Seconds::new(0.0));
        let t1 = clock.now();
        assert!(t1.value() >= t0.value(), "monotonic");
        assert!(t1.value() < 5.0, "sleep_until(past) must not block");
    }

    #[test]
    fn pacing_defaults() {
        let cfg = PacingConfig::default();
        assert_eq!(cfg.time_scale, 1.0);
        assert_eq!(cfg.miss_tolerance, Seconds::new(0.05));
        assert_eq!(cfg.max_overrun_streak, 5);
    }
}
