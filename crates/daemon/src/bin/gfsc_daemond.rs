//! `gfsc-daemond` — the deployable wall-clock runtime around the
//! `gfsc-daemon` control loop.
//!
//! One binary, three modes, all driven by a TOML-subset config file
//! (see the README's "Running as a daemon" section):
//!
//! - **run** (default): pace the configured backend on the monotonic
//!   clock (or `--mock-clock` for a deterministic dry run), print a
//!   summary, optionally spill `.metrics`/`.events`/`.timeline`
//!   artifacts;
//! - **`--check-parity`**: run the unpaced library loop and the paced
//!   loop under a mock clock and require bit-identical traces — the
//!   deployment-shaped proof that pacing never touches the control
//!   path;
//! - **`--drill overruns`**: inject a scripted overrun burst through
//!   the mock clock and assert the deadline-miss/overrun accounting
//!   and the overrun-streak fallback round trip. CI runs this.
//!
//! Exit code 0 on success, 1 with a one-line `gfsc-daemond: <why>` on
//! stderr otherwise. The binary never panics on bad input — config
//! and CLI errors are diagnostics, not backtraces.

use gfsc_daemon::{
    BackendKind, Daemon, DaemonEvent, DaemonRunOutcome, DaemondSpec, FallbackReason, FanActuator,
    MockClock, MonotonicClock, TelemetrySource,
};
use gfsc_obs::explain;
use gfsc_sim::TraceSet;
use gfsc_units::Seconds;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
gfsc-daemond — wall-clock runtime for the gfsc rack controllers

USAGE:
    gfsc-daemond --config <file> [--mock-clock] [--artifacts <dir>]
    gfsc-daemond --config <file> --check-parity [--artifacts <dir>]
    gfsc-daemond --config <file> --drill overruns [--artifacts <dir>]

FLAGS:
    --config <file>     TOML-subset config (README: \"Running as a daemon\")
    --mock-clock        pace on the deterministic test clock (instant sleeps)
    --check-parity      paced loop must be bit-identical to the library loop
    --drill overruns    inject a 10-cycle overrun burst, assert the accounting
    --artifacts <dir>   write <mode>.metrics/.events/.timeline into <dir>
    --help              this text";

/// The overrun drill's scripted burst: cycles `[START, END)` each cost
/// 1.5 wall periods of work.
const DRILL_START: u64 = 120;
const DRILL_END: u64 = 130;

#[derive(Debug, Default)]
struct Cli {
    help: bool,
    config: Option<PathBuf>,
    mock_clock: bool,
    check_parity: bool,
    drill_overruns: bool,
    artifacts: Option<PathBuf>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(summary) => {
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(why) => {
            eprintln!("gfsc-daemond: {why}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let cli = parse_args(args)?;
    if cli.help {
        return Ok(USAGE.to_string());
    }
    let config = cli.config.as_deref().ok_or("a --config file is required (see --help)")?;
    let spec = DaemondSpec::load(config)?;
    if cli.check_parity && cli.drill_overruns {
        return Err("--check-parity and --drill are mutually exclusive".into());
    }
    if cli.check_parity {
        check_parity(&spec, cli.artifacts.as_deref())
    } else if cli.drill_overruns {
        drill_overruns(&spec, cli.artifacts.as_deref())
    } else {
        run_once(&spec, cli.mock_clock, cli.artifacts.as_deref())
    }
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => cli.help = true,
            "--config" => {
                cli.config = Some(PathBuf::from(it.next().ok_or("--config needs a path")?));
            }
            "--mock-clock" => cli.mock_clock = true,
            "--check-parity" => cli.check_parity = true,
            "--drill" => {
                let name = it.next().ok_or("--drill needs a drill name")?;
                if name != "overruns" {
                    return Err(format!("unknown drill `{name}` (only `overruns` exists)"));
                }
                cli.drill_overruns = true;
            }
            "--artifacts" => {
                cli.artifacts = Some(PathBuf::from(it.next().ok_or("--artifacts needs a dir")?));
            }
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    Ok(cli)
}

/// One compared channel: its name plus sample times and values as bit
/// patterns.
type ChannelBits = (String, Vec<u64>, Vec<u64>);

/// The compared trace channels, flattened to bit patterns — the same
/// set the parity test suite pins (`u_demand`, per-zone rpm and
/// measured temperature, per-socket cap).
fn channel_bits(
    traces: &TraceSet,
    zones: usize,
    sockets: usize,
) -> Result<Vec<ChannelBits>, String> {
    let mut channels = vec!["u_demand".to_owned()];
    for z in 0..zones {
        channels.push(format!("z{z}_fan_rpm"));
        channels.push(format!("z{z}_t_meas_c"));
    }
    for i in 0..sockets {
        channels.push(format!("s{i}_cap"));
    }
    channels
        .into_iter()
        .map(|name| {
            let trace = traces.require(&name).map_err(|e| e.to_string())?;
            let times = trace.times().iter().map(|v| v.to_bits()).collect();
            let values = trace.values().iter().map(|v| v.to_bits()).collect();
            Ok((name, times, values))
        })
        .collect()
}

fn check_parity(spec: &DaemondSpec, artifacts: Option<&Path>) -> Result<String, String> {
    let rack = spec.rack_spec()?;
    let zones = rack.rack.zones().len();
    let sockets = rack.rack.total_sockets();
    let mut library = spec.build_sim_daemon()?;
    let reference = library.run(spec.horizon);
    let mut deployed = spec.build_sim_daemon()?;
    let mut clock = MockClock::new();
    let paced = deployed.run_paced(spec.horizon, &mut clock, spec.pacing);
    if paced.metrics.deadline_misses != 0 || paced.metrics.cycle_overruns != 0 {
        return Err(format!(
            "paced run under an idle mock clock reported pacing trouble: \
             {} misses, {} overruns",
            paced.metrics.deadline_misses, paced.metrics.cycle_overruns
        ));
    }
    let lhs = channel_bits(&reference.traces, zones, sockets)?;
    let rhs = channel_bits(&paced.traces, zones, sockets)?;
    for ((name, lib_t, lib_v), (_, paced_t, paced_v)) in lhs.iter().zip(rhs.iter()) {
        if lib_t != paced_t || lib_v != paced_v {
            return Err(format!("parity broken: channel `{name}` diverges from the library loop"));
        }
    }
    if let Some(dir) = artifacts {
        write_artifacts(dir, "parity", &paced)?;
    }
    Ok(format!(
        "parity ok: {} channels bit-identical to the library loop over {} sim s",
        lhs.len(),
        spec.horizon.value()
    ))
}

fn drill_overruns(spec: &DaemondSpec, artifacts: Option<&Path>) -> Result<String, String> {
    let rack = spec.rack_spec()?;
    let interval = rack.server.cpu_control_interval;
    let needed = (DRILL_END as f64 + 30.0) * interval.value() + spec.recovery_window.value();
    if spec.horizon.value() < needed {
        return Err(format!(
            "the overrun drill needs horizon_s >= {needed} to cover the burst and the recovery \
             window (config says {})",
            spec.horizon.value()
        ));
    }
    let period_wall = interval.value() * spec.pacing.time_scale;
    let mut daemon = spec.build_sim_daemon()?;
    let mut clock = MockClock::new();
    clock.inject_overrun(DRILL_START..DRILL_END, Seconds::new(1.5 * period_wall));
    let outcome = daemon.run_paced(spec.horizon, &mut clock, spec.pacing);
    let m = &outcome.metrics;
    let injected = DRILL_END - DRILL_START;
    if m.cycle_overruns != injected {
        return Err(format!("expected {injected} overruns, counted {}", m.cycle_overruns));
    }
    if m.deadline_misses < injected {
        return Err(format!(
            "expected at least {injected} deadline misses from the burst, counted {}",
            m.deadline_misses
        ));
    }
    let entry = outcome
        .events
        .iter()
        .find_map(|e| match e {
            DaemonEvent::FallbackEntered { at, reason: FallbackReason::OverrunStreak } => Some(*at),
            _ => None,
        })
        .ok_or("the overrun streak never tripped firmware fallback")?;
    let exit = outcome
        .events
        .iter()
        .find_map(|e| match e {
            DaemonEvent::FallbackExited { at } if at.value() > entry.value() => Some(*at),
            _ => None,
        })
        .ok_or("the loop never recovered from the overrun fallback")?;
    if m.in_fallback {
        return Err("the daemon is still in fallback at the horizon".into());
    }
    if let Some(dir) = artifacts {
        write_artifacts(dir, "drill-overruns", &outcome)?;
    }
    Ok(format!(
        "overrun drill ok: {injected} overruns, {} misses (worst lateness {:.2} wall s), \
         fallback held [{:.1}, {:.1}] sim s",
        m.deadline_misses,
        m.worst_lateness_s,
        entry.value(),
        exit.value()
    ))
}

fn run_once(
    spec: &DaemondSpec,
    mock_clock: bool,
    artifacts: Option<&Path>,
) -> Result<String, String> {
    let outcome = match spec.backend {
        BackendKind::Sim => {
            let mut daemon = spec.build_sim_daemon()?;
            run_with_clock(&mut daemon, spec, mock_clock)
        }
        BackendKind::Ipmi => {
            let mut daemon = spec.build_ipmi_daemon()?;
            run_with_clock(&mut daemon, spec, mock_clock)
        }
    };
    if let Some(dir) = artifacts {
        write_artifacts(dir, "daemond", &outcome)?;
    }
    let m = &outcome.metrics;
    Ok(format!(
        "run complete: {} cycles over {} sim s; {} misses, {} overruns, {} fallback entries \
         ({} exits); {}/{} violated socket-epochs",
        m.loop_cycles,
        spec.horizon.value(),
        m.deadline_misses,
        m.cycle_overruns,
        m.fallback_entries,
        m.fallback_exits,
        outcome.total_violations,
        outcome.total_epochs
    ))
}

fn run_with_clock<B: TelemetrySource + FanActuator>(
    daemon: &mut Daemon<B>,
    spec: &DaemondSpec,
    mock_clock: bool,
) -> DaemonRunOutcome {
    if mock_clock {
        let mut clock = MockClock::new();
        daemon.run_paced(spec.horizon, &mut clock, spec.pacing)
    } else {
        let mut clock = MonotonicClock::new();
        daemon.run_paced(spec.horizon, &mut clock, spec.pacing)
    }
}

fn write_artifacts(dir: &Path, stem: &str, outcome: &DaemonRunOutcome) -> Result<(), String> {
    let fail = |path: &Path, e: std::io::Error| format!("{}: {e}", path.display());
    std::fs::create_dir_all(dir).map_err(|e| fail(dir, e))?;
    let metrics = dir.join(format!("{stem}.metrics"));
    std::fs::write(&metrics, outcome.metrics.render()).map_err(|e| fail(&metrics, e))?;
    if let Some(flight) = &outcome.flight {
        let events = dir.join(format!("{stem}.events"));
        std::fs::write(&events, flight.to_text()).map_err(|e| fail(&events, e))?;
        let timeline = dir.join(format!("{stem}.timeline"));
        std::fs::write(&timeline, explain::render_timeline(flight))
            .map_err(|e| fail(&timeline, e))?;
    }
    Ok(())
}
