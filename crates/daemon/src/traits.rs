//! The streamed-input seam: what the daemon polls and what it commands.
//!
//! A batch simulation owns its rack; a daemon owns nothing. Everything
//! the control bank needs arrives through [`TelemetrySource`] (sensor
//! polls, tachometers, the demand signal) and everything it decides
//! leaves through [`FanActuator`] (fan targets, CPU caps, load
//! migrations, the firmware-fallback switch). Both sides are fallible:
//! a management bus drops reads, a BMC NACKs writes, and the daemon's
//! watchdog (see [`crate::Daemon`]) is built around exactly those
//! failures.
//!
//! [`crate::SimTelemetry`] implements both traits over the simulated
//! rack — bit-for-bit compatible with the batch loop when no faults are
//! injected — and [`crate::IpmiAdapter`] implements the actuator side
//! (plus temperature reads) over `ipmitool`-shaped text.

use gfsc_units::{Celsius, Rpm, Seconds, Utilization};

/// A failed telemetry operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// A read failed: bus timeout, command failure, unparseable output.
    Read(String),
    /// A write was not acknowledged by the platform.
    Nack(String),
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::Read(why) => write!(f, "telemetry read failed: {why}"),
            TelemetryError::Nack(why) => write!(f, "actuation not acknowledged: {why}"),
        }
    }
}

impl std::error::Error for TelemetryError {}

/// The polled inputs of one rack: per-socket temperatures, per-zone
/// tachometers, and the rack-wide demand signal.
///
/// Implementations decide what a poll costs and what can fail; the
/// daemon decides what failure *means* (per-sensor staleness budgets,
/// retry bounds, firmware fallback).
pub trait TelemetrySource {
    /// Total socket count (the length of every per-socket slice).
    fn socket_count(&self) -> usize;

    /// Number of fan zones (the length of every per-zone slice).
    fn zone_count(&self) -> usize;

    /// Polls every socket temperature into `out` (`None` marks a sensor
    /// that produced no reading this poll — never a fabricated value).
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Read`] when the poll fails wholesale
    /// (bus burst loss); per-sensor failures are `None` entries instead.
    fn poll_temperatures(&mut self, out: &mut [Option<Celsius>]) -> Result<(), TelemetryError>;

    /// Polls every zone's tachometer speed into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Read`] if the tachometers cannot be
    /// read.
    fn poll_fan_speeds(&mut self, out: &mut [Rpm]) -> Result<(), TelemetryError>;

    /// Samples the rack-wide demand signal for this control epoch.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Read`] if the demand source is
    /// unavailable.
    fn poll_demand(&mut self) -> Result<Utilization, TelemetryError>;

    /// Advances the source's clock by `dt`: the simulated backend steps
    /// its plant; a live backend would sleep until the next cycle.
    fn advance(&mut self, dt: Seconds);
}

/// The commanded outputs of one rack: fan targets, CPU caps, load
/// placement, and the firmware-fallback switch.
pub trait FanActuator {
    /// Commands zone `z`'s fan wall toward `target`; returns the speed
    /// the platform acknowledged (after its own rounding/clamping).
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Nack`] if the write is not
    /// acknowledged.
    fn write_fan_target(&mut self, z: usize, target: Rpm) -> Result<Rpm, TelemetryError>;

    /// Applies the per-socket utilization caps decided this epoch.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Nack`] if the platform rejects the
    /// caps.
    fn write_caps(&mut self, caps: &[Utilization]) -> Result<(), TelemetryError>;

    /// Moves `amount` of demand weight from server `from` to server
    /// `to` (the work-migration actuation of `MigratingCoordinated`).
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Nack`] if the migration is rejected or
    /// unsupported.
    fn migrate_load(&mut self, from: usize, to: usize, amount: f64) -> Result<(), TelemetryError>;

    /// Hands the rack back to firmware auto-control: fans to maximum,
    /// caps released. This is the watchdog's safe state and must not
    /// depend on the very path that just failed — implementations keep
    /// it infallible wherever the platform allows.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Nack`] only where the platform truly
    /// cannot guarantee the switch.
    fn enter_firmware_fallback(&mut self) -> Result<(), TelemetryError>;

    /// Takes manual control back from firmware after a fallback
    /// excursion.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Nack`] if the platform refuses to
    /// yield control.
    fn resume_manual_control(&mut self) -> Result<(), TelemetryError>;
}
