//! CPU-cap enforcement on the real-hardware path.
//!
//! Per-socket utilization capping is an OS-side actuation (RAPL power
//! limits, cgroup CPU quotas), not a BMC command, so the
//! [`crate::IpmiAdapter`] delegates it to a [`CapEnforcer`]:
//!
//! - [`NullEnforcer`] — accept-and-ignore, the historical behavior and
//!   the right one for deployments that only want fan control;
//! - [`RaplEnforcer`] — writes RAPL-style `powercap` sysfs files,
//!   mapping a utilization cap linearly onto a configured power band;
//! - [`RecordingEnforcer`] — a test double that logs every call.
//!
//! Whatever the backend, the watchdog contract holds: entering firmware
//! fallback **releases** the caps (full power), because a stale cap
//! pinned on a socket while the daemon is out of the loop is a
//! performance fault no one is watching.

use crate::TelemetryError;
use gfsc_units::{Utilization, Watts};
use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

/// Applies (and releases) per-socket utilization caps on the platform.
pub trait CapEnforcer {
    /// Enforces one cap per socket.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Nack`] if the platform rejects the
    /// caps — the daemon treats it like any other failed write.
    fn enforce(&mut self, caps: &[Utilization]) -> Result<(), TelemetryError>;

    /// Releases every cap to full power (the firmware-fallback state).
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Nack`] if the release fails.
    fn release(&mut self) -> Result<(), TelemetryError>;
}

/// Accepts every cap without enforcing anything — fan-control-only
/// deployments, and the default when no enforcer is wired.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullEnforcer;

impl CapEnforcer for NullEnforcer {
    fn enforce(&mut self, _caps: &[Utilization]) -> Result<(), TelemetryError> {
        Ok(())
    }

    fn release(&mut self) -> Result<(), TelemetryError> {
        Ok(())
    }
}

/// RAPL-style enforcement: socket `i`'s cap is written as a power limit
/// (µW) to `<root>/intel-rapl:<i>/constraint_0_power_limit_uw`, mapped
/// linearly from `min_power` (cap 0) to `max_power` (cap 1).
///
/// The root is configurable so tests (and non-standard sysfs layouts)
/// can point it anywhere; production uses
/// [`RaplEnforcer::POWERCAP_ROOT`].
#[derive(Debug)]
pub struct RaplEnforcer {
    root: PathBuf,
    min_power: Watts,
    max_power: Watts,
}

impl RaplEnforcer {
    /// The standard Linux powercap mount point.
    pub const POWERCAP_ROOT: &'static str = "/sys/class/powercap";

    /// An enforcer over `root`, mapping caps onto
    /// `[min_power, max_power]`.
    ///
    /// # Panics
    ///
    /// Panics if the power band is empty or reversed.
    #[must_use]
    pub fn new(root: impl Into<PathBuf>, min_power: Watts, max_power: Watts) -> Self {
        assert!(
            min_power.value() < max_power.value(),
            "power band must be a non-empty increasing range"
        );
        Self { root: root.into(), min_power, max_power }
    }

    /// The µW limit a cap maps to on the configured band.
    fn microwatts_for(&self, cap: Utilization) -> u64 {
        let lo = self.min_power.value();
        let hi = self.max_power.value();
        let watts = lo + cap.value() * (hi - lo);
        (watts * 1e6).round() as u64
    }

    fn write_limit(&self, socket: usize, uw: u64) -> Result<(), TelemetryError> {
        let path = self.root.join(format!("intel-rapl:{socket}/constraint_0_power_limit_uw"));
        std::fs::write(&path, format!("{uw}\n"))
            .map_err(|e| TelemetryError::Nack(format!("{}: {e}", path.display())))
    }
}

impl CapEnforcer for RaplEnforcer {
    fn enforce(&mut self, caps: &[Utilization]) -> Result<(), TelemetryError> {
        for (socket, cap) in caps.iter().enumerate() {
            self.write_limit(socket, self.microwatts_for(*cap))?;
        }
        Ok(())
    }

    fn release(&mut self) -> Result<(), TelemetryError> {
        // Release every socket domain present under the root — the
        // enforcer may be asked to release before it ever enforced.
        let max_uw = self.microwatts_for(Utilization::FULL);
        let mut socket = 0usize;
        while self.root.join(format!("intel-rapl:{socket}")).is_dir() {
            self.write_limit(socket, max_uw)?;
            socket += 1;
        }
        Ok(())
    }
}

/// What a [`RecordingEnforcer`] saw.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct EnforceLog {
    /// Every `enforce` call's caps, in order.
    pub enforced: Vec<Vec<Utilization>>,
    /// Number of `release` calls.
    pub releases: usize,
}

/// A test double that records every enforcement call. Clones share the
/// same log, so a clone kept outside the adapter observes what the
/// boxed clone inside it was asked to do.
#[derive(Debug, Default, Clone)]
pub struct RecordingEnforcer {
    log: Rc<RefCell<EnforceLog>>,
}

impl RecordingEnforcer {
    /// A fresh recorder with an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of everything recorded so far.
    #[must_use]
    pub fn log(&self) -> EnforceLog {
        self.log.borrow().clone()
    }
}

impl CapEnforcer for RecordingEnforcer {
    fn enforce(&mut self, caps: &[Utilization]) -> Result<(), TelemetryError> {
        self.log.borrow_mut().enforced.push(caps.to_vec());
        Ok(())
    }

    fn release(&mut self) -> Result<(), TelemetryError> {
        self.log.borrow_mut().releases += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gfsc-rapl-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create tempdir");
        dir
    }

    fn read_uw(root: &std::path::Path, socket: usize) -> String {
        std::fs::read_to_string(
            root.join(format!("intel-rapl:{socket}/constraint_0_power_limit_uw")),
        )
        .expect("limit file written")
        .trim()
        .to_string()
    }

    #[test]
    fn rapl_maps_caps_linearly_onto_the_power_band() {
        let root = tempdir("enforce");
        for socket in 0..2 {
            std::fs::create_dir_all(root.join(format!("intel-rapl:{socket}"))).unwrap();
        }
        let mut rapl = RaplEnforcer::new(&root, Watts::new(40.0), Watts::new(120.0));
        rapl.enforce(&[Utilization::new(0.5), Utilization::FULL]).unwrap();
        // 40 + 0.5·80 = 80 W; full cap = 120 W.
        assert_eq!(read_uw(&root, 0), "80000000");
        assert_eq!(read_uw(&root, 1), "120000000");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rapl_release_restores_full_power_on_every_domain() {
        let root = tempdir("release");
        for socket in 0..3 {
            std::fs::create_dir_all(root.join(format!("intel-rapl:{socket}"))).unwrap();
        }
        let mut rapl = RaplEnforcer::new(&root, Watts::new(40.0), Watts::new(120.0));
        rapl.enforce(&[Utilization::new(0.2), Utilization::new(0.3), Utilization::new(0.4)])
            .unwrap();
        rapl.release().unwrap();
        for socket in 0..3 {
            assert_eq!(read_uw(&root, socket), "120000000", "socket {socket} released");
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rapl_missing_domain_nacks_instead_of_panicking() {
        let root = tempdir("missing");
        // No intel-rapl:0 directory at all.
        let mut rapl = RaplEnforcer::new(&root, Watts::new(40.0), Watts::new(120.0));
        let err = rapl.enforce(&[Utilization::FULL]).unwrap_err();
        assert!(matches!(err, TelemetryError::Nack(_)), "{err:?}");
        // …and a release over zero domains is a clean no-op.
        rapl.release().unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn recording_enforcer_shares_its_log_across_clones() {
        let recorder = RecordingEnforcer::new();
        let mut boxed: Box<dyn CapEnforcer> = Box::new(recorder.clone());
        boxed.enforce(&[Utilization::new(0.7)]).unwrap();
        boxed.release().unwrap();
        let log = recorder.log();
        assert_eq!(log.enforced, vec![vec![Utilization::new(0.7)]]);
        assert_eq!(log.releases, 1);
    }
}
