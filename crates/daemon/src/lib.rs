//! Telemetry daemon front-end for the gfsc rack controllers.
//!
//! The batch simulator answers the paper's questions; this crate makes
//! the same controllers *deployable*. Every `gfsc_coord::RackControl`
//! mode already runs against the [`gfsc_coord::RackView`] seam — here
//! the view is a polled mirror ([`DaemonRackView`]) fed through a
//! [`TelemetrySource`] and flushed through a [`FanActuator`], with a
//! watchdog ([`Daemon`]) around the loop:
//!
//! - per-sensor staleness/freeze budgets ([`gfsc_sensors::SensorHealth`]),
//! - deadzone/hysteresis on fan writes, bounded retry on failures,
//! - hard fallback to firmware auto-control (max fans, caps released)
//!   on sensor loss, persistent NACKs, or a controller panic — and
//!   bumpless re-engagement after a clean recovery window,
//! - every transition counted and exported as line-protocol metrics
//!   ([`DaemonMetrics`], [`MetricsEndpoint`]).
//!
//! Two backends ship: [`SimTelemetry`] wraps the simulated rack plant
//! (bit-for-bit with the batch loop when no [`FaultPlan`] is armed —
//! the hardware-in-the-loop CI gate injects faults through it), and
//! [`IpmiAdapter`] speaks `ipmitool`-shaped text for real BMCs.
//!
//! On top of the library loop sits the deployable runtime: a
//! [`WallClock`]-paced scheduler ([`Daemon::run_paced`]) that holds each
//! control cycle to its wall deadline and accounts every miss and
//! overrun, cap enforcement on the hardware path ([`CapEnforcer`]),
//! sensor auto-discovery ([`discover_socket_sensors`]), and a
//! config-file front door ([`DaemondSpec`]) consumed by the
//! `gfsc-daemond` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod daemon;
mod discover;
mod enforce;
mod ipmi;
mod metrics;
mod sim_backend;
mod traits;
mod view;
mod wallclock;

pub use config::{BackendKind, CapsSpec, DaemondSpec, IpmiSpec, WorkloadSpec};
pub use daemon::{Daemon, DaemonConfig, DaemonEvent, DaemonRunOutcome, FallbackReason};
pub use discover::discover_socket_sensors;
pub use enforce::{CapEnforcer, EnforceLog, NullEnforcer, RaplEnforcer, RecordingEnforcer};
pub use ipmi::{
    parse_sdr_temperatures, parse_sensors_temperatures, CommandRunner, IpmiAdapter, IpmiReading,
    IpmiTelemetry, ProcessRunner,
};
pub use metrics::{DaemonMetrics, MetricsEndpoint, ZoneActuation};
pub use sim_backend::{FaultPlan, SimTelemetry};
pub use traits::{FanActuator, TelemetryError, TelemetrySource};
pub use view::{DaemonRackView, LoadShift};
pub use wallclock::{MockClock, MonotonicClock, PacingConfig, WallClock};
