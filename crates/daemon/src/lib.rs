//! Telemetry daemon front-end for the gfsc rack controllers.
//!
//! The batch simulator answers the paper's questions; this crate makes
//! the same controllers *deployable*. Every `gfsc_coord::RackControl`
//! mode already runs against the [`gfsc_coord::RackView`] seam — here
//! the view is a polled mirror ([`DaemonRackView`]) fed through a
//! [`TelemetrySource`] and flushed through a [`FanActuator`], with a
//! watchdog ([`Daemon`]) around the loop:
//!
//! - per-sensor staleness/freeze budgets ([`gfsc_sensors::SensorHealth`]),
//! - deadzone/hysteresis on fan writes, bounded retry on failures,
//! - hard fallback to firmware auto-control (max fans, caps released)
//!   on sensor loss, persistent NACKs, or a controller panic — and
//!   bumpless re-engagement after a clean recovery window,
//! - every transition counted and exported as line-protocol metrics
//!   ([`DaemonMetrics`], [`MetricsEndpoint`]).
//!
//! Two backends ship: [`SimTelemetry`] wraps the simulated rack plant
//! (bit-for-bit with the batch loop when no [`FaultPlan`] is armed —
//! the hardware-in-the-loop CI gate injects faults through it), and
//! [`IpmiAdapter`] speaks `ipmitool`-shaped text for real BMCs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod daemon;
mod ipmi;
mod metrics;
mod sim_backend;
mod traits;
mod view;

pub use daemon::{Daemon, DaemonConfig, DaemonEvent, DaemonRunOutcome, FallbackReason};
pub use ipmi::{
    parse_sdr_temperatures, parse_sensors_temperatures, CommandRunner, IpmiAdapter, IpmiReading,
    ProcessRunner,
};
pub use metrics::{DaemonMetrics, MetricsEndpoint, ZoneActuation};
pub use sim_backend::{FaultPlan, SimTelemetry};
pub use traits::{FanActuator, TelemetryError, TelemetrySource};
pub use view::{DaemonRackView, LoadShift};
