//! The IPMI-shaped text adapter: `ipmitool` / `sensors` output in,
//! raw fan-speed writes out.
//!
//! Real BMC telemetry arrives as line-oriented text from management
//! tools, and that text is *hostile*: truncated lines when the bus
//! times out mid-transfer, `no reading` / `ns` placeholders for dead
//! sensors, locale decimal commas from misconfigured firmware, stderr
//! diagnostics interleaved with stdout. The parsers here survive all of
//! it with one invariant: **an unreadable sensor yields `None`, never a
//! fabricated `0.0`** — a zero celsius reading would look like a
//! perfectly cooled socket and release every cap (the daemon maps
//! `None` to [`gfsc_sensors::SensorStatus::Stale`] instead).
//!
//! The actuation side emits the de-facto raw byte commands enterprise
//! BMCs use for manual fan control (`0x30 0x30 0x01 ...` to toggle
//! firmware auto-control, `0x30 0x30 0x02 <fan> <percent>` for a duty
//! write), through a [`CommandRunner`] so tests script the transport.

use crate::{FanActuator, TelemetryError};
use gfsc_units::{Bounds, Celsius, Rpm, Utilization};

/// One named reading parsed from management-tool output.
#[derive(Debug, Clone, PartialEq)]
pub struct IpmiReading {
    /// The sensor name as printed (trimmed).
    pub name: String,
    /// The parsed temperature — `None` for any unreadable value.
    pub value: Option<Celsius>,
}

/// Parses `ipmitool sdr type temperature` output: pipe-separated rows
/// whose fifth field carries the reading (`45 degrees C`).
///
/// Garbage tolerance: rows with fewer than five fields (truncation,
/// interleaved stderr) are skipped; `no reading` / `ns` / `disabled`
/// and unparseable values become `None`; decimal commas are accepted.
#[must_use]
pub fn parse_sdr_temperatures(text: &str) -> Vec<IpmiReading> {
    let mut readings = Vec::new();
    for line in text.lines() {
        let mut fields = line.split('|');
        let Some(name) = fields.next().map(str::trim) else { continue };
        if name.is_empty() {
            continue;
        }
        // name | hex id | status | entity | reading ...
        let Some(reading_field) = fields.nth(3) else { continue };
        readings.push(IpmiReading { name: name.to_owned(), value: parse_reading(reading_field) });
    }
    readings
}

/// Parses lm-sensors style output: `Core 0:  +45.0°C  (high = ...)`.
/// Any `label: +value°C` line yields a reading; everything else
/// (adapter headers, voltages, blank lines) is skipped.
#[must_use]
pub fn parse_sensors_temperatures(text: &str) -> Vec<IpmiReading> {
    let mut readings = Vec::new();
    for line in text.lines() {
        let Some((label, rest)) = line.split_once(':') else { continue };
        let label = label.trim();
        if label.is_empty() {
            continue;
        }
        // The value must actually be a temperature, not a voltage/fan row.
        let Some(degree_at) = rest.find("°C") else { continue };
        let token = rest[..degree_at].trim().trim_start_matches('+');
        readings.push(IpmiReading {
            name: label.to_owned(),
            value: parse_float_token(token).and_then(Celsius::try_new),
        });
    }
    readings
}

/// Parses one sdr reading field. `45 degrees C` → 45.0; placeholders
/// and garbage → `None`.
fn parse_reading(field: &str) -> Option<Celsius> {
    let field = field.trim();
    let lowered = field.to_ascii_lowercase();
    if field.is_empty()
        || lowered.starts_with("no reading")
        || lowered == "ns"
        || lowered.starts_with("disabled")
    {
        return None;
    }
    let token = field.split_whitespace().next()?;
    // `try_new` (not `new`): the wire is untrusted, and a NaN that slipped
    // past the token filter must become a missing reading, not a panic.
    parse_float_token(token).and_then(Celsius::try_new)
}

/// Parses one numeric token, tolerating a locale decimal comma.
/// Non-finite results count as unreadable.
fn parse_float_token(token: &str) -> Option<f64> {
    let normalized = token.replace(',', ".");
    normalized.parse::<f64>().ok().filter(|v| v.is_finite())
}

/// The transport an [`IpmiAdapter`] issues management commands over.
/// Production uses [`ProcessRunner`]; tests script exact transcripts.
pub trait CommandRunner {
    /// Runs `cmd` with `args`, returning combined stdout on success.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError`] if the command cannot run or exits
    /// non-zero.
    fn run(&mut self, cmd: &str, args: &[String]) -> Result<String, TelemetryError>;
}

/// Runs commands through `std::process::Command`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProcessRunner;

impl CommandRunner for ProcessRunner {
    fn run(&mut self, cmd: &str, args: &[String]) -> Result<String, TelemetryError> {
        let output = std::process::Command::new(cmd)
            .args(args)
            .output()
            .map_err(|e| TelemetryError::Read(format!("{cmd}: {e}")))?;
        if !output.status.success() {
            return Err(TelemetryError::Nack(format!("{cmd} exited {}", output.status)));
        }
        Ok(String::from_utf8_lossy(&output.stdout).into_owned())
    }
}

/// The `ipmitool`-shaped front end: reads per-socket temperatures from
/// sdr output and drives fan walls with raw duty-cycle writes.
///
/// Socket mapping is by sensor name: `sensor_names[i]` is matched
/// (exact, after trimming) against the sdr rows; a socket whose sensor
/// is absent or unreadable polls as `None`. Fan commands address zones
/// as BMC fan indices and translate rpm targets to duty percentages
/// linearly across the mechanical bounds.
#[derive(Debug)]
pub struct IpmiAdapter<R: CommandRunner> {
    runner: R,
    sensor_names: Vec<String>,
    zone_count: usize,
    fan_bounds: Bounds<Rpm>,
}

impl<R: CommandRunner> IpmiAdapter<R> {
    /// Builds the adapter: one sdr sensor name per flat socket,
    /// `zone_count` fan walls within `fan_bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `sensor_names` is empty or `zone_count` is zero.
    #[must_use]
    pub fn new(
        runner: R,
        sensor_names: Vec<String>,
        zone_count: usize,
        fan_bounds: Bounds<Rpm>,
    ) -> Self {
        assert!(!sensor_names.is_empty(), "at least one sensor");
        assert!(zone_count > 0, "at least one fan zone");
        Self { runner, sensor_names, zone_count, fan_bounds }
    }

    /// Polls every mapped socket temperature from
    /// `ipmitool sdr type temperature`.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Read`] only if the command itself
    /// fails; unreadable *sensors* are `None` entries, never errors and
    /// never `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not one entry per mapped sensor.
    pub fn read_temperatures(&mut self, out: &mut [Option<Celsius>]) -> Result<(), TelemetryError> {
        assert_eq!(out.len(), self.sensor_names.len(), "one reading slot per mapped sensor");
        let text =
            self.runner.run("ipmitool", &["sdr".into(), "type".into(), "temperature".into()])?;
        let readings = parse_sdr_temperatures(&text);
        for (slot, wanted) in out.iter_mut().zip(&self.sensor_names) {
            *slot = readings.iter().find(|r| &r.name == wanted).and_then(|r| r.value);
        }
        Ok(())
    }

    /// The duty percentage a target rpm maps to across the bounds.
    fn percent_for(&self, target: Rpm) -> u8 {
        let lo = self.fan_bounds.lo().value();
        let hi = self.fan_bounds.hi().value();
        let frac = ((target.value() - lo) / (hi - lo)).clamp(0.0, 1.0);
        (frac * 100.0).round() as u8
    }

    /// The rpm the platform runs at a given duty percentage (the
    /// adapter's acknowledgement value).
    fn rpm_for_percent(&self, percent: u8) -> Rpm {
        let lo = self.fan_bounds.lo().value();
        let hi = self.fan_bounds.hi().value();
        Rpm::new(lo + f64::from(percent) / 100.0 * (hi - lo))
    }

    /// Toggles firmware automatic fan control: `0x30 0x30 0x01 0x01`
    /// hands the fans back to firmware, `... 0x00` takes manual
    /// control.
    fn set_auto_control(&mut self, auto: bool) -> Result<(), TelemetryError> {
        let code = if auto { "0x01" } else { "0x00" };
        self.runner
            .run(
                "ipmitool",
                &["raw".into(), "0x30".into(), "0x30".into(), "0x01".into(), code.into()],
            )
            .map(|_| ())
    }
}

impl<R: CommandRunner> FanActuator for IpmiAdapter<R> {
    fn write_fan_target(&mut self, z: usize, target: Rpm) -> Result<Rpm, TelemetryError> {
        assert!(z < self.zone_count, "zone {z} out of range");
        let percent = self.percent_for(target);
        self.runner.run(
            "ipmitool",
            &[
                "raw".into(),
                "0x30".into(),
                "0x30".into(),
                "0x02".into(),
                format!("0x{z:02x}"),
                format!("0x{percent:02x}"),
            ],
        )?;
        Ok(self.rpm_for_percent(percent))
    }

    fn write_caps(&mut self, _caps: &[Utilization]) -> Result<(), TelemetryError> {
        // Per-socket utilization capping is OS-side (RAPL / cgroup
        // quota), not a BMC command; deployments wire their own
        // enforcement here. Accepting the write keeps the daemon loop
        // uniform.
        Ok(())
    }

    fn migrate_load(
        &mut self,
        _from: usize,
        _to: usize,
        _amount: f64,
    ) -> Result<(), TelemetryError> {
        Err(TelemetryError::Nack("load migration is not an IPMI operation".into()))
    }

    fn enter_firmware_fallback(&mut self) -> Result<(), TelemetryError> {
        self.set_auto_control(true)
    }

    fn resume_manual_control(&mut self) -> Result<(), TelemetryError> {
        self.set_auto_control(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdr_percent_and_raw_commands() {
        #[derive(Default)]
        struct Script(Vec<String>);
        impl CommandRunner for Script {
            fn run(&mut self, cmd: &str, args: &[String]) -> Result<String, TelemetryError> {
                self.0.push(format!("{cmd} {}", args.join(" ")));
                Ok(String::new())
            }
        }
        let mut adapter = IpmiAdapter::new(
            Script::default(),
            vec!["CPU0 Temp".into()],
            2,
            Bounds::new(Rpm::new(1000.0), Rpm::new(9000.0)),
        );
        let acked = adapter.write_fan_target(1, Rpm::new(5000.0)).unwrap();
        // 50% duty acknowledges the mid-range rpm back.
        assert_eq!(acked, Rpm::new(5000.0));
        adapter.enter_firmware_fallback().unwrap();
        adapter.resume_manual_control().unwrap();
        assert_eq!(
            adapter.runner.0,
            vec![
                "ipmitool raw 0x30 0x30 0x02 0x01 0x32",
                "ipmitool raw 0x30 0x30 0x01 0x01",
                "ipmitool raw 0x30 0x30 0x01 0x00",
            ]
        );
    }
}
