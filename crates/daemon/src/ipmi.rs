//! The IPMI-shaped text adapter: `ipmitool` / `sensors` output in,
//! raw fan-speed writes out.
//!
//! Real BMC telemetry arrives as line-oriented text from management
//! tools, and that text is *hostile*: truncated lines when the bus
//! times out mid-transfer, `no reading` / `ns` placeholders for dead
//! sensors, locale decimal commas from misconfigured firmware, stderr
//! diagnostics interleaved with stdout. The parsers here survive all of
//! it with one invariant: **an unreadable sensor yields `None`, never a
//! fabricated `0.0`** — a zero celsius reading would look like a
//! perfectly cooled socket and release every cap (the daemon maps
//! `None` to [`gfsc_sensors::SensorStatus::Stale`] instead).
//!
//! The actuation side emits the de-facto raw byte commands enterprise
//! BMCs use for manual fan control (`0x30 0x30 0x01 ...` to toggle
//! firmware auto-control, `0x30 0x30 0x02 <fan> <percent>` for a duty
//! write), through a [`CommandRunner`] so tests script the transport.

use crate::discover::discover_socket_sensors;
use crate::enforce::{CapEnforcer, NullEnforcer};
use crate::{FanActuator, TelemetryError, TelemetrySource};
use gfsc_units::{Bounds, Celsius, Rpm, Seconds, Utilization};

/// One named reading parsed from management-tool output.
#[derive(Debug, Clone, PartialEq)]
pub struct IpmiReading {
    /// The sensor name as printed (trimmed).
    pub name: String,
    /// The parsed temperature — `None` for any unreadable value.
    pub value: Option<Celsius>,
}

/// Parses `ipmitool sdr type temperature` output: pipe-separated rows
/// whose fifth field carries the reading (`45 degrees C`).
///
/// Garbage tolerance: rows with fewer than five fields (truncation,
/// interleaved stderr) are skipped; `no reading` / `ns` / `na` /
/// `n/a` / `disabled` / hex state words (`0x...`) and unparseable
/// values become `None`; decimal commas and thousands separators are
/// accepted.
#[must_use]
pub fn parse_sdr_temperatures(text: &str) -> Vec<IpmiReading> {
    let mut readings = Vec::new();
    for line in text.lines() {
        let mut fields = line.split('|');
        let Some(name) = fields.next().map(str::trim) else { continue };
        if name.is_empty() {
            continue;
        }
        // name | hex id | status | entity | reading ...
        let Some(reading_field) = fields.nth(3) else { continue };
        readings.push(IpmiReading { name: name.to_owned(), value: parse_reading(reading_field) });
    }
    readings
}

/// Parses lm-sensors style output: `Core 0:  +45.0°C  (high = ...)`.
/// Any `label: +value°C` line yields a reading; everything else
/// (adapter headers, voltages, blank lines) is skipped.
#[must_use]
pub fn parse_sensors_temperatures(text: &str) -> Vec<IpmiReading> {
    let mut readings = Vec::new();
    for line in text.lines() {
        let Some((label, rest)) = line.split_once(':') else { continue };
        let label = label.trim();
        if label.is_empty() {
            continue;
        }
        // The value must actually be a temperature, not a voltage/fan row.
        let Some(degree_at) = rest.find("°C") else { continue };
        let token = rest[..degree_at].trim().trim_start_matches('+');
        readings.push(IpmiReading {
            name: label.to_owned(),
            value: parse_float_token(token).and_then(Celsius::try_new),
        });
    }
    readings
}

/// Parses one sdr reading field. `45 degrees C` → 45.0; placeholders
/// and garbage → `None`.
fn parse_reading(field: &str) -> Option<Celsius> {
    let field = field.trim();
    let lowered = field.to_ascii_lowercase();
    if field.is_empty()
        || lowered.starts_with("no reading")
        || lowered == "ns"
        || lowered == "na"
        || lowered == "n/a"
        || lowered.starts_with("disabled")
    {
        return None;
    }
    let token = field.split_whitespace().next()?;
    // A raw hex placeholder (`0x0000`, discrete-sensor state words) is
    // not a temperature, even though `0x...` would parse as 0 through a
    // lenient number path — and 0 °C is exactly the fabricated-reading
    // failure the module invariant forbids.
    if token.get(..2).is_some_and(|prefix| prefix.eq_ignore_ascii_case("0x")) {
        return None;
    }
    // `try_new` (not `new`): the wire is untrusted, and a NaN that slipped
    // past the token filter must become a missing reading, not a panic.
    parse_float_token(token).and_then(Celsius::try_new)
}

/// Parses one numeric token, tolerating both comma conventions:
///
/// - exactly one comma and no dot is a locale decimal comma
///   (`45,5` → 45.5);
/// - commas alongside a dot, or more than one comma, are thousands
///   separators (`1,234.5` → 1234.5, `1,234,567` → 1234567) — the old
///   blanket comma→dot rewrite turned these into unparseable
///   `1.234.5`, silently dropping valid readings.
///
/// Non-finite results count as unreadable.
fn parse_float_token(token: &str) -> Option<f64> {
    let commas = token.matches(',').count();
    let normalized = if commas == 0 {
        token.to_owned()
    } else if token.contains('.') || commas > 1 {
        token.replace(',', "")
    } else {
        token.replace(',', ".")
    };
    normalized.parse::<f64>().ok().filter(|v| v.is_finite())
}

/// The transport an [`IpmiAdapter`] issues management commands over.
/// Production uses [`ProcessRunner`]; tests script exact transcripts.
pub trait CommandRunner {
    /// Runs `cmd` with `args`, returning combined stdout on success.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError`] if the command cannot run or exits
    /// non-zero.
    fn run(&mut self, cmd: &str, args: &[String]) -> Result<String, TelemetryError>;
}

/// Runs commands through `std::process::Command`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ProcessRunner;

impl CommandRunner for ProcessRunner {
    fn run(&mut self, cmd: &str, args: &[String]) -> Result<String, TelemetryError> {
        let output = std::process::Command::new(cmd)
            .args(args)
            .output()
            .map_err(|e| TelemetryError::Read(format!("{cmd}: {e}")))?;
        if !output.status.success() {
            return Err(TelemetryError::Nack(format!("{cmd} exited {}", output.status)));
        }
        Ok(String::from_utf8_lossy(&output.stdout).into_owned())
    }
}

/// The `ipmitool`-shaped front end: reads per-socket temperatures from
/// sdr output and drives fan walls with raw duty-cycle writes.
///
/// Socket mapping is by sensor name: `sensor_names[i]` is matched
/// (exact, after trimming) against the sdr rows; a socket whose sensor
/// is absent or unreadable polls as `None`. Fan commands address zones
/// as BMC fan indices and translate rpm targets to duty percentages
/// linearly across the mechanical bounds. Cap writes delegate to a
/// [`CapEnforcer`] ([`NullEnforcer`] unless
/// [`IpmiAdapter::with_cap_enforcer`] wires one), and firmware fallback
/// releases the caps alongside handing the fans back.
pub struct IpmiAdapter<R: CommandRunner> {
    runner: R,
    sensor_names: Vec<String>,
    zone_count: usize,
    fan_bounds: Bounds<Rpm>,
    enforcer: Box<dyn CapEnforcer>,
}

impl<R: CommandRunner> std::fmt::Debug for IpmiAdapter<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IpmiAdapter")
            .field("sensor_names", &self.sensor_names)
            .field("zone_count", &self.zone_count)
            .field("fan_bounds", &self.fan_bounds)
            .finish_non_exhaustive()
    }
}

impl<R: CommandRunner> IpmiAdapter<R> {
    /// Builds the adapter: one sdr sensor name per flat socket,
    /// `zone_count` fan walls within `fan_bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `sensor_names` is empty or `zone_count` is zero.
    #[must_use]
    pub fn new(
        runner: R,
        sensor_names: Vec<String>,
        zone_count: usize,
        fan_bounds: Bounds<Rpm>,
    ) -> Self {
        assert!(!sensor_names.is_empty(), "at least one sensor");
        assert!(zone_count > 0, "at least one fan zone");
        Self { runner, sensor_names, zone_count, fan_bounds, enforcer: Box::new(NullEnforcer) }
    }

    /// Builds the adapter with the socket→sensor map **auto-discovered**
    /// from one `ipmitool sdr type temperature` listing (see
    /// [`discover_socket_sensors`] for the heuristic).
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Read`] if the listing cannot be read
    /// or no CPU temperature sensors are found in it.
    pub fn discover(
        mut runner: R,
        zone_count: usize,
        fan_bounds: Bounds<Rpm>,
    ) -> Result<Self, TelemetryError> {
        let text = runner.run("ipmitool", &["sdr".into(), "type".into(), "temperature".into()])?;
        let names = discover_socket_sensors(&text);
        if names.is_empty() {
            return Err(TelemetryError::Read(
                "sensor discovery found no CPU temperature sensors in the sdr listing".into(),
            ));
        }
        Ok(Self::new(runner, names, zone_count, fan_bounds))
    }

    /// Replaces the cap enforcer (builder-style).
    #[must_use]
    pub fn with_cap_enforcer(mut self, enforcer: Box<dyn CapEnforcer>) -> Self {
        self.enforcer = enforcer;
        self
    }

    /// The socket→sensor map in use (discovery output, for logging).
    #[must_use]
    pub fn sensor_names(&self) -> &[String] {
        &self.sensor_names
    }

    /// Polls every mapped socket temperature from
    /// `ipmitool sdr type temperature`.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Read`] only if the command itself
    /// fails; unreadable *sensors* are `None` entries, never errors and
    /// never `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not one entry per mapped sensor.
    pub fn read_temperatures(&mut self, out: &mut [Option<Celsius>]) -> Result<(), TelemetryError> {
        assert_eq!(out.len(), self.sensor_names.len(), "one reading slot per mapped sensor");
        let text =
            self.runner.run("ipmitool", &["sdr".into(), "type".into(), "temperature".into()])?;
        let readings = parse_sdr_temperatures(&text);
        for (slot, wanted) in out.iter_mut().zip(&self.sensor_names) {
            *slot = readings.iter().find(|r| &r.name == wanted).and_then(|r| r.value);
        }
        Ok(())
    }

    /// The duty percentage a target rpm maps to across the bounds.
    fn percent_for(&self, target: Rpm) -> u8 {
        let lo = self.fan_bounds.lo().value();
        let hi = self.fan_bounds.hi().value();
        let frac = ((target.value() - lo) / (hi - lo)).clamp(0.0, 1.0);
        (frac * 100.0).round() as u8
    }

    /// The rpm the platform runs at a given duty percentage (the
    /// adapter's acknowledgement value).
    fn rpm_for_percent(&self, percent: u8) -> Rpm {
        let lo = self.fan_bounds.lo().value();
        let hi = self.fan_bounds.hi().value();
        Rpm::new(lo + f64::from(percent) / 100.0 * (hi - lo))
    }

    /// Toggles firmware automatic fan control: `0x30 0x30 0x01 0x01`
    /// hands the fans back to firmware, `... 0x00` takes manual
    /// control.
    fn set_auto_control(&mut self, auto: bool) -> Result<(), TelemetryError> {
        let code = if auto { "0x01" } else { "0x00" };
        self.runner
            .run(
                "ipmitool",
                &["raw".into(), "0x30".into(), "0x30".into(), "0x01".into(), code.into()],
            )
            .map(|_| ())
    }
}

impl<R: CommandRunner> FanActuator for IpmiAdapter<R> {
    fn write_fan_target(&mut self, z: usize, target: Rpm) -> Result<Rpm, TelemetryError> {
        assert!(z < self.zone_count, "zone {z} out of range");
        let percent = self.percent_for(target);
        self.runner.run(
            "ipmitool",
            &[
                "raw".into(),
                "0x30".into(),
                "0x30".into(),
                "0x02".into(),
                format!("0x{z:02x}"),
                format!("0x{percent:02x}"),
            ],
        )?;
        Ok(self.rpm_for_percent(percent))
    }

    fn write_caps(&mut self, caps: &[Utilization]) -> Result<(), TelemetryError> {
        // Per-socket utilization capping is OS-side (RAPL / cgroup
        // quota), not a BMC command — the wired CapEnforcer carries it
        // (the default NullEnforcer accepts-without-enforcing, the
        // pre-enforcement behavior).
        self.enforcer.enforce(caps)
    }

    fn migrate_load(
        &mut self,
        _from: usize,
        _to: usize,
        _amount: f64,
    ) -> Result<(), TelemetryError> {
        Err(TelemetryError::Nack("load migration is not an IPMI operation".into()))
    }

    fn enter_firmware_fallback(&mut self) -> Result<(), TelemetryError> {
        // Fans back to firmware *and* caps released: a cap left pinned
        // while the daemon is out of the loop is an unwatched
        // performance fault.
        self.set_auto_control(true)?;
        self.enforcer.release()
    }

    fn resume_manual_control(&mut self) -> Result<(), TelemetryError> {
        self.set_auto_control(false)
    }
}

/// [`IpmiAdapter`] promoted to a full daemon backend: the missing
/// [`TelemetrySource`] half, so `gfsc-daemond` can run the paced loop
/// against a real BMC.
///
/// What the BMC cannot tell us is modeled explicitly:
///
/// - **tachometers** mirror the last acknowledged targets (the raw
///   duty-write protocol has no read-back; the daemon's deadzone logic
///   only needs the commanded reference),
/// - **demand** is a fixed configured utilization (rack-level demand
///   telemetry is deployment-specific; the thermal loop is driven by
///   the *measured temperatures* either way),
/// - **advance** is a no-op — real time passes on its own, and
///   [`crate::Daemon::run_paced`] owns the cadence.
#[derive(Debug)]
pub struct IpmiTelemetry<R: CommandRunner> {
    adapter: IpmiAdapter<R>,
    demand: Utilization,
    last_tach: Vec<Rpm>,
}

impl<R: CommandRunner> IpmiTelemetry<R> {
    /// Wraps `adapter`, assuming the fans currently run near
    /// `start_fan` and the rack demand holds at `demand`.
    #[must_use]
    pub fn new(adapter: IpmiAdapter<R>, demand: Utilization, start_fan: Rpm) -> Self {
        let start = adapter.fan_bounds.clamp(start_fan);
        let last_tach = vec![start; adapter.zone_count];
        Self { adapter, demand, last_tach }
    }

    /// The wrapped adapter (read-only, e.g. to log the sensor map).
    #[must_use]
    pub fn adapter(&self) -> &IpmiAdapter<R> {
        &self.adapter
    }
}

impl<R: CommandRunner> TelemetrySource for IpmiTelemetry<R> {
    fn socket_count(&self) -> usize {
        self.adapter.sensor_names.len()
    }

    fn zone_count(&self) -> usize {
        self.adapter.zone_count
    }

    fn poll_temperatures(&mut self, out: &mut [Option<Celsius>]) -> Result<(), TelemetryError> {
        self.adapter.read_temperatures(out)
    }

    fn poll_fan_speeds(&mut self, out: &mut [Rpm]) -> Result<(), TelemetryError> {
        for (slot, tach) in out.iter_mut().zip(&self.last_tach) {
            *slot = *tach;
        }
        Ok(())
    }

    fn poll_demand(&mut self) -> Result<Utilization, TelemetryError> {
        Ok(self.demand)
    }

    fn advance(&mut self, _dt: Seconds) {}
}

impl<R: CommandRunner> FanActuator for IpmiTelemetry<R> {
    fn write_fan_target(&mut self, z: usize, target: Rpm) -> Result<Rpm, TelemetryError> {
        let acked = self.adapter.write_fan_target(z, target)?;
        if let Some(tach) = self.last_tach.get_mut(z) {
            *tach = acked;
        }
        Ok(acked)
    }

    fn write_caps(&mut self, caps: &[Utilization]) -> Result<(), TelemetryError> {
        self.adapter.write_caps(caps)
    }

    fn migrate_load(&mut self, from: usize, to: usize, amount: f64) -> Result<(), TelemetryError> {
        self.adapter.migrate_load(from, to, amount)
    }

    fn enter_firmware_fallback(&mut self) -> Result<(), TelemetryError> {
        self.adapter.enter_firmware_fallback()
    }

    fn resume_manual_control(&mut self) -> Result<(), TelemetryError> {
        let result = self.adapter.resume_manual_control();
        if result.is_ok() {
            // Firmware ran the fans at max while it held the rack; the
            // daemon's bumpless re-arm forces its mirror there too.
            self.last_tach.fill(self.adapter.fan_bounds.hi());
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enforce::RecordingEnforcer;

    #[test]
    fn float_tokens_distinguish_decimal_commas_from_thousands_separators() {
        assert_eq!(parse_float_token("45.5"), Some(45.5));
        // One comma, no dot: locale decimal comma.
        assert_eq!(parse_float_token("45,5"), Some(45.5));
        // Comma + dot: thousands separator (used to normalize to the
        // unparseable `1.234.5` and silently drop the reading).
        assert_eq!(parse_float_token("1,234.5"), Some(1234.5));
        // Multiple commas: thousands separators.
        assert_eq!(parse_float_token("1,234,567"), Some(1_234_567.0));
        // Non-finite stays unreadable.
        assert_eq!(parse_float_token("nan"), None);
        assert_eq!(parse_float_token("inf"), None);
        assert_eq!(parse_float_token("garbage"), None);
    }

    #[test]
    fn placeholder_readings_stay_missing_never_fabricated() {
        for placeholder in
            ["na", "NA", "n/a", "N/A", "ns", "no reading", "disabled", "0x0000", "0X0180", ""]
        {
            assert_eq!(parse_reading(placeholder), None, "placeholder {placeholder:?}");
        }
        // …while real readings still parse.
        assert_eq!(parse_reading(" 45 degrees C "), Celsius::try_new(45.0));
        assert_eq!(parse_reading("1,234.5 degrees C"), Celsius::try_new(1234.5));
    }

    #[test]
    fn cap_writes_flow_through_the_enforcer_and_fallback_releases() {
        struct AckAll;
        impl CommandRunner for AckAll {
            fn run(&mut self, _cmd: &str, _args: &[String]) -> Result<String, TelemetryError> {
                Ok(String::new())
            }
        }
        let recorder = RecordingEnforcer::new();
        let mut adapter = IpmiAdapter::new(
            AckAll,
            vec!["CPU0 Temp".into()],
            1,
            Bounds::new(Rpm::new(1000.0), Rpm::new(9000.0)),
        )
        .with_cap_enforcer(Box::new(recorder.clone()));
        adapter.write_caps(&[Utilization::new(0.6)]).unwrap();
        adapter.enter_firmware_fallback().unwrap();
        let log = recorder.log();
        assert_eq!(log.enforced, vec![vec![Utilization::new(0.6)]]);
        assert_eq!(log.releases, 1, "fallback must release the caps");
    }

    #[test]
    fn sdr_percent_and_raw_commands() {
        #[derive(Default)]
        struct Script(Vec<String>);
        impl CommandRunner for Script {
            fn run(&mut self, cmd: &str, args: &[String]) -> Result<String, TelemetryError> {
                self.0.push(format!("{cmd} {}", args.join(" ")));
                Ok(String::new())
            }
        }
        let mut adapter = IpmiAdapter::new(
            Script::default(),
            vec!["CPU0 Temp".into()],
            2,
            Bounds::new(Rpm::new(1000.0), Rpm::new(9000.0)),
        );
        let acked = adapter.write_fan_target(1, Rpm::new(5000.0)).unwrap();
        // 50% duty acknowledges the mid-range rpm back.
        assert_eq!(acked, Rpm::new(5000.0));
        adapter.enter_firmware_fallback().unwrap();
        adapter.resume_manual_control().unwrap();
        assert_eq!(
            adapter.runner.0,
            vec![
                "ipmitool raw 0x30 0x30 0x02 0x01 0x32",
                "ipmitool raw 0x30 0x30 0x01 0x01",
                "ipmitool raw 0x30 0x30 0x01 0x00",
            ]
        );
    }
}
