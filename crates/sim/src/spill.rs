//! Columnar on-disk spill for trace sets.
//!
//! A 10 000-cell sweep that keeps full traces holds hundreds of millions
//! of samples — far past what a memory-bounded grid wants resident. This
//! module trades RAM for a flat columnar layout on disk:
//!
//! - one directory per spilled set,
//! - per trace, two fixed-width little-endian `f64` column files
//!   (`col_<id>.times`, `col_<id>.values`) — no framing, no per-sample
//!   headers, so a column streams at raw sequential-write speed and its
//!   byte length is `8 × len` by construction,
//! - one `index.tsv` mapping trace names to column ids and lengths,
//!   written **last** so a complete index certifies a complete spill.
//!
//! [`TraceSet::spill_to`] writes a finished in-memory set;
//! [`TraceSink`] streams samples to disk as they are produced (the
//! large-grid path that never materializes the set at all); and
//! [`SpilledTraces`] reads **single columns** back without replaying or
//! even touching the rest of the directory — post-hoc analysis of one
//! channel out of thousands costs one index parse plus two column reads.
//!
//! # Examples
//!
//! ```
//! use gfsc_sim::{SpilledTraces, TraceSet};
//! use gfsc_units::Seconds;
//!
//! let dir = std::env::temp_dir().join("gfsc-spill-doc");
//! let mut set = TraceSet::new();
//! set.record("fan_rpm", Seconds::new(0.0), 2000.0);
//! set.record("fan_rpm", Seconds::new(30.0), 2500.0);
//! set.spill_to(&dir).unwrap();
//!
//! let spilled = SpilledTraces::open(&dir).unwrap();
//! let fan = spilled.column("fan_rpm").unwrap();
//! assert_eq!(fan.values(), &[2000.0, 2500.0]);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::{Trace, TraceError, TraceSet};
use gfsc_units::Seconds;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// The index file name inside a spill directory.
const INDEX: &str = "index.tsv";
/// The index header magic + version.
const MAGIC: &str = "gfsc-spill\tv1";

fn times_file(dir: &Path, id: usize) -> PathBuf {
    dir.join(format!("col_{id}.times"))
}

fn values_file(dir: &Path, id: usize) -> PathBuf {
    dir.join(format!("col_{id}.values"))
}

/// A pre-resolved handle to one column of a [`TraceSink`] — the sink-side
/// analog of [`crate::ChannelId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SinkChannel(usize);

/// One open column: its running length, ordering watermark, and the two
/// buffered column writers.
#[derive(Debug)]
struct SinkColumn {
    name: String,
    len: u64,
    last_time: f64,
    times: BufWriter<File>,
    values: BufWriter<File>,
}

/// A streaming columnar trace writer: samples go straight to buffered
/// column files instead of accumulating in a [`TraceSet`], so a sweep can
/// record arbitrarily long traces in constant memory. [`TraceSink::finish`]
/// seals the spill by writing the index; a directory without an index is
/// an aborted spill and [`SpilledTraces::open`] refuses it.
#[derive(Debug)]
pub struct TraceSink {
    dir: PathBuf,
    columns: Vec<SinkColumn>,
}

impl TraceSink {
    /// Creates the spill directory (and parents) and an empty sink in it.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the directory cannot be created.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, TraceError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, columns: Vec::new() })
    }

    /// Resolves `name` to a column handle, opening its column files on
    /// first use (same aliasing rule as [`TraceSet::channel`]).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Format`] for names the tab-separated index
    /// cannot represent (embedded tabs or newlines), [`TraceError::Io`]
    /// if the column files cannot be created.
    pub fn channel(&mut self, name: &str) -> Result<SinkChannel, TraceError> {
        if let Some(idx) = self.columns.iter().position(|c| c.name == name) {
            return Ok(SinkChannel(idx));
        }
        if name.contains(['\t', '\n']) {
            return Err(TraceError::Format(format!(
                "trace name {name:?} cannot be spilled: tabs and newlines delimit the index"
            )));
        }
        let id = self.columns.len();
        self.columns.push(SinkColumn {
            name: name.to_owned(),
            len: 0,
            last_time: f64::NEG_INFINITY,
            times: BufWriter::new(File::create(times_file(&self.dir, id))?),
            values: BufWriter::new(File::create(values_file(&self.dir, id))?),
        });
        Ok(SinkChannel(id))
    }

    /// Appends one sample to a column, enforcing the same invariants as
    /// [`Trace::try_push`]: non-decreasing times, no NaN values.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfOrder`] for time regressions,
    /// [`TraceError::Io`] if the write fails.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or `channel` came from another sink.
    pub fn record(
        &mut self,
        channel: SinkChannel,
        t: Seconds,
        value: f64,
    ) -> Result<(), TraceError> {
        assert!(!value.is_nan(), "trace value must not be NaN");
        let column = &mut self.columns[channel.0];
        if column.len > 0 && t.value() < column.last_time {
            return Err(TraceError::OutOfOrder { last: column.last_time, attempted: t.value() });
        }
        column.times.write_all(&t.value().to_le_bytes())?;
        column.values.write_all(&value.to_le_bytes())?;
        column.last_time = t.value();
        column.len += 1;
        Ok(())
    }

    /// Flushes every column and writes the index, sealing the spill.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if a flush or the index write fails.
    pub fn finish(self) -> Result<(), TraceError> {
        let mut index = String::from(MAGIC);
        index.push('\t');
        index.push_str(&self.columns.len().to_string());
        index.push('\n');
        for (id, column) in self.columns.into_iter().enumerate() {
            column.times.into_inner().map_err(|e| TraceError::Io(e.into_error()))?.sync_data()?;
            column.values.into_inner().map_err(|e| TraceError::Io(e.into_error()))?.sync_data()?;
            index.push_str(&format!("{id}\t{}\t{}\n", column.len, column.name));
        }
        fs::write(self.dir.join(INDEX), index)?;
        Ok(())
    }
}

impl TraceSet {
    /// Spills every trace to `dir` in the columnar layout (see the
    /// [module docs](crate::spill)), creating the directory as needed.
    /// The set itself is untouched; [`SpilledTraces::open`] reads the
    /// result back column by column.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on filesystem failure and
    /// [`TraceError::Format`] for trace names the index cannot hold.
    pub fn spill_to(&self, dir: impl Into<PathBuf>) -> Result<(), TraceError> {
        let mut sink = TraceSink::create(dir)?;
        for trace in self.iter() {
            let channel = sink.channel(trace.name())?;
            for (t, v) in trace.iter() {
                sink.record(channel, Seconds::new(t), v)?;
            }
        }
        sink.finish()
    }
}

/// One index entry: where a named trace's columns live and how long they
/// are.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexEntry {
    id: usize,
    len: usize,
    name: String,
}

/// A sealed spill directory, opened for selective reads.
///
/// Opening parses only the index; each [`SpilledTraces::column`] call
/// reads exactly the two column files of the requested trace — no replay,
/// no touching unrelated columns.
#[derive(Debug)]
pub struct SpilledTraces {
    dir: PathBuf,
    entries: Vec<IndexEntry>,
}

impl SpilledTraces {
    /// Opens a spill directory by parsing its index.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the index is unreadable (including
    /// aborted spills that never wrote one) and [`TraceError::Format`] if
    /// it is malformed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, TraceError> {
        let dir = dir.into();
        let index = fs::read_to_string(dir.join(INDEX))?;
        let mut lines = index.lines();
        let header = lines.next().unwrap_or_default();
        let count = header
            .strip_prefix(MAGIC)
            .and_then(|rest| rest.strip_prefix('\t'))
            .and_then(|n| n.parse::<usize>().ok())
            .ok_or_else(|| TraceError::Format(format!("bad index header {header:?}")))?;
        let mut entries = Vec::with_capacity(count);
        for line in lines {
            let mut fields = line.splitn(3, '\t');
            let entry = (|| {
                let id = fields.next()?.parse().ok()?;
                let len = fields.next()?.parse().ok()?;
                let name = fields.next()?.to_owned();
                Some(IndexEntry { id, len, name })
            })()
            .ok_or_else(|| TraceError::Format(format!("bad index entry {line:?}")))?;
            entries.push(entry);
        }
        if entries.len() != count {
            return Err(TraceError::Format(format!(
                "index promises {count} columns, lists {}",
                entries.len()
            )));
        }
        Ok(Self { dir, entries })
    }

    /// Number of spilled traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the spill holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The spilled trace names, in spill order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.name.as_str())
    }

    /// The sample count of one trace, from the index alone.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownTrace`] if no column has that name.
    pub fn sample_count(&self, name: &str) -> Result<usize, TraceError> {
        self.entry(name).map(|e| e.len)
    }

    /// Loads one trace by reading only its two column files.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownTrace`] for unknown names,
    /// [`TraceError::Io`] on read failure, and [`TraceError::Format`] if
    /// a column's byte length disagrees with the index or its data
    /// violates the trace invariants (time order, NaN-freedom).
    pub fn column(&self, name: &str) -> Result<Trace, TraceError> {
        let entry = self.entry(name)?;
        let times = read_column(&times_file(&self.dir, entry.id), entry.len)?;
        let values = read_column(&values_file(&self.dir, entry.id), entry.len)?;
        if times.windows(2).any(|w| w[1] < w[0]) || times.iter().any(|t| t.is_nan()) {
            return Err(TraceError::Format(format!("column `{name}` times are not ordered")));
        }
        if values.iter().any(|v| v.is_nan()) {
            return Err(TraceError::Format(format!("column `{name}` holds NaN values")));
        }
        Ok(Trace::from_parts(entry.name.clone(), times, values))
    }

    /// Loads the whole spill back into a [`TraceSet`] (the round-trip
    /// inverse of [`TraceSet::spill_to`], mostly for tests and small
    /// sets — selective [`SpilledTraces::column`] reads are the point of
    /// the format).
    ///
    /// # Errors
    ///
    /// Propagates the first [`SpilledTraces::column`] failure.
    pub fn load_all(&self) -> Result<TraceSet, TraceError> {
        let mut set = TraceSet::new();
        for entry in &self.entries {
            let trace = self.column(&entry.name)?;
            let channel = set.channel_with_capacity(&entry.name, trace.len());
            for (t, v) in trace.iter() {
                set.record_by_id(channel, Seconds::new(t), v);
            }
        }
        Ok(set)
    }

    fn entry(&self, name: &str) -> Result<&IndexEntry, TraceError> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| TraceError::UnknownTrace(name.to_owned()))
    }
}

/// Reads one fixed-width `f64` column file, validating its byte length
/// against the index.
fn read_column(path: &Path, len: usize) -> Result<Vec<f64>, TraceError> {
    let bytes = fs::read(path)?;
    if bytes.len() != len * 8 {
        return Err(TraceError::Format(format!(
            "{}: expected {} bytes ({len} samples), found {}",
            path.display(),
            len * 8,
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        // `chunks_exact(8)` only yields 8-byte chunks, so the conversion
        // cannot fail; a zeroed fallback keeps the path panic-free.
        .map(|chunk| f64::from_le_bytes(chunk.try_into().unwrap_or_default()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tempdir that cleans up after itself (no tempfile dependency).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("gfsc-spill-test-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample_set() -> TraceSet {
        let mut set = TraceSet::new();
        for k in 0..500 {
            let t = Seconds::new(f64::from(k) * 0.5);
            set.record("t_junction_c", t, 55.0 + f64::from(k % 17) * 0.25);
            if k % 30 == 0 {
                set.record("fan_rpm", t, 1500.0 + f64::from(k) * 10.0);
            }
        }
        set
    }

    #[test]
    fn spill_round_trips_bitwise() {
        let tmp = TempDir::new("round-trip");
        let set = sample_set();
        set.spill_to(&tmp.0).unwrap();
        let spilled = SpilledTraces::open(&tmp.0).unwrap();
        assert_eq!(spilled.len(), 2);
        let names: Vec<&str> = spilled.names().collect();
        assert_eq!(names, ["t_junction_c", "fan_rpm"]);
        for original in set.iter() {
            assert_eq!(spilled.sample_count(original.name()).unwrap(), original.len());
            let loaded = spilled.column(original.name()).unwrap();
            assert_eq!(loaded.name(), original.name());
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(loaded.times()), bits(original.times()));
            assert_eq!(bits(loaded.values()), bits(original.values()));
        }
        let reloaded = spilled.load_all().unwrap();
        assert_eq!(reloaded.len(), set.len());
    }

    #[test]
    fn column_reads_are_selective() {
        let tmp = TempDir::new("selective");
        sample_set().spill_to(&tmp.0).unwrap();
        // Corrupt one column; the *other* column must still read cleanly,
        // proving reads touch only the requested files.
        fs::write(tmp.0.join("col_0.values"), b"short").unwrap();
        let spilled = SpilledTraces::open(&tmp.0).unwrap();
        assert!(spilled.column("t_junction_c").is_err());
        let fan = spilled.column("fan_rpm").unwrap();
        assert_eq!(fan.len(), 17);
        assert_eq!(fan.values()[0], 1500.0);
    }

    #[test]
    fn sink_streams_and_seals() {
        let tmp = TempDir::new("sink");
        let mut sink = TraceSink::create(&tmp.0).unwrap();
        let a = sink.channel("a").unwrap();
        let b = sink.channel("b").unwrap();
        assert_eq!(sink.channel("a").unwrap(), a);
        for k in 0..100 {
            sink.record(a, Seconds::new(f64::from(k)), f64::from(k) * 2.0).unwrap();
        }
        sink.record(b, Seconds::new(0.0), -1.0).unwrap();
        // Until finish() writes the index the spill is unreadable.
        assert!(SpilledTraces::open(&tmp.0).is_err());
        sink.finish().unwrap();
        let spilled = SpilledTraces::open(&tmp.0).unwrap();
        assert_eq!(spilled.column("a").unwrap().len(), 100);
        assert_eq!(spilled.column("b").unwrap().values(), &[-1.0]);
    }

    #[test]
    fn sink_enforces_trace_invariants() {
        let tmp = TempDir::new("invariants");
        let mut sink = TraceSink::create(&tmp.0).unwrap();
        let a = sink.channel("a").unwrap();
        sink.record(a, Seconds::new(5.0), 1.0).unwrap();
        sink.record(a, Seconds::new(5.0), 2.0).unwrap(); // equal times OK
        let err = sink.record(a, Seconds::new(4.0), 3.0).unwrap_err();
        assert!(matches!(err, TraceError::OutOfOrder { .. }));
        assert!(sink.channel("tab\tseparated").is_err());
    }

    #[test]
    fn empty_set_spills_and_opens() {
        let tmp = TempDir::new("empty");
        TraceSet::new().spill_to(&tmp.0).unwrap();
        let spilled = SpilledTraces::open(&tmp.0).unwrap();
        assert!(spilled.is_empty());
        assert!(spilled.column("anything").is_err());
    }

    #[test]
    fn load_all_surfaces_truncated_column_as_format_error() {
        let tmp = TempDir::new("load-all-truncated");
        sample_set().spill_to(&tmp.0).unwrap();
        // A column file cut short mid-write (crash, full disk) must
        // surface as a clean Format error from the bulk loader, not a
        // panic or a short read.
        fs::write(tmp.0.join("col_0.values"), b"short").unwrap();
        let spilled = SpilledTraces::open(&tmp.0).unwrap();
        let err = spilled.load_all().unwrap_err();
        assert!(matches!(err, TraceError::Format(_)), "got {err}");
        assert!(err.to_string().contains("col_0.values"), "names the bad file: {err}");
    }

    #[test]
    fn load_all_surfaces_index_length_mismatch() {
        let tmp = TempDir::new("load-all-mismatch");
        sample_set().spill_to(&tmp.0).unwrap();
        // Rewrite the index so one entry claims a different sample
        // count than its (intact) column files hold.
        let index = fs::read_to_string(tmp.0.join(INDEX)).unwrap();
        let doctored: String = index
            .lines()
            .map(|line| match line.strip_prefix("0\t500\t") {
                Some(rest) => format!("0\t499\t{rest}\n"),
                None => format!("{line}\n"),
            })
            .collect();
        assert_ne!(doctored, index, "the doctored entry must exist");
        fs::write(tmp.0.join(INDEX), doctored).unwrap();
        let spilled = SpilledTraces::open(&tmp.0).unwrap();
        assert!(matches!(spilled.column("t_junction_c").unwrap_err(), TraceError::Format(_)));
        let err = spilled.load_all().unwrap_err();
        assert!(matches!(err, TraceError::Format(_)), "got {err}");
        // The untouched column is still selectively readable.
        assert_eq!(spilled.column("fan_rpm").unwrap().len(), 17);
    }

    #[test]
    fn malformed_indexes_are_rejected() {
        let tmp = TempDir::new("malformed");
        fs::create_dir_all(&tmp.0).unwrap();
        for bad in ["", "not-a-spill\n", "gfsc-spill\tv1\t2\n0\t1\ta\n", "gfsc-spill\tv1\tx\n"] {
            fs::write(tmp.0.join(INDEX), bad).unwrap();
            let err = SpilledTraces::open(&tmp.0).unwrap_err();
            assert!(matches!(err, TraceError::Format(_)), "{bad:?} gave {err}");
        }
    }
}
