//! Discrete-time simulation kernel for the `gfsc` workspace.
//!
//! The paper evaluates its controllers on a simulated enterprise server with
//! several periodic activities running at different rates: the plant
//! (thermal/power state) advances at a fine fixed step, the CPU-cap
//! controller fires every 1 s, the fan controller every 30 s, and the sensor
//! chain samples every 1 s. This crate provides the scaffolding for that
//! style of simulation:
//!
//! - [`Clock`]: a drift-free fixed-step simulation clock,
//! - [`Periodic`]: a multi-rate scheduler primitive ("is this controller due
//!   at the current time?"),
//! - [`Trace`] / [`TraceSet`]: named time series with CSV export,
//! - [`spill`]: columnar on-disk trace spill ([`TraceSet::spill_to`],
//!   streaming [`TraceSink`], selective [`SpilledTraces`] reads) so large
//!   sweeps keep full traces without keeping them resident,
//! - [`stats`]: step-response and stability metrics (settling time,
//!   overshoot, sustained-oscillation detection) used to evaluate the
//!   paper's claims quantitatively.
//!
//! # Examples
//!
//! ```
//! use gfsc_sim::{Clock, Periodic, Trace};
//! use gfsc_units::Seconds;
//!
//! let mut clock = Clock::new(Seconds::new(0.5));
//! let mut fan_ctrl = Periodic::new(Seconds::new(30.0));
//! let mut trace = Trace::new("fan_speed_rpm");
//! let mut fires = 0;
//! while clock.now().value() < 120.0 {
//!     if fan_ctrl.is_due(clock.now()) {
//!         fires += 1;
//!         trace.push(clock.now(), 2000.0);
//!     }
//!     clock.tick();
//! }
//! assert_eq!(fires, 4); // t = 0, 30, 60, 90
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod fault;
mod schedule;
pub mod spill;
pub mod stats;
pub mod sweep;
mod trace;

pub use clock::Clock;
pub use fault::{FaultSchedule, FaultWindow};
pub use schedule::Periodic;
pub use spill::{SinkChannel, SpilledTraces, TraceSink};
pub use trace::{ChannelId, Trace, TraceError, TraceSet};
