//! A deterministic parallel executor for embarrassingly-parallel scenario
//! sweeps.
//!
//! Every evaluation campaign in this workspace — the Table III solution
//! comparison, the ablation sweeps, Ziegler–Nichols gain probing — is a map
//! over independent, deterministic jobs. This module provides that map,
//! fanned out across all cores with scoped OS threads (the offline
//! dependency set has no `rayon`; the executor below is the same
//! work-stealing-by-atomic-counter shape at the granularity these sweeps
//! need, where each job runs for milliseconds to seconds):
//!
//! - [`parallel_map`]: evaluate `f` over a slice on every available core,
//!   returning results **in input order** — output is bit-identical to the
//!   serial `iter().map().collect()` because each job is independent and
//!   jobs never exchange state,
//! - [`serial_map`]: the reference path (also used to honor
//!   `GFSC_SWEEP_THREADS=1`),
//! - [`thread_count`]: the worker-count policy (`GFSC_SWEEP_THREADS`
//!   overrides; defaults to available parallelism).
//!
//! # Determinism
//!
//! Result order is the input order regardless of which worker ran which
//! job and in what interleaving; a panic in any job is propagated to the
//! caller after the scope joins. The workspace's determinism tests assert
//! byte-identical summaries between this executor and [`serial_map`].
//!
//! # Examples
//!
//! ```
//! use gfsc_sim::sweep;
//!
//! let squares = sweep::parallel_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

std::thread_local! {
    /// Set inside sweep worker threads, so nested [`parallel_map`] calls
    /// (e.g. gain tuning invoked from an ablation-sweep job) flatten to the
    /// serial path instead of oversubscribing the CPU multiplicatively.
    static IN_SWEEP_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The number of worker threads a sweep will use: the value of
/// `GFSC_SWEEP_THREADS` if set (clamped to at least 1), otherwise
/// [`std::thread::available_parallelism`].
#[must_use]
pub fn thread_count() -> usize {
    if let Ok(v) = std::env::var("GFSC_SWEEP_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `jobs` serially, in order — the reference implementation
/// that [`parallel_map`] must match bit-for-bit.
pub fn serial_map<J, R>(jobs: &[J], f: impl Fn(&J) -> R) -> Vec<R> {
    jobs.iter().map(f).collect()
}

/// Maps `f` over `jobs` across all available cores, returning results in
/// input order.
///
/// Work distribution is dynamic (an atomic next-job counter), so uneven job
/// durations — a 30 s-lag ablation point next to a 0 s one — still fill
/// every core. `f` must be [`Sync`] (it is shared by reference across
/// workers) and results are sent back over a channel and reassembled by
/// index, so `R` needs no ordering discipline of its own.
///
/// Nested calls flatten: when invoked from inside another sweep's worker
/// (tuning within an ablation job, say), this runs serially — the outer
/// map already owns the cores, and `outer × inner` thread counts would
/// oversubscribe the CPU and distort measured scaling. Results are
/// unaffected either way.
///
/// # Panics
///
/// Re-raises the panic of any job (after all workers have stopped).
pub fn parallel_map<J, R>(jobs: &[J], f: impl Fn(&J) -> R + Sync) -> Vec<R>
where
    J: Sync,
    R: Send,
{
    if IN_SWEEP_WORKER.with(Cell::get) {
        return serial_map(jobs, f);
    }
    parallel_map_with_workers(jobs, f, thread_count())
}

/// [`parallel_map`] with an explicit worker count, bypassing the
/// [`thread_count`] policy — the scaling probe in `perf_report` and the
/// executor's own tests pin worker counts with this.
///
/// # Panics
///
/// Re-raises the panic of any job (after all workers have stopped).
pub fn parallel_map_with_workers<J, R>(
    jobs: &[J],
    f: impl Fn(&J) -> R + Sync,
    workers: usize,
) -> Vec<R>
where
    J: Sync,
    R: Send,
{
    let workers = workers.min(jobs.len());
    if workers <= 1 {
        return serial_map(jobs, f);
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let slots = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    IN_SWEEP_WORKER.with(|flag| flag.set(true));
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(idx) else { break };
                        // A send can only fail if the receiver was dropped,
                        // which cannot happen while this scope is alive.
                        if tx.send((idx, f(job))).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        drop(tx);

        let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs.len());
        slots.resize_with(jobs.len(), || None);
        for (idx, result) in rx {
            slots[idx] = Some(result);
        }
        // Join explicitly and re-raise a worker's own panic payload, so the
        // caller sees the job's message (e.g. a tuning failure), not a
        // generic scope or missing-slot panic.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        slots
    });
    slots.into_iter().map(|slot| slot.expect("every job index sends exactly one result")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_on_ordering() {
        // Pin 4 workers so the threaded path runs even on a 1-core host.
        let jobs: Vec<u64> = (0..257).collect();
        let serial = serial_map(&jobs, |&x| x.wrapping_mul(x) ^ 0xA5);
        let parallel = parallel_map_with_workers(&jobs, |&x| x.wrapping_mul(x) ^ 0xA5, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial, parallel_map(&jobs, |&x| x.wrapping_mul(x) ^ 0xA5));
    }

    #[test]
    fn empty_and_single_job_slices() {
        let none: Vec<u32> = parallel_map(&[], |x: &u32| *x);
        assert!(none.is_empty());
        assert_eq!(parallel_map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_job_durations_keep_order() {
        // Later jobs finish first; results must still come back in input
        // order.
        let jobs: Vec<u64> = (0..32).collect();
        let out = parallel_map_with_workers(
            &jobs,
            |&x| {
                std::thread::sleep(std::time::Duration::from_micros((32 - x) * 50));
                x * 2
            },
            4,
        );
        assert_eq!(out, (0..32).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates_with_its_own_message() {
        let jobs: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map_with_workers(
                &jobs,
                |&x| {
                    assert!(x != 13, "boom at 13");
                    x
                },
                4,
            )
        });
        let payload = result.expect_err("panic in a job must reach the caller");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default();
        assert!(message.contains("boom at 13"), "job's panic message was masked: {message:?}");
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn nested_parallel_map_flattens_to_serial() {
        // From inside a sweep worker, the policy path must not spawn a
        // second level of workers — but it must still produce identical
        // results.
        let outer: Vec<u32> = (0..8).collect();
        let result = parallel_map_with_workers(
            &outer,
            |&x| {
                assert!(IN_SWEEP_WORKER.with(Cell::get), "job must run on a worker thread");
                let inner: Vec<u32> = (0..5).map(|k| x * 10 + k).collect();
                parallel_map(&inner, |&y| y + 1)
            },
            4,
        );
        for (x, row) in result.iter().enumerate() {
            let expect: Vec<u32> = (0..5).map(|k| x as u32 * 10 + k + 1).collect();
            assert_eq!(row, &expect);
        }
        // Back on the caller thread the flag is untouched.
        assert!(!IN_SWEEP_WORKER.with(Cell::get));
    }
}
