//! Multi-rate periodic scheduling.

use gfsc_units::Seconds;

/// A periodic activity in a fixed-step simulation.
///
/// `Periodic` answers "is this activity due now?" for controllers that run
/// slower than the simulation step — e.g. the paper's CPU-cap controller
/// (1 s) and fan-speed controller (30 s) on a 0.1 s plant step.
///
/// The schedule is tolerant of the caller polling *past* a deadline (it
/// fires once and re-arms relative to the nominal grid, not the polling
/// time, so late polls do not shift the phase).
///
/// # Examples
///
/// ```
/// use gfsc_sim::Periodic;
/// use gfsc_units::Seconds;
///
/// let mut p = Periodic::new(Seconds::new(30.0));
/// assert!(p.is_due(Seconds::new(0.0)));
/// assert!(!p.is_due(Seconds::new(15.0)));
/// assert!(p.is_due(Seconds::new(30.0)));
/// ```
#[derive(Debug, Clone)]
pub struct Periodic {
    period: Seconds,
    next: f64,
    /// The nominal grid's phase (the first scheduled firing time) —
    /// what [`Self::reschedule_on_grid`] re-arms against after an
    /// out-of-band fire.
    anchor: f64,
    /// Set by [`Self::reschedule_on_grid`]: the next fire is
    /// out-of-band, and the one after it must land back on the
    /// `anchor + k·period` grid instead of `fired + period`.
    regrid: bool,
}

impl Periodic {
    /// Creates a schedule firing at `t = 0, period, 2·period, …`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(period: Seconds) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        Self { period, next: 0.0, anchor: 0.0, regrid: false }
    }

    /// Creates a schedule whose first firing is delayed to `phase`.
    ///
    /// Useful to de-synchronize controllers, e.g. to model a fan controller
    /// that makes its first decision only after one full interval.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn with_phase(period: Seconds, phase: Seconds) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        Self { period, next: phase.value(), anchor: phase.value(), regrid: false }
    }

    /// The firing period.
    #[must_use]
    pub fn period(&self) -> Seconds {
        self.period
    }

    /// The next scheduled firing time.
    #[must_use]
    pub fn next_fire(&self) -> Seconds {
        Seconds::new(self.next)
    }

    /// Returns `true` (and re-arms) if the activity is due at time `now`.
    ///
    /// A small tolerance (1 ppm of the period) absorbs floating-point
    /// representation error in the caller's clock.
    pub fn is_due(&mut self, now: Seconds) -> bool {
        let tol = self.period.value() * 1e-6;
        if now.value() + tol >= self.next {
            if self.regrid {
                // An out-of-band fire armed by `reschedule_on_grid`:
                // return to the nominal `anchor + k·period` grid instead
                // of shifting every later firing by the fire time.
                self.regrid = false;
                let periods = ((now.value() + tol - self.anchor) / self.period.value()).floor();
                self.next = self.anchor + (periods + 1.0) * self.period.value();
            } else {
                // Re-arm on the nominal grid so late polls do not drift
                // phase.
                self.next += self.period.value();
            }
            // If the caller skipped far ahead (e.g. coarse stepping), catch
            // up without queueing a burst of stale firings.
            while self.next <= now.value() + tol {
                self.next += self.period.value();
            }
            true
        } else {
            false
        }
    }

    /// Re-arms the schedule to fire next at `at`, keeping the period —
    /// **and permanently shifting the phase**: every later firing lands
    /// on `at + k·period`, not back on the original grid.
    ///
    /// The single-step fan-speed scaling scheme (paper Section V-C) uses
    /// this to force an immediate out-of-band fan decision *and* restart
    /// its decision interval from that fire — the boost window is timed
    /// from the boost, so the phase shift is the intended behavior
    /// there. For a one-off early fire that must not disturb the
    /// nominal cadence, use [`Self::reschedule_on_grid`].
    pub fn reschedule(&mut self, at: Seconds) {
        self.next = at.value();
        self.anchor = at.value();
        self.regrid = false;
    }

    /// Arms a single out-of-band fire at `at`; after it fires, the
    /// schedule returns to the nominal `phase + k·period` grid as if
    /// the extra fire had not happened.
    ///
    /// With period 30: fire at 0, `reschedule_on_grid(5)`, fire at 5 —
    /// the next fires land at 30, 60, … (where [`Self::reschedule`]
    /// would shift them to 35, 65, …).
    pub fn reschedule_on_grid(&mut self, at: Seconds) {
        self.next = at.value();
        self.regrid = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(period: f64, phase: Option<f64>, dt: f64, horizon: f64) -> Vec<f64> {
        let mut p = match phase {
            Some(ph) => Periodic::with_phase(Seconds::new(period), Seconds::new(ph)),
            None => Periodic::new(Seconds::new(period)),
        };
        let mut out = Vec::new();
        let steps = (horizon / dt).round() as u64;
        for k in 0..=steps {
            let now = Seconds::new(k as f64 * dt);
            if p.is_due(now) {
                out.push(now.value());
            }
        }
        out
    }

    #[test]
    fn fires_on_grid_from_zero() {
        assert_eq!(times(30.0, None, 1.0, 95.0), vec![0.0, 30.0, 60.0, 90.0]);
    }

    #[test]
    fn fires_with_phase_offset() {
        assert_eq!(times(30.0, Some(10.0), 1.0, 95.0), vec![10.0, 40.0, 70.0]);
    }

    #[test]
    fn fine_steps_do_not_double_fire() {
        // dt = 0.1 with period 1.0: exactly one firing per second.
        let fired = times(1.0, None, 0.1, 10.05);
        assert_eq!(fired.len(), 11);
    }

    #[test]
    fn representation_error_does_not_skip_firings() {
        // 0.1 is inexact in binary; ensure the tolerance absorbs it over a
        // long horizon.
        let fired = times(1.0, None, 0.1, 1000.0);
        assert_eq!(fired.len(), 1001);
    }

    #[test]
    fn late_polls_catch_up_without_burst() {
        let mut p = Periodic::new(Seconds::new(10.0));
        assert!(p.is_due(Seconds::new(0.0)));
        // Jump straight to t = 35: exactly one firing, re-armed at 40.
        assert!(p.is_due(Seconds::new(35.0)));
        assert!(!p.is_due(Seconds::new(36.0)));
        assert_eq!(p.next_fire(), Seconds::new(40.0));
    }

    #[test]
    fn reschedule_forces_early_fire() {
        let mut p = Periodic::new(Seconds::new(30.0));
        assert!(p.is_due(Seconds::new(0.0)));
        p.reschedule(Seconds::new(5.0));
        assert!(p.is_due(Seconds::new(5.0)));
        assert_eq!(p.next_fire(), Seconds::new(35.0));
    }

    #[test]
    fn reschedule_shifts_the_phase_permanently() {
        // Pin the documented (and SS-fan-intended) phase shift: after an
        // out-of-band fire at t = 5 the grid is 35 / 65 / …, not 30 / 60.
        let mut p = Periodic::new(Seconds::new(30.0));
        assert!(p.is_due(Seconds::new(0.0)));
        p.reschedule(Seconds::new(5.0));
        let fired: Vec<f64> = (0..=100)
            .map(|k| Seconds::new(k as f64))
            .filter(|&t| p.is_due(t))
            .map(|t| t.value())
            .collect();
        assert_eq!(fired, vec![5.0, 35.0, 65.0, 95.0]);
    }

    #[test]
    fn reschedule_on_grid_preserves_the_nominal_grid() {
        // The grid-preserving re-arm: the out-of-band fire at t = 5 does
        // not move the 30 / 60 / 90 cadence.
        let mut p = Periodic::new(Seconds::new(30.0));
        assert!(p.is_due(Seconds::new(0.0)));
        p.reschedule_on_grid(Seconds::new(5.0));
        let fired: Vec<f64> = (0..=100)
            .map(|k| Seconds::new(k as f64))
            .filter(|&t| p.is_due(t))
            .map(|t| t.value())
            .collect();
        assert_eq!(fired, vec![5.0, 30.0, 60.0, 90.0]);
    }

    #[test]
    fn reschedule_on_grid_respects_a_phase_offset() {
        // Nominal grid 10 / 40 / 70 / 100; an out-of-band fire at 55
        // lands between grid points and the cadence resumes at 70.
        let mut p = Periodic::with_phase(Seconds::new(30.0), Seconds::new(10.0));
        assert!(p.is_due(Seconds::new(10.0)));
        assert!(p.is_due(Seconds::new(40.0)));
        p.reschedule_on_grid(Seconds::new(55.0));
        assert!(p.is_due(Seconds::new(55.0)), "the out-of-band fire itself");
        assert_eq!(p.next_fire(), Seconds::new(70.0));
        let fired: Vec<f64> = (56..=110)
            .map(|k| Seconds::new(k as f64))
            .filter(|&t| p.is_due(t))
            .map(|t| t.value())
            .collect();
        assert_eq!(fired, vec![70.0, 100.0]);
    }

    #[test]
    fn reschedule_on_grid_exactly_on_a_grid_point_consumes_that_slot() {
        let mut p = Periodic::new(Seconds::new(30.0));
        assert!(p.is_due(Seconds::new(0.0)));
        p.reschedule_on_grid(Seconds::new(30.0));
        assert!(p.is_due(Seconds::new(30.0)));
        assert_eq!(p.next_fire(), Seconds::new(60.0));
    }

    #[test]
    fn accessors() {
        let p = Periodic::new(Seconds::new(30.0));
        assert_eq!(p.period(), Seconds::new(30.0));
        assert_eq!(p.next_fire(), Seconds::new(0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = Periodic::new(Seconds::new(0.0));
    }
}
