//! Named time series and collections thereof.

use core::fmt;
use gfsc_units::Seconds;
use std::io::{self, Write};

/// Error produced by trace operations.
#[derive(Debug)]
pub enum TraceError {
    /// Samples must be pushed in non-decreasing time order.
    OutOfOrder {
        /// Time of the last accepted sample.
        last: f64,
        /// Offending earlier time.
        attempted: f64,
    },
    /// The requested trace name does not exist in the [`TraceSet`].
    UnknownTrace(String),
    /// Writing CSV output failed.
    Io(io::Error),
    /// A spilled trace directory was malformed (see [`crate::SpilledTraces`]).
    Format(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::OutOfOrder { last, attempted } => write!(
                f,
                "trace samples must be time-ordered: got t = {attempted} after t = {last}"
            ),
            TraceError::UnknownTrace(name) => write!(f, "unknown trace `{name}`"),
            TraceError::Io(e) => write!(f, "trace I/O failed: {e}"),
            TraceError::Format(why) => write!(f, "spilled trace format error: {why}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A named time series of `(time, value)` samples.
///
/// Values are stored as `f64` in the unit implied by the trace name
/// (convention: suffix the name with the unit, e.g. `"t_junction_c"`,
/// `"fan_speed_rpm"`). Samples must be pushed in non-decreasing time order,
/// which [`Trace::push`] enforces by panicking and
/// [`Trace::try_push`] reports as an error.
///
/// # Examples
///
/// ```
/// use gfsc_sim::Trace;
/// use gfsc_units::Seconds;
///
/// let mut trace = Trace::new("t_junction_c");
/// trace.push(Seconds::new(0.0), 55.0);
/// trace.push(Seconds::new(1.0), 56.2);
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.last_value(), Some(56.2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    name: String,
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Trace {
    /// Creates an empty trace with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), times: Vec::new(), values: Vec::new() }
    }

    /// Creates an empty trace with capacity pre-allocated for `n` samples.
    #[must_use]
    pub fn with_capacity(name: impl Into<String>, n: usize) -> Self {
        Self { name: name.into(), times: Vec::with_capacity(n), values: Vec::with_capacity(n) }
    }

    /// Reassembles a trace from columns a spill reader already validated
    /// (time-ordered, NaN-free) — the zero-copy path behind
    /// [`crate::SpilledTraces::column`].
    pub(crate) fn from_parts(name: String, times: Vec<f64>, values: Vec<f64>) -> Self {
        debug_assert_eq!(times.len(), values.len());
        Self { name, times, values }
    }

    /// The trace name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the trace holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last sample (see
    /// [`Trace::try_push`] for a non-panicking variant) or `value` is NaN.
    pub fn push(&mut self, t: Seconds, value: f64) {
        self.try_push(t, value).expect("trace sample out of order");
    }

    /// Appends a sample, reporting ordering violations as errors.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::OutOfOrder`] if `t` precedes the last sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN sample indicates a modeling bug and
    /// would silently poison every downstream statistic.
    pub fn try_push(&mut self, t: Seconds, value: f64) -> Result<(), TraceError> {
        assert!(!value.is_nan(), "trace value must not be NaN");
        if let Some(&last) = self.times.last() {
            if t.value() < last {
                return Err(TraceError::OutOfOrder { last, attempted: t.value() });
            }
        }
        self.times.push(t.value());
        self.values.push(value);
        Ok(())
    }

    /// The sample times in seconds.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The sample values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(time_s, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The final value, if any.
    #[must_use]
    pub fn last_value(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// The value at the latest sample time `<= t` (zero-order hold), if any.
    #[must_use]
    pub fn sample_at(&self, t: Seconds) -> Option<f64> {
        let idx = self.times.partition_point(|&x| x <= t.value());
        if idx == 0 {
            None
        } else {
            Some(self.values[idx - 1])
        }
    }

    /// Returns the sub-series with `t >= from` as `(times, values)` slices.
    #[must_use]
    pub fn tail_from(&self, from: Seconds) -> (&[f64], &[f64]) {
        let idx = self.times.partition_point(|&x| x < from.value());
        (&self.times[idx..], &self.values[idx..])
    }

    /// Writes the trace as two-column CSV (`time_s,<name>`).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if writing fails.
    pub fn write_csv<W: Write>(&self, mut out: W) -> Result<(), TraceError> {
        writeln!(out, "time_s,{}", self.name)?;
        for (t, v) in self.iter() {
            writeln!(out, "{t},{v}")?;
        }
        Ok(())
    }
}

/// An ordered collection of named traces sharing one experiment.
///
/// # Examples
///
/// ```
/// use gfsc_sim::TraceSet;
/// use gfsc_units::Seconds;
///
/// let mut set = TraceSet::new();
/// set.record("u_cpu", Seconds::new(0.0), 0.1);
/// set.record("fan_rpm", Seconds::new(0.0), 2000.0);
/// assert_eq!(set.get("u_cpu").unwrap().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    traces: Vec<Trace>,
}

/// A pre-resolved handle to one trace inside a [`TraceSet`].
///
/// [`TraceSet::record`] scans trace names on every sample; a hot loop that
/// records the same channels every epoch resolves each name once with
/// [`TraceSet::channel`] and then records by index — no string compares,
/// no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelId(usize);

impl TraceSet {
    /// Creates an empty trace set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves `name` to a handle, creating an empty trace on first use.
    pub fn channel(&mut self, name: &str) -> ChannelId {
        self.channel_with_capacity(name, 0)
    }

    /// Like [`TraceSet::channel`], pre-allocating room for `capacity`
    /// samples when the trace is created (e.g. sized from the simulation
    /// horizon so steady-state recording never reallocates).
    pub fn channel_with_capacity(&mut self, name: &str, capacity: usize) -> ChannelId {
        if let Some(idx) = self.traces.iter().position(|tr| tr.name() == name) {
            return ChannelId(idx);
        }
        self.traces.push(Trace::with_capacity(name, capacity));
        ChannelId(self.traces.len() - 1)
    }

    /// Appends a sample through a pre-resolved handle.
    ///
    /// Only use handles with the set that produced them: a handle from
    /// another [`TraceSet`] whose index happens to be in range records
    /// into whatever trace sits at that index here.
    ///
    /// # Panics
    ///
    /// Panics if `id`'s index is out of bounds for this set, or the sample
    /// violates time ordering within its trace.
    pub fn record_by_id(&mut self, id: ChannelId, t: Seconds, value: f64) {
        self.traces[id.0].push(t, value);
    }

    /// Appends a sample to the named trace, creating it on first use.
    /// Convenience layer over [`TraceSet::channel`] +
    /// [`TraceSet::record_by_id`]; resolve handles up front when recording
    /// in a loop.
    ///
    /// # Panics
    ///
    /// Panics if the sample violates time ordering within its trace.
    pub fn record(&mut self, name: &str, t: Seconds, value: f64) {
        let id = self.channel(name);
        self.record_by_id(id, t, value);
    }

    /// Looks up a trace by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Trace> {
        self.traces.iter().find(|tr| tr.name() == name)
    }

    /// Looks up a trace by name, returning an error for unknown names.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownTrace`] if no trace has that name.
    pub fn require(&self, name: &str) -> Result<&Trace, TraceError> {
        self.get(name).ok_or_else(|| TraceError::UnknownTrace(name.to_owned()))
    }

    /// Iterates over the traces in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Trace> {
        self.traces.iter()
    }

    /// Number of traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Returns `true` if the set holds no traces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Writes all traces as wide CSV on the union of sample times, using
    /// zero-order hold for traces sampled at slower rates. Times before a
    /// trace's first sample render as empty cells.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if writing fails.
    pub fn write_csv<W: Write>(&self, mut out: W) -> Result<(), TraceError> {
        write!(out, "time_s")?;
        for tr in &self.traces {
            write!(out, ",{}", tr.name())?;
        }
        writeln!(out)?;

        // Union of all sample times.
        let mut times: Vec<f64> =
            self.traces.iter().flat_map(|tr| tr.times().iter().copied()).collect();
        // Total order: a NaN time (which `record` never produces) sorts
        // above +inf instead of panicking the CSV export.
        times.sort_by(f64::total_cmp);
        times.dedup();

        for &t in &times {
            write!(out, "{t}")?;
            for tr in &self.traces {
                match tr.sample_at(Seconds::new(t)) {
                    Some(v) => write!(out, ",{v}")?,
                    None => write!(out, ",")?,
                }
            }
            writeln!(out)?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a TraceSet {
    type Item = &'a Trace;
    type IntoIter = std::slice::Iter<'a, Trace>;

    fn into_iter(self) -> Self::IntoIter {
        self.traces.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(t: f64) -> Seconds {
        Seconds::new(t)
    }

    #[test]
    fn push_and_accessors() {
        let mut tr = Trace::with_capacity("x", 4);
        assert!(tr.is_empty());
        tr.push(secs(0.0), 1.0);
        tr.push(secs(1.0), 2.0);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.name(), "x");
        assert_eq!(tr.times(), &[0.0, 1.0]);
        assert_eq!(tr.values(), &[1.0, 2.0]);
        assert_eq!(tr.last_value(), Some(2.0));
        let pairs: Vec<_> = tr.iter().collect();
        assert_eq!(pairs, vec![(0.0, 1.0), (1.0, 2.0)]);
    }

    #[test]
    fn equal_times_are_allowed() {
        // Controllers may log both pre- and post-decision values at the
        // same instant.
        let mut tr = Trace::new("x");
        tr.push(secs(5.0), 1.0);
        tr.push(secs(5.0), 2.0);
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn out_of_order_rejected() {
        let mut tr = Trace::new("x");
        tr.push(secs(5.0), 1.0);
        let err = tr.try_push(secs(4.0), 2.0).unwrap_err();
        assert!(matches!(err, TraceError::OutOfOrder { .. }));
        assert!(err.to_string().contains("time-ordered"));
    }

    #[test]
    fn sample_at_is_zero_order_hold() {
        let mut tr = Trace::new("x");
        tr.push(secs(0.0), 10.0);
        tr.push(secs(30.0), 20.0);
        assert_eq!(tr.sample_at(secs(0.0)), Some(10.0));
        assert_eq!(tr.sample_at(secs(29.9)), Some(10.0));
        assert_eq!(tr.sample_at(secs(30.0)), Some(20.0));
        assert_eq!(tr.sample_at(secs(1e9)), Some(20.0));
    }

    #[test]
    fn sample_before_first_is_none() {
        let mut tr = Trace::new("x");
        tr.push(secs(10.0), 1.0);
        assert_eq!(tr.sample_at(secs(9.999)), None);
    }

    #[test]
    fn tail_from_splits_correctly() {
        let mut tr = Trace::new("x");
        for k in 0..10 {
            tr.push(secs(k as f64), k as f64);
        }
        let (t, v) = tr.tail_from(secs(7.0));
        assert_eq!(t, &[7.0, 8.0, 9.0]);
        assert_eq!(v, &[7.0, 8.0, 9.0]);
        let (t, _) = tr.tail_from(secs(100.0));
        assert!(t.is_empty());
    }

    #[test]
    fn trace_csv_format() {
        let mut tr = Trace::new("fan_rpm");
        tr.push(secs(0.0), 2000.0);
        tr.push(secs(30.0), 2500.0);
        let mut buf = Vec::new();
        tr.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "time_s,fan_rpm\n0,2000\n30,2500\n");
    }

    #[test]
    fn trace_set_records_and_looks_up() {
        let mut set = TraceSet::new();
        set.record("a", secs(0.0), 1.0);
        set.record("b", secs(0.0), 2.0);
        set.record("a", secs(1.0), 3.0);
        assert_eq!(set.len(), 2);
        assert_eq!(set.get("a").unwrap().len(), 2);
        assert_eq!(set.get("b").unwrap().len(), 1);
        assert!(set.get("c").is_none());
        assert!(set.require("c").is_err());
        let names: Vec<_> = set.iter().map(Trace::name).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn trace_set_csv_uses_zero_order_hold() {
        let mut set = TraceSet::new();
        set.record("fast", secs(0.0), 1.0);
        set.record("fast", secs(1.0), 2.0);
        set.record("slow", secs(1.0), 10.0);
        let mut buf = Vec::new();
        set.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines[0], "time_s,fast,slow");
        assert_eq!(lines[1], "0,1,"); // slow has no sample yet
        assert_eq!(lines[2], "1,2,10");
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_value_rejected() {
        let mut tr = Trace::new("x");
        tr.push(secs(0.0), f64::NAN);
    }

    #[test]
    fn channel_handles_alias_names() {
        let mut set = TraceSet::new();
        let a = set.channel_with_capacity("a", 16);
        let b = set.channel("b");
        assert_ne!(a, b);
        // Re-resolving an existing name returns the same handle.
        assert_eq!(set.channel("a"), a);
        set.record_by_id(a, secs(0.0), 1.0);
        set.record("a", secs(1.0), 2.0); // by-name lands in the same trace
        set.record_by_id(b, secs(0.0), 9.0);
        assert_eq!(set.get("a").unwrap().values(), &[1.0, 2.0]);
        assert_eq!(set.get("b").unwrap().values(), &[9.0]);
    }

    #[test]
    fn channel_with_capacity_preallocates() {
        let mut set = TraceSet::new();
        let id = set.channel_with_capacity("x", 1000);
        for k in 0..1000 {
            set.record_by_id(id, secs(f64::from(k)), 0.0);
        }
        assert_eq!(set.get("x").unwrap().len(), 1000);
    }
}
