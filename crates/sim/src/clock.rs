//! A drift-free fixed-step simulation clock.

use gfsc_units::Seconds;

/// A fixed-step simulation clock.
///
/// The current time is always computed as `step_count × dt` (rather than
/// accumulating `+= dt`), so long simulations do not accumulate floating
/// point drift — a 10-hour run at `dt = 0.1 s` stays exactly on the step
/// grid, which the multi-rate scheduler ([`crate::Periodic`]) relies on.
///
/// # Examples
///
/// ```
/// use gfsc_sim::Clock;
/// use gfsc_units::Seconds;
///
/// let mut clock = Clock::new(Seconds::new(0.1));
/// for _ in 0..100 {
///     clock.tick();
/// }
/// assert_eq!(clock.now(), Seconds::new(10.0));
/// assert_eq!(clock.step(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct Clock {
    dt: Seconds,
    step: u64,
}

impl Clock {
    /// Creates a clock advancing by `dt` per tick, starting at `t = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is zero.
    #[must_use]
    pub fn new(dt: Seconds) -> Self {
        assert!(!dt.is_zero(), "simulation step must be positive");
        Self { dt, step: 0 }
    }

    /// The fixed step size.
    #[must_use]
    pub fn dt(&self) -> Seconds {
        self.dt
    }

    /// The current simulation time (`step × dt`).
    #[must_use]
    pub fn now(&self) -> Seconds {
        Seconds::new(self.step as f64 * self.dt.value())
    }

    /// The number of completed ticks.
    #[must_use]
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Advances the clock by one step and returns the new time.
    pub fn tick(&mut self) -> Seconds {
        self.step += 1;
        self.now()
    }

    /// Resets the clock to `t = 0`, keeping the step size.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Number of ticks needed to cover `duration` (rounded up).
    #[must_use]
    pub fn steps_for(&self, duration: Seconds) -> u64 {
        (duration / self.dt).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let clock = Clock::new(Seconds::new(1.0));
        assert_eq!(clock.now(), Seconds::new(0.0));
        assert_eq!(clock.step(), 0);
    }

    #[test]
    fn tick_advances_by_dt() {
        let mut clock = Clock::new(Seconds::new(0.5));
        assert_eq!(clock.tick(), Seconds::new(0.5));
        assert_eq!(clock.tick(), Seconds::new(1.0));
    }

    #[test]
    fn no_drift_over_many_steps() {
        // 0.1 is not representable in binary; naive `t += dt` accumulates
        // error, while `step * dt` stays within one ulp of the ideal value.
        let mut clock = Clock::new(Seconds::new(0.1));
        for _ in 0..1_000_000 {
            clock.tick();
        }
        assert!((clock.now().value() - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn steps_for_rounds_up() {
        let clock = Clock::new(Seconds::new(0.3));
        assert_eq!(clock.steps_for(Seconds::new(1.0)), 4);
        assert_eq!(clock.steps_for(Seconds::new(0.9)), 3);
        assert_eq!(clock.steps_for(Seconds::new(0.0)), 0);
    }

    #[test]
    fn reset_rewinds_time() {
        let mut clock = Clock::new(Seconds::new(1.0));
        clock.tick();
        clock.tick();
        clock.reset();
        assert_eq!(clock.now(), Seconds::new(0.0));
        assert_eq!(clock.dt(), Seconds::new(1.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_rejected() {
        let _ = Clock::new(Seconds::new(0.0));
    }
}
