//! Deterministic fault windows for hardware-in-the-loop harnesses.
//!
//! The daemon front-end (`gfsc-daemon`) turns telemetry faults — dropped
//! reads, frozen sensors, actuation NACKs — into a *sweepable axis*: a
//! scenario is (workload, topology, control mode, fault plan), and the
//! fault plan must be as deterministic as the rest of the schedule so a
//! failing sweep cell replays exactly. [`FaultWindow`] is one closed
//! activation interval on the simulation clock; [`FaultSchedule`] is an
//! ordered set of windows queried with the same `is_active(now)` shape as
//! [`crate::Periodic::is_due`].

use gfsc_units::Seconds;

/// One activation interval `[from, until)` on the simulation clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    from: Seconds,
    until: Seconds,
}

impl FaultWindow {
    /// Creates the window `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until` is not after `from` or `from` is negative.
    #[must_use]
    pub fn new(from: Seconds, until: Seconds) -> Self {
        assert!(from.value() >= 0.0, "window start must be non-negative");
        assert!(until.value() > from.value(), "window must have positive duration");
        Self { from, until }
    }

    /// The window start (inclusive).
    #[must_use]
    pub fn from(&self) -> Seconds {
        self.from
    }

    /// The window end (exclusive).
    #[must_use]
    pub fn until(&self) -> Seconds {
        self.until
    }

    /// Whether `now` falls inside the window.
    #[must_use]
    pub fn contains(&self, now: Seconds) -> bool {
        now.value() >= self.from.value() && now.value() < self.until.value()
    }
}

/// An ordered set of [`FaultWindow`]s — the activation schedule of one
/// injected fault.
///
/// # Examples
///
/// ```
/// use gfsc_sim::{FaultSchedule, FaultWindow};
/// use gfsc_units::Seconds;
///
/// let burst = FaultSchedule::new(vec![FaultWindow::new(
///     Seconds::new(60.0),
///     Seconds::new(90.0),
/// )]);
/// assert!(!burst.is_active(Seconds::new(59.5)));
/// assert!(burst.is_active(Seconds::new(60.0)));
/// assert!(!burst.is_active(Seconds::new(90.0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    windows: Vec<FaultWindow>,
}

impl FaultSchedule {
    /// Creates a schedule from explicit windows.
    #[must_use]
    pub fn new(windows: Vec<FaultWindow>) -> Self {
        Self { windows }
    }

    /// The always-inactive schedule.
    #[must_use]
    pub fn never() -> Self {
        Self { windows: Vec::new() }
    }

    /// A single window `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is degenerate (see [`FaultWindow::new`]).
    #[must_use]
    pub fn once(from: Seconds, until: Seconds) -> Self {
        Self { windows: vec![FaultWindow::new(from, until)] }
    }

    /// Whether any window contains `now`.
    #[must_use]
    pub fn is_active(&self, now: Seconds) -> bool {
        self.windows.iter().any(|w| w.contains(now))
    }

    /// The windows, in construction order.
    #[must_use]
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Whether the schedule can ever fire.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: f64) -> Seconds {
        Seconds::new(v)
    }

    #[test]
    fn window_is_half_open() {
        let w = FaultWindow::new(s(10.0), s(20.0));
        assert!(!w.contains(s(9.999)));
        assert!(w.contains(s(10.0)));
        assert!(w.contains(s(19.999)));
        assert!(!w.contains(s(20.0)));
        assert_eq!(w.from(), s(10.0));
        assert_eq!(w.until(), s(20.0));
    }

    #[test]
    fn schedule_unions_windows() {
        let sched = FaultSchedule::new(vec![
            FaultWindow::new(s(0.0), s(5.0)),
            FaultWindow::new(s(10.0), s(15.0)),
        ]);
        assert!(sched.is_active(s(2.0)));
        assert!(!sched.is_active(s(7.0)));
        assert!(sched.is_active(s(12.0)));
        assert_eq!(sched.windows().len(), 2);
        assert!(!sched.is_empty());
    }

    #[test]
    fn never_is_never() {
        let sched = FaultSchedule::never();
        assert!(sched.is_empty());
        assert!(!sched.is_active(s(0.0)));
        assert_eq!(sched, FaultSchedule::default());
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn degenerate_window_rejected() {
        let _ = FaultWindow::new(s(5.0), s(5.0));
    }
}
