//! Trace statistics: descriptive measures, step-response metrics and
//! oscillation detection.
//!
//! The paper's evaluation makes quantitative stability claims — "the fan
//! speed becomes oscillatory" (Fig. 4), "the convergence time is very slow,
//! i.e., 210 sec" (Fig. 3) — and this module provides the measurements that
//! let tests assert those claims instead of eyeballing plots:
//!
//! - [`step_response`] measures settling time, overshoot and steady-state
//!   error against a target value (the SASO criteria of PID design),
//! - [`detect_oscillation`] finds sustained limit cycles via turning-point
//!   analysis with hysteresis,
//! - descriptive helpers ([`mean`], [`stddev`], [`rms_error`],
//!   [`peak_to_peak`]) summarize steady-state behaviour.

use gfsc_units::Seconds;

/// Arithmetic mean of `values`; 0 for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation of `values`; 0 for fewer than two samples.
#[must_use]
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Root-mean-square deviation of `values` from `target`; 0 for an empty
/// slice.
#[must_use]
pub fn rms_error(values: &[f64], target: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sq = values.iter().map(|v| (v - target) * (v - target)).sum::<f64>();
    (sq / values.len() as f64).sqrt()
}

/// Peak-to-peak range (`max − min`) of `values`; 0 for an empty slice.
#[must_use]
pub fn peak_to_peak(values: &[f64]) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        0.0
    } else {
        hi - lo
    }
}

/// Step-response metrics of a trace segment relative to a target value.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResponse {
    /// Time (relative to the segment start) after which the signal stays
    /// within `band` of `target` for the rest of the segment, or `None` if
    /// it never settles.
    pub settling_time: Option<Seconds>,
    /// Maximum excursion beyond the target in the direction of the step, as
    /// a fraction of the step magnitude (0 when the signal never crosses the
    /// target, or when the step magnitude is zero).
    pub overshoot: f64,
    /// Mean error from the target over the final 10 % of the segment.
    pub steady_state_error: f64,
}

/// Measures the SASO step-response metrics of `(times, values)` for a step
/// from `initial` toward `target`, with settling band `band` (absolute, in
/// signal units).
///
/// # Panics
///
/// Panics if `times` and `values` have different lengths or `band` is not
/// positive.
#[must_use]
pub fn step_response(
    times: &[f64],
    values: &[f64],
    initial: f64,
    target: f64,
    band: f64,
) -> StepResponse {
    assert_eq!(times.len(), values.len(), "times/values length mismatch");
    assert!(band > 0.0, "settling band must be positive");
    if times.is_empty() {
        return StepResponse { settling_time: None, overshoot: 0.0, steady_state_error: 0.0 };
    }

    let t0 = times[0];

    // Settling time: the moment after the last sample that lies outside the
    // band. If the final sample is itself outside, the signal never settled.
    let mut settling = Some(Seconds::new(0.0));
    for i in (0..values.len()).rev() {
        if (values[i] - target).abs() > band {
            settling =
                if i + 1 < times.len() { Some(Seconds::new(times[i + 1] - t0)) } else { None };
            break;
        }
    }

    // Overshoot relative to the step direction and magnitude.
    let step_mag = (target - initial).abs();
    let overshoot = if step_mag == 0.0 {
        0.0
    } else if target >= initial {
        let peak = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        ((peak - target) / step_mag).max(0.0)
    } else {
        let trough = values.iter().copied().fold(f64::INFINITY, f64::min);
        ((target - trough) / step_mag).max(0.0)
    };

    // Steady-state error over the last 10 % of samples (at least one).
    let tail_len = (values.len() / 10).max(1);
    let tail = &values[values.len() - tail_len..];
    let steady_state_error = mean(tail) - target;

    StepResponse { settling_time: settling, overshoot, steady_state_error }
}

/// Summary of turning-point (limit-cycle) analysis of a trace segment.
#[derive(Debug, Clone, PartialEq)]
pub struct OscillationReport {
    /// Number of direction reversals larger than the hysteresis threshold.
    pub reversals: usize,
    /// Mean peak-to-trough amplitude across reversals (0 if fewer than two
    /// turning points).
    pub amplitude: f64,
    /// Estimated oscillation period: mean time between same-direction
    /// turning points, if at least three turning points exist.
    pub period: Option<Seconds>,
}

impl OscillationReport {
    /// Whether the segment shows a sustained oscillation: at least four
    /// reversals with mean amplitude of at least `min_amplitude`.
    ///
    /// Four reversals ≈ two full cycles, enough to rule out a single
    /// overshoot/undershoot pair from an ordinary step response.
    #[must_use]
    pub fn is_sustained(&self, min_amplitude: f64) -> bool {
        self.reversals >= 4 && self.amplitude >= min_amplitude
    }
}

/// Detects oscillation in `(times, values)` using turning-point analysis.
///
/// A turning point is registered when the signal reverses direction by more
/// than `hysteresis` (absolute, in signal units) from the most recent
/// extremum — small numerical ripples below the hysteresis are ignored.
///
/// # Panics
///
/// Panics if `times` and `values` have different lengths or `hysteresis` is
/// not positive.
#[must_use]
pub fn detect_oscillation(times: &[f64], values: &[f64], hysteresis: f64) -> OscillationReport {
    assert_eq!(times.len(), values.len(), "times/values length mismatch");
    assert!(hysteresis > 0.0, "hysteresis must be positive");

    // Turning points as (time, value, is_peak).
    let mut turns: Vec<(f64, f64, bool)> = Vec::new();
    if values.len() >= 2 {
        // Track the running extremum since the last confirmed turn.
        let mut ext_val = values[0];
        let mut ext_time = times[0];
        // +1 while rising, -1 while falling, 0 before the first move.
        let mut dir = 0i8;
        for i in 1..values.len() {
            let v = values[i];
            match dir {
                0 => {
                    if (v - ext_val).abs() > hysteresis {
                        dir = if v > ext_val { 1 } else { -1 };
                        ext_val = v;
                        ext_time = times[i];
                    }
                }
                1 => {
                    if v > ext_val {
                        ext_val = v;
                        ext_time = times[i];
                    } else if ext_val - v > hysteresis {
                        turns.push((ext_time, ext_val, true));
                        dir = -1;
                        ext_val = v;
                        ext_time = times[i];
                    }
                }
                _ => {
                    if v < ext_val {
                        ext_val = v;
                        ext_time = times[i];
                    } else if v - ext_val > hysteresis {
                        turns.push((ext_time, ext_val, false));
                        dir = 1;
                        ext_val = v;
                        ext_time = times[i];
                    }
                }
            }
        }
    }

    let reversals = turns.len();
    let amplitude = if reversals >= 2 {
        let diffs: Vec<f64> = turns.windows(2).map(|w| (w[0].1 - w[1].1).abs()).collect();
        mean(&diffs)
    } else {
        0.0
    };

    // Period: mean spacing between same-direction turning points.
    let mut spacings = Vec::new();
    for w in turns.windows(3) {
        if w[0].2 == w[2].2 {
            spacings.push(w[2].0 - w[0].0);
        }
    }
    let period = if spacings.is_empty() { None } else { Some(Seconds::new(mean(&spacings))) };

    OscillationReport { reversals, amplitude, period }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_to_target() -> (Vec<f64>, Vec<f64>) {
        // First-order rise from 0 to 10 with tau = 5 s, sampled at 1 Hz.
        let times: Vec<f64> = (0..100).map(|k| k as f64).collect();
        let values: Vec<f64> = times.iter().map(|t| 10.0 * (1.0 - (-t / 5.0).exp())).collect();
        (times, values)
    }

    fn sine(amp: f64, period: f64, n: usize, dt: f64) -> (Vec<f64>, Vec<f64>) {
        let times: Vec<f64> = (0..n).map(|k| k as f64 * dt).collect();
        let values: Vec<f64> =
            times.iter().map(|t| amp * (2.0 * std::f64::consts::PI * t / period).sin()).collect();
        (times, values)
    }

    #[test]
    fn descriptive_stats() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&v), 2.5);
        assert!((stddev(&v) - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(peak_to_peak(&v), 3.0);
        assert!((rms_error(&v, 2.5) - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn descriptive_stats_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert_eq!(peak_to_peak(&[]), 0.0);
        assert_eq!(peak_to_peak(&[7.0]), 0.0);
        assert_eq!(rms_error(&[], 1.0), 0.0);
    }

    #[test]
    fn step_response_of_first_order_rise() {
        let (times, values) = ramp_to_target();
        let r = step_response(&times, &values, 0.0, 10.0, 0.2);
        // |10(1 - e^{-t/5}) - 10| <= 0.2  <=>  t >= 5 ln 50 ≈ 19.56 s.
        let st = r.settling_time.expect("settles").value();
        assert!((19.0..21.0).contains(&st), "settling at {st}");
        assert_eq!(r.overshoot, 0.0);
        assert!(r.steady_state_error.abs() < 0.01);
    }

    #[test]
    fn step_response_detects_overshoot() {
        // Rise to 12 (20 % overshoot over a 0 -> 10 step) then settle at 10.
        let times: Vec<f64> = (0..50).map(|k| k as f64).collect();
        let values: Vec<f64> = times
            .iter()
            .map(|&t| if t < 5.0 { 2.4 * t } else { 10.0 + 2.0 * (-(t - 5.0) / 3.0).exp() })
            .collect();
        let r = step_response(&times, &values, 0.0, 10.0, 0.3);
        assert!((r.overshoot - 0.2).abs() < 0.01, "overshoot {}", r.overshoot);
        assert!(r.settling_time.is_some());
    }

    #[test]
    fn step_response_never_settles_when_tail_outside_band() {
        let times: Vec<f64> = (0..10).map(|k| k as f64).collect();
        let values = vec![0.0; 10];
        let r = step_response(&times, &values, 0.0, 10.0, 0.5);
        assert_eq!(r.settling_time, None);
        assert!((r.steady_state_error + 10.0).abs() < 1e-12);
    }

    #[test]
    fn step_response_falling_step() {
        let times: Vec<f64> = (0..100).map(|k| k as f64).collect();
        let values: Vec<f64> = times.iter().map(|&t| 5.0 + 5.0 * (-t / 4.0).exp()).collect();
        let r = step_response(&times, &values, 10.0, 5.0, 0.2);
        assert!(r.settling_time.is_some());
        assert_eq!(r.overshoot, 0.0); // never undershoots below 5
    }

    #[test]
    fn step_response_empty_input() {
        let r = step_response(&[], &[], 0.0, 1.0, 0.1);
        assert_eq!(r.settling_time, None);
        assert_eq!(r.overshoot, 0.0);
    }

    #[test]
    fn oscillation_detected_on_sine() {
        let (times, values) = sine(100.0, 60.0, 600, 1.0);
        let rep = detect_oscillation(&times, &values, 5.0);
        assert!(rep.reversals >= 15, "reversals {}", rep.reversals);
        assert!((rep.amplitude - 200.0).abs() < 10.0, "amplitude {}", rep.amplitude);
        let p = rep.period.expect("period").value();
        assert!((p - 60.0).abs() < 3.0, "period {p}");
        assert!(rep.is_sustained(150.0));
    }

    #[test]
    fn oscillation_not_detected_on_converging_signal() {
        let (times, values) = ramp_to_target();
        let rep = detect_oscillation(&times, &values, 0.5);
        assert_eq!(rep.reversals, 0);
        assert_eq!(rep.amplitude, 0.0);
        assert!(!rep.is_sustained(0.1));
    }

    #[test]
    fn oscillation_ignores_ripple_below_hysteresis() {
        // 0.5-amplitude ripple with hysteresis 2.0: no reversals.
        let (times, values) = sine(0.5, 10.0, 200, 1.0);
        let rep = detect_oscillation(&times, &values, 2.0);
        assert_eq!(rep.reversals, 0);
    }

    #[test]
    fn single_overshoot_is_not_sustained() {
        // One peak then settle: 1-2 reversals at most.
        let times: Vec<f64> = (0..60).map(|k| k as f64).collect();
        let values: Vec<f64> = times
            .iter()
            .map(|&t| if t < 5.0 { 3.0 * t } else { 10.0 + 5.0 * (-(t - 5.0) / 4.0).exp() })
            .collect();
        let rep = detect_oscillation(&times, &values, 1.0);
        assert!(rep.reversals <= 2);
        assert!(!rep.is_sustained(1.0));
    }

    #[test]
    fn decaying_oscillation_reported_with_falling_amplitude() {
        let times: Vec<f64> = (0..600).map(|k| k as f64).collect();
        let values: Vec<f64> = times
            .iter()
            .map(|&t| 50.0 * (-t / 150.0).exp() * (2.0 * std::f64::consts::PI * t / 60.0).sin())
            .collect();
        let rep = detect_oscillation(&times, &values, 2.0);
        assert!(rep.reversals >= 4);
        assert!(rep.amplitude < 100.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = detect_oscillation(&[0.0, 1.0], &[0.0], 1.0);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn non_positive_hysteresis_rejected() {
        let _ = detect_oscillation(&[0.0], &[0.0], 0.0);
    }
}
