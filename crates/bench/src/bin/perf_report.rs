//! Perf snapshot: times the workspace's hot paths and sweep engine and
//! emits a `BENCH_<date>.json` baseline so the perf trajectory is tracked
//! in-repo.
//!
//! Measured sections:
//!
//! - thermal-step: `ServerThermalModel::step` plus `RcNetwork::step`
//!   cached vs uncached (2- and 8-node chains), the 4S plant, and the
//!   1U×8 rack plant (8 servers, 2 fan zones, shared plenum),
//! - trace recording: 8 channels by name vs by pre-resolved handle,
//! - batch: the lockstep batch engine's per-scenario step cost at
//!   B ∈ {1, 8, 64} on the finned 2S plant under a moving fan (vs the
//!   scalar moving-fan reference, which refactorizes every step), the
//!   columnar trace-spill write bandwidth, and the tentpole 64-scenario
//!   same-topology sweep (finned plant, quantized fan commands), serial
//!   vs batched, with a bit-identity check,
//! - epoch rate: simulated seconds per wall-clock second of the full
//!   closed loop, of the coordinated rack loop (capper bank +
//!   coordinator + per-zone fan loops on the 1U×8 rack), of the
//!   lifted rack modes (per-zone single-step bank + per-zone E-coord
//!   descent, exercising the scratch-buffered steady-state probes), and
//!   of the rack-global energy descent (joint Gauss–Seidel fan sizing on
//!   the strongly-coupled shared-plenum rack),
//! - daemon: the telemetry daemon's trait-dispatch loop vs the direct
//!   `RackLoopSim` on the identical scenario — `daemon_epoch_overhead_ns`
//!   plus the overhead fraction, gated hard at 5 % in `--check` mode,
//! - recorder: the same rack loop with the decision flight recorder
//!   armed vs disarmed — `recorder_epoch_overhead_ns` plus the overhead
//!   fraction, gated hard at 3 % in `--check` mode,
//! - table3: the five-solution sweep, serial vs parallel at several worker
//!   counts, with a bit-identity check between the two paths,
//! - ablations: a reduced lag sweep, serial vs parallel,
//! - tuning: the two-region Ziegler–Nichols schedule, serial vs parallel.
//!
//! Usage: `cargo run --release -p gfsc-bench --bin perf_report
//! [--table3-horizon SECS] [--out PATH] [--check BASELINE.json]`
//!
//! `--check` switches to regression-gate mode: instead of writing a new
//! snapshot, it re-measures the cached-step, rack-step, batch-step,
//! spill-bandwidth, batched-sweep and closed-loop
//! throughput metrics (server, coordinated rack, the SS/E-coord rack
//! modes, and the global-E-coord rack loop; best of three), compares
//! them against the committed baseline,
//! and exits non-zero on any regression beyond the tolerance (default
//! 30 %, override with `GFSC_BENCH_TOLERANCE=0.5`). The daemon front-end
//! overhead is gated *absolutely* (≤ 5 % over the direct loop) regardless
//! of the tolerance. `scripts/bench_check.sh` wraps this for CI.

use gfsc::experiments::{ablations, fan_study_spec};
use gfsc::server::ServerSpec;
use gfsc::sweep::{ScenarioGrid, WorkloadRecipe};
use gfsc::{tune_gain_schedule, Solution};
use gfsc_bench::{chain_network, EPOCH_CHANNELS};
use gfsc_coord::{RackControl, RackControlConfig, RackLoopSim};
use gfsc_daemon::{Daemon, DaemonConfig, FaultPlan, SimTelemetry};
use gfsc_rack::{RackPlant, RackSpec, RackTopology};
use gfsc_sim::sweep::thread_count;
use gfsc_thermal::{
    BatchRcNetwork, HeatSinkLaw, MultiSocketPlant, PlantCalibration, RcNetwork, ServerThermalModel,
    Topology,
};
use gfsc_units::{Celsius, KelvinPerWatt, Rpm, Seconds, Watts};
use gfsc_workload::{SquareWave, Workload};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let mut table3_horizon = 900.0;
    let mut out_path: Option<String> = None;
    let mut check_baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--table3-horizon" => {
                table3_horizon = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--table3-horizon needs a number");
            }
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            "--check" => check_baseline = Some(args.next().expect("--check needs a path")),
            other => panic!("unknown argument `{other}`"),
        }
    }
    if let Some(baseline) = check_baseline {
        std::process::exit(run_check(&baseline));
    }
    let out_path = out_path.unwrap_or_else(|| format!("BENCH_{}.json", today_utc()));
    let cores = thread_count();
    println!("perf_report: {cores} worker(s) available; table3 horizon {table3_horizon} s");

    // --- thermal-step ---------------------------------------------------
    let mut model = ServerThermalModel::date14(Celsius::new(30.0));
    let server_step_ns = time_per_iter(200_000, || {
        model.step(Seconds::new(0.5), Watts::new(140.8), Rpm::new(3000.0));
    });
    let rc = |n: usize| -> (f64, f64) {
        let mut cached = chain_network(n);
        cached.step(Seconds::new(0.5));
        let c = time_per_iter(200_000, || cached.step(Seconds::new(0.5)));
        let mut naive = chain_network(n);
        let u = time_per_iter(50_000, || naive.step_uncached(Seconds::new(0.5)));
        (c, u)
    };
    let (rc2_cached, rc2_uncached) = rc(2);
    let (rc8_cached, rc8_uncached) = rc(8);
    let mut plant_4s = quad_socket_plant();
    let powers_4s = [Watts::new(140.8); 4];
    let plant_4s_ns = time_per_iter(200_000, || {
        plant_4s.step(Seconds::new(0.5), &powers_4s, Rpm::new(4000.0));
    });
    let rack_8s_ns = time_rack_8s_step();
    println!(
        "thermal: server_model {server_step_ns:.0} ns; rc2 {rc2_cached:.0}/{rc2_uncached:.0} ns \
         (cached/uncached, {:.2}x); rc8 {rc8_cached:.0}/{rc8_uncached:.0} ns ({:.2}x); \
         4S plant {plant_4s_ns:.0} ns; 1Ux8 rack {rack_8s_ns:.0} ns",
        rc2_uncached / rc2_cached,
        rc8_uncached / rc8_cached,
    );

    // --- batched lockstep stepping ---------------------------------------
    // Moving-fan scalar reference: the fan pattern every batch width sees,
    // stepped one plant at a time — each speed change dirties the matrix,
    // so the scalar path refactorizes every step. On the finned 2S plant
    // the factorization is O(k³) in the fin blocks, which is exactly the
    // cost the batch engine's cross-lane/cross-step factor sharing deletes.
    let scalar_moving_ns = {
        let mut plant = finned_plant();
        let powers = [Watts::new(140.8); 2];
        let mut k = 0usize;
        time_per_iter(20_000, || {
            plant.step(Seconds::new(0.5), &powers, lattice_fan(k, 0));
            k += 1;
        })
    };
    let batch_b1_ns = batch_step_ns_per_scenario(1);
    let batch_b8_ns = batch_step_ns_per_scenario(8);
    let batch_b64_ns = batch_step_ns_per_scenario(64);
    println!(
        "batch finned-2S step/scenario: scalar moving-fan {scalar_moving_ns:.0} ns; \
         B=1 {batch_b1_ns:.0} ns, B=8 {batch_b8_ns:.0} ns, B=64 {batch_b64_ns:.0} ns \
         ({:.2}x at B=64)",
        scalar_moving_ns / batch_b64_ns,
    );

    // --- columnar trace spill --------------------------------------------
    let spill_mb_s = spill_write_mb_s();
    println!("trace spill: {spill_mb_s:.0} MB/s columnar write");

    // --- trace recording -------------------------------------------------
    let mut by_name = gfsc_sim::TraceSet::new();
    let mut t = 0.0;
    let record_by_name_ns = time_per_iter(100_000, || {
        t += 1.0;
        for name in EPOCH_CHANNELS {
            by_name.record(name, Seconds::new(t), 1.0);
        }
    });
    let mut by_id = gfsc_sim::TraceSet::new();
    let ids: Vec<_> =
        EPOCH_CHANNELS.iter().map(|n| by_id.channel_with_capacity(n, 1 << 20)).collect();
    let mut t = 0.0;
    let record_by_handle_ns = time_per_iter(100_000, || {
        t += 1.0;
        for &id in &ids {
            by_id.record_by_id(id, Seconds::new(t), 1.0);
        }
    });
    println!(
        "trace: 8ch epoch {record_by_name_ns:.0} ns by-name, {record_by_handle_ns:.0} ns by-handle"
    );

    // --- epoch rate -------------------------------------------------------
    // Warm the per-process gain-schedule cache so the timing below measures
    // the closed loop, not one-time Ziegler–Nichols tuning (reported
    // separately under `zn_tuning_2region`).
    let _ = gfsc::fine_gain_schedule();
    let sim_horizon = 600.0;
    let (_, epoch_secs) = time(|| {
        gfsc::Simulation::builder()
            .solution(Solution::RCoordAdaptiveTrefSsFan)
            .seed(7)
            .build()
            .run(Seconds::new(sim_horizon))
    });
    let sim_rate = sim_horizon / epoch_secs;
    println!("epoch rate: {sim_rate:.0} simulated s / wall s");
    let rack_rate = rack_coord_sim_rate();
    println!("rack coordinated loop: {rack_rate:.0} simulated s / wall s");
    let rack_ss_ecoord_rate = rack_ss_ecoord_sim_rate();
    println!("rack SS + E-coord loops: {rack_ss_ecoord_rate:.0} simulated s / wall s");
    let rack_global_ecoord_rate = rack_global_ecoord_sim_rate();
    println!("rack global E-coord loop: {rack_global_ecoord_rate:.0} simulated s / wall s");
    let (daemon_direct_s, daemon_streamed_s, daemon_epochs) = daemon_vs_direct_secs();
    let daemon_epoch_overhead_ns =
        (daemon_streamed_s - daemon_direct_s).max(0.0) * 1e9 / daemon_epochs;
    let daemon_overhead_fraction = daemon_streamed_s / daemon_direct_s - 1.0;
    println!(
        "daemon front-end: direct {daemon_direct_s:.3} s, streamed {daemon_streamed_s:.3} s \
         ({daemon_epoch_overhead_ns:.0} ns/epoch, {:.2} % overhead)",
        daemon_overhead_fraction * 100.0
    );
    let (recorder_disarmed_s, recorder_armed_s, recorder_epochs) = recorder_vs_disarmed_secs();
    let recorder_epoch_overhead_ns =
        (recorder_armed_s - recorder_disarmed_s).max(0.0) * 1e9 / recorder_epochs;
    let recorder_overhead_fraction = recorder_armed_s / recorder_disarmed_s - 1.0;
    println!(
        "flight recorder: disarmed {recorder_disarmed_s:.3} s, armed {recorder_armed_s:.3} s \
         ({recorder_epoch_overhead_ns:.0} ns/epoch, {:.2} % overhead)",
        recorder_overhead_fraction * 100.0
    );

    // --- 64-scenario lockstep batch sweep --------------------------------
    let (batch_sweep_horizon, sweep64_serial_s, sweep64_batched_s, sweep64_bit_identical) =
        batched_sweep64();
    let sweep64_speedup = sweep64_serial_s / sweep64_batched_s;
    println!(
        "batched 64-scenario finned-2S sweep ({batch_sweep_horizon} s horizon): serial \
         {sweep64_serial_s:.3} s, batched {sweep64_batched_s:.3} s ({sweep64_speedup:.2}x, \
         bit-identical: {sweep64_bit_identical})"
    );
    assert!(sweep64_bit_identical, "batched sweep diverged from the serial reference");

    // --- table3 sweep: serial vs parallel --------------------------------
    let grid = ScenarioGrid::builder()
        .horizon(Seconds::new(table3_horizon))
        .solutions(&Solution::ALL)
        .seeds(&[42])
        .build();
    let (serial_results, table3_serial_s) = time(|| grid.run_serial());
    let mut worker_rows = String::new();
    let mut bit_identical = true;
    let mut parallel_best_s = table3_serial_s;
    for workers in worker_ladder(cores) {
        let (results, secs) = time(|| grid.run_with_workers(workers));
        bit_identical &= results
            .iter()
            .zip(&serial_results)
            .all(|(a, b)| a.summary == b.summary && a.label == b.label);
        parallel_best_s = parallel_best_s.min(secs);
        println!(
            "table3 x{workers}: {secs:.3} s ({:.2}x vs serial {table3_serial_s:.3} s)",
            table3_serial_s / secs
        );
        let _ = write!(
            worker_rows,
            "{}{{\"workers\": {workers}, \"seconds\": {secs:.4}}}",
            if worker_rows.is_empty() { "" } else { ", " },
        );
    }
    assert!(bit_identical, "parallel table3 diverged from the serial reference");

    // --- ablation sweep: serial vs parallel ------------------------------
    let lags = [Seconds::new(0.0), Seconds::new(10.0), Seconds::new(20.0), Seconds::new(30.0)];
    let ablation = |threads: &str| {
        std::env::set_var("GFSC_SWEEP_THREADS", threads);
        let (_, secs) = time(|| ablations::lag_sweep(&lags, Seconds::new(800.0)));
        std::env::remove_var("GFSC_SWEEP_THREADS");
        secs
    };
    let ablation_serial_s = ablation("1");
    let ablation_parallel_s = ablation(&cores.to_string());
    println!(
        "ablation lag sweep (4 pts): serial {ablation_serial_s:.2} s, parallel {ablation_parallel_s:.2} s"
    );

    // --- gain tuning: serial vs parallel ---------------------------------
    let spec = fan_study_spec();
    let regions = [Rpm::new(2000.0), Rpm::new(6000.0)];
    let tuning = |threads: &str| {
        std::env::set_var("GFSC_SWEEP_THREADS", threads);
        let (schedule, secs) = time(|| tune_gain_schedule(&spec, &regions));
        std::env::remove_var("GFSC_SWEEP_THREADS");
        (schedule, secs)
    };
    let (sched_serial, tuning_serial_s) = tuning("1");
    let (sched_parallel, tuning_parallel_s) = tuning(&cores.to_string());
    // Bit-identity across the whole schedule: every region, every gain.
    assert_eq!(sched_serial.regions().len(), sched_parallel.regions().len());
    for (s, p) in sched_serial.regions().iter().zip(sched_parallel.regions()) {
        for (a, b) in [
            (s.gains().kp(), p.gains().kp()),
            (s.gains().ki(), p.gains().ki()),
            (s.gains().kd(), p.gains().kd()),
        ] {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "parallel tuning diverged from serial: {a} vs {b}"
            );
        }
    }
    println!("tuning 2 regions: serial {tuning_serial_s:.2} s, parallel {tuning_parallel_s:.2} s");

    // --- snapshot ---------------------------------------------------------
    let json = format!(
        "{{\n  \"date\": \"{date}\",\n  \"workers_available\": {cores},\n  \
         \"thermal\": {{\n    \"server_model_step_ns\": {server_step_ns:.1},\n    \
         \"rc2_cached_ns\": {rc2_cached:.1},\n    \"rc2_uncached_ns\": {rc2_uncached:.1},\n    \
         \"rc8_cached_ns\": {rc8_cached:.1},\n    \"rc8_uncached_ns\": {rc8_uncached:.1},\n    \
         \"rc8_cached_speedup\": {rc8_speedup:.3},\n    \
         \"plant_4s_step_ns\": {plant_4s_ns:.1},\n    \
         \"rack_8s_step_ns\": {rack_8s_ns:.1}\n  }},\n  \
         \"trace_record_8ch\": {{\n    \"by_name_ns\": {record_by_name_ns:.1},\n    \
         \"by_handle_ns\": {record_by_handle_ns:.1}\n  }},\n  \
         \"batch\": {{\n    \"scalar_moving_fan_step_ns\": {scalar_moving_ns:.1},\n    \
         \"step_ns_per_scenario_b1\": {batch_b1_ns:.1},\n    \
         \"step_ns_per_scenario_b8\": {batch_b8_ns:.1},\n    \
         \"step_ns_per_scenario_b64\": {batch_b64_ns:.1},\n    \
         \"spill_write_mb_s\": {spill_mb_s:.1},\n    \
         \"sweep64\": {{\n      \"horizon_s\": {batch_sweep_horizon},\n      \
         \"serial_seconds\": {sweep64_serial_s:.4},\n      \
         \"batched_seconds\": {sweep64_batched_s:.4},\n      \
         \"speedup\": {sweep64_speedup:.3},\n      \
         \"bit_identical_to_serial\": {sweep64_bit_identical}\n    }}\n  }},\n  \
         \"closed_loop\": {{\n    \"sim_seconds_per_wall_second\": {sim_rate:.1}\n  }},\n  \
         \"rack_loop\": {{\n    \
         \"coordinated_sim_seconds_per_wall_second\": {rack_rate:.1},\n    \
         \"coordinated_ss_ecoord_sim_seconds_per_wall_second\": {rack_ss_ecoord_rate:.1},\n    \
         \"global_ecoord_sim_seconds_per_wall_second\": {rack_global_ecoord_rate:.1}\n  }},\n  \
         \"daemon\": {{\n    \"direct_seconds\": {daemon_direct_s:.4},\n    \
         \"streamed_seconds\": {daemon_streamed_s:.4},\n    \
         \"daemon_epoch_overhead_ns\": {daemon_epoch_overhead_ns:.1},\n    \
         \"overhead_fraction\": {daemon_overhead_fraction:.4}\n  }},\n  \
         \"recorder\": {{\n    \"disarmed_seconds\": {recorder_disarmed_s:.4},\n    \
         \"armed_seconds\": {recorder_armed_s:.4},\n    \
         \"recorder_epoch_overhead_ns\": {recorder_epoch_overhead_ns:.1},\n    \
         \"recorder_overhead_fraction\": {recorder_overhead_fraction:.4}\n  }},\n  \
         \"table3\": {{\n    \"horizon_s\": {table3_horizon},\n    \
         \"serial_seconds\": {table3_serial_s:.4},\n    \
         \"by_workers\": [{worker_rows}],\n    \
         \"best_speedup\": {best_speedup:.3},\n    \
         \"bit_identical_to_serial\": {bit_identical}\n  }},\n  \
         \"ablation_lag_sweep_4pt\": {{\n    \"serial_seconds\": {ablation_serial_s:.4},\n    \
         \"parallel_seconds\": {ablation_parallel_s:.4}\n  }},\n  \
         \"zn_tuning_2region\": {{\n    \"serial_seconds\": {tuning_serial_s:.4},\n    \
         \"parallel_seconds\": {tuning_parallel_s:.4}\n  }}\n}}\n",
        date = today_utc(),
        rc8_speedup = rc8_uncached / rc8_cached,
        best_speedup = table3_serial_s / parallel_best_s,
    );
    std::fs::write(&out_path, &json).expect("writing the snapshot");
    println!("wrote {out_path}");
}

/// Mean nanoseconds per step of the 1U×8 rack plant (8 servers behind two
/// fan walls, shared plenum with recirculation — 18 capacitive nodes).
fn time_rack_8s_step() -> f64 {
    let cal = PlantCalibration {
        ambient: Celsius::new(35.0),
        law: HeatSinkLaw::date14(),
        sink_tau: Seconds::new(60.0),
        tau_speed: Rpm::new(8500.0),
        r_jc: KelvinPerWatt::new(0.10),
        die_tau: Seconds::new(0.1),
    };
    let mut rack = RackPlant::new(&cal, &RackTopology::rack_1u_x8()).expect("preset compiles");
    let powers = [Watts::new(140.8); 8];
    let fans = [Rpm::new(4000.0), Rpm::new(4500.0)];
    rack.step(Seconds::new(0.5), &powers, &fans);
    time_per_iter(200_000, || rack.step(Seconds::new(0.5), &powers, &fans))
}

/// Simulated seconds per wall second of the coordinated rack loop on the
/// 1U×8 preset (capper bank + coordinator + per-zone fan loops).
fn rack_coord_sim_rate() -> f64 {
    let horizon = 600.0;
    let mut sim = RackLoopSim::builder(RackSpec::new(RackTopology::rack_1u_x8()))
        .workload(Workload::builder(SquareWave::date14()).build())
        .control(RackControl::Coordinated { adaptive_reference: true })
        .build();
    let (_, secs) = time(|| sim.run(Seconds::new(horizon)));
    horizon / secs
}

/// Simulated seconds per wall second across the two lifted rack modes —
/// the per-zone single-step bank and the per-zone E-coord descent — on
/// the 1U×8 preset, under a spiking workload so the boost/release and
/// model-inversion paths (the scratch-buffered steady-state probes) are
/// actually on the measured path.
fn rack_ss_ecoord_sim_rate() -> f64 {
    let horizon = 600.0;
    let mut wall = 0.0;
    for control in
        [RackControl::CoordinatedSsFan { adaptive_reference: true }, RackControl::CoordinatedECoord]
    {
        let workload = Workload::builder(SquareWave::date14())
            .gaussian_noise(0.04, 5)
            .spikes(1.0 / 180.0, Seconds::new(30.0), 0.8, 6)
            .build();
        let mut sim = RackLoopSim::builder(RackSpec::new(RackTopology::rack_1u_x8()))
            .workload(workload)
            .control(control)
            .build();
        let (_, secs) = time(|| sim.run(Seconds::new(horizon)));
        wall += secs;
    }
    2.0 * horizon / wall
}

/// Simulated seconds per wall second of the rack-global energy descent on
/// the shared-plenum rack — the strongly-coupled geometry whose joint
/// Gauss–Seidel fan sizing (whole-rack min-safe probes, several sweeps
/// per fan epoch) is the mode's hot path — under the same spiking
/// workload as the per-zone probe.
fn rack_global_ecoord_sim_rate() -> f64 {
    let horizon = 600.0;
    let workload = Workload::builder(SquareWave::date14())
        .gaussian_noise(0.04, 5)
        .spikes(1.0 / 180.0, Seconds::new(30.0), 0.8, 6)
        .build();
    let mut sim = RackLoopSim::builder(RackSpec::new(RackTopology::shared_plenum(4)))
        .workload(workload)
        .control(RackControl::GlobalECoord)
        .build();
    let (_, secs) = time(|| sim.run(Seconds::new(horizon)));
    horizon / secs
}

/// Wall seconds of the direct batch loop vs the daemon's trait-dispatch
/// loop on the identical scenario (the 2U×4 preset under the rack-global
/// energy descent — the parity-pinned HIL configuration — on the DATE'14
/// square wave), plus the CPU-epoch count. The two paths run the same
/// plant, controllers, and workload samples — the difference is pure
/// front-end overhead: trait dispatch, the polled mirror, the watchdog
/// bookkeeping. Construction (equilibration) is excluded from both sides.
fn daemon_vs_direct_secs() -> (f64, f64, f64) {
    // The absolute 5 % gate below must measure front-end overhead, not
    // scheduler noise on a contended core. Every sample is a back-to-back
    // direct/streamed *pair*, so a load burst or frequency shift inflates
    // both sides of the pair it lands on and cancels in the ratio; the
    // median pair then discards the pairs a burst split down the middle.
    let horizon = 3_000.0;
    let control = RackControl::GlobalECoord;
    let spec = RackSpec::new(RackTopology::rack_2u_x4());
    let workload = || Workload::builder(SquareWave::date14()).build();
    let direct_run = || {
        let mut sim =
            RackLoopSim::builder(spec.clone()).workload(workload()).control(control).build();
        let (_, d) = time(|| sim.run(Seconds::new(horizon)));
        d
    };
    let streamed_run = || {
        let cfg = DaemonConfig::new(RackControlConfig::new(control));
        let backend = SimTelemetry::new(
            spec.clone(),
            workload(),
            cfg.start_utilization,
            cfg.start_fan,
            FaultPlan::none(),
        );
        let mut daemon = Daemon::new(backend, spec.clone(), cfg);
        let (outcome, s) = time(|| daemon.run(Seconds::new(horizon)));
        assert_eq!(outcome.metrics.fallback_entries, 0, "no fault may trip the overhead probe");
        s
    };
    // One untimed pair warms caches and lazily-initialized process state.
    let _ = (direct_run(), streamed_run());
    let pairs: Vec<(f64, f64)> = (0..9).map(|_| (direct_run(), streamed_run())).collect();
    let (direct_s, streamed_s) = median_ratio_pair(&pairs);
    (direct_s, streamed_s, horizon / spec.server.cpu_control_interval.value())
}

/// The pair whose second/first ratio is the median of the set. The
/// reported seconds come from one actual back-to-back measurement (not a
/// cross-sample composite), and the ratio — the only thing the absolute
/// gates consume — is robust to bursts that land on a minority of pairs.
fn median_ratio_pair(pairs: &[(f64, f64)]) -> (f64, f64) {
    let mut sorted = pairs.to_vec();
    sorted.sort_by(|a, b| (a.1 / a.0).total_cmp(&(b.1 / b.0)));
    sorted[sorted.len() / 2]
}

/// Wall seconds of the rack-global E-coord loop with the flight recorder
/// disarmed vs armed (same plant, controllers, and workload samples —
/// the difference is pure recording cost: the branch on the disarmed
/// side, ring writes on the armed side), plus the CPU-epoch count. The
/// GlobalECoord mode has the densest event stream (descent sweeps,
/// residuals, per-zone targets), so it bounds the others.
fn recorder_vs_disarmed_secs() -> (f64, f64, f64) {
    // Back-to-back disarmed/armed pairs, median ratio — same noise
    // discipline as `daemon_vs_direct_secs`; the 3 % gate is absolute.
    let horizon = 3_000.0;
    let spec = RackSpec::new(RackTopology::rack_2u_x4());
    let run = |armed: bool| {
        let builder = RackLoopSim::builder(spec.clone())
            .workload(Workload::builder(SquareWave::date14()).build())
            .control(RackControl::GlobalECoord);
        // Roomy enough that nothing drops over this horizon, small
        // enough (256 KiB) not to fight the controllers for cache —
        // ring size is a deployment knob, not overhead.
        let mut sim = if armed { builder.flight_recorder(8_192) } else { builder }.build();
        let (outcome, secs) = time(|| sim.run(Seconds::new(horizon)));
        if armed {
            assert!(
                outcome.flight.as_ref().is_some_and(|f| f.recorded > 0),
                "the armed probe must actually record"
            );
        }
        secs
    };
    let _ = (run(false), run(true));
    let pairs: Vec<(f64, f64)> = (0..9).map(|_| (run(false), run(true))).collect();
    let (disarmed_s, armed_s) = median_ratio_pair(&pairs);
    (disarmed_s, armed_s, horizon / spec.server.cpu_control_interval.value())
}

/// The moving-fan pattern shared by the scalar reference and every batch
/// width: an 8-speed lattice walked one notch per step (lane-shifted so
/// batch lanes disagree at any instant). Every step changes the
/// airflow-dependent conductances, which is exactly the regime sweeps
/// spend slew-limited fan ramps in.
fn lattice_fan(step: usize, lane: usize) -> Rpm {
    Rpm::new(1500.0 + 500.0 * ((step + lane) % 8) as f64)
}

/// Mean nanoseconds per scenario per step of the lockstep batch engine at
/// width `b`, on finned 2S plants under the moving-fan lattice. The scalar
/// comparison point is `scalar_moving_fan_step_ns`: same plant, same
/// pattern, one network at a time.
fn batch_step_ns_per_scenario(b: usize) -> f64 {
    let mut plants: Vec<MultiSocketPlant> = (0..b).map(|_| finned_plant()).collect();
    let mut batch = {
        let nets: Vec<&RcNetwork> = plants.iter().map(MultiSocketPlant::network).collect();
        BatchRcNetwork::new(&nets).expect("identical presets batch")
    };
    let powers = [Watts::new(140.8); 2];
    let iters = (40_000 / b as u64).max(1_000);
    let mut k = 0usize;
    let batch_step_ns = time_per_iter(iters, || {
        for (lane, plant) in plants.iter_mut().enumerate() {
            plant.prepare_step(&powers, lattice_fan(k, lane));
        }
        let mut nets: Vec<&mut RcNetwork> =
            plants.iter_mut().map(MultiSocketPlant::network_mut).collect();
        batch.step(&mut nets, Seconds::new(0.5));
        k += 1;
    });
    batch_step_ns / b as f64
}

/// Sequential columnar-spill write bandwidth in MB/s: 8 epoch channels ×
/// 200k samples (24.4 MiB of column data) through `TraceSet::spill_to`
/// into a tmpdir.
fn spill_write_mb_s() -> f64 {
    const SAMPLES: usize = 200_000;
    let mut set = gfsc_sim::TraceSet::new();
    let ids: Vec<_> =
        EPOCH_CHANNELS.iter().map(|n| set.channel_with_capacity(n, SAMPLES)).collect();
    for k in 0..SAMPLES {
        let t = Seconds::new(k as f64);
        for (j, &id) in ids.iter().enumerate() {
            set.record_by_id(id, t, (k * 8 + j) as f64);
        }
    }
    let dir = std::env::temp_dir().join(format!("gfsc-bench-spill-{}", std::process::id()));
    let (result, secs) = time(|| set.spill_to(&dir));
    result.expect("spill to tmpdir");
    std::fs::remove_dir_all(&dir).ok();
    // Two 8-byte columns (time + value) per sample per channel.
    let bytes = (EPOCH_CHANNELS.len() * SAMPLES * 16) as f64;
    bytes / (1024.0 * 1024.0) / secs
}

/// The tentpole workload: a 64-scenario same-topology sweep on the finned
/// 2S server with 500 rpm fan command quantization (PWM-granular targets
/// put every commanded speed on a shared rpm lattice, so batch lanes
/// share factorizations across lanes *and* steps), 64 seeds of a noisy
/// square wave, R-coord @ fixed Tref, serial vs lockstep-batched.
/// Returns `(horizon_s, serial_s, batched_s, bit_identical)`.
fn batched_sweep64() -> (f64, f64, f64, bool) {
    let horizon = 300.0;
    let spec = ServerSpec {
        fan_cmd_step: 500.0,
        fan_control_interval: Seconds::new(1.0),
        ..ServerSpec::with_topology(Topology::finned(2, 32))
    };
    let grid = ScenarioGrid::builder()
        .horizon(Seconds::new(horizon))
        .solutions(&[Solution::RCoordFixedTref])
        .seeds(&(1..=64).collect::<Vec<u64>>())
        .workload(WorkloadRecipe::SquareWave { low: 0.1, high: 0.9, period_s: 14.0, sigma: 0.12 })
        .spec_variant("finned2x32-q500", spec)
        .build();
    let (serial, serial_s) = time(|| grid.run_serial());
    let (batched, batched_s) = time(|| grid.run_batched());
    let bit_identical =
        serial.iter().zip(&batched).all(|(s, b)| s.label == b.label && s.summary == b.summary);
    (horizon, serial_s, batched_s, bit_identical)
}

/// The shared 4S benchmark plant (Table I calibration per socket).
fn quad_socket_plant() -> MultiSocketPlant {
    let cal = PlantCalibration {
        ambient: Celsius::new(35.0),
        law: HeatSinkLaw::date14(),
        sink_tau: Seconds::new(60.0),
        tau_speed: Rpm::new(8500.0),
        r_jc: KelvinPerWatt::new(0.10),
        die_tau: Seconds::new(0.1),
    };
    MultiSocketPlant::new(&cal, &Topology::quad_socket()).expect("stock topology compiles")
}

/// The finned 2S batch-benchmark plant: two sockets whose heat sinks carry
/// 32 fin segments each — dense per-socket matrix blocks, so the scalar
/// path's per-speed-change refactorization is expensive and the batch
/// engine's shared factors have something real to delete.
fn finned_plant() -> MultiSocketPlant {
    let cal = PlantCalibration {
        ambient: Celsius::new(35.0),
        law: HeatSinkLaw::date14(),
        sink_tau: Seconds::new(60.0),
        tau_speed: Rpm::new(8500.0),
        r_jc: KelvinPerWatt::new(0.10),
        die_tau: Seconds::new(0.1),
    };
    MultiSocketPlant::new(&cal, &Topology::finned(2, 32)).expect("finned topology compiles")
}

/// `--check` mode: re-measures the gate metrics, compares them against the
/// committed baseline, prints a verdict table, and returns the process
/// exit code (0 = within tolerance).
fn run_check(baseline_path: &str) -> i32 {
    let baseline = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline `{baseline_path}`: {e}"));
    let tolerance: f64 =
        std::env::var("GFSC_BENCH_TOLERANCE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.30);
    println!("bench check vs {baseline_path} (tolerance {:.0} %)", tolerance * 100.0);

    // Best-of-three on every gate metric: the gate asks "has the code got
    // slower", and the minimum is the observation least polluted by
    // scheduler noise on a shared box.
    let best3 = |mut f: Box<dyn FnMut() -> f64>| (0..3).map(|_| f()).fold(f64::INFINITY, f64::min);
    // The two ns-scale rows take best-of-nine: each sample is only a few
    // milliseconds of wall, so a single scheduler burst can cover three
    // of them end to end.
    let best9 = |mut f: Box<dyn FnMut() -> f64>| (0..9).map(|_| f()).fold(f64::INFINITY, f64::min);
    let mut rc2 = chain_network(2);
    rc2.step(Seconds::new(0.5));
    let rc2_cached =
        best9(Box::new(move || time_per_iter(200_000, || rc2.step(Seconds::new(0.5)))));
    let mut rc8 = chain_network(8);
    rc8.step(Seconds::new(0.5));
    let rc8_cached =
        best9(Box::new(move || time_per_iter(200_000, || rc8.step(Seconds::new(0.5)))));
    // Warm the gain cache so the throughput probe times the loop, not
    // one-time tuning.
    let _ = gfsc::fine_gain_schedule();
    let sim_rate = best3(Box::new(|| {
        let horizon = 600.0;
        let (_, secs) = time(|| {
            gfsc::Simulation::builder()
                .solution(Solution::RCoordAdaptiveTrefSsFan)
                .seed(7)
                .build()
                .run(Seconds::new(horizon))
        });
        // Fold into "ns-like" cost so lower is better for every metric.
        secs / horizon
    }));
    let rack_8s = best3(Box::new(time_rack_8s_step));
    let batch64 = best3(Box::new(|| batch_step_ns_per_scenario(64)));
    let spill_cost = best3(Box::new(|| 1.0 / spill_write_mb_s()));
    let sweep64_batched = best3(Box::new(|| {
        let (_, _, batched_s, bit_identical) = batched_sweep64();
        assert!(bit_identical, "batched sweep diverged from the serial reference");
        batched_s
    }));
    let rack_rate_cost = best3(Box::new(|| 1.0 / rack_coord_sim_rate()));
    let rack_ss_ecoord_cost = best3(Box::new(|| 1.0 / rack_ss_ecoord_sim_rate()));
    let rack_global_ecoord_cost = best3(Box::new(|| 1.0 / rack_global_ecoord_sim_rate()));
    // Three median-of-pairs probes each; keep the cleanest one (smallest
    // overhead ratio). The gates are one-sided upper bounds, and a real
    // regression shows up in every probe's median, so the least-noisy
    // observation is the honest one.
    let min_by_ratio = |pairs: Vec<(f64, f64)>| {
        pairs.into_iter().min_by(|a, b| (a.1 / a.0).total_cmp(&(b.1 / b.0))).expect("3 probes")
    };
    let (daemon_direct_s, daemon_streamed_s) = min_by_ratio(
        (0..3)
            .map(|_| {
                let (direct, streamed, _) = daemon_vs_direct_secs();
                (direct, streamed)
            })
            .collect(),
    );
    let (recorder_disarmed_s, recorder_armed_s) = min_by_ratio(
        (0..3)
            .map(|_| {
                let (disarmed, armed, _) = recorder_vs_disarmed_secs();
                (disarmed, armed)
            })
            .collect(),
    );

    let mut failed = false;
    let mut check =
        |name: &str, key: &str, measured_cost: f64, baseline_to_cost: fn(f64) -> f64| {
            let Some(raw) = json_number(&baseline, key) else {
                println!("  {name:<28} SKIP (no `{key}` in baseline)");
                return;
            };
            let baseline_cost = baseline_to_cost(raw);
            let ratio = measured_cost / baseline_cost;
            let verdict = if ratio <= 1.0 + tolerance { "ok" } else { "REGRESSED" };
            if ratio > 1.0 + tolerance {
                failed = true;
            }
            println!(
                "  {name:<28} {verdict:<9} cost ratio {ratio:.3} (measured {measured_cost:.3e}, \
             baseline {baseline_cost:.3e})"
            );
        };
    check("rc2 cached step", "rc2_cached_ns", rc2_cached, |ns| ns);
    check("rc8 cached step", "rc8_cached_ns", rc8_cached, |ns| ns);
    check("rack 1Ux8 step", "rack_8s_step_ns", rack_8s, |ns| ns);
    check("batch B=64 step/scenario", "step_ns_per_scenario_b64", batch64, |ns| ns);
    check("spill write bandwidth", "spill_write_mb_s", spill_cost, |rate| 1.0 / rate);
    check("batched 64-sweep", "batched_seconds", sweep64_batched, |s| s);
    // Throughput inverts: cost = wall seconds per simulated second.
    check("closed-loop throughput", "sim_seconds_per_wall_second", sim_rate, |rate| 1.0 / rate);
    check(
        "rack coordinated throughput",
        "coordinated_sim_seconds_per_wall_second",
        rack_rate_cost,
        |rate| 1.0 / rate,
    );
    check(
        "rack SS/E-coord throughput",
        "coordinated_ss_ecoord_sim_seconds_per_wall_second",
        rack_ss_ecoord_cost,
        |rate| 1.0 / rate,
    );
    check(
        "rack global-E-coord throughput",
        "global_ecoord_sim_seconds_per_wall_second",
        rack_global_ecoord_cost,
        |rate| 1.0 / rate,
    );

    // The daemon front-end gate is absolute, not baseline-relative: the
    // trait-dispatch loop may cost at most 5 % over the direct batch loop,
    // whatever GFSC_BENCH_TOLERANCE says about the other rows.
    const DAEMON_OVERHEAD_CAP: f64 = 0.05;
    let daemon_overhead = daemon_streamed_s / daemon_direct_s - 1.0;
    let daemon_ok = daemon_overhead <= DAEMON_OVERHEAD_CAP;
    if !daemon_ok {
        failed = true;
    }
    println!(
        "  {:<28} {:<9} overhead {:.2} % (hard cap {:.0} %; direct {daemon_direct_s:.3} s, \
         streamed {daemon_streamed_s:.3} s)",
        "daemon front-end overhead",
        if daemon_ok { "ok" } else { "REGRESSED" },
        daemon_overhead * 100.0,
        DAEMON_OVERHEAD_CAP * 100.0,
    );

    // So is the flight-recorder gate: arming the decision recorder may
    // cost at most 3 % over the disarmed loop — observability that slows
    // the control loop down gets rejected here, not in production.
    const RECORDER_OVERHEAD_CAP: f64 = 0.03;
    let recorder_overhead = recorder_armed_s / recorder_disarmed_s - 1.0;
    let recorder_ok = recorder_overhead <= RECORDER_OVERHEAD_CAP;
    if !recorder_ok {
        failed = true;
    }
    println!(
        "  {:<28} {:<9} overhead {:.2} % (hard cap {:.0} %; disarmed {recorder_disarmed_s:.3} s, \
         armed {recorder_armed_s:.3} s)",
        "flight recorder overhead",
        if recorder_ok { "ok" } else { "REGRESSED" },
        recorder_overhead * 100.0,
        RECORDER_OVERHEAD_CAP * 100.0,
    );

    if failed {
        println!("bench check FAILED: >{:.0} % regression", tolerance * 100.0);
        1
    } else {
        println!("bench check passed.");
        0
    }
}

/// Extracts `"key": <number>` from the baseline snapshot (the snapshot is
/// machine-written with unique keys, so a string scan is exact — no JSON
/// crate in the offline set).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Wall-clock seconds of one call.
fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Mean nanoseconds per iteration over `iters` calls.
fn time_per_iter(iters: u64, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// The worker counts to probe: 1, 2, 4, ... up to the available cores.
fn worker_ladder(cores: usize) -> Vec<usize> {
    let mut ladder = vec![1];
    let mut w = 2;
    while w < cores {
        ladder.push(w);
        w *= 2;
    }
    if cores > 1 {
        ladder.push(cores);
    }
    ladder
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, Hinnant's algorithm —
/// no calendar crate in the offline set).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("post-1970 clock")
        .as_secs();
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
