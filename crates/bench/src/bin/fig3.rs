//! Regenerates Fig. 3: fan-speed and temperature traces for the adaptive
//! PID vs the fixed parameter sets tuned at 2000 and 6000 rpm.
//!
//! Usage: `cargo run -p gfsc-bench --bin fig3 [--csv]`

use gfsc::experiments::fig3::{run, Fig3Config};

fn main() {
    let config = Fig3Config::default();
    let fig = run(&config);
    let schemes = [&fig.adaptive, &fig.fixed_low, &fig.fixed_high];

    if std::env::args().any(|a| a == "--csv") {
        // Wide CSV: one fan/temperature column pair per scheme.
        println!(
            "time_s,fan_adaptive,t_adaptive,fan_fixed2000,t_fixed2000,fan_fixed6000,t_fixed6000"
        );
        let len = schemes[0].traces.require("fan_rpm").unwrap().len();
        for k in 0..len {
            let t = schemes[0].traces.require("fan_rpm").unwrap().times()[k];
            print!("{t}");
            for s in schemes {
                let fan = s.traces.require("fan_rpm").unwrap().values()[k];
                let tj = s.traces.require("t_junction_c").unwrap().values()[k];
                print!(",{fan},{tj}");
            }
            println!();
        }
        return;
    }

    println!("Fig. 3 reproduction — adaptive vs fixed-gain PID fan control\n");
    println!(
        "paper: params@2000 rpm stable but slow (~210 s); params@6000 rpm unstable at low\n\
         speeds; adaptive PID stable with drastically improved convergence\n"
    );
    for s in schemes {
        let conv = match s.convergence_time {
            Some(t) => format!("{:.0} s", t.value()),
            None => "did not settle within the phase".to_owned(),
        };
        println!("{:<26} stable: {:<5} convergence after load step: {conv}", s.name, s.stable);
        println!(
            "{:<26} worst within-phase fan oscillation: amplitude {:.0} rpm, {} reversals",
            "", s.fan_oscillation.amplitude, s.fan_oscillation.reversals
        );
    }
    println!("\n(run with --csv for the full traces)");
}
