//! Prints Table I: the design parameters used in power and temperature
//! modeling, echoed from the live `ServerSpec` (so a drift between code
//! and paper is visible immediately).

use gfsc_server::ServerSpec;
use gfsc_units::{Rpm, Utilization};

fn main() {
    let s = ServerSpec::enterprise_default();
    println!("Table I — design parameters (paper value vs ServerSpec)\n");
    let rows: Vec<(&str, String, &str)> = vec![
        ("CPU P_max", format!("{}", s.cpu_power.power(Utilization::FULL)), "160 W"),
        ("CPU P_idle", format!("{}", s.cpu_power.power(Utilization::IDLE)), "96 W"),
        ("Die thermal time constant", format!("{}", s.die_tau), "0.1 sec"),
        ("Fan power per socket", format!("{}", s.fan_power.max_power()), "29.4 W"),
        ("Max fan speed per socket", format!("{}", s.fan_power.max_speed()), "8500 rpm"),
        ("Fan sample interval", format!("{}", s.sensor_interval), "1 sec"),
        (
            "Heat sink R @ 2000 rpm",
            format!("{}", s.heatsink_law.resistance(Rpm::new(2000.0))),
            "0.141 + 132.51/V^0.923 K/W",
        ),
        (
            "Heat sink R @ 8500 rpm",
            format!("{}", s.heatsink_law.resistance(Rpm::new(8500.0))),
            "(same law)",
        ),
        ("Heat sink tau @ max airflow", format!("{}", s.heatsink_tau), "60 sec"),
    ];
    for (name, ours, paper) in rows {
        println!("{name:<30} ours: {ours:<16} paper: {paper}");
    }
    println!("\ncalibration constants not in Table I (see DESIGN.md §4):");
    println!("  ambient {}   R_jc {}   fan floor {}", s.ambient, s.r_jc, s.fan_bounds.lo());
    println!("  sensor lag {}   ADC step {} °C", s.sensor_lag, s.quantization_step);
}
