//! Runs the ablation sweeps (extensions beyond the paper's tables):
//! telemetry-lag sweep, ADC-step sweep, gain-region sweep, noise sweep.
//!
//! Usage: `cargo run --release -p gfsc-bench --bin ablations [lag|quant|regions|noise|all]`

use gfsc::experiments::ablations;
use gfsc_units::Seconds;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());

    if which == "lag" || which == "all" {
        println!("== Telemetry-lag sweep (square workload, fan-only, re-tuned per lag)");
        let lags: Vec<Seconds> =
            [0.0, 5.0, 10.0, 20.0, 30.0].into_iter().map(Seconds::new).collect();
        for row in ablations::lag_sweep(&lags, Seconds::new(1600.0)) {
            println!(
                "lag {:>4}  adaptive: stable={:<5} amp={:>6.0} rms={:>5.2}   fixed@6000: stable={:<5} amp={:>6.0}",
                row.lag.value(),
                row.adaptive.stable,
                row.adaptive.oscillation_amplitude,
                row.adaptive.temperature_rms_error,
                row.fixed_high.stable,
                row.fixed_high.oscillation_amplitude,
            );
        }
        println!();
    }

    if which == "quant" || which == "all" {
        println!("== ADC-step sweep (steady 0.7 load, Eq. 10 hold on vs off)");
        for row in ablations::quantization_sweep(&[0.25, 0.5, 1.0, 2.0, 4.0], Seconds::new(900.0)) {
            println!(
                "step {:>4.2} K  command changes: {:>4} (hold) vs {:>4} (no hold)   temp rms: {:>5.2} vs {:>5.2} K",
                row.step,
                row.command_changes_with_hold,
                row.command_changes_without_hold,
                row.rms_with_hold,
                row.rms_without_hold,
            );
        }
        println!();
    }

    if which == "regions" || which == "all" {
        println!("== Gain-region sweep (square workload, fan-only)");
        let sets: Vec<Vec<f64>> = vec![
            vec![2000.0],
            vec![6000.0],
            vec![2000.0, 6000.0],
            vec![2000.0, 3500.0, 5000.0, 7000.0],
        ];
        for row in ablations::region_sweep(&sets, Seconds::new(1600.0)) {
            println!(
                "regions {:?}: stable={:<5} amp={:>6.0} rpm  temp rms {:>5.2} K",
                row.regions,
                row.probe.stable,
                row.probe.oscillation_amplitude,
                row.probe.temperature_rms_error,
            );
        }
        println!();
    }

    if which == "noise" || which == "all" {
        println!("== Workload-noise sweep (full proposal)");
        for row in ablations::noise_sweep(&[0.0, 0.02, 0.04, 0.08, 0.16], Seconds::new(1600.0), 11)
        {
            println!(
                "sigma {:>4.2}: violations {:>5.2} %  worst fan oscillation {:>6.0} rpm",
                row.sigma, row.violation_percent, row.fan_oscillation_amplitude,
            );
        }
    }
}
