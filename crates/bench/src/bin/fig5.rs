//! Regenerates Fig. 5: fan-speed stability of the coordinated stack under
//! dynamic CPU load with Gaussian noise (sigma = 0.04).
//!
//! Usage: `cargo run -p gfsc-bench --bin fig5 [--csv]`

use gfsc::experiments::fig5::{run, Fig5Config};

fn main() {
    let config = Fig5Config::default();
    let fig = run(&config);

    if std::env::args().any(|a| a == "--csv") {
        fig.traces.write_csv(std::io::stdout()).expect("stdout");
        return;
    }

    println!("Fig. 5 reproduction — coordinated stack under noisy dynamic load\n");
    println!("paper: fan speed remains stable alongside the CPU load controller");
    println!(
        "ours : stable = {} (worst within-phase oscillation amplitude {:.0} rpm)",
        fig.stable, fig.worst_oscillation.amplitude
    );
    println!("       deadline violations over the run: {:.2} %", fig.violation_percent);
    println!("\ndemand / fan speed every 25 s over the paper's ~700 s window:");
    let u = fig.traces.require("u_demand").unwrap();
    let fan = fig.traces.require("fan_rpm").unwrap();
    for k in (0..=700).step_by(25) {
        println!(
            "t={:>4}  u={:>4.2}  fan={:>5.0} rpm",
            u.times()[k],
            u.values()[k],
            fan.values()[k]
        );
    }
    println!("\n(run with --csv for the full traces)");
}
