//! Regenerates Fig. 4: fan-speed oscillation of a deadzone controller
//! under a fixed workload, with the adaptive PID as a stable control.
//!
//! Usage: `cargo run -p gfsc-bench --bin fig4 [--csv]`

use gfsc::experiments::fig4::{run, Fig4Config};

fn main() {
    let config = Fig4Config::default();
    let fig = run(&config);

    if std::env::args().any(|a| a == "--csv") {
        fig.traces.write_csv(std::io::stdout()).expect("stdout");
        return;
    }

    println!("Fig. 4 reproduction — deadzone fan control under a stable workload\n");
    println!("paper: fan speed oscillates (~2000–5000 rpm band shown) due to lag + quantization\n");
    println!(
        "deadzone: oscillates = {} (amplitude {:.0} rpm, period {:.0} s, {} reversals)",
        fig.oscillates,
        fig.oscillation.amplitude,
        fig.oscillation.period.map_or(f64::NAN, |p| p.value()),
        fig.oscillation.reversals
    );
    println!(
        "adaptive: oscillates = {} (amplitude {:.0} rpm)",
        fig.adaptive_oscillates, fig.adaptive_oscillation.amplitude
    );
    println!("\nfan speed every 10 s over the paper's ~230 s window:");
    let fan = fig.traces.require("fan_rpm").unwrap();
    for k in (300..=530).step_by(10) {
        println!("t={:>4}  {:>5.0} rpm", fan.times()[k], fan.values()[k]);
    }
    println!("\n(run with --csv for the full traces)");
}
