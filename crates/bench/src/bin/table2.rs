//! Prints Table II: the rule-based coordination matrix, evaluated live
//! from `rule_matrix` over all nine cases.

use gfsc_coord::rule_matrix;
use gfsc_units::{Rpm, Utilization};

fn main() {
    println!("Table II — rule-based coordination (evaluated from the live rule_matrix)\n");
    let cap_now = Utilization::new(0.5);
    let fan_now = Rpm::new(4000.0);
    let cap_props = [("u down", 0.4), ("u same", 0.5), ("u up", 0.6)];
    let fan_props = [("s down", 3500.0), ("s same", 4000.0), ("s up", 4500.0)];

    println!("{:<8} | {:<10} | {:<10} | {:<10}", "", "s_fan dn", "s_fan =", "s_fan up");
    println!("{:-<8}-+-{:-<10}-+-{:-<10}-+-{:-<10}", "", "", "", "");
    for (cap_label, cap_prop) in cap_props {
        let mut cells = Vec::new();
        for (_, fan_prop) in fan_props {
            let (cap, fan) =
                rule_matrix(cap_now, Utilization::new(cap_prop), fan_now, Rpm::new(fan_prop));
            let cell = if (fan - fan_now).abs() > 1e-6 {
                if fan > fan_now {
                    "s_fan up"
                } else {
                    "s_fan dn"
                }
            } else if (cap - cap_now).abs() > 1e-12 {
                if cap > cap_now {
                    "u_cpu up"
                } else {
                    "u_cpu dn"
                }
            } else {
                "-"
            };
            cells.push(cell);
        }
        println!("{:<8} | {:<10} | {:<10} | {:<10}", cap_label, cells[0], cells[1], cells[2]);
    }
    println!("\npaper Table II:");
    println!("  u dn  | s_fan dn | u_cpu dn | s_fan up");
    println!("  u =   | s_fan dn | -        | s_fan up");
    println!("  u up  | u_cpu up | u_cpu up | s_fan up");
}
