//! Regenerates Fig. 1: normalized power-sensor trace lagging the CPU
//! utilization by ~10 s, plus the I2C mechanistic account of the lag.
//!
//! Usage: `cargo run -p gfsc-bench --bin fig1 [--csv]`

use gfsc::experiments::fig1::{run, Fig1Config};

fn main() {
    let config = Fig1Config::default();
    let fig = run(&config);
    if std::env::args().any(|a| a == "--csv") {
        fig.traces.write_csv(std::io::stdout()).expect("stdout");
        return;
    }
    println!("Fig. 1 reproduction — telemetry lag under workload changes\n");
    println!("paper: ~10 s lag between CPU activity and sensor readings (I2C path)");
    println!("ours : measured lag = {} (cross-correlation)", fig.measured_lag);
    println!(
        "mechanism: 64 sensors x {:.1} ms slots -> {:.2} s scan round",
        gfsc_sensors::TelemetryScanner::date14().slot_time().value() * 1e3,
        fig.scan_round_time.value()
    );
    println!("\ntime_s  u_cpu  p_true  p_sensor (normalized, every 20 s around the first step)");
    let u = fig.traces.require("cpu_utilization").unwrap();
    let pt = fig.traces.require("power_true_norm").unwrap();
    let ps = fig.traces.require("power_sensor_norm").unwrap();
    for k in (80..=320).step_by(20) {
        println!(
            "{:>6}  {:>5.2}  {:>6.2}  {:>8.2}",
            u.times()[k],
            u.values()[k],
            pt.values()[k],
            ps.values()[k]
        );
    }
    println!("\n(run with --csv for the full series)");
}
