//! `gfsc-explain`: render the causal decision timeline behind a run.
//!
//! Three input shapes, one output — the per-epoch story of what the
//! controllers did and why ("epoch 412: s7 measured 79.3 °C, capper
//! proposed cap 0.620 for s7, coordinator granted cap 0.700 to s7"):
//!
//! - a `.events` file (a [`FlightSnapshot`] serialized with `to_text`,
//!   e.g. the `target/daemon-hil/<scenario>.events` CI artifacts),
//! - a spilled trace directory (a sweep cell written by
//!   `TraceSet::spill_to` — decisions are *reconstructed* from channel
//!   deltas, see `gfsc::experiments::explain::events_from_traces`),
//! - `--demo`, which flies the default recorded run (global energy
//!   descent on the shared-plenum rack) and explains it.
//!
//! Usage: `cargo run --release -p gfsc-bench --bin gfsc_explain --
//! (<run.events> | <spill-dir> | --demo) [--out PATH]`

use gfsc::experiments::explain::{events_from_traces, run, ExplainConfig};
use gfsc_obs::explain::render_timeline;
use gfsc_obs::FlightSnapshot;
use gfsc_sim::SpilledTraces;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut input: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut demo = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--demo" => demo = true,
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            other if input.is_none() && !other.starts_with("--") => {
                input = Some(other.to_owned());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: gfsc_explain (<run.events> | <spill-dir> | --demo) [--out PATH]");
                return ExitCode::FAILURE;
            }
        }
    }
    let timeline = match (demo, input) {
        (true, _) => {
            let report = run(&ExplainConfig::default());
            format!(
                "demo run: global-e-coord on shared-plenum, {:.2} % violated socket-epochs\n{}",
                report.violation_percent, report.timeline
            )
        }
        (false, Some(path)) => match explain_path(Path::new(&path)) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("gfsc-explain: {path}: {err}");
                return ExitCode::FAILURE;
            }
        },
        (false, None) => {
            eprintln!("usage: gfsc_explain (<run.events> | <spill-dir> | --demo) [--out PATH]");
            return ExitCode::FAILURE;
        }
    };
    match out_path {
        Some(path) => {
            if let Err(err) = std::fs::write(&path, &timeline) {
                eprintln!("gfsc-explain: write {path}: {err}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{timeline}"),
    }
    ExitCode::SUCCESS
}

/// Explains one input path: a spilled trace directory or a `.events`
/// file.
fn explain_path(path: &Path) -> Result<String, String> {
    let snapshot = if path.is_dir() {
        let traces = SpilledTraces::open(path)
            .and_then(|spilled| spilled.load_all())
            .map_err(|e| format!("not a spilled trace dir: {e:?}"))?;
        events_from_traces(&traces)
    } else {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        FlightSnapshot::from_text(&text)?
    };
    Ok(render_timeline(&snapshot))
}
