//! Regenerates Table III: deadline violations and normalized fan energy
//! for the five coordination solutions.

use gfsc::experiments::table3::{run, Table3Config};
use gfsc_units::Seconds;

fn main() {
    let horizon = std::env::args().nth(1).and_then(|s| s.parse::<f64>().ok()).unwrap_or(7200.0);
    let seed = std::env::args().nth(2).and_then(|s| s.parse::<u64>().ok()).unwrap_or(42);
    let config = Table3Config { horizon: Seconds::new(horizon), seed };
    let table = run(&config);
    println!("Table III reproduction (horizon {horizon} s, seed {})\n", config.seed);
    println!("{}", table.to_markdown());
}
