//! Regenerates Table III: deadline violations and normalized fan energy
//! for the five coordination solutions.
//!
//! Usage: `table3 [HORIZON_S] [SEED ...]` — more than one seed reports
//! mean ± 95 % CI over the seed axis.

use gfsc::experiments::table3::{run, Table3Config};
use gfsc_units::Seconds;

fn main() {
    let horizon = std::env::args().nth(1).and_then(|s| s.parse::<f64>().ok()).unwrap_or(7200.0);
    let seeds: Vec<u64> = std::env::args()
        .skip(2)
        .map(|s| s.parse().unwrap_or_else(|_| panic!("seed arguments must be integers, got `{s}`")))
        .collect();
    let seeds = if seeds.is_empty() { vec![42] } else { seeds };
    let config = Table3Config { horizon: Seconds::new(horizon), seeds };
    let table = run(&config);
    println!("Table III reproduction (horizon {horizon} s, seeds {:?})\n", config.seeds);
    println!("{}", table.to_markdown());
}
