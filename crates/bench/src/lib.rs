//! Benchmark harness for the `gfsc` reproduction.
//!
//! - `src/bin/`: one binary per paper artifact (`fig1` … `fig5`,
//!   `table1` … `table3`, `ablations`) that prints the reproduced
//!   rows/series next to the paper's published values, plus `perf_report`
//!   (see below).
//! - `benches/`: Criterion benchmarks timing the regeneration of each
//!   artifact (at reduced horizons) plus microbenchmarks of the simulation
//!   substrates, including `hot_paths` — the regression guards for the
//!   cached-factorization `RcNetwork::step` and handle-based
//!   `TraceSet` recording.
//!
//! # Running the sweep engine
//!
//! `table3`, all four `ablations` sweeps and Ziegler–Nichols gain tuning
//! run through the batch scenario-sweep engine
//! ([`gfsc::sweep::ScenarioGrid`] over `gfsc_sim::sweep::parallel_map`),
//! which fans independent scenarios out across every core while keeping
//! results bit-identical to a serial walk:
//!
//! ```text
//! cargo run --release -p gfsc-bench --bin table3          # 5 solutions, parallel
//! cargo run --release -p gfsc-bench --bin ablations all   # 4 sweeps, parallel
//! GFSC_SWEEP_THREADS=1 cargo run --release -p gfsc-bench --bin table3
//!                                                         # serial reference
//! ```
//!
//! `GFSC_SWEEP_THREADS` caps the worker count (1 forces the serial path);
//! the default is `std::thread::available_parallelism()`.
//!
//! # Running the benches and the perf snapshot
//!
//! ```text
//! cargo bench -p gfsc-bench --bench hot_paths      # hot-path guards
//! cargo bench -p gfsc-bench                        # everything
//! GFSC_BENCH_FAST=1 cargo bench -p gfsc-bench      # smoke mode (CI)
//! cargo run --release -p gfsc-bench --bin perf_report
//!     [--table3-horizon 7200] [--out BENCH_custom.json]
//! ```
//!
//! `perf_report` times the thermal step (cached vs uncached), 8-channel
//! trace recording (by name vs by handle), the closed-loop epoch rate, the
//! table3 sweep at several worker counts (asserting bit-identity against
//! the serial path), a reduced ablation sweep, and two-region gain tuning,
//! then writes a `BENCH_<date>.json` snapshot next to the existing ones so
//! the perf trajectory stays in-repo.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gfsc_thermal::{RcNetwork, RcNetworkBuilder};
use gfsc_units::{Celsius, JoulesPerKelvin, KelvinPerWatt, Watts};

/// The eight channels `ClosedLoopSim` records per CPU epoch, in recording
/// order — shared by the `hot_paths` bench and `perf_report` so both
/// measure the same workload.
pub const EPOCH_CHANNELS: [&str; 8] = [
    "u_demand",
    "u_cap",
    "u_executed",
    "t_measured_c",
    "t_junction_c",
    "fan_rpm",
    "fan_target_rpm",
    "t_ref_c",
];

/// A chain of `n` capacitive nodes ending at an ambient boundary, with the
/// last link playing the fan-dependent sink→ambient role and 120 W
/// injected at the hot end — the shared benchmark topology for
/// `RcNetwork::step` measurements (one definition, so the criterion guard
/// and the `BENCH_*.json` snapshot stay comparable).
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn chain_network(n: usize) -> RcNetwork {
    let mut builder = RcNetworkBuilder::new();
    for i in 0..n {
        builder = builder.node(
            format!("n{i}"),
            JoulesPerKelvin::new(1.0 + 40.0 * i as f64),
            Celsius::new(30.0),
        );
    }
    builder = builder.boundary("ambient", Celsius::new(30.0));
    for i in 0..n {
        let to = if i + 1 == n { "ambient".to_owned() } else { format!("n{}", i + 1) };
        builder = builder.link(format!("n{i}"), to, KelvinPerWatt::new(0.1 + 0.02 * i as f64));
    }
    let mut net = builder.build().expect("valid chain");
    let hot = net.node_id("n0").expect("exists");
    net.set_power(hot, Watts::new(120.0));
    net
}
