//! Benchmark harness for the `gfsc` reproduction.
//!
//! - `src/bin/`: one binary per paper artifact (`fig1` … `fig5`,
//!   `table1` … `table3`, `ablations`) that prints the reproduced
//!   rows/series next to the paper's published values.
//! - `benches/`: Criterion benchmarks timing the regeneration of each
//!   artifact (at reduced horizons) plus microbenchmarks of the simulation
//!   substrates.

#![forbid(unsafe_code)]
