//! Criterion bench: regenerating Fig. 1 (sensor-lag demonstration).

use criterion::{criterion_group, criterion_main, Criterion};
use gfsc::experiments::fig1::{run, Fig1Config};
use gfsc_units::Seconds;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let config = Fig1Config { horizon: Seconds::new(700.0), ..Fig1Config::default() };
    // Correctness gate: the bench must be timing a run that reproduces the
    // paper's observation.
    let fig = run(&config);
    assert!((9.0..=11.0).contains(&fig.measured_lag.value()), "lag {}", fig.measured_lag);

    c.bench_function("fig1/sensor_lag_700s", |b| {
        b.iter(|| black_box(run(black_box(&config))));
    });
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
