//! Criterion bench: regenerating Fig. 4 (deadzone oscillation).

use criterion::{criterion_group, criterion_main, Criterion};
use gfsc::experiments::fig4::{run, Fig4Config};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let config = Fig4Config::default();
    // Correctness gate.
    let fig = run(&config);
    assert!(fig.oscillates, "deadzone must oscillate");
    assert!(!fig.adaptive_oscillates, "adaptive control must not");

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("deadzone_plus_control_1200s", |b| {
        b.iter(|| black_box(run(black_box(&config))));
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
