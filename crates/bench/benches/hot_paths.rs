//! Regression guards for the two allocation-free hot paths:
//!
//! - `RcNetwork::step` cached-factorization vs the naive
//!   assemble-and-solve reference (`step_uncached`) — the cached path must
//!   hold a ≥2× throughput advantage,
//! - `TraceSet` recording by pre-resolved `ChannelId` vs by name — the
//!   closed-loop runner records 8 channels per epoch through handles.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gfsc_bench::{chain_network, EPOCH_CHANNELS};
use gfsc_sim::TraceSet;
use gfsc_units::{KelvinPerWatt, Seconds};
use std::hint::black_box;

fn bench_network_step(c: &mut Criterion) {
    for n in [2usize, 8] {
        let mut group = c.benchmark_group(format!("hot_paths/rc_network_{n}_node"));
        group.throughput(Throughput::Elements(1));

        let mut cached = chain_network(n);
        cached.step(Seconds::new(0.5)); // warm the factorization
        group.bench_function("step_cached", |b| {
            b.iter(|| cached.step(black_box(Seconds::new(0.5))));
        });

        let mut naive = chain_network(n);
        group.bench_function("step_uncached", |b| {
            b.iter(|| naive.step_uncached(black_box(Seconds::new(0.5))));
        });

        // The fan-loop pattern: the sink→ambient conductance moves every
        // 60 steps (one 30 s controller epoch at dt = 0.5 s), so the cache
        // amortizes over 60 solves.
        let mut epochy = chain_network(n);
        let link = epochy.link_id(&format!("n{}", n - 1), "ambient").expect("exists");
        let mut k = 0u64;
        group.bench_function("step_cached_epoch_refresh", |b| {
            b.iter(|| {
                k += 1;
                if k.is_multiple_of(60) {
                    let r = 0.1 + 0.01 * ((k / 60) % 8) as f64;
                    epochy.set_link_resistance_by_id(link, KelvinPerWatt::new(r));
                }
                epochy.step(black_box(Seconds::new(0.5)));
            });
        });
        group.finish();
    }
}

fn bench_trace_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_paths/trace_record_8ch");
    // One "epoch" = one sample on each of the runner's 8 channels.
    group.throughput(Throughput::Elements(8));

    let mut by_name = TraceSet::new();
    let mut t = 0.0f64;
    group.bench_function("by_name", |b| {
        b.iter(|| {
            t += 1.0;
            for name in EPOCH_CHANNELS {
                by_name.record(black_box(name), Seconds::new(t), black_box(1.0));
            }
        });
    });

    let mut by_id = TraceSet::new();
    let ids: Vec<_> =
        EPOCH_CHANNELS.iter().map(|name| by_id.channel_with_capacity(name, 1 << 20)).collect();
    let mut t = 0.0f64;
    group.bench_function("by_handle", |b| {
        b.iter(|| {
            t += 1.0;
            for &id in &ids {
                by_id.record_by_id(id, Seconds::new(t), black_box(1.0));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_network_step, bench_trace_record);
criterion_main!(benches);
