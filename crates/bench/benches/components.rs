//! Criterion microbenchmarks of the simulation substrates: thermal step,
//! sensor chain, controllers, full plant step, closed-loop epoch rate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gfsc::date14_gain_schedule;
use gfsc_control::AdaptivePid;
use gfsc_sensors::MeasurementPipeline;
use gfsc_server::{Server, ServerSpec};
use gfsc_thermal::ServerThermalModel;
use gfsc_units::{Bounds, Celsius, Rpm, Seconds, Utilization, Watts};
use gfsc_workload::{SquareWave, Workload};
use std::hint::black_box;

fn bench_thermal(c: &mut Criterion) {
    let mut group = c.benchmark_group("components/thermal");
    group.throughput(Throughput::Elements(1));
    let mut model = ServerThermalModel::date14(Celsius::new(30.0));
    group.bench_function("two_node_step", |b| {
        b.iter(|| {
            black_box(model.step(
                black_box(Seconds::new(0.5)),
                black_box(Watts::new(140.8)),
                black_box(Rpm::new(3000.0)),
            ))
        });
    });
    group.finish();
}

fn bench_sensors(c: &mut Criterion) {
    let mut group = c.benchmark_group("components/sensors");
    group.throughput(Throughput::Elements(1));
    let mut chain = MeasurementPipeline::date14();
    let mut t = 0.0;
    group.bench_function("pipeline_observe", |b| {
        b.iter(|| {
            t += 1.0;
            black_box(chain.observe(black_box(Seconds::new(t)), black_box(75.3)))
        });
    });
    group.finish();
}

fn bench_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("components/control");
    group.throughput(Throughput::Elements(1));
    let mut pid = AdaptivePid::new(
        date14_gain_schedule().clone(),
        Celsius::new(75.0),
        Bounds::new(Rpm::new(1000.0), Rpm::new(8500.0)),
        Some(1.0),
    );
    group.bench_function("adaptive_pid_decide", |b| {
        b.iter(|| {
            black_box(pid.decide(black_box(Celsius::new(77.0)), black_box(Rpm::new(3000.0))))
        });
    });
    group.finish();
}

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("components/server");
    group.throughput(Throughput::Elements(1));
    let mut server = Server::new(ServerSpec::enterprise_default());
    server.set_fan_target(Rpm::new(4000.0));
    group.bench_function("plant_step_0_5s", |b| {
        b.iter(|| {
            black_box(server.step(black_box(Seconds::new(0.5)), black_box(Utilization::new(0.7))))
        });
    });
    group.finish();
}

fn bench_closed_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("components/closed_loop");
    // Simulated seconds per wall-clock second is the metric that bounds
    // every experiment in the repository.
    group.throughput(Throughput::Elements(600));
    group.sample_size(20);
    group.bench_function("simulate_600s", |b| {
        b.iter(|| {
            let mut sim = gfsc_coord::ClosedLoopSim::builder()
                .workload(Workload::builder(SquareWave::date14()).build())
                .fan(AdaptivePid::new(
                    date14_gain_schedule().clone(),
                    Celsius::new(75.0),
                    ServerSpec::enterprise_default().fan_bounds,
                    Some(1.0),
                ))
                .build();
            black_box(sim.run(Seconds::new(600.0)))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_thermal,
    bench_sensors,
    bench_controller,
    bench_server,
    bench_closed_loop
);
criterion_main!(benches);
