//! Criterion bench: regenerating Fig. 5 (coordinated stability under
//! noise).

use criterion::{criterion_group, criterion_main, Criterion};
use gfsc::experiments::fig5::{run, Fig5Config};
use gfsc_units::Seconds;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let config = Fig5Config { horizon: Seconds::new(800.0), ..Fig5Config::default() };
    // Correctness gate.
    let fig = run(&config);
    assert!(fig.stable, "coordinated stack must be stable");

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("coordinated_run_800s", |b| {
        b.iter(|| black_box(run(black_box(&config))));
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
