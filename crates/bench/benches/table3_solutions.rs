//! Criterion bench: regenerating Table III (five-solution comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use gfsc::experiments::table3::{run, Table3Config};
use gfsc::Solution;
use gfsc_units::Seconds;
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let config = Table3Config { horizon: Seconds::new(900.0), seeds: vec![42] };
    // Correctness gate (reduced horizon; orderings that are robust even
    // on short runs).
    let table = run(&config);
    let base = table.row(Solution::WithoutCoordination).violation_percent.mean;
    let ecoord = table.row(Solution::ECoord).violation_percent.mean;
    assert!(ecoord > base, "E-coord must degrade performance most");

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("five_solutions_900s", |b| {
        b.iter(|| black_box(run(black_box(&config))));
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
