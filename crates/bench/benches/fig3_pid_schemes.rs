//! Criterion bench: regenerating Fig. 3 (adaptive vs fixed-gain PID).

use criterion::{criterion_group, criterion_main, Criterion};
use gfsc::experiments::fig3::{run, Fig3Config};
use gfsc_units::{Celsius, Seconds};
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    // One reduced-horizon configuration for timing (the full experiment
    // tunes three controllers and simulates 3 × 3200 s).
    let config = Fig3Config {
        horizon: Seconds::new(1600.0),
        period: Seconds::new(800.0),
        reference: Celsius::new(75.0),
    };
    // Correctness gate on the full default config once.
    let full = run(&Fig3Config::default());
    assert!(full.adaptive.stable, "adaptive must be stable");
    assert!(!full.fixed_high.stable, "fixed@6000 must oscillate");

    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("three_schemes_1600s", |b| {
        b.iter(|| black_box(run(black_box(&config))));
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
