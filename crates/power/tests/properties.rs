//! Property-based tests for the power models.

use gfsc_power::{CpuPowerModel, EnergyMeter, FanPowerModel, ServerPowerModel};
use gfsc_units::{Rpm, Seconds, Utilization, Watts};
use proptest::prelude::*;

proptest! {
    /// CPU power is monotone in utilization and stays within rated bounds.
    #[test]
    fn cpu_power_monotone_and_bounded(u1 in 0.0f64..=1.0, u2 in 0.0f64..=1.0) {
        let cpu = CpuPowerModel::date14();
        let p1 = cpu.power(Utilization::new(u1));
        let p2 = cpu.power(Utilization::new(u2));
        if u1 <= u2 {
            prop_assert!(p1 <= p2);
        }
        prop_assert!(p1 >= cpu.static_power());
        prop_assert!(p1 <= cpu.peak_power());
    }

    /// The CPU inverse model is a left inverse over the rated power range.
    #[test]
    fn cpu_inverse_round_trips(u in 0.0f64..=1.0) {
        let cpu = CpuPowerModel::date14();
        let back = cpu.utilization_for_power(cpu.power(Utilization::new(u)));
        prop_assert!((back.value() - u).abs() < 1e-9);
    }

    /// Fan power is monotone in speed and bounded by the rated maximum.
    #[test]
    fn fan_power_monotone_and_bounded(v1 in 0.0f64..9000.0, v2 in 0.0f64..9000.0) {
        let fan = FanPowerModel::date14();
        let p1 = fan.power(Rpm::new(v1));
        let p2 = fan.power(Rpm::new(v2));
        if v1 <= v2 {
            prop_assert!(p1 <= p2);
        }
        prop_assert!(p1 <= fan.max_power());
    }

    /// The cubic law: doubling the speed multiplies power by 8 (within the
    /// rated range).
    #[test]
    fn fan_power_is_cubic(v in 100.0f64..4250.0) {
        let fan = FanPowerModel::date14();
        let p1 = fan.power(Rpm::new(v)).value();
        let p2 = fan.power(Rpm::new(2.0 * v)).value();
        prop_assert!((p2 - 8.0 * p1).abs() < 1e-9 * p2.max(1e-12));
    }

    /// Energy metering is additive: integrating in two chunks equals one.
    #[test]
    fn energy_meter_additive(
        p in 0.0f64..300.0,
        t1 in 0.0f64..100.0,
        t2 in 0.0f64..100.0,
    ) {
        let mut a = EnergyMeter::new();
        a.accumulate(Watts::new(p), Seconds::new(t1));
        a.accumulate(Watts::new(p), Seconds::new(t2));
        let mut b = EnergyMeter::new();
        b.accumulate(Watts::new(p), Seconds::new(t1 + t2));
        prop_assert!((a.total().value() - b.total().value()).abs() < 1e-6);
    }

    /// Total server power decomposes exactly into CPU + fan parts.
    #[test]
    fn server_power_decomposes(u in 0.0f64..=1.0, v in 0.0f64..8500.0) {
        let s = ServerPowerModel::date14();
        let u = Utilization::new(u);
        let v = Rpm::new(v);
        let total = s.total(u, v).value();
        let parts = s.cpu_power(u).value() + s.fan_power(v).value();
        prop_assert!((total - parts).abs() < 1e-9);
    }
}
