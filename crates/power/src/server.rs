//! Aggregate server power.

use crate::{CpuPowerModel, FanPowerModel};
use gfsc_units::{Rpm, Utilization, Watts};

/// Total server power: `P_tot = P_cpu(u) + N_sockets · P_fan(V)`.
///
/// The paper targets a single-socket server with forced air cooling where
/// all fans run at the same speed; multi-socket configurations scale the
/// fan subsystem linearly.
///
/// # Examples
///
/// ```
/// use gfsc_power::ServerPowerModel;
/// use gfsc_units::{Rpm, Utilization};
///
/// let server = ServerPowerModel::date14();
/// let p = server.total(Utilization::new(0.7), Rpm::new(8500.0));
/// assert!((p.value() - (140.8 + 29.4)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerPowerModel {
    cpu: CpuPowerModel,
    fan: FanPowerModel,
    sockets: u32,
}

impl ServerPowerModel {
    /// Creates a model from per-socket CPU and fan models.
    ///
    /// # Panics
    ///
    /// Panics if `sockets` is zero.
    #[must_use]
    pub fn new(cpu: CpuPowerModel, fan: FanPowerModel, sockets: u32) -> Self {
        assert!(sockets > 0, "server must have at least one socket");
        Self { cpu, fan, sockets }
    }

    /// The DATE'14 single-socket server.
    #[must_use]
    pub fn date14() -> Self {
        Self::new(CpuPowerModel::date14(), FanPowerModel::date14(), 1)
    }

    /// The CPU power model.
    #[must_use]
    pub fn cpu(&self) -> &CpuPowerModel {
        &self.cpu
    }

    /// The per-socket fan power model.
    #[must_use]
    pub fn fan(&self) -> &FanPowerModel {
        &self.fan
    }

    /// Number of sockets.
    #[must_use]
    pub fn sockets(&self) -> u32 {
        self.sockets
    }

    /// CPU power at utilization `u` (aggregated across sockets).
    #[must_use]
    pub fn cpu_power(&self, u: Utilization) -> Watts {
        self.cpu.power(u) * f64::from(self.sockets)
    }

    /// Fan power at speed `v` (aggregated across sockets).
    #[must_use]
    pub fn fan_power(&self, v: Rpm) -> Watts {
        self.fan.power(v) * f64::from(self.sockets)
    }

    /// Total power at the operating point `(u, v)`.
    #[must_use]
    pub fn total(&self, u: Utilization, v: Rpm) -> Watts {
        self.cpu_power(u) + self.fan_power(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_socket_totals() {
        let s = ServerPowerModel::date14();
        assert_eq!(s.sockets(), 1);
        let idle = s.total(Utilization::IDLE, Rpm::new(0.0));
        assert_eq!(idle, Watts::new(96.0));
        let peak = s.total(Utilization::FULL, Rpm::new(8500.0));
        assert!((peak.value() - 189.4).abs() < 1e-9);
    }

    #[test]
    fn sockets_scale_both_subsystems() {
        let s = ServerPowerModel::new(CpuPowerModel::date14(), FanPowerModel::date14(), 2);
        let p = s.total(Utilization::FULL, Rpm::new(8500.0));
        assert!((p.value() - 2.0 * 189.4).abs() < 1e-9);
        assert!((s.cpu_power(Utilization::IDLE).value() - 192.0).abs() < 1e-9);
        assert!((s.fan_power(Rpm::new(8500.0)).value() - 58.8).abs() < 1e-9);
    }

    #[test]
    fn accessors_expose_components() {
        let s = ServerPowerModel::date14();
        assert_eq!(s.cpu().peak_power(), Watts::new(160.0));
        assert_eq!(s.fan().max_power(), Watts::new(29.4));
    }

    #[test]
    #[should_panic(expected = "at least one socket")]
    fn zero_sockets_rejected() {
        let _ = ServerPowerModel::new(CpuPowerModel::date14(), FanPowerModel::date14(), 0);
    }
}
