//! Cubic fan power law.

use gfsc_units::{Rpm, Watts};

/// Fan power as a cubic function of speed: `P_fan = P_max · (V / V_max)³`.
///
/// The cubic affinity law is why variable fan speed control saves so much
/// energy: halving the speed cuts fan power by 8×. Table I anchors the
/// curve at 29.4 W per socket at 8500 rpm.
///
/// # Examples
///
/// ```
/// use gfsc_power::FanPowerModel;
/// use gfsc_units::Rpm;
///
/// let fan = FanPowerModel::date14();
/// let half_speed = fan.power(Rpm::new(4250.0));
/// assert!((half_speed.value() - 29.4 / 8.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FanPowerModel {
    max_power: Watts,
    max_speed: Rpm,
}

impl FanPowerModel {
    /// Creates a model peaking at `max_power` when running at `max_speed`.
    ///
    /// # Panics
    ///
    /// Panics if `max_speed` is zero.
    #[must_use]
    pub fn new(max_power: Watts, max_speed: Rpm) -> Self {
        assert!(max_speed.value() > 0.0, "max fan speed must be positive");
        Self { max_power, max_speed }
    }

    /// The DATE'14 Table I model: 29.4 W per socket at 8500 rpm.
    #[must_use]
    pub fn date14() -> Self {
        Self::new(Watts::new(29.4), Rpm::new(8500.0))
    }

    /// Power at the rated maximum speed.
    #[must_use]
    pub fn max_power(&self) -> Watts {
        self.max_power
    }

    /// The rated maximum speed.
    #[must_use]
    pub fn max_speed(&self) -> Rpm {
        self.max_speed
    }

    /// Power at speed `v` (clamped to the rated maximum).
    #[must_use]
    pub fn power(&self, v: Rpm) -> Watts {
        let ratio = v.min(self.max_speed).ratio_of(self.max_speed);
        self.max_power * (ratio * ratio * ratio)
    }

    /// Inverse model: the speed that would draw power `p`, clamped to the
    /// rated range.
    #[must_use]
    pub fn speed_for_power(&self, p: Watts) -> Rpm {
        if self.max_power.value() == 0.0 {
            return Rpm::new(0.0);
        }
        let ratio = (p.value() / self.max_power.value()).clamp(0.0, 1.0);
        Rpm::new(self.max_speed.value() * ratio.cbrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_match_table1() {
        let fan = FanPowerModel::date14();
        assert!((fan.power(Rpm::new(8500.0)).value() - 29.4).abs() < 1e-12);
        assert_eq!(fan.power(Rpm::new(0.0)), Watts::new(0.0));
        assert_eq!(fan.max_power(), Watts::new(29.4));
        assert_eq!(fan.max_speed(), Rpm::new(8500.0));
    }

    #[test]
    fn cubic_scaling() {
        let fan = FanPowerModel::date14();
        let p_half = fan.power(Rpm::new(4250.0)).value();
        assert!((p_half - 29.4 / 8.0).abs() < 1e-12);
        let p_tenth = fan.power(Rpm::new(850.0)).value();
        assert!((p_tenth - 29.4 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn clamps_above_rated_speed() {
        let fan = FanPowerModel::date14();
        assert_eq!(fan.power(Rpm::new(20_000.0)), fan.power(Rpm::new(8500.0)));
    }

    #[test]
    fn inverse_round_trips() {
        let fan = FanPowerModel::date14();
        for v in [1000.0, 2000.0, 4250.0, 8500.0] {
            let p = fan.power(Rpm::new(v));
            let back = fan.speed_for_power(p);
            assert!((back.value() - v).abs() < 1e-6, "v={v}");
        }
    }

    #[test]
    fn inverse_clamps() {
        let fan = FanPowerModel::date14();
        assert_eq!(fan.speed_for_power(Watts::new(100.0)), Rpm::new(8500.0));
        assert_eq!(fan.speed_for_power(Watts::new(0.0)), Rpm::new(0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_max_speed_rejected() {
        let _ = FanPowerModel::new(Watts::new(29.4), Rpm::new(0.0));
    }
}
