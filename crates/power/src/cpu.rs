//! Linear CPU power model.

use gfsc_units::{Utilization, Watts};

/// CPU socket power as a linear function of utilization (paper Eq. 1):
/// `P_cpu = P_static + P_dyn · u`.
///
/// Table I gives `P_idle = 96 W` and `P_max = 160 W`, so the maximum
/// dynamic power is 64 W.
///
/// # Examples
///
/// ```
/// use gfsc_power::CpuPowerModel;
/// use gfsc_units::Utilization;
///
/// let cpu = CpuPowerModel::date14();
/// let p = cpu.power(Utilization::new(0.7));
/// assert!((p.value() - 140.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPowerModel {
    static_power: Watts,
    dynamic_max: Watts,
}

impl CpuPowerModel {
    /// Creates a model with the given static (idle) power and maximum
    /// dynamic power.
    #[must_use]
    pub fn new(static_power: Watts, dynamic_max: Watts) -> Self {
        Self { static_power, dynamic_max }
    }

    /// The DATE'14 Table I model: 96 W idle, 160 W at full load.
    #[must_use]
    pub fn date14() -> Self {
        Self::new(Watts::new(96.0), Watts::new(64.0))
    }

    /// Static (idle) power `P_static`.
    #[must_use]
    pub fn static_power(&self) -> Watts {
        self.static_power
    }

    /// Maximum dynamic power `P_dyn` (consumed on top of static at `u = 1`).
    #[must_use]
    pub fn dynamic_max(&self) -> Watts {
        self.dynamic_max
    }

    /// Peak total power at `u = 1`.
    #[must_use]
    pub fn peak_power(&self) -> Watts {
        self.static_power + self.dynamic_max
    }

    /// Power at utilization `u`.
    #[must_use]
    pub fn power(&self, u: Utilization) -> Watts {
        self.static_power + self.dynamic_max * u.value()
    }

    /// Inverse model: the utilization that would draw `p`, clamped to
    /// `[0, 1]`. Model-based coordinators use this to translate a thermal
    /// power budget into a CPU cap.
    #[must_use]
    pub fn utilization_for_power(&self, p: Watts) -> Utilization {
        if self.dynamic_max.value() == 0.0 {
            return Utilization::IDLE;
        }
        Utilization::new((p.value() - self.static_power.value()) / self.dynamic_max.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_table1() {
        let cpu = CpuPowerModel::date14();
        assert_eq!(cpu.power(Utilization::IDLE), Watts::new(96.0));
        assert_eq!(cpu.power(Utilization::FULL), Watts::new(160.0));
        assert_eq!(cpu.peak_power(), Watts::new(160.0));
        assert_eq!(cpu.static_power(), Watts::new(96.0));
        assert_eq!(cpu.dynamic_max(), Watts::new(64.0));
    }

    #[test]
    fn linearity() {
        let cpu = CpuPowerModel::date14();
        let half = cpu.power(Utilization::new(0.5)).value();
        assert!((half - 128.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trips() {
        let cpu = CpuPowerModel::date14();
        for u in [0.0, 0.1, 0.5, 0.7, 1.0] {
            let p = cpu.power(Utilization::new(u));
            let back = cpu.utilization_for_power(p);
            assert!((back.value() - u).abs() < 1e-12, "u={u}");
        }
    }

    #[test]
    fn inverse_clamps_out_of_range() {
        let cpu = CpuPowerModel::date14();
        assert_eq!(cpu.utilization_for_power(Watts::new(50.0)), Utilization::IDLE);
        assert_eq!(cpu.utilization_for_power(Watts::new(500.0)), Utilization::FULL);
    }

    #[test]
    fn degenerate_zero_dynamic_power() {
        let cpu = CpuPowerModel::new(Watts::new(50.0), Watts::new(0.0));
        assert_eq!(cpu.power(Utilization::FULL), Watts::new(50.0));
        assert_eq!(cpu.utilization_for_power(Watts::new(50.0)), Utilization::IDLE);
    }
}
