//! Power-over-time integration.

use gfsc_units::{Joules, Seconds, Watts};

/// Accumulates energy from piecewise-constant power samples.
///
/// In a fixed-step simulation the power is constant within a step (it only
/// changes when a controller fires), so rectangle integration is exact.
/// The meter also tracks total time, exposing the average power.
///
/// # Examples
///
/// ```
/// use gfsc_power::EnergyMeter;
/// use gfsc_units::{Seconds, Watts};
///
/// let mut meter = EnergyMeter::new();
/// meter.accumulate(Watts::new(10.0), Seconds::new(30.0));
/// meter.accumulate(Watts::new(20.0), Seconds::new(30.0));
/// assert_eq!(meter.total().value(), 900.0);
/// assert_eq!(meter.average_power().unwrap().value(), 15.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    total: Joules,
    elapsed: Seconds,
}

impl EnergyMeter {
    /// Creates an empty meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `power × dt` to the running total.
    pub fn accumulate(&mut self, power: Watts, dt: Seconds) {
        self.total += power * dt;
        self.elapsed += dt;
    }

    /// Total accumulated energy.
    #[must_use]
    pub fn total(&self) -> Joules {
        self.total
    }

    /// Total integrated time.
    #[must_use]
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// Average power over the integrated interval, or `None` before any
    /// time has been accumulated.
    #[must_use]
    pub fn average_power(&self) -> Option<Watts> {
        if self.elapsed.is_zero() {
            None
        } else {
            Some(self.total / self.elapsed)
        }
    }

    /// Resets the meter to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_rectangles() {
        let mut m = EnergyMeter::new();
        m.accumulate(Watts::new(100.0), Seconds::new(1.0));
        m.accumulate(Watts::new(100.0), Seconds::new(1.0));
        m.accumulate(Watts::new(50.0), Seconds::new(2.0));
        assert_eq!(m.total(), Joules::new(300.0));
        assert_eq!(m.elapsed(), Seconds::new(4.0));
    }

    #[test]
    fn average_power() {
        let mut m = EnergyMeter::new();
        assert!(m.average_power().is_none());
        m.accumulate(Watts::new(30.0), Seconds::new(10.0));
        m.accumulate(Watts::new(10.0), Seconds::new(10.0));
        assert_eq!(m.average_power().unwrap(), Watts::new(20.0));
    }

    #[test]
    fn zero_dt_is_a_no_op() {
        let mut m = EnergyMeter::new();
        m.accumulate(Watts::new(100.0), Seconds::new(0.0));
        assert_eq!(m.total(), Joules::new(0.0));
        assert!(m.average_power().is_none());
    }

    #[test]
    fn reset_clears_state() {
        let mut m = EnergyMeter::new();
        m.accumulate(Watts::new(100.0), Seconds::new(5.0));
        m.reset();
        assert_eq!(m.total(), Joules::new(0.0));
        assert!(m.elapsed().is_zero());
    }
}
