//! Server power models (paper Section III-B).
//!
//! Total server power is `P_tot = P_cpu + P_fan` with
//!
//! - `P_cpu = P_static + P_dyn · u` — linear in CPU utilization
//!   (Economou et al., WMBS'06; Pedram & Hwang, ICPPW'10),
//! - `P_fan ∝ s_fan³` — the cubic fan affinity law, anchored at the Table I
//!   figure of 29.4 W per socket at 8500 rpm.
//!
//! [`EnergyMeter`] integrates power over simulation steps; the Table III
//! metric "normalized fan energy" is the ratio of two meters' totals.
//!
//! # Examples
//!
//! ```
//! use gfsc_power::{CpuPowerModel, FanPowerModel};
//! use gfsc_units::{Rpm, Utilization};
//!
//! let cpu = CpuPowerModel::date14();
//! assert_eq!(cpu.power(Utilization::IDLE).value(), 96.0);
//! assert_eq!(cpu.power(Utilization::FULL).value(), 160.0);
//!
//! let fan = FanPowerModel::date14();
//! assert!((fan.power(Rpm::new(8500.0)).value() - 29.4).abs() < 1e-9);
//! assert!((fan.power(Rpm::new(4250.0)).value() - 29.4 / 8.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod energy;
mod fan;
mod server;

pub use cpu::CpuPowerModel;
pub use energy::EnergyMeter;
pub use fan::FanPowerModel;
pub use server::ServerPowerModel;
