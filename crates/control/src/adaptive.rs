//! Gain-scheduled adaptive PID (paper Section IV-B, Eq. 8–9).

use crate::{PidController, PidGains, QuantizationHold};
use gfsc_units::{Bounds, Celsius, Rpm};

/// One linearization region: a reference fan speed and the PID gains tuned
/// there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    ref_speed: Rpm,
    gains: PidGains,
}

impl Region {
    /// Creates a region tuned at `ref_speed`.
    #[must_use]
    pub fn new(ref_speed: Rpm, gains: PidGains) -> Self {
        Self { ref_speed, gains }
    }

    /// The reference fan speed `s_fan^ref(i)`.
    #[must_use]
    pub fn ref_speed(&self) -> Rpm {
        self.ref_speed
    }

    /// The gains tuned at this region's reference speed.
    #[must_use]
    pub fn gains(&self) -> PidGains {
        self.gains
    }
}

/// An ordered set of linearization regions with Eq. (8)–(9) interpolation.
///
/// The paper found two regions (2000 and 6000 rpm) sufficient to linearize
/// the temperature/fan-speed relationship of its server within 5 %. At
/// runtime the schedule finds the bracketing pair
/// `s_ref(i) ≤ s_fan ≤ s_ref(i+1)` and blends their gains with weight
/// `α = (s_fan − s_ref(i)) / (s_ref(i+1) − s_ref(i))`. Speeds outside the
/// covered span use the nearest region's gains (α clamped).
///
/// # Examples
///
/// ```
/// use gfsc_control::{GainSchedule, PidGains, Region};
/// use gfsc_units::Rpm;
///
/// let schedule = GainSchedule::new(vec![
///     Region::new(Rpm::new(2000.0), PidGains::new(100.0, 10.0, 40.0)),
///     Region::new(Rpm::new(6000.0), PidGains::new(300.0, 30.0, 120.0)),
/// ]).unwrap();
/// let mid = schedule.gains_at(Rpm::new(4000.0));
/// assert_eq!(mid.kp(), 200.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GainSchedule {
    regions: Vec<Region>,
}

impl GainSchedule {
    /// Creates a schedule from regions sorted by reference speed.
    ///
    /// # Errors
    ///
    /// Returns the offending region list if it is empty or not strictly
    /// increasing in reference speed.
    pub fn new(regions: Vec<Region>) -> Result<Self, Vec<Region>> {
        let ok = !regions.is_empty() && regions.windows(2).all(|w| w[0].ref_speed < w[1].ref_speed);
        if ok {
            Ok(Self { regions })
        } else {
            Err(regions)
        }
    }

    /// The regions in ascending reference-speed order.
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The index of the bracketing segment for `speed`: `i` such that
    /// `s_ref(i) ≤ speed < s_ref(i+1)`, clamped to the covered span.
    ///
    /// Used to detect *region changes*, which reset the integrator.
    #[must_use]
    pub fn segment_index(&self, speed: Rpm) -> usize {
        if self.regions.len() == 1 {
            return 0;
        }
        let mut idx = self.regions.partition_point(|r| r.ref_speed <= speed);
        // partition_point gives the first region above `speed`; the segment
        // is anchored at the region below it.
        idx = idx.saturating_sub(1);
        idx.min(self.regions.len() - 2)
    }

    /// The interpolated gains at `speed` (Eq. 8–9, α clamped to `[0, 1]`).
    #[must_use]
    pub fn gains_at(&self, speed: Rpm) -> PidGains {
        if self.regions.len() == 1 {
            return self.regions[0].gains;
        }
        let i = self.segment_index(speed);
        let a = &self.regions[i];
        let b = &self.regions[i + 1];
        let alpha = ((speed - a.ref_speed) / (b.ref_speed - a.ref_speed)).clamp(0.0, 1.0);
        a.gains.lerp(&b.gains, alpha)
    }
}

/// The paper's robust fan-speed controller: gain-scheduled PID with
/// integral reset on region change and the quantization hold of Eq. (10).
///
/// Each fan decision period, [`AdaptivePid::decide`]:
///
/// 1. interpolates the PID gains for the *current operating fan speed*
///    (Eq. 8–9),
/// 2. on a region change, re-bases the offset `s_ref` to the current fan
///    speed (bumpless transfer) and zeroes `Σ∆T` as prescribed,
/// 3. runs the positional PID of Eq. (4) on
///    `∆T = T_meas − T_ref`,
/// 4. clamps to the actuator bounds, and
/// 5. holds the previous speed when `|T_ref − T_meas| < |T_Q|` (Eq. 10).
#[derive(Debug, Clone)]
pub struct AdaptivePid {
    schedule: GainSchedule,
    pid: PidController,
    bounds: Bounds<f64>,
    hold: Option<QuantizationHold>,
    current_segment: Option<usize>,
    reference: Celsius,
    descent_limit: Option<f64>,
    trend_gate: Option<f64>,
    last_measured: Option<Celsius>,
}

impl AdaptivePid {
    /// Creates the controller.
    ///
    /// * `schedule` — per-region tuned gains,
    /// * `reference` — the fan-loop set-point `T_ref^fan`,
    /// * `bounds` — actuator limits (min/max commandable fan speed),
    /// * `quantization_step` — `|T_Q|` for Eq. (10), or `None` to disable
    ///   the hold (ablation).
    #[must_use]
    pub fn new(
        schedule: GainSchedule,
        reference: Celsius,
        bounds: Bounds<Rpm>,
        quantization_step: Option<f64>,
    ) -> Self {
        let initial_gains = schedule.regions()[0].gains();
        let f_bounds = Bounds::new(bounds.lo().value(), bounds.hi().value());
        Self {
            schedule,
            pid: PidController::new(initial_gains).with_output_bounds(f_bounds),
            bounds: f_bounds,
            hold: quantization_step.map(QuantizationHold::new),
            current_segment: None,
            reference,
            descent_limit: None,
            trend_gate: None,
            last_measured: None,
        }
    }

    /// The workspace's standard configuration of the adaptive controller
    /// — the exact recipe every closed loop (server simulation, fan-study
    /// experiments, rack zone loops) runs: the Eq. (10) quantization hold
    /// when `quantization_step > 0`, the 2000 rpm/decision bounded
    /// descent, and the `max(step, 0.5)` K trend gate (DESIGN.md §5).
    /// Change the calibration here, and every loop follows.
    #[must_use]
    pub fn date14_configured(
        schedule: GainSchedule,
        reference: Celsius,
        bounds: Bounds<Rpm>,
        quantization_step: f64,
    ) -> Self {
        let hold = (quantization_step > 0.0).then_some(quantization_step);
        Self::new(schedule, reference, bounds, hold)
            .with_descent_limit(2000.0)
            .with_trend_gate(quantization_step.max(0.5))
    }

    /// Enables measurement-trend gating: when the error still calls for
    /// more actuation but the *measurement is already moving to correct
    /// it* by at least `threshold` kelvin per decision, hold instead.
    ///
    /// With a 10 s transport lag, the measured temperature keeps demanding
    /// "more fan" for a full lag interval after the plant has already
    /// turned around; acting on that stale demand double-corrects (rail
    /// the fan up, then rail it back down). Gating on the measured trend
    /// is a one-sample dead-time compensator: it costs nothing when the
    /// plant is drifting (trend ≈ 0) and suppresses exactly the
    /// stale-error pushes. A natural `threshold` is the quantization step
    /// (1 °C), making the trend detectable despite the ADC grid.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive.
    #[must_use]
    pub fn with_trend_gate(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "trend-gate threshold must be positive");
        self.trend_gate = Some(threshold);
        self
    }

    /// Limits how far a single decision may *lower* the fan speed (rpm per
    /// decision period). Ascents stay unlimited — raising airflow is the
    /// safe direction.
    ///
    /// Slamming from a high post-emergency speed straight to the minimum
    /// parks the plant in a long under-airflow dwell whose recovery
    /// overshoots the reference (the measurement lag hides the
    /// turnaround); descending in bounded steps re-evaluates the loop each
    /// period and lands near the equilibrium instead.
    ///
    /// # Panics
    ///
    /// Panics if `rpm_per_decision` is not positive.
    #[must_use]
    pub fn with_descent_limit(mut self, rpm_per_decision: f64) -> Self {
        assert!(rpm_per_decision > 0.0, "descent limit must be positive");
        self.descent_limit = Some(rpm_per_decision);
        self
    }

    /// The active set-point `T_ref^fan`.
    #[must_use]
    pub fn reference(&self) -> Celsius {
        self.reference
    }

    /// Changes the set-point (the predictive scheme of Section V-B adjusts
    /// it every fan period).
    pub fn set_reference(&mut self, reference: Celsius) {
        self.reference = reference;
    }

    /// The gain schedule.
    #[must_use]
    pub fn schedule(&self) -> &GainSchedule {
        &self.schedule
    }

    /// Clears dynamic state (integrator, derivative history, region
    /// tracking, trend history).
    pub fn reset(&mut self) {
        self.pid.reset();
        self.current_segment = None;
        self.last_measured = None;
    }

    /// One fan decision: maps the measured temperature and current fan
    /// speed to the next commanded speed.
    pub fn decide(&mut self, measured: Celsius, current_speed: Rpm) -> Rpm {
        // Trend gating (see `with_trend_gate`): hold while the measurement
        // is already moving to correct the error.
        if let (Some(threshold), Some(last)) = (self.trend_gate, self.last_measured) {
            let error = measured - self.reference;
            let trend = measured - last;
            let correcting =
                (error > 0.0 && trend <= -threshold) || (error < 0.0 && trend >= threshold);
            self.last_measured = Some(measured);
            if correcting {
                return current_speed;
            }
        } else {
            self.last_measured = Some(measured);
        }

        let segment = self.schedule.segment_index(current_speed);
        if self.current_segment != Some(segment) {
            if self.current_segment.is_some() {
                // Region change: re-base the linearization point and zero
                // the accumulated error, per Section IV-B.
                self.pid.reset_integral();
            }
            self.pid.set_offset(current_speed.value());
            self.current_segment = Some(segment);
        }
        self.pid.set_gains(self.schedule.gains_at(current_speed));

        let error = measured - self.reference;
        // Deadband shaping: the PID integrates only the error in excess of
        // the quantization band, keeping the law continuous at the hold
        // edge (see `QuantizationHold::shaped_error`).
        let control_error = match &self.hold {
            Some(hold) => hold.shaped_error(error),
            None => error,
        };
        let raw = self.pid.update(control_error);
        let mut clamped = self.bounds.clamp(raw);
        if let Some(limit) = self.descent_limit {
            let floor = current_speed.value() - limit;
            if clamped < floor {
                clamped = self.bounds.clamp(floor);
            }
        }
        let command = Rpm::new(clamped);

        match &self.hold {
            Some(hold) if hold.should_hold(error) => {
                // In-band: the loop is at target. Integral history from the
                // preceding transient is no longer meaningful and would
                // bias (and delay) the response to the *next* excursion,
                // so bleed it off while held.
                self.pid.reset_integral();
                current_speed
            }
            _ => command,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_region_schedule() -> GainSchedule {
        GainSchedule::new(vec![
            Region::new(Rpm::new(2000.0), PidGains::new(100.0, 10.0, 40.0)),
            Region::new(Rpm::new(6000.0), PidGains::new(300.0, 30.0, 120.0)),
        ])
        .unwrap()
    }

    #[test]
    fn region_accessors() {
        let r = Region::new(Rpm::new(2000.0), PidGains::proportional(5.0));
        assert_eq!(r.ref_speed(), Rpm::new(2000.0));
        assert_eq!(r.gains().kp(), 5.0);
    }

    #[test]
    fn schedule_interpolates_linearly() {
        let s = two_region_schedule();
        // Eq. 9: alpha = (3000 - 2000) / (6000 - 2000) = 0.25.
        let g = s.gains_at(Rpm::new(3000.0));
        assert_eq!(g.kp(), 150.0);
        assert_eq!(g.ki(), 15.0);
        assert_eq!(g.kd(), 60.0);
    }

    #[test]
    fn schedule_clamps_outside_span() {
        let s = two_region_schedule();
        assert_eq!(s.gains_at(Rpm::new(500.0)), s.regions()[0].gains());
        assert_eq!(s.gains_at(Rpm::new(8500.0)), s.regions()[1].gains());
    }

    #[test]
    fn schedule_hits_region_gains_at_references() {
        let s = two_region_schedule();
        assert_eq!(s.gains_at(Rpm::new(2000.0)), s.regions()[0].gains());
        assert_eq!(s.gains_at(Rpm::new(6000.0)), s.regions()[1].gains());
    }

    #[test]
    fn segment_index_brackets() {
        let s = GainSchedule::new(vec![
            Region::new(Rpm::new(2000.0), PidGains::proportional(1.0)),
            Region::new(Rpm::new(4000.0), PidGains::proportional(2.0)),
            Region::new(Rpm::new(6000.0), PidGains::proportional(3.0)),
        ])
        .unwrap();
        assert_eq!(s.segment_index(Rpm::new(1000.0)), 0);
        assert_eq!(s.segment_index(Rpm::new(2500.0)), 0);
        assert_eq!(s.segment_index(Rpm::new(4000.0)), 1);
        assert_eq!(s.segment_index(Rpm::new(5999.0)), 1);
        assert_eq!(s.segment_index(Rpm::new(9000.0)), 1);
    }

    #[test]
    fn single_region_schedule_is_constant() {
        let s = GainSchedule::new(vec![Region::new(Rpm::new(4000.0), PidGains::proportional(7.0))])
            .unwrap();
        assert_eq!(s.segment_index(Rpm::new(100.0)), 0);
        assert_eq!(s.gains_at(Rpm::new(100.0)).kp(), 7.0);
        assert_eq!(s.gains_at(Rpm::new(9000.0)).kp(), 7.0);
    }

    #[test]
    fn schedule_rejects_unsorted_or_empty() {
        assert!(GainSchedule::new(vec![]).is_err());
        let unsorted = vec![
            Region::new(Rpm::new(6000.0), PidGains::default()),
            Region::new(Rpm::new(2000.0), PidGains::default()),
        ];
        assert!(GainSchedule::new(unsorted).is_err());
    }

    fn controller(hold: Option<f64>) -> AdaptivePid {
        AdaptivePid::new(
            two_region_schedule(),
            Celsius::new(75.0),
            Bounds::new(Rpm::new(1000.0), Rpm::new(8500.0)),
            hold,
        )
    }

    #[test]
    fn hot_measurement_raises_fan_speed() {
        let mut c = controller(None);
        let cmd = c.decide(Celsius::new(80.0), Rpm::new(3000.0));
        assert!(cmd > Rpm::new(3000.0), "cmd {cmd}");
    }

    #[test]
    fn cold_measurement_lowers_fan_speed() {
        let mut c = controller(None);
        let cmd = c.decide(Celsius::new(65.0), Rpm::new(5000.0));
        assert!(cmd < Rpm::new(5000.0), "cmd {cmd}");
    }

    #[test]
    fn command_respects_actuator_bounds() {
        let mut c = controller(None);
        let high = c.decide(Celsius::new(200.0), Rpm::new(8000.0));
        assert!(high <= Rpm::new(8500.0));
        let mut c = controller(None);
        let low = c.decide(Celsius::new(0.0), Rpm::new(1500.0));
        assert!(low >= Rpm::new(1000.0));
    }

    #[test]
    fn quantization_hold_freezes_small_errors() {
        let mut c = controller(Some(1.0));
        // |error| = 0.5: hold the current speed exactly.
        let cmd = c.decide(Celsius::new(75.5), Rpm::new(4000.0));
        assert_eq!(cmd, Rpm::new(4000.0));
        // |error| = 1.0 is one grid step: still held (inclusive rule).
        let cmd = c.decide(Celsius::new(76.0), Rpm::new(4000.0));
        assert_eq!(cmd, Rpm::new(4000.0));
        // |error| beyond a step: controller acts.
        let cmd = c.decide(Celsius::new(77.5), Rpm::new(4000.0));
        assert!(cmd > Rpm::new(4000.0));
    }

    #[test]
    fn without_hold_small_errors_still_act() {
        let mut c = controller(None);
        let cmd = c.decide(Celsius::new(75.4), Rpm::new(4000.0));
        assert_ne!(cmd, Rpm::new(4000.0));
    }

    #[test]
    fn region_change_resets_integral() {
        let mut c = AdaptivePid::new(
            GainSchedule::new(vec![
                Region::new(Rpm::new(2000.0), PidGains::new(0.0, 10.0, 0.0)),
                Region::new(Rpm::new(4000.0), PidGains::new(0.0, 10.0, 0.0)),
                Region::new(Rpm::new(6000.0), PidGains::new(0.0, 10.0, 0.0)),
            ])
            .unwrap(),
            Celsius::new(75.0),
            Bounds::new(Rpm::new(1000.0), Rpm::new(8500.0)),
            None,
        );
        // Build up integral inside segment 0.
        c.decide(Celsius::new(80.0), Rpm::new(2500.0));
        c.decide(Celsius::new(80.0), Rpm::new(2600.0));
        assert!(c.pid.integral() > 0.0);
        // Crossing into segment 1 must zero it.
        c.decide(Celsius::new(80.0), Rpm::new(4500.0));
        // After the reset, one update with error 5 leaves integral == 5.
        assert_eq!(c.pid.integral(), 5.0);
    }

    #[test]
    fn offset_rebased_on_region_change() {
        let mut c = controller(None);
        let _ = c.decide(Celsius::new(75.0), Rpm::new(2500.0));
        assert_eq!(c.pid.offset(), 2500.0);
        // Still in the same segment: offset unchanged.
        let _ = c.decide(Celsius::new(75.0), Rpm::new(3000.0));
        assert_eq!(c.pid.offset(), 2500.0);
    }

    #[test]
    fn set_reference_shifts_equilibrium() {
        let mut c = controller(None);
        assert_eq!(c.reference(), Celsius::new(75.0));
        c.set_reference(Celsius::new(70.0));
        // 72 °C now reads as "too hot" instead of "too cold".
        let cmd = c.decide(Celsius::new(72.0), Rpm::new(4000.0));
        assert!(cmd > Rpm::new(4000.0));
    }

    #[test]
    fn reset_clears_tracking() {
        let mut c = controller(None);
        c.decide(Celsius::new(80.0), Rpm::new(3000.0));
        c.reset();
        assert_eq!(c.pid.integral(), 0.0);
        // First decide after reset re-bases the offset without an integral
        // reset (no previous segment).
        let _ = c.decide(Celsius::new(80.0), Rpm::new(5000.0));
        assert_eq!(c.pid.offset(), 5000.0);
    }

    #[test]
    fn schedule_accessor() {
        let c = controller(None);
        assert_eq!(c.schedule().regions().len(), 2);
    }

    #[test]
    fn descent_limit_bounds_downward_moves_only() {
        let mut c = AdaptivePid::new(
            two_region_schedule(),
            Celsius::new(75.0),
            Bounds::new(Rpm::new(1000.0), Rpm::new(8500.0)),
            None,
        )
        .with_descent_limit(1200.0);
        // Very cold: unlimited PID would command the minimum.
        let cmd = c.decide(Celsius::new(60.0), Rpm::new(6000.0));
        assert_eq!(cmd, Rpm::new(4800.0), "descent clipped to 1200 rpm");
        // Very hot: ascents remain unlimited.
        let mut c2 = AdaptivePid::new(
            two_region_schedule(),
            Celsius::new(75.0),
            Bounds::new(Rpm::new(1000.0), Rpm::new(8500.0)),
            None,
        )
        .with_descent_limit(1200.0);
        let cmd = c2.decide(Celsius::new(95.0), Rpm::new(6000.0));
        assert_eq!(cmd, Rpm::new(8500.0));
    }

    #[test]
    #[should_panic(expected = "descent limit")]
    fn zero_descent_limit_rejected() {
        let _ = controller(None).with_descent_limit(0.0);
    }

    #[test]
    fn trend_gate_holds_while_measurement_corrects() {
        let mut c = controller(None).with_trend_gate(1.0);
        // First decision seeds the trend history and acts normally.
        let first = c.decide(Celsius::new(82.0), Rpm::new(3000.0));
        assert!(first > Rpm::new(3000.0));
        // Still hot, but falling 2 K/decision: hold (the plant has already
        // turned around; the lag just hasn't caught up).
        let held = c.decide(Celsius::new(80.0), Rpm::new(first.value()));
        assert_eq!(held, first);
        // Hot and *not* falling: act again (the command moves off the
        // held speed; its exact value depends on the PID state).
        let acted = c.decide(Celsius::new(80.0), Rpm::new(first.value()));
        assert_ne!(acted, first);
        assert!(acted > Rpm::new(3000.0));
    }

    #[test]
    fn trend_gate_holds_on_cold_but_rising() {
        let mut c = controller(None).with_trend_gate(1.0);
        let _ = c.decide(Celsius::new(70.0), Rpm::new(5000.0));
        // Cold (wants fan down) but rising 2 K/decision: hold.
        let held = c.decide(Celsius::new(72.0), Rpm::new(5000.0));
        assert_eq!(held, Rpm::new(5000.0));
    }

    #[test]
    fn trend_gate_ignores_sub_threshold_drift() {
        let mut c = controller(None).with_trend_gate(1.0);
        let _ = c.decide(Celsius::new(82.0), Rpm::new(3000.0));
        // Falling only 0.5 K/decision (below threshold): still act.
        let cmd = c.decide(Celsius::new(81.5), Rpm::new(3000.0));
        assert!(cmd > Rpm::new(3000.0));
    }

    #[test]
    #[should_panic(expected = "trend-gate")]
    fn zero_trend_gate_rejected() {
        let _ = controller(None).with_trend_gate(0.0);
    }
}
