//! Discrete positional PID controller (paper Eq. 4).

use gfsc_units::Bounds;

/// The three PID coefficients.
///
/// Units are implied by the loop: for the fan controller, `kp` is
/// rpm per kelvin, `ki` rpm per kelvin·step, `kd` rpm·step per kelvin,
/// with all time quantities expressed in controller decision periods
/// (the paper's Eq. 4 sums and differences raw per-period errors).
///
/// # Examples
///
/// ```
/// use gfsc_control::PidGains;
///
/// let g = PidGains::new(120.0, 10.0, 45.0);
/// assert_eq!(g.kp(), 120.0);
/// let scaled = g.scaled(0.5);
/// assert_eq!(scaled.kp(), 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PidGains {
    kp: f64,
    ki: f64,
    kd: f64,
}

impl PidGains {
    /// Creates a gain set.
    ///
    /// # Panics
    ///
    /// Panics if any gain is NaN.
    #[must_use]
    pub fn new(kp: f64, ki: f64, kd: f64) -> Self {
        assert!(!kp.is_nan() && !ki.is_nan() && !kd.is_nan(), "gains must not be NaN");
        Self { kp, ki, kd }
    }

    /// Proportional-only gains (used during Ziegler–Nichols probing).
    #[must_use]
    pub fn proportional(kp: f64) -> Self {
        Self::new(kp, 0.0, 0.0)
    }

    /// The proportional gain.
    #[must_use]
    pub fn kp(&self) -> f64 {
        self.kp
    }

    /// The integral gain (per decision period).
    #[must_use]
    pub fn ki(&self) -> f64 {
        self.ki
    }

    /// The derivative gain (per decision period).
    #[must_use]
    pub fn kd(&self) -> f64 {
        self.kd
    }

    /// All three gains multiplied by `k`.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        Self::new(self.kp * k, self.ki * k, self.kd * k)
    }

    /// Component-wise linear interpolation toward `other` (Eq. 8):
    /// `(1−α)·self + α·other`.
    #[must_use]
    pub fn lerp(&self, other: &Self, alpha: f64) -> Self {
        Self::new(
            self.kp + (other.kp - self.kp) * alpha,
            self.ki + (other.ki - self.ki) * alpha,
            self.kd + (other.kd - self.kd) * alpha,
        )
    }
}

/// The discrete positional PID of the paper's Eq. (4):
///
/// ```text
/// u(k+1) = offset + K_P·e(k) + K_I·Σᵢe(i) + K_D·(e(k) − e(k−1))
/// ```
///
/// where `e = measurement − setpoint`. The `offset` is the linearization
/// point (`s_ref^fan` for the fan loop). Output clamping and conditional
/// anti-windup are built in: when the clamped output saturates *and* the
/// current error would push it further into saturation, the integrator
/// holds instead of winding up.
///
/// # Examples
///
/// ```
/// use gfsc_control::{PidController, PidGains};
///
/// let mut pid = PidController::new(PidGains::new(2.0, 0.5, 0.0)).with_offset(10.0);
/// assert_eq!(pid.update(1.0), 10.0 + 2.0 + 0.5);
/// // Steady error keeps integrating:
/// assert_eq!(pid.update(1.0), 10.0 + 2.0 + 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct PidController {
    gains: PidGains,
    offset: f64,
    bounds: Option<Bounds<f64>>,
    integral: f64,
    prev_error: Option<f64>,
}

impl PidController {
    /// Creates a controller with zero offset and unbounded output.
    #[must_use]
    pub fn new(gains: PidGains) -> Self {
        Self { gains, offset: 0.0, bounds: None, integral: 0.0, prev_error: None }
    }

    /// Sets the output offset (the `s_ref` linearization point of Eq. 4).
    #[must_use]
    pub fn with_offset(mut self, offset: f64) -> Self {
        self.offset = offset;
        self
    }

    /// Clamps the output into `bounds` and enables anti-windup against
    /// them.
    #[must_use]
    pub fn with_output_bounds(mut self, bounds: Bounds<f64>) -> Self {
        self.bounds = Some(bounds);
        self
    }

    /// Current gain set.
    #[must_use]
    pub fn gains(&self) -> PidGains {
        self.gains
    }

    /// Replaces the gains (used by gain scheduling) without touching the
    /// integral or derivative state.
    pub fn set_gains(&mut self, gains: PidGains) {
        self.gains = gains;
    }

    /// Current offset.
    #[must_use]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Replaces the offset (the adaptive scheme re-bases it on region
    /// change).
    pub fn set_offset(&mut self, offset: f64) {
        self.offset = offset;
    }

    /// The accumulated error sum.
    #[must_use]
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Zeroes the accumulated error sum (Eq. 8 context: "Σ∆T is set to
    /// zero" on region change).
    pub fn reset_integral(&mut self) {
        self.integral = 0.0;
    }

    /// Clears all dynamic state (integral and error history).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.prev_error = None;
    }

    /// Feeds the error `e(k) = measurement − setpoint` and returns the new
    /// (clamped) control output `u(k+1)`.
    ///
    /// # Panics
    ///
    /// Panics if `error` is NaN.
    pub fn update(&mut self, error: f64) -> f64 {
        assert!(!error.is_nan(), "PID error must not be NaN");
        let candidate_integral = self.integral + error;
        let derivative = match self.prev_error {
            Some(prev) => error - prev,
            None => 0.0,
        };
        let raw = self.offset
            + self.gains.kp * error
            + self.gains.ki * candidate_integral
            + self.gains.kd * derivative;

        let (output, windup) = match &self.bounds {
            Some(b) => {
                let clamped = b.clamp(raw);
                // Conditional integration: discard this step's integral
                // contribution if it pushes further into saturation.
                let saturated_high = raw > b.hi() && error > 0.0;
                let saturated_low = raw < b.lo() && error < 0.0;
                (clamped, saturated_high || saturated_low)
            }
            None => (raw, false),
        };
        if !windup {
            self.integral = candidate_integral;
        }
        self.prev_error = Some(error);
        output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gains_accessors_and_scaling() {
        let g = PidGains::new(1.0, 2.0, 3.0);
        assert_eq!((g.kp(), g.ki(), g.kd()), (1.0, 2.0, 3.0));
        let s = g.scaled(2.0);
        assert_eq!((s.kp(), s.ki(), s.kd()), (2.0, 4.0, 6.0));
        let p = PidGains::proportional(5.0);
        assert_eq!((p.kp(), p.ki(), p.kd()), (5.0, 0.0, 0.0));
    }

    #[test]
    fn gains_lerp_matches_eq8() {
        let a = PidGains::new(10.0, 1.0, 4.0);
        let b = PidGains::new(30.0, 3.0, 8.0);
        let mid = a.lerp(&b, 0.5);
        assert_eq!((mid.kp(), mid.ki(), mid.kd()), (20.0, 2.0, 6.0));
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    fn proportional_action() {
        let mut pid = PidController::new(PidGains::proportional(3.0)).with_offset(100.0);
        assert_eq!(pid.update(2.0), 106.0);
        assert_eq!(pid.update(-2.0), 94.0);
    }

    #[test]
    fn integral_accumulates() {
        let mut pid = PidController::new(PidGains::new(0.0, 1.0, 0.0));
        assert_eq!(pid.update(1.0), 1.0);
        assert_eq!(pid.update(1.0), 2.0);
        assert_eq!(pid.update(-3.0), -1.0);
        assert_eq!(pid.integral(), -1.0);
    }

    #[test]
    fn derivative_reacts_to_change_only() {
        let mut pid = PidController::new(PidGains::new(0.0, 0.0, 2.0));
        // First step has no previous error: derivative contribution 0.
        assert_eq!(pid.update(5.0), 0.0);
        assert_eq!(pid.update(5.0), 0.0);
        assert_eq!(pid.update(7.0), 4.0);
        assert_eq!(pid.update(6.0), -2.0);
    }

    #[test]
    fn output_clamps_to_bounds() {
        let mut pid = PidController::new(PidGains::proportional(1000.0))
            .with_output_bounds(Bounds::new(0.0, 100.0))
            .with_offset(50.0);
        assert_eq!(pid.update(10.0), 100.0);
        assert_eq!(pid.update(-10.0), 0.0);
    }

    #[test]
    fn anti_windup_freezes_integral_in_saturation() {
        let mut pid = PidController::new(PidGains::new(0.0, 1.0, 0.0))
            .with_output_bounds(Bounds::new(-10.0, 10.0));
        for _ in 0..100 {
            pid.update(5.0);
        }
        // Without anti-windup the integral would be 500.
        assert!(pid.integral() <= 10.0 + 5.0, "integral {}", pid.integral());
        // Recovery is immediate once the error flips.
        let out = pid.update(-5.0);
        assert!(out < 10.0);
    }

    #[test]
    fn anti_windup_still_integrates_toward_recovery() {
        let mut pid = PidController::new(PidGains::new(0.0, 1.0, 0.0))
            .with_output_bounds(Bounds::new(-10.0, 10.0));
        for _ in 0..20 {
            pid.update(5.0); // saturates high
        }
        let frozen = pid.integral();
        // Error now pulls out of saturation: integration resumes.
        pid.update(-1.0);
        assert_eq!(pid.integral(), frozen - 1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = PidController::new(PidGains::new(1.0, 1.0, 1.0));
        pid.update(3.0);
        pid.update(4.0);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
        // Derivative restarts from scratch.
        assert_eq!(pid.update(2.0), 2.0 + 2.0);
    }

    #[test]
    fn reset_integral_keeps_derivative_history() {
        let mut pid = PidController::new(PidGains::new(0.0, 1.0, 1.0));
        pid.update(2.0);
        pid.reset_integral();
        // Derivative still sees the previous error of 2.0.
        assert_eq!(pid.update(3.0), 3.0 + 1.0);
    }

    #[test]
    fn set_gains_and_offset_take_effect() {
        let mut pid = PidController::new(PidGains::proportional(1.0));
        pid.set_gains(PidGains::proportional(10.0));
        pid.set_offset(5.0);
        assert_eq!(pid.offset(), 5.0);
        assert_eq!(pid.gains().kp(), 10.0);
        assert_eq!(pid.update(1.0), 15.0);
    }

    #[test]
    fn matches_eq4_composition() {
        // Cross-check one update against the formula written out.
        let (kp, ki, kd, offset) = (12.0, 3.0, 7.0, 2000.0);
        let mut pid = PidController::new(PidGains::new(kp, ki, kd)).with_offset(offset);
        let errors = [1.5, 2.5, -0.5];
        let mut integral = 0.0;
        let mut prev: Option<f64> = None;
        for e in errors {
            integral += e;
            let d = prev.map_or(0.0, |p| e - p);
            let expected = offset + kp * e + ki * integral + kd * d;
            assert!((pid.update(e) - expected).abs() < 1e-12);
            prev = Some(e);
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_error_rejected() {
        let mut pid = PidController::new(PidGains::default());
        let _ = pid.update(f64::NAN);
    }
}
