//! SASO (stability, accuracy, settling, overshoot) evaluation of a
//! closed-loop trace.

use gfsc_sim::stats::{self, StepResponse};
use gfsc_sim::Trace;
use gfsc_units::Seconds;

/// The four PID design criteria measured on a recorded closed-loop trace.
///
/// The paper (Section IV-A) requires PID parameters to be "carefully
/// decided by jointly considering stability, accuracy, settling time, and
/// overshoot (SASO)". This report quantifies all four on a simulation
/// trace so tests and benches can assert them.
///
/// # Examples
///
/// ```
/// use gfsc_control::SasoReport;
/// use gfsc_sim::Trace;
/// use gfsc_units::Seconds;
///
/// let mut trace = Trace::new("t_junction_c");
/// for k in 0..200 {
///     let t = k as f64;
///     trace.push(Seconds::new(t), 75.0 - 15.0 * (-t / 20.0).exp());
/// }
/// let report = SasoReport::evaluate(&trace, 75.0, 0.5, 0.25);
/// assert!(report.stable);
/// assert!(report.settling_time.is_some());
/// assert!(report.overshoot < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SasoReport {
    /// No sustained oscillation in the steady-state tail.
    pub stable: bool,
    /// Mean absolute steady-state error over the final 10 % of the trace.
    pub accuracy: f64,
    /// Settling time into the `band` around the target, if it settles.
    pub settling_time: Option<Seconds>,
    /// Overshoot as a fraction of the initial-to-target step.
    pub overshoot: f64,
    /// Mean peak-to-trough amplitude of any detected oscillation.
    pub oscillation_amplitude: f64,
}

impl SasoReport {
    /// Evaluates a trace against `target`, with settling `band` and
    /// oscillation-detector `hysteresis` (both in signal units).
    ///
    /// Stability is judged on the tail half of the trace: an oscillation
    /// sustained there (≥ 2 full cycles with amplitude above `hysteresis`)
    /// marks the loop unstable.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty, or `band`/`hysteresis` are not
    /// positive.
    #[must_use]
    pub fn evaluate(trace: &Trace, target: f64, band: f64, hysteresis: f64) -> Self {
        assert!(!trace.is_empty(), "cannot evaluate an empty trace");
        let times = trace.times();
        let values = trace.values();
        let initial = values[0];

        let StepResponse { settling_time, overshoot, steady_state_error } =
            stats::step_response(times, values, initial, target, band);

        // Stability on the second half of the trace.
        let half = times.len() / 2;
        let rep = stats::detect_oscillation(&times[half..], &values[half..], hysteresis);
        let stable = !rep.is_sustained(hysteresis * 2.0);

        Self {
            stable,
            accuracy: steady_state_error.abs(),
            settling_time,
            overshoot,
            oscillation_amplitude: rep.amplitude,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_from(values: impl Iterator<Item = f64>) -> Trace {
        let mut tr = Trace::new("y");
        for (k, v) in values.enumerate() {
            tr.push(Seconds::new(k as f64), v);
        }
        tr
    }

    #[test]
    fn converging_loop_is_stable_and_accurate() {
        let tr = trace_from((0..400).map(|k| 75.0 - 20.0 * (-(k as f64) / 30.0).exp()));
        let r = SasoReport::evaluate(&tr, 75.0, 0.5, 0.25);
        assert!(r.stable);
        assert!(r.accuracy < 0.05, "accuracy {}", r.accuracy);
        let st = r.settling_time.unwrap().value();
        // 20·e^{-t/30} <= 0.5  <=>  t >= 30·ln 40 ≈ 110.6 s.
        assert!((105.0..120.0).contains(&st), "settling {st}");
        assert_eq!(r.overshoot, 0.0);
    }

    #[test]
    fn oscillating_loop_is_flagged_unstable() {
        let tr = trace_from(
            (0..600).map(|k| 75.0 + 5.0 * (2.0 * std::f64::consts::PI * k as f64 / 40.0).sin()),
        );
        let r = SasoReport::evaluate(&tr, 75.0, 0.5, 0.25);
        assert!(!r.stable);
        assert!(r.oscillation_amplitude > 5.0);
        assert!(r.settling_time.is_none());
    }

    #[test]
    fn overshoot_is_measured() {
        // Rise from 55 toward 75 with a peak at 79 (20 % of the 20 K step).
        let tr = trace_from((0..300).map(|k| {
            let t = k as f64;
            if t < 10.0 {
                55.0 + 2.4 * t
            } else {
                75.0 + 4.0 * (-(t - 10.0) / 15.0).exp()
            }
        }));
        let r = SasoReport::evaluate(&tr, 75.0, 0.5, 0.25);
        assert!((r.overshoot - 0.2).abs() < 0.02, "overshoot {}", r.overshoot);
        assert!(r.stable);
    }

    #[test]
    fn decaying_oscillation_counts_as_stable_if_it_dies_out() {
        let tr = trace_from((0..1200).map(|k| {
            let t = k as f64;
            75.0 + 8.0 * (-t / 100.0).exp() * (2.0 * std::f64::consts::PI * t / 50.0).sin()
        }));
        let r = SasoReport::evaluate(&tr, 75.0, 0.5, 0.25);
        // By the second half the envelope is below the sustained-amplitude
        // threshold... but reversals may still trip it; accept either while
        // requiring the amplitude itself to be small.
        assert!(r.oscillation_amplitude < 1.0, "amplitude {}", r.oscillation_amplitude);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_trace_rejected() {
        let tr = Trace::new("y");
        let _ = SasoReport::evaluate(&tr, 0.0, 0.1, 0.1);
    }
}
