//! Single-threshold and deadzone fan controllers — the conservative schemes
//! shipping firmware uses, reproduced as instability baselines.
//!
//! The paper (footnote 2, Fig. 4) reports that both become oscillatory
//! under the 10 s lag + 1 °C quantization measurement chain: by the time a
//! crossing is observed, the plant has already moved far past it, so the
//! controller perpetually overcorrects.

use gfsc_units::{Bounds, Celsius, Rpm};

/// Bang-bang control on one threshold: fan at `high` speed above the
/// threshold, at `low` speed below it.
///
/// # Examples
///
/// ```
/// use gfsc_control::SingleThreshold;
/// use gfsc_units::{Celsius, Rpm};
///
/// let mut c = SingleThreshold::new(Celsius::new(75.0), Rpm::new(2000.0), Rpm::new(6000.0));
/// assert_eq!(c.decide(Celsius::new(80.0)), Rpm::new(6000.0));
/// assert_eq!(c.decide(Celsius::new(70.0)), Rpm::new(2000.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleThreshold {
    threshold: Celsius,
    low: Rpm,
    high: Rpm,
}

impl SingleThreshold {
    /// Creates the controller.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    #[must_use]
    pub fn new(threshold: Celsius, low: Rpm, high: Rpm) -> Self {
        assert!(low <= high, "low speed must not exceed high speed");
        Self { threshold, low, high }
    }

    /// The switching threshold.
    #[must_use]
    pub fn threshold(&self) -> Celsius {
        self.threshold
    }

    /// One decision: `high` speed at or above the threshold, else `low`.
    #[must_use]
    pub fn decide(&mut self, measured: Celsius) -> Rpm {
        if measured >= self.threshold {
            self.high
        } else {
            self.low
        }
    }
}

/// Incremental deadzone control: step the fan up above `t_high`, step it
/// down below `t_low`, hold in between.
///
/// This is the "deadzone fan speed control scheme" whose oscillation under
/// a fixed workload the paper demonstrates in Fig. 4.
///
/// # Examples
///
/// ```
/// use gfsc_control::Deadzone;
/// use gfsc_units::{Bounds, Celsius, Rpm};
///
/// let mut c = Deadzone::new(
///     Celsius::new(70.0),
///     Celsius::new(78.0),
///     500.0,
///     Bounds::new(Rpm::new(1000.0), Rpm::new(8500.0)),
/// );
/// let s0 = Rpm::new(3000.0);
/// assert_eq!(c.decide(Celsius::new(80.0), s0), Rpm::new(3500.0)); // too hot
/// assert_eq!(c.decide(Celsius::new(74.0), s0), s0);               // in the zone
/// assert_eq!(c.decide(Celsius::new(65.0), s0), Rpm::new(2500.0)); // too cold
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deadzone {
    t_low: Celsius,
    t_high: Celsius,
    step: f64,
    bounds: Bounds<Rpm>,
}

impl Deadzone {
    /// Creates the controller with zone `[t_low, t_high]`, per-decision
    /// speed step `step` (rpm) and actuator `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `t_low > t_high` or `step` is not positive.
    #[must_use]
    pub fn new(t_low: Celsius, t_high: Celsius, step: f64, bounds: Bounds<Rpm>) -> Self {
        assert!(t_low <= t_high, "deadzone must satisfy t_low <= t_high");
        assert!(step > 0.0, "speed step must be positive");
        Self { t_low, t_high, step, bounds }
    }

    /// The lower zone edge.
    #[must_use]
    pub fn t_low(&self) -> Celsius {
        self.t_low
    }

    /// The upper zone edge.
    #[must_use]
    pub fn t_high(&self) -> Celsius {
        self.t_high
    }

    /// One decision: step relative to `current` based on which side of the
    /// zone the measurement falls.
    #[must_use]
    pub fn decide(&mut self, measured: Celsius, current: Rpm) -> Rpm {
        let next = if measured > self.t_high {
            current + self.step
        } else if measured < self.t_low {
            current - self.step
        } else {
            current
        };
        self.bounds.clamp(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> Bounds<Rpm> {
        Bounds::new(Rpm::new(1000.0), Rpm::new(8500.0))
    }

    #[test]
    fn single_threshold_switches_at_boundary() {
        let mut c = SingleThreshold::new(Celsius::new(75.0), Rpm::new(2000.0), Rpm::new(6000.0));
        assert_eq!(c.decide(Celsius::new(74.99)), Rpm::new(2000.0));
        assert_eq!(c.decide(Celsius::new(75.0)), Rpm::new(6000.0));
        assert_eq!(c.threshold(), Celsius::new(75.0));
    }

    #[test]
    fn deadzone_holds_inside_zone() {
        let mut c = Deadzone::new(Celsius::new(70.0), Celsius::new(78.0), 250.0, bounds());
        for t in [70.0, 74.0, 78.0] {
            assert_eq!(c.decide(Celsius::new(t), Rpm::new(4000.0)), Rpm::new(4000.0));
        }
        assert_eq!(c.t_low(), Celsius::new(70.0));
        assert_eq!(c.t_high(), Celsius::new(78.0));
    }

    #[test]
    fn deadzone_steps_toward_relief() {
        let mut c = Deadzone::new(Celsius::new(70.0), Celsius::new(78.0), 250.0, bounds());
        assert_eq!(c.decide(Celsius::new(80.0), Rpm::new(4000.0)), Rpm::new(4250.0));
        assert_eq!(c.decide(Celsius::new(60.0), Rpm::new(4000.0)), Rpm::new(3750.0));
    }

    #[test]
    fn deadzone_respects_bounds() {
        let mut c = Deadzone::new(Celsius::new(70.0), Celsius::new(78.0), 1000.0, bounds());
        assert_eq!(c.decide(Celsius::new(90.0), Rpm::new(8200.0)), Rpm::new(8500.0));
        assert_eq!(c.decide(Celsius::new(50.0), Rpm::new(1200.0)), Rpm::new(1000.0));
    }

    #[test]
    fn single_threshold_rejects_inverted_speeds() {
        let r = std::panic::catch_unwind(|| {
            SingleThreshold::new(Celsius::new(75.0), Rpm::new(6000.0), Rpm::new(2000.0))
        });
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "t_low <= t_high")]
    fn deadzone_rejects_inverted_zone() {
        let _ = Deadzone::new(Celsius::new(78.0), Celsius::new(70.0), 100.0, bounds());
    }
}
