//! Quantization-error elimination (paper Eq. 10).

/// The quantization hold rule: suppress fan-speed changes while the
/// temperature error is smaller than the sensor's quantization step.
///
/// With a 1 °C ADC the measured error dithers ±1 LSB around the set-point
/// even at perfect regulation; feeding that dither to the PID makes the fan
/// hunt forever. Eq. (10) breaks the cycle:
///
/// ```text
/// s_fan(k+1) = s_fan(k)   when |T_ref − T_meas(k)| < |T_Q|
/// ```
///
/// The comparison here is *inclusive* (`|e| ≤ |T_Q|`): when the reference
/// sits exactly on the ADC grid (e.g. 75.0 °C on a 1 °C grid) the dither
/// produces errors of exactly one step, which are indistinguishable from
/// quantization noise and must be held too — a strict `<` would act on
/// every one of them and re-introduce the hunt the rule exists to kill.
///
/// # Examples
///
/// ```
/// use gfsc_control::QuantizationHold;
///
/// let hold = QuantizationHold::new(1.0);
/// assert!(hold.should_hold(0.99));
/// assert!(hold.should_hold(-0.5));
/// assert!(hold.should_hold(1.0)); // one grid step: quantization noise
/// assert!(!hold.should_hold(1.01)); // beyond a step: a real error
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizationHold {
    threshold: f64,
}

impl QuantizationHold {
    /// Creates the rule with threshold `|T_Q|` (the quantization step).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive or NaN.
    #[must_use]
    pub fn new(threshold: f64) -> Self {
        assert!(!threshold.is_nan(), "threshold must not be NaN");
        assert!(threshold > 0.0, "threshold must be positive");
        Self { threshold }
    }

    /// The `|T_Q|` threshold.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Whether the controller should hold its previous output for this
    /// error (within one quantization step, inclusive).
    #[must_use]
    pub fn should_hold(&self, error: f64) -> bool {
        error.abs() <= self.threshold
    }

    /// Applies the rule: returns `previous` inside the band, `candidate`
    /// outside.
    #[must_use]
    pub fn apply(&self, error: f64, candidate: f64, previous: f64) -> f64 {
        if self.should_hold(error) {
            previous
        } else {
            candidate
        }
    }

    /// Deadband error shaping: the error with the hold band subtracted.
    ///
    /// Inside the band the shaped error is 0; outside, only the excess
    /// beyond the band remains. Feeding the *raw* error to the PID at the
    /// moment the band is exited injects a discontinuous step of
    /// `±threshold` that the controller then over-corrects; shaping keeps
    /// the control law continuous across the hold boundary.
    #[must_use]
    pub fn shaped_error(&self, error: f64) -> f64 {
        if error > self.threshold {
            error - self.threshold
        } else if error < -self.threshold {
            error + self.threshold
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_inside_band_inclusive() {
        let h = QuantizationHold::new(1.0);
        assert!(h.should_hold(0.0));
        assert!(h.should_hold(0.999));
        assert!(h.should_hold(-0.999));
        // Exactly one grid step is still quantization noise.
        assert!(h.should_hold(1.0));
        assert!(h.should_hold(-1.0));
        assert!(!h.should_hold(1.001));
        assert!(!h.should_hold(2.5));
    }

    #[test]
    fn apply_selects_between_candidates() {
        let h = QuantizationHold::new(1.0);
        assert_eq!(h.apply(0.5, 3000.0, 2500.0), 2500.0);
        assert_eq!(h.apply(1.5, 3000.0, 2500.0), 3000.0);
    }

    #[test]
    fn threshold_accessor() {
        assert_eq!(QuantizationHold::new(0.25).threshold(), 0.25);
    }

    #[test]
    fn suppresses_limit_cycle_on_quantized_feedback() {
        // A toy loop: integrator plant driven by a bang-bang-ish error from
        // quantization. Without the hold, the command dithers each step;
        // with it, the command freezes once inside the band.
        let h = QuantizationHold::new(1.0);
        let mut cmd = 0.0;
        let mut changes = 0;
        for k in 0..100 {
            // Quantized measurement dithers between 74 and 75 around a
            // 74.5 true value; reference is 75.
            let measured = if k % 2 == 0 { 74.0 } else { 75.0 };
            let error: f64 = measured - 75.0;
            let candidate = cmd + 10.0 * error;
            let next = h.apply(error, candidate, cmd);
            if (next - cmd).abs() > 1e-12 {
                changes += 1;
            }
            cmd = next;
        }
        // Only the -1.0 errors (not strictly inside the band) act; the
        // 0.0-error steps hold. So at most half the steps change.
        assert!(changes <= 50, "changes {changes}");
    }

    #[test]
    fn shaped_error_is_continuous_across_the_band() {
        let h = QuantizationHold::new(1.0);
        assert_eq!(h.shaped_error(0.0), 0.0);
        assert_eq!(h.shaped_error(1.0), 0.0);
        assert_eq!(h.shaped_error(-1.0), 0.0);
        assert!((h.shaped_error(1.5) - 0.5).abs() < 1e-12);
        assert!((h.shaped_error(-3.0) + 2.0).abs() < 1e-12);
        // Continuity: approaching the band edge from outside tends to 0.
        assert!(h.shaped_error(1.0001) < 0.001);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = QuantizationHold::new(0.0);
    }
}
