//! Ziegler–Nichols closed-loop (ultimate gain) tuning.
//!
//! The paper tunes its PID with the classic Ziegler–Nichols closed-loop
//! recipe: raise a proportional-only gain until the loop oscillates
//! indefinitely at steady state; the gain at that point is the ultimate
//! gain `K_u` and the oscillation period is `P_u`. The PID parameters then
//! follow Eq. (5)–(7):
//!
//! ```text
//! K_P = 0.6·K_u      K_I = K_P·(2/P_u)      K_D = K_P·(P_u/8)
//! ```
//!
//! [`ZnTuner`] automates the probing against any [`Plant`], using the
//! oscillation detector from `gfsc-sim` to classify closed-loop runs, and
//! a bisection to pin down the stability boundary.

use crate::PidGains;
use core::fmt;
use gfsc_sim::stats::{self, OscillationReport};

/// A single-input single-output plant stepped at the controller period.
///
/// `step` applies the control input held for one decision period and
/// returns the next measurement. `reset` restores the initial state so the
/// tuner can replay experiments from identical conditions.
///
/// The fan-controller plant (`gfsc-server`) returns the *measured* — i.e.
/// lagged and quantized — temperature, so tuning happens against the same
/// non-ideal loop the controller will face in production.
pub trait Plant {
    /// Restores the plant to its initial state.
    fn reset(&mut self);

    /// Applies `input` for one decision period; returns the measurement at
    /// the end of the period.
    fn step(&mut self, input: f64) -> f64;
}

/// The result of an ultimate-gain search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UltimateGain {
    /// The proportional gain at the edge of sustained oscillation.
    pub ku: f64,
    /// The oscillation period at `ku`, in decision periods.
    pub pu: f64,
}

/// Ziegler–Nichols gain formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZieglerNichols;

impl ZieglerNichols {
    /// The classic PID rule of Eq. (5)–(7). `pu` is in decision periods,
    /// matching the per-period error sum/difference of Eq. (4).
    ///
    /// # Panics
    ///
    /// Panics if `pu` is not positive.
    #[must_use]
    pub fn classic_pid(ultimate: UltimateGain) -> PidGains {
        assert!(ultimate.pu > 0.0, "ultimate period must be positive");
        let kp = 0.6 * ultimate.ku;
        PidGains::new(kp, kp * 2.0 / ultimate.pu, kp * ultimate.pu / 8.0)
    }

    /// The P-only rule (`K_P = 0.5·K_u`), for ablations.
    #[must_use]
    pub fn proportional(ultimate: UltimateGain) -> PidGains {
        PidGains::proportional(0.5 * ultimate.ku)
    }

    /// The PI rule (`K_P = 0.45·K_u`, `K_I = K_P·1.2/P_u`), for ablations.
    ///
    /// # Panics
    ///
    /// Panics if `pu` is not positive.
    #[must_use]
    pub fn pi(ultimate: UltimateGain) -> PidGains {
        assert!(ultimate.pu > 0.0, "ultimate period must be positive");
        let kp = 0.45 * ultimate.ku;
        PidGains::new(kp, kp * 1.2 / ultimate.pu, 0.0)
    }

    /// The Tyreus–Luyben PID rule: `K_P = 0.45·K_u`,
    /// `K_I = K_P / (2.2·P_u)`, `K_D = K_P·P_u / 6.3`.
    ///
    /// Same closed-loop ultimate-gain measurement as the classic rule,
    /// but a far more conservative table — the standard choice when the
    /// loop is dominated by dead time (as the fan loop is: a 10 s sensor
    /// lag plus a 30 s zero-order hold), where quarter-amplitude ZN
    /// over-integrates and hunts.
    ///
    /// # Panics
    ///
    /// Panics if `pu` is not positive.
    #[must_use]
    pub fn tyreus_luyben(ultimate: UltimateGain) -> PidGains {
        assert!(ultimate.pu > 0.0, "ultimate period must be positive");
        let kp = 0.45 * ultimate.ku;
        PidGains::new(kp, kp / (2.2 * ultimate.pu), kp * ultimate.pu / 6.3)
    }
}

/// Why an ultimate-gain search failed.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneError {
    /// The loop never oscillated up to the configured maximum gain.
    NoOscillationFound {
        /// The largest proportional gain probed.
        max_gain: f64,
    },
    /// The loop oscillated already at the smallest probed gain, so the
    /// boundary lies below the search range.
    AlwaysOscillating {
        /// The smallest proportional gain probed.
        min_gain: f64,
    },
    /// An oscillation was found but its period could not be measured.
    PeriodUndetectable,
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::NoOscillationFound { max_gain } => {
                write!(f, "no sustained oscillation up to gain {max_gain}")
            }
            TuneError::AlwaysOscillating { min_gain } => {
                write!(f, "loop already oscillates at minimum gain {min_gain}")
            }
            TuneError::PeriodUndetectable => write!(f, "oscillation period undetectable"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Configuration of the ultimate-gain search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZnTunerConfig {
    /// Loop setpoint (the probing controller regulates toward this value).
    pub setpoint: f64,
    /// Constant actuator offset around which the P-probe acts.
    pub offset: f64,
    /// Smallest proportional gain probed.
    pub min_gain: f64,
    /// Largest proportional gain probed.
    pub max_gain: f64,
    /// Steps per probing run (should cover several plant time constants).
    pub steps_per_trial: usize,
    /// Fraction of the trial treated as steady state for oscillation
    /// detection (from the end).
    pub tail_fraction: f64,
    /// Oscillation-detector hysteresis in measurement units.
    pub hysteresis: f64,
    /// Minimum mean peak-to-trough amplitude to call the loop oscillating.
    pub min_amplitude: f64,
    /// Relative gain resolution at which the bisection stops.
    pub gain_tolerance: f64,
    /// Actuator kick added to the first probe step, exciting a loop that
    /// starts exactly at equilibrium (where the error — and hence the
    /// P-action — would otherwise be identically zero).
    pub excitation: f64,
}

impl Default for ZnTunerConfig {
    fn default() -> Self {
        Self {
            setpoint: 0.0,
            offset: 0.0,
            min_gain: 1e-3,
            max_gain: 1e6,
            steps_per_trial: 400,
            tail_fraction: 0.5,
            hysteresis: 0.05,
            min_amplitude: 0.1,
            gain_tolerance: 0.01,
            excitation: 0.0,
        }
    }
}

/// Closed-loop Ziegler–Nichols ultimate-gain tuner.
///
/// For each candidate gain the tuner resets the plant, runs a
/// proportional-only loop (`u = offset + k_p·(y − setpoint)`, the
/// reverse-acting convention of this crate), and classifies the tail of the
/// response with the turning-point oscillation detector. A geometric sweep
/// brackets the smallest oscillating gain; bisection refines it.
///
/// # Examples
///
/// See the crate-level tests; plants live in `gfsc-server`.
#[derive(Debug, Clone)]
pub struct ZnTuner {
    config: ZnTunerConfig,
}

impl ZnTuner {
    /// Creates a tuner with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the gain range or trial parameters are degenerate.
    #[must_use]
    pub fn new(config: ZnTunerConfig) -> Self {
        assert!(config.min_gain > 0.0, "min gain must be positive");
        assert!(config.max_gain > config.min_gain, "gain range must be non-empty");
        assert!(config.steps_per_trial >= 16, "trial too short to classify");
        assert!(
            config.tail_fraction > 0.0 && config.tail_fraction <= 1.0,
            "tail fraction must lie in (0, 1]"
        );
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ZnTunerConfig {
        &self.config
    }

    /// Runs one proportional-only trial and returns the oscillation report
    /// of its steady-state tail.
    pub fn probe<P: Plant>(&self, plant: &mut P, kp: f64) -> OscillationReport {
        plant.reset();
        let c = &self.config;
        let mut outputs = Vec::with_capacity(c.steps_per_trial);
        let mut u = c.offset + c.excitation;
        for _ in 0..c.steps_per_trial {
            let y = plant.step(u);
            outputs.push(y);
            u = c.offset + kp * (y - c.setpoint);
        }
        let tail_start = ((1.0 - c.tail_fraction) * c.steps_per_trial as f64) as usize;
        let tail = &outputs[tail_start..];
        let times: Vec<f64> = (0..tail.len()).map(|k| k as f64).collect();
        stats::detect_oscillation(&times, tail, c.hysteresis)
    }

    fn oscillates(&self, report: &OscillationReport) -> bool {
        report.is_sustained(self.config.min_amplitude)
    }

    /// Searches for the ultimate gain and period.
    ///
    /// # Errors
    ///
    /// Returns [`TuneError`] if the loop never (or always) oscillates in
    /// the configured gain range, or the period cannot be measured.
    pub fn find_ultimate_gain<P: Plant>(&self, plant: &mut P) -> Result<UltimateGain, TuneError> {
        let c = &self.config;
        // Geometric sweep to bracket the boundary.
        if self.oscillates(&self.probe(plant, c.min_gain)) {
            return Err(TuneError::AlwaysOscillating { min_gain: c.min_gain });
        }
        let mut lo = c.min_gain;
        let mut hi = c.min_gain;
        let mut bracketed = false;
        while hi < c.max_gain {
            hi = (hi * 2.0).min(c.max_gain);
            if self.oscillates(&self.probe(plant, hi)) {
                bracketed = true;
                break;
            }
            lo = hi;
        }
        if !bracketed {
            return Err(TuneError::NoOscillationFound { max_gain: c.max_gain });
        }
        // Bisection down to the requested resolution.
        while (hi - lo) / hi > c.gain_tolerance {
            let mid = f64::midpoint(lo, hi);
            if self.oscillates(&self.probe(plant, mid)) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let ku = hi;
        let report = self.probe(plant, ku);
        let pu = report.period.ok_or(TuneError::PeriodUndetectable)?.value();
        if pu <= 0.0 {
            return Err(TuneError::PeriodUndetectable);
        }
        Ok(UltimateGain { ku, pu })
    }

    /// Convenience: ultimate-gain search followed by the classic PID rule.
    ///
    /// # Errors
    ///
    /// Propagates [`TuneError`] from the search.
    pub fn tune_pid<P: Plant>(&self, plant: &mut P) -> Result<PidGains, TuneError> {
        Ok(ZieglerNichols::classic_pid(self.find_ultimate_gain(plant)?))
    }

    /// Convenience: ultimate-gain search followed by the Tyreus–Luyben
    /// rule (for dead-time-dominant loops).
    ///
    /// # Errors
    ///
    /// Propagates [`TuneError`] from the search.
    pub fn tune_pid_tyreus_luyben<P: Plant>(&self, plant: &mut P) -> Result<PidGains, TuneError> {
        Ok(ZieglerNichols::tyreus_luyben(self.find_ultimate_gain(plant)?))
    }

    /// Probes many candidate gains concurrently, each against its own clone
    /// of `plant`, returning reports in candidate order.
    ///
    /// Each call spins up scoped worker threads (the offline dependency set
    /// has no persistent pool); per-batch spawn overhead is tolerable
    /// because batches bundle many multi-hundred-step probes. Nested under
    /// an outer sweep (e.g. the ablation lag sweep tuning per plant
    /// variant) the transient thread count multiplies — bounded by
    /// `outer workers × batch size`, which stays small for the grids in
    /// this workspace; cap it globally with `GFSC_SWEEP_THREADS` if a
    /// future grid makes oversubscription measurable.
    pub fn probe_batch<P>(&self, plant: &P, gains: &[f64]) -> Vec<OscillationReport>
    where
        P: Plant + Clone + Sync,
    {
        gfsc_sim::sweep::parallel_map(gains, |&kp| self.probe(&mut plant.clone(), kp))
    }

    /// How many bisection levels each speculative round resolves (the round
    /// probes the full decision tree, `2^DEPTH − 1` candidates, at once).
    const SPECULATIVE_DEPTH: usize = 3;

    /// [`ZnTuner::find_ultimate_gain`] with the candidate evaluation fanned
    /// out across cores.
    ///
    /// The result is **bit-identical** to the serial search: the parallel
    /// geometric ladder brackets the same `[lo, hi)` (every rung is
    /// classified exactly as the serial sweep would classify it), and the
    /// refinement probes the complete decision tree of the next
    /// [`Self::SPECULATIVE_DEPTH`] bisection steps concurrently, then walks
    /// the serial decision sequence through the precomputed reports. Probes
    /// are deterministic per gain, so speculation changes wall-clock only.
    ///
    /// # Errors
    ///
    /// Returns [`TuneError`] exactly as the serial search would.
    pub fn find_ultimate_gain_parallel<P>(&self, plant: &P) -> Result<UltimateGain, TuneError>
    where
        P: Plant + Clone + Sync,
    {
        let c = &self.config;
        let mut ladder = vec![c.min_gain];
        let mut g = c.min_gain;
        while g < c.max_gain {
            g = (g * 2.0).min(c.max_gain);
            ladder.push(g);
        }
        let reports = self.probe_batch(plant, &ladder);
        let Some(first) = reports.iter().position(|r| self.oscillates(r)) else {
            return Err(TuneError::NoOscillationFound { max_gain: c.max_gain });
        };
        if first == 0 {
            return Err(TuneError::AlwaysOscillating { min_gain: c.min_gain });
        }
        let mut lo = ladder[first - 1];
        let mut hi = ladder[first];

        while (hi - lo) / hi > c.gain_tolerance {
            let mut candidates = Vec::with_capacity((1 << Self::SPECULATIVE_DEPTH) - 1);
            collect_bisection_midpoints(lo, hi, Self::SPECULATIVE_DEPTH, &mut candidates);
            let reports = self.probe_batch(plant, &candidates);
            for _ in 0..Self::SPECULATIVE_DEPTH {
                if (hi - lo) / hi <= c.gain_tolerance {
                    break;
                }
                let mid = f64::midpoint(lo, hi);
                let idx = candidates
                    .iter()
                    .position(|&p| p == mid)
                    .expect("midpoint is in the speculative tree");
                if self.oscillates(&reports[idx]) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
        }
        let ku = hi;
        let report = self.probe(&mut plant.clone(), ku);
        let pu = report.period.ok_or(TuneError::PeriodUndetectable)?.value();
        if pu <= 0.0 {
            return Err(TuneError::PeriodUndetectable);
        }
        Ok(UltimateGain { ku, pu })
    }

    /// Convenience: parallel ultimate-gain search followed by the classic
    /// PID rule — the batch-engine counterpart of [`ZnTuner::tune_pid`].
    ///
    /// # Errors
    ///
    /// Propagates [`TuneError`] from the search.
    pub fn tune_pid_parallel<P>(&self, plant: &P) -> Result<PidGains, TuneError>
    where
        P: Plant + Clone + Sync,
    {
        Ok(ZieglerNichols::classic_pid(self.find_ultimate_gain_parallel(plant)?))
    }
}

/// Enumerates the midpoints of every interval the next `depth` bisection
/// steps could visit, pre-order, starting from `(lo, hi)`.
fn collect_bisection_midpoints(lo: f64, hi: f64, depth: usize, out: &mut Vec<f64>) {
    if depth == 0 {
        return;
    }
    let mid = f64::midpoint(lo, hi);
    out.push(mid);
    collect_bisection_midpoints(lo, mid, depth - 1, out);
    collect_bisection_midpoints(mid, hi, depth - 1, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reverse-acting first-order lag plant with transport delay:
    /// `y_ss(u) = bias − g·u`, `y ← y + λ·(y_ss(u_delayed) − y)`.
    ///
    /// With P-only control this is the textbook system whose closed loop
    /// goes unstable beyond a finite gain (because of the delay).
    #[derive(Clone)]
    struct DelayedLagPlant {
        bias: f64,
        gain: f64,
        lambda: f64,
        delay: usize,
        y: f64,
        inputs: Vec<f64>,
        y0: f64,
    }

    impl DelayedLagPlant {
        fn new(bias: f64, gain: f64, lambda: f64, delay: usize, y0: f64) -> Self {
            Self { bias, gain, lambda, delay, y: y0, inputs: vec![0.0; delay], y0 }
        }
    }

    impl Plant for DelayedLagPlant {
        fn reset(&mut self) {
            self.y = self.y0;
            self.inputs = vec![0.0; self.delay];
        }

        fn step(&mut self, input: f64) -> f64 {
            self.inputs.push(input);
            let applied = self.inputs.remove(0);
            let y_ss = self.bias - self.gain * applied;
            self.y += self.lambda * (y_ss - self.y);
            self.y
        }
    }

    fn test_plant() -> DelayedLagPlant {
        // bias 80, gain 0.01 (u in "rpm", y in "K"), lambda 0.2, delay 3.
        DelayedLagPlant::new(80.0, 0.01, 0.2, 3, 80.0)
    }

    fn tuner() -> ZnTuner {
        ZnTuner::new(ZnTunerConfig {
            setpoint: 60.0,
            offset: 2000.0,
            min_gain: 1.0,
            max_gain: 100_000.0,
            steps_per_trial: 600,
            tail_fraction: 0.5,
            hysteresis: 0.05,
            min_amplitude: 0.2,
            gain_tolerance: 0.005,
            excitation: 0.0,
        })
    }

    #[test]
    fn zn_formulas_match_paper() {
        let g = ZieglerNichols::classic_pid(UltimateGain { ku: 100.0, pu: 8.0 });
        assert_eq!(g.kp(), 60.0);
        assert_eq!(g.ki(), 15.0);
        assert_eq!(g.kd(), 60.0);
    }

    #[test]
    fn zn_alternative_rules() {
        let u = UltimateGain { ku: 100.0, pu: 10.0 };
        let p = ZieglerNichols::proportional(u);
        assert_eq!((p.kp(), p.ki(), p.kd()), (50.0, 0.0, 0.0));
        let pi = ZieglerNichols::pi(u);
        assert_eq!(pi.kp(), 45.0);
        assert!((pi.ki() - 5.4).abs() < 1e-12);
        assert_eq!(pi.kd(), 0.0);
    }

    #[test]
    fn probe_classifies_low_gain_as_stable() {
        let mut plant = test_plant();
        let t = tuner();
        let report = t.probe(&mut plant, 5.0);
        assert!(!report.is_sustained(0.2), "low gain should be stable: {report:?}");
    }

    #[test]
    fn probe_classifies_high_gain_as_oscillating() {
        let mut plant = test_plant();
        let t = tuner();
        let report = t.probe(&mut plant, 50_000.0);
        assert!(report.is_sustained(0.2), "high gain should oscillate: {report:?}");
    }

    #[test]
    fn finds_ultimate_gain_of_delayed_lag() {
        let mut plant = test_plant();
        let t = tuner();
        let ug = t.find_ultimate_gain(&mut plant).expect("tunable plant");
        // The boundary is sharp: just below stable, just above oscillating.
        assert!(!t.oscillates(&t.probe(&mut plant, ug.ku * 0.9)), "0.9·Ku oscillates");
        assert!(t.oscillates(&t.probe(&mut plant, ug.ku * 1.1)), "1.1·Ku stable");
        // Period should be a few controller steps (delay-dominated loop).
        assert!(ug.pu > 2.0 && ug.pu < 50.0, "pu {}", ug.pu);
    }

    #[test]
    fn tuned_pid_is_stable_in_closed_loop() {
        let mut plant = test_plant();
        let t = tuner();
        let gains = t.tune_pid(&mut plant).expect("tunable");
        // Run the full PID in closed loop and verify convergence near the
        // setpoint with no sustained oscillation.
        plant.reset();
        let mut pid = crate::PidController::new(gains).with_offset(2000.0);
        let mut ys = Vec::new();
        let mut u = 2000.0;
        for _ in 0..1500 {
            let y = plant.step(u);
            ys.push(y);
            u = pid.update(y - 60.0);
        }
        let tail = &ys[1300..];
        let mean_tail = stats::mean(tail);
        assert!((mean_tail - 60.0).abs() < 0.5, "steady state {mean_tail}");
        let times: Vec<f64> = (0..tail.len()).map(|k| k as f64).collect();
        let rep = stats::detect_oscillation(&times, tail, 0.05);
        assert!(!rep.is_sustained(0.5), "tuned loop oscillates: {rep:?}");
    }

    #[test]
    fn parallel_search_matches_serial_bitwise() {
        let t = tuner();
        let serial = t.find_ultimate_gain(&mut test_plant()).expect("tunable");
        let parallel = t.find_ultimate_gain_parallel(&test_plant()).expect("tunable");
        // Not approximately: the speculative search must walk the exact
        // serial decision sequence.
        assert_eq!(serial.ku.to_bits(), parallel.ku.to_bits());
        assert_eq!(serial.pu.to_bits(), parallel.pu.to_bits());
        let g_serial = t.tune_pid(&mut test_plant()).expect("tunable");
        let g_parallel = t.tune_pid_parallel(&test_plant()).expect("tunable");
        assert_eq!(g_serial.kp().to_bits(), g_parallel.kp().to_bits());
        assert_eq!(g_serial.ki().to_bits(), g_parallel.ki().to_bits());
        assert_eq!(g_serial.kd().to_bits(), g_parallel.kd().to_bits());
    }

    #[test]
    fn parallel_search_reports_the_same_errors() {
        #[derive(Clone)]
        struct NoDelay {
            y: f64,
        }
        impl Plant for NoDelay {
            fn reset(&mut self) {
                self.y = 10.0;
            }
            fn step(&mut self, input: f64) -> f64 {
                self.y += 0.01 * ((5.0 - 0.001 * input) - self.y);
                self.y
            }
        }
        let t = ZnTuner::new(ZnTunerConfig {
            setpoint: 5.0,
            max_gain: 10.0,
            steps_per_trial: 100,
            ..ZnTunerConfig::default()
        });
        match t.find_ultimate_gain_parallel(&NoDelay { y: 10.0 }) {
            Err(TuneError::NoOscillationFound { max_gain }) => assert_eq!(max_gain, 10.0),
            other => panic!("expected NoOscillationFound, got {other:?}"),
        }
    }

    #[test]
    fn speculative_tree_enumerates_all_midpoints() {
        let mut out = Vec::new();
        collect_bisection_midpoints(0.0, 8.0, 3, &mut out);
        assert_eq!(out.len(), 7);
        assert_eq!(out[0], 4.0); // root
        for level in [2.0, 6.0, 1.0, 3.0, 5.0, 7.0] {
            assert!(out.contains(&level), "missing midpoint {level}");
        }
    }

    #[test]
    fn error_when_plant_cannot_oscillate() {
        /// A pure first-order lag with no delay never truly oscillates.
        struct NoDelay {
            y: f64,
        }
        impl Plant for NoDelay {
            fn reset(&mut self) {
                self.y = 10.0;
            }
            fn step(&mut self, input: f64) -> f64 {
                // Heavy damping: y moves 1 % toward (5 - 0.001 u).
                self.y += 0.01 * ((5.0 - 0.001 * input) - self.y);
                self.y
            }
        }
        let t = ZnTuner::new(ZnTunerConfig {
            setpoint: 5.0,
            max_gain: 10.0,
            steps_per_trial: 100,
            ..ZnTunerConfig::default()
        });
        let mut plant = NoDelay { y: 10.0 };
        match t.find_ultimate_gain(&mut plant) {
            Err(TuneError::NoOscillationFound { max_gain }) => assert_eq!(max_gain, 10.0),
            other => panic!("expected NoOscillationFound, got {other:?}"),
        }
    }

    #[test]
    fn error_display() {
        assert!(TuneError::PeriodUndetectable.to_string().contains("period"));
        assert!(TuneError::NoOscillationFound { max_gain: 3.0 }.to_string().contains("3"));
        assert!(TuneError::AlwaysOscillating { min_gain: 0.5 }.to_string().contains("0.5"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn degenerate_gain_range_rejected() {
        let _ = ZnTuner::new(ZnTunerConfig { min_gain: 1.0, max_gain: 1.0, ..Default::default() });
    }
}
