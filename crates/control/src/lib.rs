//! Control algorithms for variable fan speed control (paper Section IV).
//!
//! The paper's first contribution is a fan-speed controller that stays
//! stable despite a 10 s measurement lag and 1 °C quantization. This crate
//! implements that controller and everything needed to derive and evaluate
//! it:
//!
//! - [`PidController`]: the discrete positional PID of Eq. (4), with output
//!   clamping and conditional anti-windup,
//! - [`ZieglerNichols`] + [`ZnTuner`]: closed-loop ultimate-gain tuning
//!   (Eq. 5–7) against any [`Plant`],
//! - [`GainSchedule`] + [`AdaptivePid`]: the adaptive PID that interpolates
//!   per-region gains by operating fan speed (Eq. 8–9) and resets the
//!   integrator on region changes,
//! - [`QuantizationHold`]: the quantization-error elimination rule
//!   (Eq. 10),
//! - [`SingleThreshold`] / [`Deadzone`]: the simple controllers shipping
//!   firmware uses today, reproduced as baselines (they oscillate under
//!   non-ideal measurement — Fig. 4),
//! - [`SasoReport`]: stability/accuracy/settling/overshoot evaluation of a
//!   closed-loop trace.
//!
//! # Sign convention
//!
//! Throughout, the error is `e = measurement − setpoint` and the control
//! output is `offset + K_P·e + K_I·Σe + K_D·Δe`. With positive gains this
//! suits *reverse-acting* plants where pushing the actuator lowers the
//! measurement — exactly the fan/temperature pair (more rpm → lower °C).
//!
//! # Examples
//!
//! ```
//! use gfsc_control::{PidController, PidGains};
//! use gfsc_units::Bounds;
//!
//! let mut pid = PidController::new(PidGains::new(50.0, 5.0, 20.0))
//!     .with_output_bounds(Bounds::new(1000.0, 8500.0))
//!     .with_offset(2000.0);
//! // Temperature is 3 K above the reference: spin the fan up.
//! let cmd = pid.update(3.0);
//! assert!(cmd > 2000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod pid;
mod quantization;
mod saso;
mod threshold;
mod tuning;

pub use adaptive::{AdaptivePid, GainSchedule, Region};
pub use pid::{PidController, PidGains};
pub use quantization::QuantizationHold;
pub use saso::SasoReport;
pub use threshold::{Deadzone, SingleThreshold};
pub use tuning::{Plant, TuneError, UltimateGain, ZieglerNichols, ZnTuner, ZnTunerConfig};
