//! Property-based tests for the control library.

use gfsc_control::{
    AdaptivePid, GainSchedule, PidController, PidGains, QuantizationHold, Region, UltimateGain,
    ZieglerNichols,
};
use gfsc_units::{Bounds, Celsius, Rpm};
use proptest::prelude::*;

fn two_region_schedule(kp_lo: f64, kp_hi: f64) -> GainSchedule {
    GainSchedule::new(vec![
        Region::new(Rpm::new(2000.0), PidGains::new(kp_lo, kp_lo / 10.0, kp_lo / 3.0)),
        Region::new(Rpm::new(6000.0), PidGains::new(kp_hi, kp_hi / 10.0, kp_hi / 3.0)),
    ])
    .expect("sorted regions")
}

proptest! {
    /// A proportional-only controller is exactly linear in the error.
    #[test]
    fn p_only_controller_is_linear(kp in 0.1f64..1000.0, e in -50.0f64..50.0) {
        let mut a = PidController::new(PidGains::proportional(kp));
        let mut b = PidController::new(PidGains::proportional(kp));
        let ya = a.update(e);
        let yb = b.update(2.0 * e);
        prop_assert!((2.0 * ya - yb).abs() < 1e-9 * (1.0 + yb.abs()));
    }

    /// Bounded output never escapes its bounds, for any error sequence.
    #[test]
    fn bounded_pid_respects_bounds(
        errors in proptest::collection::vec(-100.0f64..100.0, 1..100),
        kp in 0.0f64..100.0,
        ki in 0.0f64..100.0,
        kd in 0.0f64..100.0,
    ) {
        let mut pid = PidController::new(PidGains::new(kp, ki, kd))
            .with_output_bounds(Bounds::new(-500.0, 500.0));
        for e in errors {
            let y = pid.update(e);
            prop_assert!((-500.0..=500.0).contains(&y), "escaped: {y}");
        }
    }

    /// Anti-windup: under constant saturating error, the integral is
    /// bounded (it would grow without bound otherwise).
    #[test]
    fn anti_windup_bounds_integral(steps in 1usize..500) {
        let mut pid = PidController::new(PidGains::new(0.0, 1.0, 0.0))
            .with_output_bounds(Bounds::new(-10.0, 10.0));
        for _ in 0..steps {
            pid.update(7.0);
        }
        prop_assert!(pid.integral() <= 17.0 + 1e-9, "integral {}", pid.integral());
    }

    /// Gain interpolation stays within the component-wise envelope of the
    /// two regions for any operating speed.
    #[test]
    fn schedule_interpolation_in_envelope(
        kp_lo in 10.0f64..1000.0,
        kp_hi in 10.0f64..10_000.0,
        speed in 0.0f64..10_000.0,
    ) {
        let schedule = two_region_schedule(kp_lo, kp_hi);
        let g = schedule.gains_at(Rpm::new(speed));
        let (lo, hi) = (kp_lo.min(kp_hi), kp_lo.max(kp_hi));
        prop_assert!(g.kp() >= lo - 1e-9 && g.kp() <= hi + 1e-9);
    }

    /// Interpolation is monotone in speed when region gains are ordered.
    #[test]
    fn schedule_interpolation_monotone(
        v1 in 2000.0f64..6000.0,
        v2 in 2000.0f64..6000.0,
    ) {
        let schedule = two_region_schedule(100.0, 1000.0);
        let g1 = schedule.gains_at(Rpm::new(v1)).kp();
        let g2 = schedule.gains_at(Rpm::new(v2)).kp();
        if v1 <= v2 {
            prop_assert!(g1 <= g2 + 1e-9);
        }
    }

    /// The adaptive controller's command always respects actuator bounds,
    /// whatever the measurement sequence.
    #[test]
    fn adaptive_pid_commands_in_actuator_range(
        temps in proptest::collection::vec(0.0f64..150.0, 1..60),
    ) {
        let mut pid = AdaptivePid::new(
            two_region_schedule(700.0, 5000.0),
            Celsius::new(75.0),
            Bounds::new(Rpm::new(1000.0), Rpm::new(8500.0)),
            Some(1.0),
        );
        let mut speed = Rpm::new(3000.0);
        for t in temps {
            speed = pid.decide(Celsius::new(t), speed);
            prop_assert!(speed >= Rpm::new(1000.0) && speed <= Rpm::new(8500.0));
        }
    }

    /// The quantization hold decides exactly by the band, and shaping is
    /// continuous, odd, and band-zeroed.
    #[test]
    fn hold_and_shaping_consistent(threshold in 0.1f64..5.0, e in -20.0f64..20.0) {
        let hold = QuantizationHold::new(threshold);
        prop_assert_eq!(hold.should_hold(e), e.abs() <= threshold);
        let s = hold.shaped_error(e);
        prop_assert!((hold.shaped_error(-e) + s).abs() < 1e-12, "odd symmetry");
        if e.abs() <= threshold {
            prop_assert_eq!(s, 0.0);
        } else {
            prop_assert!((s.abs() - (e.abs() - threshold)).abs() < 1e-12);
            prop_assert_eq!(s.signum(), e.signum());
        }
    }

    /// Ziegler–Nichols tables scale linearly with the ultimate gain.
    #[test]
    fn zn_tables_scale_with_ku(ku in 1.0f64..10_000.0, pu in 0.5f64..50.0) {
        let g1 = ZieglerNichols::classic_pid(UltimateGain { ku, pu });
        let g2 = ZieglerNichols::classic_pid(UltimateGain { ku: 2.0 * ku, pu });
        prop_assert!((g2.kp() - 2.0 * g1.kp()).abs() < 1e-9 * g2.kp().abs().max(1.0));
        prop_assert!((g2.ki() - 2.0 * g1.ki()).abs() < 1e-9 * g2.ki().abs().max(1.0));
        // Tyreus–Luyben is strictly more conservative than classic ZN.
        let tl = ZieglerNichols::tyreus_luyben(UltimateGain { ku, pu });
        prop_assert!(tl.kp() < g1.kp());
        prop_assert!(tl.ki() < g1.ki());
    }
}
