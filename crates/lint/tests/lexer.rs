//! Lexer edge cases: the constructs a token-level linter must get
//! right or every rule built on the stream silently lies.

use gfsc_lint::lexer::{lex, TokenKind};

fn idents(src: &str) -> Vec<String> {
    lex(src).tokens.into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
}

#[test]
fn nested_block_comments_are_skipped() {
    let src = "/* outer /* inner .unwrap() */ still a comment */ fn alive() {}";
    assert_eq!(idents(src), ["fn", "alive"]);
}

#[test]
fn line_numbers_survive_block_comments() {
    let src = "/* a\n b\n c */\nfn f() {}";
    let lexed = lex(src);
    let f = lexed.tokens.iter().find(|t| t.is_ident("fn")).expect("fn token");
    assert_eq!(f.line, 4);
}

#[test]
fn raw_strings_with_hashes_are_single_tokens() {
    let src = r####"let s = r#"contains .unwrap() and "quotes""#;"####;
    let lexed = lex(src);
    let strings: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokenKind::StrLit).collect();
    assert_eq!(strings.len(), 1, "one raw string token: {strings:?}");
    assert!(strings[0].text.starts_with("r#\""), "raw slice kept verbatim");
    assert!(
        !lexed.tokens.iter().any(|t| t.is_ident("unwrap")),
        "`unwrap` inside a raw string must not become an identifier"
    );
}

#[test]
fn byte_raw_strings_are_single_tokens() {
    let src = r####"let b = br##"panic!("#nope")"##;"####;
    let lexed = lex(src);
    let strings: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokenKind::StrLit).collect();
    assert_eq!(strings.len(), 1);
    assert!(!lexed.tokens.iter().any(|t| t.is_ident("panic")));
}

#[test]
fn string_escapes_hide_comment_markers_and_quotes() {
    let src = "let s = \"quote \\\" and // not a comment\"; fn g() {}";
    let lexed = lex(src);
    assert_eq!(lexed.tokens.iter().filter(|t| t.kind == TokenKind::StrLit).count(), 1);
    assert!(lexed.tokens.iter().any(|t| t.is_ident("g")), "code after the string lexes");
}

#[test]
fn multiline_strings_advance_the_line_counter() {
    let src = "let s = \"a\nb\";\nfn h() {}";
    let lexed = lex(src);
    let h = lexed.tokens.iter().find(|t| t.is_ident("fn")).expect("fn token");
    assert_eq!(h.line, 3);
}

#[test]
fn lifetimes_are_not_truncated_char_literals() {
    let src = "fn f<'a>(x: &'a str, y: &'static str) -> char { 'x' }";
    let lexed = lex(src);
    let lifetimes: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, ["'a", "'a", "'static"]);
    let chars: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::CharLit)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, ["'x'"]);
}

#[test]
fn escaped_char_literals_lex_as_chars() {
    let src = r"let nl = '\n'; let q = '\''; let sp = ' ';";
    let lexed = lex(src);
    let chars: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::CharLit)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, [r"'\n'", r"'\''", "' '"]);
}

#[test]
fn macro_bodies_are_lexed_like_ordinary_tokens() {
    // A token-level pass deliberately sees through macro_rules!.
    let src = "macro_rules! m { () => { x.unwrap() } }";
    let lexed = lex(src);
    assert!(lexed.tokens.iter().any(|t| t.is_ident("unwrap")));
    assert!(lexed.tokens.iter().any(|t| t.is_ident("macro_rules")));
}

#[test]
fn numeric_literal_shapes() {
    let src = "let a = 1.5e-3; let b = 0xFF; let c = 1..4; let d = 8_192u32;";
    let lexed = lex(src);
    let nums: Vec<_> = lexed.tokens.iter().filter(|t| t.kind == TokenKind::NumLit).collect();
    let texts: Vec<&str> = nums.iter().map(|t| t.text.as_str()).collect();
    // `1..4` must not swallow the range dots into either literal.
    assert_eq!(texts, ["1.5e-3", "0xFF", "1", "4", "8_192u32"]);
    assert!(!nums[0].is_int_lit(), "a float with an exponent is not an index");
    assert!(nums[1].is_int_lit());
    assert!(nums[4].is_int_lit());
}

#[test]
fn waivers_come_only_from_plain_line_comments() {
    let src = "\
/// gfsc-lint: allow(panic) doc prose must not count
//! gfsc-lint: allow(panic) module doc must not count
// gfsc-lint: allow(nan-cmp) real waiver with a reason
// gfsc-lint: allow(alloc)
fn f() {}
";
    let lexed = lex(src);
    assert_eq!(lexed.waivers.len(), 2, "{:?}", lexed.waivers);
    assert_eq!(lexed.waivers[0].rule, "nan-cmp");
    assert_eq!(lexed.waivers[0].reason, "real waiver with a reason");
    assert_eq!(lexed.waivers[0].line, 3);
    assert_eq!(lexed.waivers[1].rule, "alloc");
    assert_eq!(lexed.waivers[1].reason, "");
    assert_eq!(lexed.waivers[1].line, 4);
}
