//! The linter over the real workspace under the checked-in `lint.toml`:
//! the same run CI gates on. A failure here means either a regression
//! slipped into a runtime path or the lint grew a false positive —
//! both block.

use std::path::Path;

#[test]
fn the_workspace_lints_clean_under_the_checked_in_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = gfsc_lint::run_from_root(&root, &root.join("lint.toml")).expect("workspace walk");

    let offending: Vec<String> =
        report.findings.iter().filter(|f| !f.waived).map(|f| f.render()).collect();
    assert!(offending.is_empty(), "workspace is not lint-clean:\n{}", offending.join("\n"));
    assert!(
        report.waiver_count <= report.waiver_budget,
        "waivers in force ({}) exceed the lint.toml budget ({})",
        report.waiver_count,
        report.waiver_budget
    );
    assert!(report.is_clean());
    assert!(
        report.files_scanned > 50,
        "walk visited only {} files — scope globs likely broken",
        report.files_scanned
    );
}
