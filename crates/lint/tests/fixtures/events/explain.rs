//! R5 fixture renderer: misses `EventKind::Orphaned` on purpose.

pub fn render(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::EpochStarted => "epoch",
        EventKind::FallbackEntered => "fallback",
        _ => "other",
    }
}
