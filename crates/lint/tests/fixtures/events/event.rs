//! R5 fixture: a taxonomy enum with one unrendered variant.

pub enum EventKind {
    EpochStarted,
    FallbackEntered,
    Orphaned,
}
