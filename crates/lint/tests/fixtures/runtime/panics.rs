//! R1 fixture: seeded panicking constructs plus the regions the rule
//! must exempt. Line numbers are asserted by `tests/rules.rs` — append
//! to this file, never insert.

pub fn runtime_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn runtime_expect(x: Option<u32>) -> u32 {
    x.expect("fixture")
}

pub fn runtime_macros(flag: bool) {
    if flag {
        panic!("fixture");
    }
    unreachable!();
}

pub fn runtime_todo() {
    todo!();
}

pub fn runtime_index(xs: &[u32]) -> u32 {
    xs[0]
}

pub fn strings_and_comments_are_not_call_sites() -> &'static str {
    // Mentioning .unwrap() in a comment must not count.
    "nor does .unwrap() inside a string literal"
}

pub fn waived_with_reason(x: Option<u32>) -> u32 {
    // gfsc-lint: allow(panic) fixture: documented contract pinned by a test
    x.unwrap()
}

pub fn waived_without_reason(x: Option<u32>) -> u32 {
    // gfsc-lint: allow(panic)
    x.unwrap()
}

// gfsc-lint: allow(panic) fixture: stale waiver — nothing to suppress below
pub fn nothing_to_waive() {}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_exempt() {
        Some(1u32).unwrap();
    }
}
