//! R2 fixture: allocations inside the named epoch-loop functions are
//! flagged; identical constructs elsewhere are not.

pub fn arbitrate(xs: &[f64]) -> f64 {
    let doubled: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
    let scratch = vec![0.0; 4];
    let label = format!("{}", doubled.len() + scratch.len());
    label.len() as f64
}

pub fn observe(x: f64) -> String {
    x.to_string()
}

pub fn setup_is_exempt(n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    out.push(0.0);
    out
}
