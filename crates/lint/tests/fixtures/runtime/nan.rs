//! R3 fixture: NaN-unsafe orderings, NaN-dropping folds, and the
//! total-order forms that must pass untouched.

use std::cmp::Ordering;

fn ord(_a: &f64, _b: &f64) -> Ordering {
    Ordering::Less
}

pub fn bad_partial(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some()
}

pub fn bad_sort(xs: &mut [f64]) {
    xs.sort_by(|a, b| ord(a, b));
}

pub fn bad_max_by(xs: &[f64]) -> Option<&f64> {
    xs.iter().max_by(|a, b| ord(a, b))
}

pub fn bad_fold(a: f64, b: f64) -> f64 {
    a.max(b)
}

pub fn bad_min_fold(a: f64, b: f64) -> f64 {
    a.min(b)
}

pub fn good_sort(xs: &mut [f64]) {
    xs.sort_by(f64::total_cmp);
}

pub fn good_total(a: f64, b: f64) -> bool {
    a.total_cmp(&b).is_gt()
}
