//! R0 fixture: a crate root missing both hygiene headers.

pub fn nothing() {}
