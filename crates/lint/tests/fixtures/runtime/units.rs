//! R4 fixture: bare f64 quantities on public signatures.

pub struct Celsius(pub f64);

pub fn bad_temp(limit_c: f64) -> f64 {
    limit_c
}

pub fn bad_many(ambient_temp: f64, fan_rpm: f64) -> f64 {
    ambient_temp + fan_rpm
}

pub fn good_newtype(limit: Celsius) -> f64 {
    limit.0
}

fn private_is_exempt(limit_c: f64) -> f64 {
    limit_c
}

pub fn good_unsuffixed(ratio: f64) -> f64 {
    ratio
}
