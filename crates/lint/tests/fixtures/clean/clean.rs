//! The zero-findings control: this file is in scope for every per-file
//! rule and must produce nothing — the false-positive guard.

pub struct Rpm(pub f64);

pub fn arbitrate(xs: &[f64], out: &mut [f64]) {
    for (slot, x) in out.iter_mut().zip(xs) {
        *slot = if x.total_cmp(slot).is_gt() { *x } else { *slot };
    }
}

pub fn pick(xs: &[f64]) -> Option<f64> {
    xs.first().copied()
}

pub fn speed(limit: Rpm) -> f64 {
    limit.0
}
