//! Rule fixtures: a seeded corpus under `tests/fixtures/` where every
//! violation (and every deliberate non-violation) is pinned to an exact
//! `(file, line, rule, waived)` tuple — the detection contract of the
//! CI gate. The corpus sits outside every scope in the real `lint.toml`,
//! so seeding it never dirties the workspace gate.

use gfsc_lint::config::Config;
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The fixture-corpus config: each rule scoped to its own seeded file,
/// plus `clean/**` everywhere as the false-positive control.
const FIXTURE_CONFIG: &str = r#"
[lint]
max_waivers = 3

[rules.header]
severity = "error"
scope = ["runtime/lib.rs"]

[rules.panic]
severity = "error"
scope = ["runtime/panics.rs", "clean/**"]

[rules.alloc]
severity = "error"
scope = ["runtime/alloc.rs", "clean/**"]
functions = ["arbitrate", "observe"]

[rules.nan-cmp]
severity = "error"
scope = ["runtime/nan.rs", "clean/**"]

[rules.nan-maxmin]
severity = "error"
scope = ["runtime/nan.rs", "clean/**"]

[rules.units]
severity = "error"
scope = ["runtime/units.rs", "clean/**"]

[rules.events]
severity = "error"
enum_file = "events/event.rs"
match_file = "events/explain.rs"
"#;

#[test]
fn every_seeded_violation_is_detected_and_nothing_else() {
    let config = Config::parse(FIXTURE_CONFIG).expect("fixture config parses");
    let report = gfsc_lint::run(&fixtures_root(), &config).expect("fixture walk");

    let got: Vec<(String, u32, String, bool)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.clone(), f.waived))
        .collect();
    let own = |s: &str| s.to_string();
    let expected: Vec<(String, u32, String, bool)> = vec![
        // R5: the one variant explain.rs never renders.
        (own("events/explain.rs"), 1, own("events"), false),
        // R2: collect / vec! / format! in `arbitrate`, to_string in `observe`.
        (own("runtime/alloc.rs"), 5, own("alloc"), false),
        (own("runtime/alloc.rs"), 6, own("alloc"), false),
        (own("runtime/alloc.rs"), 7, own("alloc"), false),
        (own("runtime/alloc.rs"), 12, own("alloc"), false),
        // R0: both hygiene headers missing.
        (own("runtime/lib.rs"), 1, own("header"), false),
        (own("runtime/lib.rs"), 1, own("header"), false),
        // R3: partial_cmp, untotaled sort_by, untotaled max_by…
        (own("runtime/nan.rs"), 11, own("nan-cmp"), false),
        (own("runtime/nan.rs"), 15, own("nan-cmp"), false),
        (own("runtime/nan.rs"), 19, own("nan-cmp"), false),
        // …and the NaN-dropping .max( / .min( folds.
        (own("runtime/nan.rs"), 23, own("nan-maxmin"), false),
        (own("runtime/nan.rs"), 27, own("nan-maxmin"), false),
        // R1: unwrap, expect, panic!, unreachable!, todo!, literal index.
        (own("runtime/panics.rs"), 6, own("panic"), false),
        (own("runtime/panics.rs"), 10, own("panic"), false),
        (own("runtime/panics.rs"), 15, own("panic"), false),
        (own("runtime/panics.rs"), 17, own("panic"), false),
        (own("runtime/panics.rs"), 21, own("panic"), false),
        (own("runtime/panics.rs"), 25, own("panic"), false),
        // A waiver with a reason suppresses exactly its next code line…
        (own("runtime/panics.rs"), 35, own("panic"), true),
        // …a reasonless waiver is itself an error and suppresses nothing…
        (own("runtime/panics.rs"), 39, own("waiver"), false),
        (own("runtime/panics.rs"), 40, own("panic"), false),
        // …and a waiver with nothing to suppress is flagged as stale.
        (own("runtime/panics.rs"), 43, own("waiver"), false),
        // R4: one suffixed bare-f64 param, then two on one signature.
        (own("runtime/units.rs"), 5, own("units"), false),
        (own("runtime/units.rs"), 9, own("units"), false),
        (own("runtime/units.rs"), 9, own("units"), false),
    ];
    assert_eq!(
        got,
        expected,
        "finding set drifted:\n{}",
        report.findings.iter().map(|f| f.render()).collect::<Vec<_>>().join("\n")
    );

    // The gate math over the same corpus.
    assert_eq!(report.error_count(), 23, "non-waived errors");
    assert_eq!(report.warn_count(), 1, "the stale waiver warns");
    assert_eq!(report.waiver_count, 3, "all waiver comments are budgeted");
    assert!(!report.is_clean());

    let waived = report.findings.iter().find(|f| f.waived).expect("one waived finding");
    assert_eq!(
        waived.waiver_reason.as_deref(),
        Some("fixture: documented contract pinned by a test"),
        "the reason travels with the finding"
    );
}

#[test]
fn clean_control_file_produces_no_findings() {
    let config = Config::parse(FIXTURE_CONFIG).expect("fixture config parses");
    let report = gfsc_lint::run(&fixtures_root(), &config).expect("fixture walk");
    assert!(
        !report.findings.iter().any(|f| f.file.starts_with("clean/")),
        "false positive in the control file"
    );
}

#[test]
fn waiver_budget_is_a_ratchet() {
    // Same corpus (3 waivers in force), budget lowered to 2: the run
    // must grow a budget finding — the count can only go down.
    let tightened = FIXTURE_CONFIG.replace("max_waivers = 3", "max_waivers = 2");
    let config = Config::parse(&tightened).expect("fixture config parses");
    let report = gfsc_lint::run(&fixtures_root(), &config).expect("fixture walk");
    let budget = report
        .findings
        .iter()
        .find(|f| f.file == "lint.toml" && f.rule == "waiver")
        .expect("budget overflow finding");
    assert!(budget.message.contains("exceed the budget of 2"), "{}", budget.message);
    assert!(!report.is_clean());
}

#[test]
fn json_report_carries_the_gate_counts() {
    let config = Config::parse(FIXTURE_CONFIG).expect("fixture config parses");
    let report = gfsc_lint::run(&fixtures_root(), &config).expect("fixture walk");
    let json = report.to_json();
    assert!(json.contains("\"errors\":23"), "{json}");
    assert!(json.contains("\"warnings\":1"), "{json}");
    assert!(json.contains("\"waivers\":3"), "{json}");
    assert!(json.contains("\"waiver_budget\":3"), "{json}");
    assert!(json.contains("\"rule\":\"nan-maxmin\""), "{json}");
}
