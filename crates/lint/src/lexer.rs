//! A hand-rolled token-level lexer for Rust source.
//!
//! The workspace builds in an offline container, so a real parser
//! (`syn`) cannot be vendored; the rules in this crate only need a
//! faithful *token stream* — identifiers, punctuation, literals — with
//! comments and string bodies correctly skipped so that `unwrap` inside
//! a doc comment or a log message never counts as a call site.
//!
//! The tricky cases the lexer handles (and the fixture corpus pins):
//!
//! - line comments (`//`) and **nested** block comments (`/* /* */ */`);
//! - string literals with escapes, byte strings, and raw strings with
//!   an arbitrary number of hashes (`r##"…"##`, `br#"…"#`);
//! - char literals vs lifetimes (`'a'` is a token, `'static` is not a
//!   truncated char);
//! - macro bodies, which are lexed like any other token soup (a
//!   token-level pass deliberately sees through `macro_rules!`).
//!
//! Waiver comments (`// gfsc-lint: allow(<rule>) <reason>`) are
//! extracted during the same pass, since comments are otherwise
//! discarded.

/// What kind of token a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `Vec`).
    Ident,
    /// A lifetime (`'a`, `'static`) — the leading quote is kept.
    Lifetime,
    /// A character literal, escapes included (`'x'`, `'\n'`).
    CharLit,
    /// A string literal of any flavour (plain, raw, byte); the token
    /// text is the raw source slice, quotes and hashes included.
    StrLit,
    /// A numeric literal (`42`, `0x1f`, `1.5e-3`, `8_192u32`).
    NumLit,
    /// A single punctuation character (`.`, `!`, `[`, `::` is two).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Which class of token this is.
    pub kind: TokenKind,
    /// The source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True when the token is the identifier `ident`.
    #[must_use]
    pub fn is_ident(&self, ident: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == ident
    }

    /// True when the token is the punctuation character `ch`.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }

    /// True for an *integer* literal (no `.`, no exponent) — the shape
    /// the slice-index rule cares about.
    #[must_use]
    pub fn is_int_lit(&self) -> bool {
        if self.kind != TokenKind::NumLit || self.text.contains('.') {
            return false;
        }
        // A radix-prefixed literal legitimately contains `e`/`E` as hex
        // digits (`0xFE`); only a decimal literal's `e` marks an
        // exponent and makes it a float.
        let radix = ["0x", "0b", "0o"].iter().any(|p| self.text.starts_with(p));
        radix || !(self.text.contains('e') || self.text.contains('E'))
    }
}

/// A `// gfsc-lint: allow(<rule>) <reason>` waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line the waiver comment sits on.
    pub line: u32,
    /// The rule slug inside `allow(…)`.
    pub rule: String,
    /// Everything after the closing paren, trimmed. A waiver with an
    /// empty reason is itself a lint violation.
    pub reason: String,
}

/// The output of [`lex`]: the token stream plus extracted waivers.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment, non-whitespace tokens in source order.
    pub tokens: Vec<Token>,
    /// All waiver comments found, in source order.
    pub waivers: Vec<Waiver>,
}

/// The marker that introduces a waiver inside a line comment.
pub const WAIVER_MARKER: &str = "gfsc-lint: allow(";

fn parse_waiver(comment: &str, line: u32) -> Option<Waiver> {
    // Doc comments (`///`, `//!`) never carry waivers — prose that
    // *mentions* the marker (like this crate's own docs) must not
    // count. A real waiver is a plain `//` comment that starts with
    // the marker.
    let body = comment.strip_prefix("//")?;
    if body.starts_with('/') || body.starts_with('!') {
        return None;
    }
    if !body.trim_start().starts_with("gfsc-lint:") {
        return None;
    }
    let at = comment.find(WAIVER_MARKER)?;
    let rest = &comment[at + WAIVER_MARKER.len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..].trim().to_string();
    Some(Waiver { line, rule, reason })
}

/// Lexes `source` into tokens + waivers. Never fails: malformed input
/// (unterminated strings or comments) is lexed best-effort to EOF —
/// the compiler, not the linter, owns rejecting invalid Rust.
#[must_use]
pub fn lex(source: &str) -> Lexed {
    let mut out = Lexed::default();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Helper closures capture nothing mutable; work on indices instead.
    let is_ident_start = |b: u8| b == b'_' || b.is_ascii_alphabetic();
    let is_ident_cont = |b: u8| b == b'_' || b.is_ascii_alphanumeric();

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                // Line comment: scan to EOL, check for a waiver.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                if let Some(text) = source.get(start..i) {
                    if let Some(w) = parse_waiver(text, line) {
                        out.waivers.push(w);
                    }
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comment, nesting tracked.
                i += 2;
                let mut depth = 1u32;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if starts_raw_string(bytes, i) => {
                let (end, newlines) = scan_raw_string(bytes, i);
                push_slice(&mut out.tokens, source, i, end, TokenKind::StrLit, line);
                line += newlines;
                i = end;
            }
            b'b' if i + 1 < bytes.len() && bytes[i + 1] == b'"' => {
                let (end, newlines) = scan_string(bytes, i + 1);
                push_slice(&mut out.tokens, source, i, end, TokenKind::StrLit, line);
                line += newlines;
                i = end;
            }
            b'b' if i + 1 < bytes.len() && bytes[i + 1] == b'\'' => {
                let end = scan_char(bytes, i + 1);
                push_slice(&mut out.tokens, source, i, end, TokenKind::CharLit, line);
                i = end;
            }
            b'"' => {
                let (end, newlines) = scan_string(bytes, i);
                push_slice(&mut out.tokens, source, i, end, TokenKind::StrLit, line);
                line += newlines;
                i = end;
            }
            b'\'' => {
                // Char literal or lifetime. `'\…'` is always a char.
                // `'x'` (ident-ish char then a closing quote) is a char;
                // `'static`, `'a` followed by anything else is a
                // lifetime with no closing quote.
                if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    let end = scan_char(bytes, i);
                    push_slice(&mut out.tokens, source, i, end, TokenKind::CharLit, line);
                    i = end;
                } else if i + 1 < bytes.len() && is_ident_start(bytes[i + 1]) {
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_cont(bytes[j]) {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j] == b'\'' {
                        // 'x' / 'é' (multibyte handled by scan_char).
                        let end = scan_char(bytes, i);
                        push_slice(&mut out.tokens, source, i, end, TokenKind::CharLit, line);
                        i = end;
                    } else {
                        push_slice(&mut out.tokens, source, i, j, TokenKind::Lifetime, line);
                        i = j;
                    }
                } else {
                    // Punctuation char literal: '(' , ' ' , or multibyte.
                    let end = scan_char(bytes, i);
                    push_slice(&mut out.tokens, source, i, end, TokenKind::CharLit, line);
                    i = end;
                }
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_cont(bytes[i]) {
                    i += 1;
                }
                push_slice(&mut out.tokens, source, start, i, TokenKind::Ident, line);
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                i += 1;
                // Greedy numeric scan: digits, radix prefixes, `_`,
                // type suffixes, exponents, and a fractional part —
                // but `1..2` must not swallow the range dots.
                while i < bytes.len() {
                    let c = bytes[i];
                    if is_ident_cont(c) {
                        // Covers hex digits, `_`, suffixes, `e`/`E`.
                        i += 1;
                    } else if c == b'.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                        i += 1;
                    } else if (c == b'+' || c == b'-')
                        && matches!(bytes.get(i.wrapping_sub(1)), Some(b'e' | b'E'))
                        && bytes[start..i].iter().any(|d| d.is_ascii_digit())
                        && source.get(start..i).is_some_and(has_float_shape)
                    {
                        // Exponent sign inside `1.5e-3`.
                        i += 1;
                    } else {
                        break;
                    }
                }
                push_slice(&mut out.tokens, source, start, i, TokenKind::NumLit, line);
            }
            _ => {
                // Single punctuation character (multibyte UTF-8 kept
                // whole so `°` inside code — illegal anyway — does not
                // shear the stream).
                let ch_len = utf8_len(b);
                let end = (i + ch_len).min(bytes.len());
                push_slice(&mut out.tokens, source, i, end, TokenKind::Punct, line);
                i = end;
            }
        }
    }
    out
}

/// True when the digits-so-far look like a float mantissa (so `e-`/`E-`
/// is an exponent, not `0xE - 3` style arithmetic).
fn has_float_shape(text: &str) -> bool {
    !text.starts_with("0x") && !text.starts_with("0b") && !text.starts_with("0o")
}

fn utf8_len(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >> 5 == 0b110 {
        2
    } else if b >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

fn push_slice(
    tokens: &mut Vec<Token>,
    source: &str,
    start: usize,
    end: usize,
    kind: TokenKind,
    line: u32,
) {
    if let Some(text) = source.get(start..end) {
        tokens.push(Token { kind, text: text.to_string(), line });
    }
}

/// Does `r"`, `r#"`, `br##"`… start at `i`?
fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Scans a raw string starting at `i`; returns (end index, newlines).
fn scan_raw_string(bytes: &[u8], i: usize) -> (usize, u32) {
    let mut j = i;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // the opening quote
    let mut newlines = 0u32;
    while j < bytes.len() {
        if bytes[j] == b'\n' {
            newlines += 1;
            j += 1;
        } else if bytes[j] == b'"' {
            // Need `hashes` following `#` to close.
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, newlines);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (j, newlines)
}

/// Scans a plain (possibly byte) string whose opening `"` is at `i`.
fn scan_string(bytes: &[u8], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut newlines = 0u32;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b'"' => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (j, newlines)
}

/// Scans a char literal whose opening `'` is at `i`.
fn scan_char(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            b'\n' => return j, // malformed; don't run away
            _ => j += 1,
        }
    }
    j
}
