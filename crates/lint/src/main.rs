//! The `gfsc-lint` binary: lint the workspace against `lint.toml`.
//!
//! ```text
//! gfsc-lint [--root DIR] [--config FILE] [--json] [--out FILE] [--quiet]
//! ```
//!
//! Text mode prints `file:line: rule: message` per finding plus a
//! summary; `--json` prints the machine-readable report instead.
//! `--out FILE` additionally writes the JSON report to a file (the CI
//! artifact). Exit code 0 = clean, 1 = non-waived errors or a blown
//! waiver budget, 2 = usage/config errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    out: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts =
        Options { root: PathBuf::from("."), config: None, json: false, out: None, quiet: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                opts.config = Some(PathBuf::from(args.next().ok_or("--config needs a file")?));
            }
            "--json" => opts.json = true,
            "--out" => {
                opts.out = Some(PathBuf::from(args.next().ok_or("--out needs a file")?));
            }
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => {
                return Err(
                    "usage: gfsc-lint [--root DIR] [--config FILE] [--json] [--out FILE] [--quiet]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let config_path = opts.config.clone().unwrap_or_else(|| opts.root.join("lint.toml"));
    let report = match gfsc_lint::run_from_root(&opts.root, &config_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gfsc-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(out_path) = &opts.out {
        if let Some(parent) = out_path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        if let Err(e) = fs::write(out_path, report.to_json()) {
            eprintln!("gfsc-lint: cannot write {}: {e}", out_path.display());
            return ExitCode::from(2);
        }
    }

    if opts.json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            if f.waived && opts.quiet {
                continue;
            }
            println!("{}", f.render());
        }
        println!(
            "gfsc-lint: {} files, {} errors, {} warnings, {}/{} waivers",
            report.files_scanned,
            report.error_count(),
            report.warn_count(),
            report.waiver_count,
            report.waiver_budget,
        );
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
