//! The rule implementations.
//!
//! | slug        | checks                                                        |
//! |-------------|---------------------------------------------------------------|
//! | `header`    | R0 — crate roots carry `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]` |
//! | `panic`     | R1 — no `unwrap`/`expect`/`panic!`-family/literal slice index in runtime code |
//! | `alloc`     | R2 — no allocating constructs in epoch-loop functions          |
//! | `nan-cmp`   | R3 — no `partial_cmp` / untotaled `sort_by`-family on runtime paths |
//! | `nan-maxmin`| R3 — no NaN-dropping `.max(`/`.min(` folds in hot scan files   |
//! | `units`     | R4 — no bare `f64` params named `*_c`/`*_temp`/`*_w`/`*_rpm`/`*_s` on pub fns |
//! | `events`    | R5 — every `EventKind` variant has a render arm in `explain.rs` |
//!
//! Every rule walks the token stream (never raw text), so occurrences
//! inside comments, strings, and `#[cfg(test)]` regions are exempt by
//! construction.

use crate::config::RuleConfig;
use crate::findings::{Finding, Severity};
use crate::lexer::{Token, TokenKind};
use crate::scan::FileModel;

/// Context handed to each per-file rule.
pub struct RuleCtx<'a> {
    /// Repo-relative `/`-separated path.
    pub path: &'a str,
    /// The file's token stream.
    pub tokens: &'a [Token],
    /// The structural model (test regions, fns).
    pub model: &'a FileModel,
}

fn finding(
    ctx: &RuleCtx<'_>,
    rule: &str,
    severity: Severity,
    line: u32,
    message: String,
) -> Finding {
    Finding {
        file: ctx.path.to_string(),
        line,
        rule: rule.to_string(),
        message,
        severity,
        waived: false,
        waiver_reason: None,
    }
}

/// R0: crate-root hygiene headers.
pub fn check_header(ctx: &RuleCtx<'_>, cfg: &RuleConfig, out: &mut Vec<Finding>) {
    for required in ["forbid(unsafe_code)", "warn(missing_docs)"] {
        let (attr, arg) = match required.split_once('(') {
            Some((a, rest)) => (a, rest.trim_end_matches(')')),
            None => continue,
        };
        let present = ctx.tokens.windows(8).any(|w| {
            matches!(w, [hash, bang, open, a, lp, g, rp, close]
                if hash.is_punct('#') && bang.is_punct('!') && open.is_punct('[')
                    && a.is_ident(attr) && lp.is_punct('(') && g.is_ident(arg)
                    && rp.is_punct(')') && close.is_punct(']'))
        });
        if !present {
            out.push(finding(
                ctx,
                "header",
                cfg.severity,
                1,
                format!("crate root is missing `#![{attr}({arg})]`"),
            ));
        }
    }
}

/// R1: panic-freedom on runtime paths.
pub fn check_panic(ctx: &RuleCtx<'_>, cfg: &RuleConfig, out: &mut Vec<Finding>) {
    let t = ctx.tokens;
    for i in 0..t.len() {
        if ctx.model.is_test_token(i) {
            continue;
        }
        let tok = &t[i];
        let prev_dot = i > 0 && t[i - 1].is_punct('.');
        let next_paren = t.get(i + 1).is_some_and(|n| n.is_punct('('));
        let next_bang = t.get(i + 1).is_some_and(|n| n.is_punct('!'));

        if prev_dot && next_paren && (tok.is_ident("unwrap") || tok.is_ident("expect")) {
            out.push(finding(
                ctx,
                "panic",
                cfg.severity,
                tok.line,
                format!(
                    "`.{}()` can panic on a runtime path; propagate an error or restructure",
                    tok.text
                ),
            ));
        } else if next_bang
            && (tok.is_ident("panic")
                || tok.is_ident("unreachable")
                || tok.is_ident("todo")
                || tok.is_ident("unimplemented"))
            // `macro_rules! unreachable`-style definitions would slip
            // in here, but redefining panic macros is not a thing this
            // workspace does.
            && !(i > 0 && t[i - 1].is_ident("macro_rules"))
        {
            out.push(finding(
                ctx,
                "panic",
                cfg.severity,
                tok.line,
                format!("`{}!` on a runtime path; return a typed error instead", tok.text),
            ));
        } else if tok.is_punct('[')
            && i > 0
            && (t[i - 1].kind == TokenKind::Ident
                || t[i - 1].is_punct(')')
                || t[i - 1].is_punct(']'))
            && t.get(i + 1).is_some_and(Token::is_int_lit)
            && t.get(i + 2).is_some_and(|n| n.is_punct(']'))
        {
            let idx = t.get(i + 1).map(|n| n.text.as_str()).unwrap_or("");
            out.push(finding(
                ctx,
                "panic",
                cfg.severity,
                tok.line,
                format!("literal slice index `[{idx}]` can panic; use `.get({idx})` or a guard"),
            ));
        }
    }
}

/// R2: allocation hygiene inside epoch-loop functions.
pub fn check_alloc(ctx: &RuleCtx<'_>, cfg: &RuleConfig, out: &mut Vec<Finding>) {
    let ranges: Vec<(usize, usize)> = if cfg.functions.is_empty() {
        vec![(0, ctx.tokens.len())]
    } else {
        ctx.model
            .fns
            .iter()
            .filter(|f| !f.in_test && cfg.functions.iter().any(|n| n == &f.name))
            .map(|f| (f.body.start_token, f.body.end_token))
            .collect()
    };
    let t = ctx.tokens;
    for (start, end) in ranges {
        for i in start..end.min(t.len()) {
            if ctx.model.is_test_token(i) {
                continue;
            }
            let tok = &t[i];
            let path_new = |head: &str, tail: &str| {
                tok.is_ident(head)
                    && t.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && t.get(i + 2).is_some_and(|n| n.is_punct(':'))
                    && t.get(i + 3).is_some_and(|n| n.is_ident(tail))
            };
            let bang_macro =
                |name: &str| tok.is_ident(name) && t.get(i + 1).is_some_and(|n| n.is_punct('!'));
            let method = |name: &str| {
                i > 0
                    && t[i - 1].is_punct('.')
                    && tok.is_ident(name)
                    && t.get(i + 1).is_some_and(|n| n.is_punct('('))
            };
            let hit = if path_new("Vec", "new") || path_new("Vec", "with_capacity") {
                Some("Vec construction")
            } else if path_new("Box", "new") {
                Some("Box::new")
            } else if path_new("String", "from") || path_new("String", "new") {
                Some("String construction")
            } else if bang_macro("vec") {
                Some("vec! macro")
            } else if bang_macro("format") {
                Some("format! macro")
            } else if method("to_vec") || method("to_owned") || method("to_string") {
                Some("owned-copy method")
            } else if method("collect") {
                Some("collect()")
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(finding(
                    ctx,
                    "alloc",
                    cfg.severity,
                    tok.line,
                    format!("{what} allocates inside an epoch-loop function (`{}`)", tok.text),
                ));
            }
        }
    }
}

/// R3 (primary): `partial_cmp` and `sort_by`-family without a total
/// order on runtime paths.
pub fn check_nan_cmp(ctx: &RuleCtx<'_>, cfg: &RuleConfig, out: &mut Vec<Finding>) {
    let t = ctx.tokens;
    for i in 0..t.len() {
        if ctx.model.is_test_token(i) {
            continue;
        }
        let tok = &t[i];
        let is_method_call =
            i > 0 && t[i - 1].is_punct('.') && t.get(i + 1).is_some_and(|n| n.is_punct('('));
        if !is_method_call {
            continue;
        }
        if tok.is_ident("partial_cmp") {
            out.push(finding(
                ctx,
                "nan-cmp",
                cfg.severity,
                tok.line,
                "`partial_cmp` is NaN-unordered; use `total_cmp` (NaN sorts above +inf, fail-hot)"
                    .to_string(),
            ));
        } else if tok.is_ident("sort_by")
            || tok.is_ident("sort_unstable_by")
            || tok.is_ident("max_by")
            || tok.is_ident("min_by")
        {
            // Inspect the comparator: `total_cmp` (or a plain `cmp` on
            // Ord keys) makes it total; `partial_cmp` inside is already
            // flagged by the check above, so skip the duplicate.
            let Some(close) = matching_paren(t, i + 1) else { continue };
            let body = &t[i + 2..close];
            let has = |name: &str| body.iter().any(|b| b.is_ident(name));
            if !has("total_cmp") && !has("cmp") && !has("partial_cmp") {
                out.push(finding(
                    ctx,
                    "nan-cmp",
                    cfg.severity,
                    tok.line,
                    format!("`{}` comparator has no total order; use `total_cmp`", tok.text),
                ));
            }
        }
    }
}

/// R3 (folds): NaN-dropping `.max(` / `.min(` in hot scan files.
///
/// `f64::max` silently *drops* a NaN operand, so a poisoned reading
/// vanishes from a hottest-socket scan instead of surfacing. The rule
/// is scoped (via `lint.toml`) to the selection/scan files where that
/// matters; widening it to every clamp in the workspace is listed as
/// future work in the ROADMAP.
pub fn check_nan_maxmin(ctx: &RuleCtx<'_>, cfg: &RuleConfig, out: &mut Vec<Finding>) {
    let t = ctx.tokens;
    for i in 0..t.len() {
        if ctx.model.is_test_token(i) {
            continue;
        }
        let tok = &t[i];
        let is_method_call =
            i > 0 && t[i - 1].is_punct('.') && t.get(i + 1).is_some_and(|n| n.is_punct('('));
        if is_method_call && (tok.is_ident("max") || tok.is_ident("min")) {
            out.push(finding(
                ctx,
                "nan-maxmin",
                cfg.severity,
                tok.line,
                format!(
                    "`.{}(` drops NaN operands; use a total_cmp-based fold (see gfsc_units::total_max)",
                    tok.text
                ),
            ));
        }
    }
}

/// Suffixes R4 treats as "this is a quantity and must be a newtype".
pub const UNIT_SUFFIXES: [&str; 5] = ["_c", "_temp", "_w", "_rpm", "_s"];

/// R4: unit hygiene on public fn signatures.
pub fn check_units(ctx: &RuleCtx<'_>, cfg: &RuleConfig, out: &mut Vec<Finding>) {
    for f in &ctx.model.fns {
        if !f.is_pub || f.in_test {
            continue;
        }
        let params = ctx.tokens.get(f.params.start_token..f.params.end_token).unwrap_or(&[]);
        for (name, ty) in split_params(params) {
            let suffixed = UNIT_SUFFIXES.iter().any(|s| name.ends_with(s));
            if suffixed && matches!(ty, [only] if only.is_ident("f64")) {
                out.push(finding(
                    ctx,
                    "units",
                    cfg.severity,
                    f.line,
                    format!(
                        "pub fn `{}` takes bare `f64` parameter `{name}`; use a gfsc-units newtype",
                        f.name
                    ),
                ));
            }
        }
    }
}

/// Splits a parameter token slice at top-level commas into
/// `(name, type-tokens)` pairs; `self` receivers are skipped.
fn split_params(params: &[Token]) -> Vec<(String, &[Token])> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut cuts = Vec::new();
    for (i, t) in params.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            cuts.push((start, i));
            start = i + 1;
        }
    }
    cuts.push((start, params.len()));
    for (a, b) in cuts {
        let Some(param) = params.get(a..b) else { continue };
        // Pattern side: skip `mut`, expect `name : type…`.
        let mut k = 0usize;
        while param.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let Some(name_tok) = param.get(k) else { continue };
        if name_tok.kind != TokenKind::Ident || name_tok.text == "self" {
            continue;
        }
        if !param.get(k + 1).is_some_and(|t| t.is_punct(':')) {
            continue;
        }
        let ty = param.get(k + 2..).unwrap_or(&[]);
        out.push((name_tok.text.clone(), ty));
    }
    out
}

/// R5: taxonomy coverage — every variant of the event enum has a
/// `EnumName::Variant` mention in the render file.
///
/// `enum_tokens` come from the rule's `enum_file`, `match_tokens` from
/// its `match_file`; `enum_name` defaults to `EventKind`.
pub fn check_events(
    enum_path: &str,
    enum_tokens: &[Token],
    match_path: &str,
    match_tokens: &[Token],
    enum_name: &str,
    cfg: &RuleConfig,
    out: &mut Vec<Finding>,
) {
    let variants = enum_variants(enum_tokens, enum_name);
    if variants.is_empty() {
        out.push(Finding {
            file: enum_path.to_string(),
            line: 1,
            rule: "events".to_string(),
            message: format!("no `enum {enum_name}` with variants found"),
            severity: cfg.severity,
            waived: false,
            waiver_reason: None,
        });
        return;
    }
    for (variant, line) in variants {
        let rendered = match_tokens.windows(4).any(|w| {
            matches!(w, [e, c1, c2, v]
                if e.is_ident(enum_name) && c1.is_punct(':') && c2.is_punct(':')
                    && v.is_ident(&variant))
        });
        if !rendered {
            out.push(Finding {
                file: match_path.to_string(),
                line: 1,
                rule: "events".to_string(),
                message: format!(
                    "`{enum_name}::{variant}` ({enum_path}:{line}) has no render arm here"
                ),
                severity: cfg.severity,
                waived: false,
                waiver_reason: None,
            });
        }
    }
}

/// Collects `(variant, line)` pairs of `enum enum_name { … }`.
fn enum_variants(tokens: &[Token], enum_name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].is_ident("enum") && tokens[i + 1].is_ident(enum_name) {
            // Find the opening brace, then walk depth-1 items.
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0i32;
            let mut brackets = 0i32;
            let mut expect_variant = true;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('{') || t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') {
                    depth -= 1;
                    if depth == 0 && t.is_punct('}') {
                        return out;
                    }
                } else if t.is_punct('[') {
                    brackets += 1;
                } else if t.is_punct(']') {
                    brackets -= 1;
                    // An attribute just closed; next ident can be a
                    // variant again.
                } else if depth == 1 && brackets == 0 {
                    if t.is_punct(',') {
                        expect_variant = true;
                    } else if expect_variant && t.kind == TokenKind::Ident {
                        out.push((t.text.clone(), t.line));
                        expect_variant = false;
                    }
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}
