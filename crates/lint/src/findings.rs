//! Finding and report types, plus the text / JSON emitters.

use std::fmt::Write as _;

/// How a rule's findings are treated by the gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Severity {
    /// Fails the run unless waived.
    Error,
    /// Printed (and counted in `--json`) but never fails the run.
    Warn,
    /// Rule disabled.
    #[default]
    Off,
}

impl Severity {
    /// Stable lowercase label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Error => "error",
            Self::Warn => "warn",
            Self::Off => "off",
        }
    }
}

/// One lint finding, before or after waiver resolution.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Repo-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule slug (`panic`, `nan-cmp`, …).
    pub rule: String,
    /// Human-readable message.
    pub message: String,
    /// The rule's configured severity.
    pub severity: Severity,
    /// True when an in-scope waiver comment covers this finding.
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub waiver_reason: Option<String>,
}

impl Finding {
    /// The canonical one-line rendering: `file:line: rule: message`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("{}:{}: {}: {}", self.file, self.line, self.rule, self.message);
        if self.waived {
            let reason = self.waiver_reason.as_deref().unwrap_or("");
            let _ = write!(out, " [waived: {reason}]");
        }
        out
    }
}

/// The result of a whole-workspace lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, waived or not, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Total waiver comments seen in scoped files (the budgeted count).
    pub waiver_count: usize,
    /// The configured waiver budget.
    pub waiver_budget: usize,
    /// Files that matched at least one rule scope and were lexed.
    pub files_scanned: usize,
}

impl Report {
    /// Non-waived error findings — the count that gates CI.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Error && !f.waived).count()
    }

    /// Non-waived warn findings.
    #[must_use]
    pub fn warn_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warn && !f.waived).count()
    }

    /// True when the gate should pass.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0 && self.waiver_count <= self.waiver_budget
    }

    /// Machine-readable JSON (hand-rolled — no serde in the offline
    /// container). Schema: `{"files_scanned":N,"waivers":N,
    /// "waiver_budget":N,"errors":N,"warnings":N,"findings":[…]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"files_scanned\":{},\"waivers\":{},\"waiver_budget\":{},\"errors\":{},\"warnings\":{},\"findings\":[",
            self.files_scanned,
            self.waiver_count,
            self.waiver_budget,
            self.error_count(),
            self.warn_count(),
        );
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"waived\":{}",
                json_escape(&f.file),
                f.line,
                json_escape(&f.rule),
                f.severity.label(),
                json_escape(&f.message),
                f.waived,
            );
            if let Some(reason) = &f.waiver_reason {
                let _ = write!(out, ",\"waiver_reason\":\"{}\"", json_escape(reason));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
#[must_use]
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
