//! Structural scan over a token stream: `#[cfg(test)]` regions and
//! function spans.
//!
//! This is deliberately *not* a parser — it recovers just enough shape
//! for the rules: which lines belong to test-only code (exempt from the
//! runtime rules), and where each `fn` starts, what its parameters are,
//! and which token range its body covers (for function-scoped rules
//! like allocation hygiene and for attributing a finding to a
//! function).

use crate::lexer::{Token, TokenKind};

/// A half-open token range plus the covered line span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First token index.
    pub start_token: usize,
    /// One past the last token index.
    pub end_token: usize,
    /// First line covered.
    pub start_line: u32,
    /// Last line covered.
    pub end_line: u32,
}

impl Span {
    /// Does the span cover `line`?
    #[must_use]
    pub fn covers_line(&self, line: u32) -> bool {
        self.start_line <= line && line <= self.end_line
    }
}

/// One scanned function.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// Whether it is `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Tokens between the parameter parens (exclusive).
    pub params: Span,
    /// Body token range, `start_token == end_token` for bodyless
    /// declarations (traits, extern blocks).
    pub body: Span,
    /// True when the function sits inside a test region.
    pub in_test: bool,
}

/// The structural model of one file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Line spans covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<Span>,
    /// Every `fn` found, in source order.
    pub fns: Vec<FnInfo>,
}

impl FileModel {
    /// True when `line` falls inside test-only code.
    #[must_use]
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_regions.iter().any(|r| r.covers_line(line))
    }

    /// True when token index `i` falls inside test-only code.
    #[must_use]
    pub fn is_test_token(&self, i: usize) -> bool {
        self.test_regions.iter().any(|r| r.start_token <= i && i < r.end_token)
    }

    /// Builds the model from a token stream.
    #[must_use]
    pub fn build(tokens: &[Token]) -> Self {
        let mut model = Self::default();
        model.scan_test_regions(tokens);
        model.scan_fns(tokens);
        model
    }

    fn scan_test_regions(&mut self, tokens: &[Token]) {
        let mut i = 0usize;
        while i < tokens.len() {
            // Outer attribute `#[…]` (inner `#![…]` never gates a test
            // item, skip those).
            if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                let attr_end = match matching_bracket(tokens, i + 1, '[', ']') {
                    Some(end) => end,
                    None => break,
                };
                if attr_gates_test(&tokens[i + 2..attr_end]) {
                    // Skip any stacked attributes between this one and
                    // the item it decorates.
                    let mut j = attr_end + 1;
                    while j + 1 < tokens.len()
                        && tokens[j].is_punct('#')
                        && tokens[j + 1].is_punct('[')
                    {
                        match matching_bracket(tokens, j + 1, '[', ']') {
                            Some(end) => j = end + 1,
                            None => return,
                        }
                    }
                    // The decorated item's body is the next `{` before
                    // a `;` at the same nesting (a `;` first means a
                    // braceless item like `#[cfg(test)] use x;`).
                    let mut k = j;
                    let mut found = None;
                    while k < tokens.len() {
                        if tokens[k].is_punct('{') {
                            found = Some(k);
                            break;
                        }
                        if tokens[k].is_punct(';') {
                            break;
                        }
                        k += 1;
                    }
                    if let Some(open) = found {
                        if let Some(close) = matching_bracket(tokens, open, '{', '}') {
                            self.test_regions.push(Span {
                                start_token: i,
                                end_token: close + 1,
                                start_line: tokens[i].line,
                                end_line: tokens[close].line,
                            });
                            i = close + 1;
                            continue;
                        }
                    }
                }
                i = attr_end + 1;
                continue;
            }
            i += 1;
        }
    }

    fn scan_fns(&mut self, tokens: &[Token]) {
        let mut i = 0usize;
        while i < tokens.len() {
            if !tokens[i].is_ident("fn") {
                i += 1;
                continue;
            }
            let Some(name_tok) = tokens.get(i + 1) else { break };
            if name_tok.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            let name = name_tok.text.clone();
            let fn_line = tokens[i].line;
            let is_pub = pub_before(tokens, i);

            // Optional generics between name and `(`.
            let mut j = i + 2;
            if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
                let mut depth = 0i32;
                while j < tokens.len() {
                    if tokens[j].is_punct('<') {
                        depth += 1;
                    } else if tokens[j].is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
                i += 1;
                continue;
            }
            let Some(params_end) = matching_bracket(tokens, j, '(', ')') else {
                i += 1;
                continue;
            };
            let params = Span {
                start_token: j + 1,
                end_token: params_end,
                start_line: tokens[j].line,
                end_line: tokens[params_end].line,
            };

            // Return type / where clause, then `{` body or `;` decl.
            // Parens and brackets inside the return type are tracked so
            // `-> Result<(), E>` does not derail the scan.
            let mut k = params_end + 1;
            let mut depth = 0i32;
            let mut body = Span {
                start_token: params_end + 1,
                end_token: params_end + 1,
                start_line: tokens[params_end].line,
                end_line: tokens[params_end].line,
            };
            while k < tokens.len() {
                let t = &tokens[k];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct(';') {
                    break;
                } else if depth == 0 && t.is_punct('{') {
                    if let Some(close) = matching_bracket(tokens, k, '{', '}') {
                        body = Span {
                            start_token: k + 1,
                            end_token: close,
                            start_line: tokens[k].line,
                            end_line: tokens[close].line,
                        };
                    }
                    break;
                }
                k += 1;
            }

            let in_test = self.is_test_line(fn_line);
            self.fns.push(FnInfo { name, is_pub, line: fn_line, params, body, in_test });
            i = j + 1;
        }
    }
}

/// Does the attribute token soup (between `#[` and `]`) gate test-only
/// code? Conservatively true for `#[test]`, `#[cfg(test)]`, and any
/// `cfg(…)` mentioning `test` (e.g. `cfg(all(test, unix))`), plus
/// `#[bench]`.
fn attr_gates_test(attr: &[Token]) -> bool {
    let idents: Vec<&str> =
        attr.iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.as_str()).collect();
    match idents.split_first() {
        Some((&"test" | &"bench", [])) => true,
        Some((&"cfg", rest)) => rest.contains(&"test"),
        _ => false,
    }
}

/// Index of the bracket matching `tokens[open]` (which must be `open_ch`).
fn matching_bracket(tokens: &[Token], open: usize, open_ch: char, close_ch: char) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_ch) {
            depth += 1;
        } else if t.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Is the `fn` at `fn_idx` preceded by a `pub` (with optional
/// `(crate)`-style restriction and `const`/`async`/`unsafe`/`extern`
/// qualifiers in between)?
fn pub_before(tokens: &[Token], fn_idx: usize) -> bool {
    let mut k = fn_idx;
    while k > 0 {
        k -= 1;
        let t = &tokens[k];
        let qualifier = t.is_ident("const")
            || t.is_ident("async")
            || t.is_ident("unsafe")
            || t.is_ident("extern")
            || t.kind == TokenKind::StrLit; // extern "C"
        if qualifier {
            continue;
        }
        if t.is_punct(')') {
            // Possibly `pub(crate)` / `pub(in path)` — walk to `(`.
            let mut depth = 0i32;
            while k > 0 {
                if tokens[k].is_punct(')') {
                    depth += 1;
                } else if tokens[k].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k -= 1;
            }
            continue;
        }
        return t.is_ident("pub");
    }
    false
}
