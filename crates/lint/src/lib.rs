//! gfsc-lint — offline, token-level static analysis for the gfsc
//! workspace.
//!
//! The paper this workspace reproduces is about surviving non-ideal
//! inputs; the runtime half of that story is the daemon watchdog and
//! the counting-allocator tests, and this crate is the static half:
//! domain rules (panic-freedom, allocation hygiene, NaN-safe ordering,
//! unit hygiene, event-taxonomy coverage) enforced on every CI run
//! *before* a poisoned reading gets the chance to fire one.
//!
//! Everything is hand-rolled — lexer ([`lexer`]), TOML-subset config
//! ([`config`]), JSON emitter ([`findings`]) — because the build
//! container is offline and neither `syn` nor `serde` can be vendored.
//!
//! Run it locally:
//!
//! ```text
//! cargo run -p gfsc-lint                # text findings + summary
//! cargo run -p gfsc-lint -- --json     # machine-readable report
//! ```
//!
//! Waive a single finding with an inline comment carrying a reason:
//!
//! ```text
//! // gfsc-lint: allow(panic) builder contract: workload is validated above
//! ```
//!
//! The waiver applies to its own line and the next code line; waivers
//! without a reason are themselves violations, and the total count is
//! capped by `max_waivers` in `lint.toml` so it can only ratchet down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod findings;
pub mod lexer;
pub mod rules;
pub mod scan;

use config::Config;
use findings::{Finding, Report, Severity};
use lexer::{Lexed, Waiver};
use rules::RuleCtx;
use scan::FileModel;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names the workspace walk never descends into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", "node_modules"];

/// The per-file rules, in application order. `events` is cross-file
/// and handled separately by [`run`].
const FILE_RULES: [&str; 6] = ["header", "panic", "alloc", "nan-cmp", "nan-maxmin", "units"];

/// Lints the workspace rooted at `root` under `config`.
///
/// # Errors
///
/// Only on I/O failures walking the tree; unreadable individual files
/// are reported as findings, not errors, so one bad file cannot mask
/// the rest of the report.
pub fn run(root: &Path, config: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut report = Report { waiver_budget: config.max_waivers, ..Report::default() };
    // Lexed streams kept for the cross-file events rule.
    let mut lexed_cache: BTreeMap<String, Lexed> = BTreeMap::new();

    for rel in &files {
        let applicable: Vec<&str> = FILE_RULES
            .iter()
            .copied()
            .filter(|slug| {
                let rcfg = config.rule(slug);
                rcfg.severity != Severity::Off && rcfg.applies_to(rel)
            })
            .collect();
        let events_cfg = config.rule("events");
        let wanted_by_events = events_cfg.severity != Severity::Off
            && (events_cfg.extra.get("enum_file").is_some_and(|f| f == rel)
                || events_cfg.extra.get("match_file").is_some_and(|f| f == rel));
        if applicable.is_empty() && !wanted_by_events {
            continue;
        }

        let source = match fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                report.findings.push(Finding {
                    file: rel.clone(),
                    line: 1,
                    rule: "io".to_string(),
                    message: format!("unreadable: {e}"),
                    severity: Severity::Error,
                    waived: false,
                    waiver_reason: None,
                });
                continue;
            }
        };
        let lexed = lexer::lex(&source);
        report.files_scanned += 1;

        let model = FileModel::build(&lexed.tokens);
        let ctx = RuleCtx { path: rel, tokens: &lexed.tokens, model: &model };
        let mut raw: Vec<Finding> = Vec::new();
        for slug in &applicable {
            let rcfg = config.rule(slug);
            match *slug {
                "header" => rules::check_header(&ctx, &rcfg, &mut raw),
                "panic" => rules::check_panic(&ctx, &rcfg, &mut raw),
                "alloc" => rules::check_alloc(&ctx, &rcfg, &mut raw),
                "nan-cmp" => rules::check_nan_cmp(&ctx, &rcfg, &mut raw),
                "nan-maxmin" => rules::check_nan_maxmin(&ctx, &rcfg, &mut raw),
                "units" => rules::check_units(&ctx, &rcfg, &mut raw),
                _ => {}
            }
        }
        apply_waivers(&lexed, &mut raw, &mut report, rel);
        report.findings.append(&mut raw);
        lexed_cache.insert(rel.clone(), lexed);
    }

    run_events_rule(root, config, &mut lexed_cache, &mut report);

    if report.waiver_count > config.max_waivers {
        report.findings.push(Finding {
            file: "lint.toml".to_string(),
            line: 1,
            rule: "waiver".to_string(),
            message: format!(
                "{} waivers in force exceed the budget of {} — fix findings or raise max_waivers deliberately",
                report.waiver_count, config.max_waivers
            ),
            severity: Severity::Error,
            waived: false,
            waiver_reason: None,
        });
    }

    report.findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    Ok(report)
}

/// Convenience: load `lint.toml` from `root` and run.
///
/// # Errors
///
/// Config parse errors (as `InvalidData`) or walk I/O errors.
pub fn run_from_root(root: &Path, config_path: &Path) -> io::Result<Report> {
    let text = fs::read_to_string(config_path)?;
    let config = Config::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    run(root, &config)
}

/// Marks findings covered by waivers, registers waiver-hygiene
/// findings (missing reasons, unused waivers), and counts the budget.
fn apply_waivers(lexed: &Lexed, raw: &mut [Finding], report: &mut Report, rel: &str) {
    report.waiver_count += lexed.waivers.len();
    for waiver in &lexed.waivers {
        let lines = waiver_lines(lexed, waiver);
        if waiver.reason.is_empty() {
            report.findings.push(Finding {
                file: rel.to_string(),
                line: waiver.line,
                rule: "waiver".to_string(),
                message: format!(
                    "waiver for `{}` has no reason — every waiver must say why",
                    waiver.rule
                ),
                severity: Severity::Error,
                waived: false,
                waiver_reason: None,
            });
            continue;
        }
        let mut used = false;
        for f in raw.iter_mut() {
            if f.rule == waiver.rule && lines.contains(&f.line) && !f.waived {
                f.waived = true;
                f.waiver_reason = Some(waiver.reason.clone());
                used = true;
            }
        }
        if !used {
            report.findings.push(Finding {
                file: rel.to_string(),
                line: waiver.line,
                rule: "waiver".to_string(),
                message: format!(
                    "waiver for `{}` suppresses no finding — stale after a fix? remove it",
                    waiver.rule
                ),
                severity: Severity::Warn,
                waived: false,
                waiver_reason: None,
            });
        }
    }
}

/// The lines a waiver covers: its own line plus the next line that
/// carries a code token (so a waiver can sit above the offending
/// statement, with blank lines tolerated).
fn waiver_lines(lexed: &Lexed, waiver: &Waiver) -> Vec<u32> {
    let mut lines = vec![waiver.line];
    if let Some(next) = lexed.tokens.iter().map(|t| t.line).find(|&l| l > waiver.line) {
        lines.push(next);
    }
    lines
}

/// The cross-file R5 pass.
fn run_events_rule(
    root: &Path,
    config: &Config,
    lexed_cache: &mut BTreeMap<String, Lexed>,
    report: &mut Report,
) {
    let rcfg = config.rule("events");
    if rcfg.severity == Severity::Off {
        return;
    }
    let Some(enum_file) = rcfg.extra.get("enum_file").cloned() else { return };
    let Some(match_file) = rcfg.extra.get("match_file").cloned() else { return };
    let default_name = "EventKind".to_string();
    let enum_name = rcfg.extra.get("enum_name").unwrap_or(&default_name).clone();
    for path in [&enum_file, &match_file] {
        if !lexed_cache.contains_key(path) {
            match fs::read_to_string(root.join(path)) {
                Ok(source) => {
                    lexed_cache.insert(path.clone(), lexer::lex(&source));
                    report.files_scanned += 1;
                }
                Err(e) => {
                    report.findings.push(Finding {
                        file: path.clone(),
                        line: 1,
                        rule: "events".to_string(),
                        message: format!("configured file is unreadable: {e}"),
                        severity: Severity::Error,
                        waived: false,
                        waiver_reason: None,
                    });
                    return;
                }
            }
        }
    }
    let (Some(enum_lexed), Some(match_lexed)) =
        (lexed_cache.get(&enum_file), lexed_cache.get(&match_file))
    else {
        return;
    };
    rules::check_events(
        &enum_file,
        &enum_lexed.tokens,
        &match_file,
        &match_lexed.tokens,
        &enum_name,
        &rcfg,
        &mut report.findings,
    );
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Some(rel) = relative_slash_path(root, &path) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators (stable across platforms
/// for glob matching and report output).
fn relative_slash_path(root: &Path, path: &Path) -> Option<String> {
    let rel: PathBuf = path.strip_prefix(root).ok()?.to_path_buf();
    let parts: Vec<String> =
        rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    Some(parts.join("/"))
}
