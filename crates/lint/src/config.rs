//! `lint.toml` loading — a hand-rolled TOML-subset parser.
//!
//! The container is offline, so no TOML crate can be added; the config
//! file sticks to the subset this parser understands:
//!
//! - `[section]` / `[section.sub]` headers;
//! - `key = "string"`, `key = 123`, `key = true`;
//! - `key = ["a", "b"]` arrays of strings, which may span lines;
//! - `#` comments (full-line or trailing, outside quotes).
//!
//! Scope patterns are `/`-separated globs: `*` matches within one path
//! segment, `**` matches any number of segments (including zero).

use crate::findings::Severity;
use std::collections::BTreeMap;

/// Per-rule configuration block (`[rules.<slug>]`).
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// `severity = "error" | "warn" | "off"`.
    pub severity: Severity,
    /// Files the rule applies to (globs, relative to the repo root).
    pub scope: Vec<String>,
    /// Files carved back out of `scope`.
    pub exclude: Vec<String>,
    /// For function-scoped rules (alloc hygiene): only bodies of these
    /// functions are checked. Empty = whole file.
    pub functions: Vec<String>,
    /// Free-form string keys a rule may consume (e.g. the taxonomy
    /// rule's `enum_file` / `match_file`).
    pub extra: BTreeMap<String, String>,
}

impl RuleConfig {
    /// Does `path` (repo-relative, `/`-separated) fall in this rule's
    /// scope after exclusions?
    #[must_use]
    pub fn applies_to(&self, path: &str) -> bool {
        self.scope.iter().any(|g| glob_match(g, path))
            && !self.exclude.iter().any(|g| glob_match(g, path))
    }
}

/// The whole parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// `[lint] max_waivers` — the workspace-wide waiver budget; the
    /// run fails when more waiver comments than this are in force, so
    /// the count can only be ratcheted *down* over time.
    pub max_waivers: usize,
    /// `[rules.<slug>]` blocks by slug.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Looks up a rule, returning an `Off` default when absent.
    #[must_use]
    pub fn rule(&self, slug: &str) -> RuleConfig {
        self.rules.get(slug).cloned().unwrap_or_default()
    }

    /// Parses config text. Returns a line-numbered message on the
    /// first construct outside the supported subset.
    ///
    /// # Errors
    ///
    /// Unknown syntax, unterminated arrays, or bad severity values.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut config = Self::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, mut value)) = split_key_value(&line) else {
                return Err(format!("lint.toml:{lineno}: expected `key = value`"));
            };
            // Multi-line arrays: keep consuming until the `]` closes.
            if value.starts_with('[') && !balanced_array(&value) {
                for (_, cont) in lines.by_ref() {
                    value.push(' ');
                    value.push_str(strip_comment(cont).trim());
                    if balanced_array(&value) {
                        break;
                    }
                }
                if !balanced_array(&value) {
                    return Err(format!("lint.toml:{lineno}: unterminated array for `{key}`"));
                }
            }
            apply_key(&mut config, &section, &key, &value)
                .map_err(|e| format!("lint.toml:{lineno}: {e}"))?;
        }
        Ok(config)
    }
}

fn apply_key(config: &mut Config, section: &str, key: &str, value: &str) -> Result<(), String> {
    if section == "lint" {
        if key == "max_waivers" {
            config.max_waivers =
                value.parse().map_err(|_| format!("bad integer `{value}` for max_waivers"))?;
            return Ok(());
        }
        return Err(format!("unknown key `{key}` in [lint]"));
    }
    let Some(slug) = section.strip_prefix("rules.") else {
        return Err(format!("unknown section `[{section}]`"));
    };
    let rule = config.rules.entry(slug.to_string()).or_default();
    match key {
        "severity" => {
            rule.severity = match parse_string(value)?.as_str() {
                "error" => Severity::Error,
                "warn" => Severity::Warn,
                "off" => Severity::Off,
                other => return Err(format!("bad severity `{other}`")),
            };
        }
        "scope" => rule.scope = parse_string_array(value)?,
        "exclude" => rule.exclude = parse_string_array(value)?,
        "functions" => rule.functions = parse_string_array(value)?,
        _ => {
            rule.extra.insert(key.to_string(), parse_string(value)?);
        }
    }
    Ok(())
}

/// Splits `key = value`, trimming both halves.
fn split_key_value(line: &str) -> Option<(String, String)> {
    let eq = line.find('=')?;
    let key = line[..eq].trim();
    let value = line[eq + 1..].trim();
    if key.is_empty() || value.is_empty() {
        return None;
    }
    Some((key.to_string(), value.to_string()))
}

/// Removes a trailing `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = ch == '\\' && !prev_backslash;
    }
    line
}

fn balanced_array(value: &str) -> bool {
    let mut in_str = false;
    for ch in value.chars() {
        match ch {
            '"' => in_str = !in_str,
            ']' if !in_str => return true,
            _ => {}
        }
    }
    false
}

fn parse_string(value: &str) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{value}`"))?;
    Ok(inner.to_string())
}

fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| format!("expected an array, got `{value}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item)?);
    }
    Ok(out)
}

/// `/`-separated glob match: `**` spans segments, `*` stays within one.
#[must_use]
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let p: Vec<&str> = pattern.split('/').collect();
    let t: Vec<&str> = path.split('/').collect();
    match_segments(&p, &t)
}

fn match_segments(p: &[&str], t: &[&str]) -> bool {
    match p.split_first() {
        None => t.is_empty(),
        Some((&"**", rest)) => (0..=t.len()).any(|k| match_segments(rest, &t[k..])),
        Some((seg, rest)) => match t.split_first() {
            Some((head, tail)) => match_wild(seg, head) && match_segments(rest, tail),
            None => false,
        },
    }
}

/// Single-segment wildcard match where `*` matches any run of chars.
fn match_wild(pattern: &str, text: &str) -> bool {
    match pattern.split_once('*') {
        None => pattern == text,
        Some((prefix, rest)) => {
            let Some(stripped) = text.strip_prefix(prefix) else {
                return false;
            };
            if rest.is_empty() {
                return true;
            }
            // Try every split point for the `*`.
            (0..=stripped.len())
                .filter(|&k| stripped.is_char_boundary(k))
                .any(|k| match_wild(rest, &stripped[k..]))
        }
    }
}
