//! The fixed-capacity flight recorder and its no-op-capable handle.
//!
//! [`FlightRecorder`] is a ring of [`Event`]s sized once at
//! construction: pushing past capacity evicts the oldest event and
//! increments `dropped_events`, so a saturated recorder degrades to a
//! *recent-history* window with an exact account of what it lost.
//! [`Recorder`] wraps it in an `Option` so disarmed recording is a
//! single branch — cheap enough to leave in every epoch hot loop.

use crate::event::{Event, EventKind, Source};

/// A fixed-capacity event ring with drop accounting and per-kind
/// counters.
///
/// The backing `Vec` is filled to capacity at construction and never
/// resized, so `Clone` preserves the allocation-free contract: a cloned
/// recorder's buffer has exactly the original capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    /// Ring storage; `len() == capacity` always.
    buf: Vec<Event>,
    /// Next write slot.
    head: usize,
    /// Live events (≤ capacity).
    len: usize,
    /// Total events ever pushed.
    recorded: u64,
    /// Events evicted to make room (oldest-first).
    dropped: u64,
    /// Pushes per kind, indexed by `EventKind as usize`.
    counts: [u64; EventKind::COUNT],
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity — a ring that can hold nothing would
    /// silently drop every event.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be non-zero");
        Self {
            buf: vec![Event::default(); capacity],
            head: 0,
            len: 0,
            recorded: 0,
            dropped: 0,
            counts: [0; EventKind::COUNT],
        }
    }

    /// Pushes one event, evicting the oldest when full. Never
    /// allocates.
    pub fn push(&mut self, event: Event) {
        if self.len == self.buf.len() {
            self.dropped += 1;
        } else {
            self.len += 1;
        }
        self.buf[self.head] = event;
        self.head = (self.head + 1) % self.buf.len();
        self.recorded += 1;
        self.counts[event.kind as usize] += 1;
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Events currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been recorded yet (or all evicted — which
    /// cannot happen, eviction only makes room for a newer event).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events ever pushed, including evicted ones.
    #[must_use]
    pub fn recorded_events(&self) -> u64 {
        self.recorded
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Lifetime pushes of `kind` (survives eviction).
    #[must_use]
    pub fn count_of(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Events oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &Event> + '_ {
        let cap = self.buf.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len).map(move |i| &self.buf[(start + i) % cap])
    }

    /// Copies the live window out into an owned snapshot (allocates —
    /// call from reporting paths, not the epoch loop).
    #[must_use]
    pub fn snapshot(&self) -> FlightSnapshot {
        FlightSnapshot {
            capacity: self.buf.len(),
            recorded: self.recorded,
            dropped: self.dropped,
            events: self.iter().copied().collect(),
        }
    }

    /// Appends the recorder's counters as influx line protocol: one
    /// `gfsc_recorder` summary line plus one `gfsc_recorder_kind` line
    /// per kind that has fired.
    pub fn render_counters(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "gfsc_recorder capacity={}u,recorded={}u,dropped={}u",
            self.buf.len(),
            self.recorded,
            self.dropped,
        );
        for kind in EventKind::ALL {
            let count = self.counts[kind as usize];
            if count > 0 {
                let _ = writeln!(out, "gfsc_recorder_kind,kind={} count={count}u", kind.label());
            }
        }
    }
}

/// The arming handle the hot loops hold: records into a
/// [`FlightRecorder`] when armed, is a single branch when not.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recorder {
    inner: Option<FlightRecorder>,
}

impl Recorder {
    /// A recorder that drops everything (the default).
    #[must_use]
    pub fn disarmed() -> Self {
        Self { inner: None }
    }

    /// A recorder backed by a ring of `capacity` events.
    #[must_use]
    pub fn armed(capacity: usize) -> Self {
        Self { inner: Some(FlightRecorder::new(capacity)) }
    }

    /// Whether events are being kept.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event; a no-op when disarmed. Never allocates.
    #[inline]
    pub fn record(&mut self, epoch: u32, source: Source, kind: EventKind, value: f64) {
        if let Some(flight) = &mut self.inner {
            flight.push(Event { epoch, source, kind, value });
        }
    }

    /// The underlying ring, when armed.
    #[must_use]
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.inner.as_ref()
    }

    /// Snapshots the ring, when armed (allocates).
    #[must_use]
    pub fn snapshot(&self) -> Option<FlightSnapshot> {
        self.inner.as_ref().map(FlightRecorder::snapshot)
    }
}

/// An owned copy of a recorder's live window plus its loss accounting —
/// what reports render and what fault drills persist to disk.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightSnapshot {
    /// Ring capacity at recording time.
    pub capacity: usize,
    /// Total events ever pushed.
    pub recorded: u64,
    /// Events evicted before the snapshot.
    pub dropped: u64,
    /// Surviving events, oldest → newest.
    pub events: Vec<Event>,
}

impl FlightSnapshot {
    /// Serialises to the `.events` text format: one header line, then
    /// one `<epoch> <source> <kind> <value>` line per event. `f64`
    /// `Display` prints the shortest round-trippable form, so
    /// [`from_text`](Self::from_text) recovers payloads exactly.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gfsc-obs-events v1 capacity={} recorded={} dropped={}",
            self.capacity, self.recorded, self.dropped
        );
        for e in &self.events {
            let _ = writeln!(out, "{} {} {} {}", e.epoch, e.source, e.kind.label(), e.value);
        }
        out
    }

    /// Parses [`to_text`](Self::to_text) output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty events file")?;
        let mut fields = header.split_whitespace();
        if fields.next() != Some("gfsc-obs-events") || fields.next() != Some("v1") {
            return Err(format!("bad header: {header}"));
        }
        let mut capacity = 0usize;
        let mut recorded = 0u64;
        let mut dropped = 0u64;
        for field in fields {
            let (key, value) =
                field.split_once('=').ok_or_else(|| format!("bad header field: {field}"))?;
            match key {
                "capacity" => {
                    capacity = value.parse().map_err(|_| format!("bad capacity: {value}"))?
                }
                "recorded" => {
                    recorded = value.parse().map_err(|_| format!("bad recorded: {value}"))?
                }
                "dropped" => {
                    dropped = value.parse().map_err(|_| format!("bad dropped: {value}"))?
                }
                _ => return Err(format!("unknown header field: {key}")),
            }
        }
        let mut events = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(epoch), Some(source), Some(kind), Some(value), None) =
                (parts.next(), parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("bad event line: {line}"));
            };
            events.push(Event {
                epoch: epoch.parse().map_err(|_| format!("bad epoch: {epoch}"))?,
                source: Source::parse(source)?,
                kind: EventKind::from_label(kind)?,
                value: value.parse().map_err(|_| format!("bad value: {value}"))?,
            });
        }
        Ok(Self { capacity, recorded, dropped, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(epoch: u32, value: f64) -> Event {
        Event::new(epoch, Source::Socket(1), EventKind::CapGrant, value)
    }

    #[test]
    fn ring_keeps_insertion_order_below_capacity() {
        let mut flight = FlightRecorder::new(8);
        for i in 0..5 {
            flight.push(ev(i, f64::from(i)));
        }
        let epochs: Vec<u32> = flight.iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![0, 1, 2, 3, 4]);
        assert_eq!(flight.len(), 5);
        assert_eq!(flight.dropped_events(), 0);
        assert_eq!(flight.recorded_events(), 5);
    }

    #[test]
    fn wraparound_evicts_oldest_in_order_and_counts_drops_exactly() {
        let mut flight = FlightRecorder::new(4);
        for i in 0..11 {
            flight.push(ev(i, f64::from(i)));
        }
        // 11 pushes through a 4-slot ring: the 7 oldest are gone.
        let epochs: Vec<u32> = flight.iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![7, 8, 9, 10], "oldest evicted first, order kept");
        assert_eq!(flight.len(), 4);
        assert_eq!(flight.dropped_events(), 7);
        assert_eq!(flight.recorded_events(), 11);
        // Lifetime kind counters survive eviction.
        assert_eq!(flight.count_of(EventKind::CapGrant), 11);
        assert_eq!(flight.count_of(EventKind::SsBoost), 0);
    }

    #[test]
    fn fill_to_exact_capacity_drops_nothing() {
        let mut flight = FlightRecorder::new(3);
        for i in 0..3 {
            flight.push(ev(i, 0.0));
        }
        assert_eq!(flight.dropped_events(), 0);
        assert_eq!(flight.len(), 3);
        flight.push(ev(3, 0.0));
        assert_eq!(flight.dropped_events(), 1);
        assert_eq!(flight.iter().next().unwrap().epoch, 1);
    }

    #[test]
    fn clone_preserves_capacity() {
        let flight = FlightRecorder::new(16);
        let clone = flight.clone();
        assert_eq!(clone.capacity(), 16);
        assert_eq!(clone.buf.len(), 16, "clone's backing buffer stays pre-sized");
    }

    #[test]
    fn disarmed_recorder_drops_everything() {
        let mut rec = Recorder::disarmed();
        rec.record(1, Source::Rack, EventKind::FallbackEntered, 0.0);
        assert!(!rec.is_armed());
        assert!(rec.flight().is_none());
        assert!(rec.snapshot().is_none());
    }

    #[test]
    fn armed_recorder_snapshots_what_it_saw() {
        let mut rec = Recorder::armed(8);
        rec.record(4, Source::Zone(1), EventKind::SsBoost, 81.5);
        rec.record(9, Source::Zone(1), EventKind::SsRelease, 74.0);
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].kind, EventKind::SsBoost);
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn snapshot_text_round_trips() {
        let mut flight = FlightRecorder::new(4);
        flight.push(Event::new(12, Source::Socket(7), EventKind::SocketHot, 79.3));
        flight.push(Event::new(12, Source::Socket(7), EventKind::CapProposal, 0.62));
        flight.push(Event::new(13, Source::Rack, EventKind::BudgetExhausted, 2.0));
        flight.push(Event::new(14, Source::Zone(0), EventKind::DescentTarget, 8437.251));
        flight.push(Event::new(15, Source::Server(3), EventKind::MigrationShift, 83.125));
        let snap = flight.snapshot();
        let parsed = FlightSnapshot::from_text(&snap.to_text()).unwrap();
        assert_eq!(parsed, snap);
        assert_eq!(parsed.dropped, 1);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(FlightSnapshot::from_text("").is_err());
        assert!(FlightSnapshot::from_text("not-a-header v1").is_err());
        assert!(FlightSnapshot::from_text("gfsc-obs-events v1 capacity=4\nbogus line").is_err());
        assert!(FlightSnapshot::from_text("gfsc-obs-events v1 capacity=4\n1 s0 no-such-kind 0")
            .is_err());
    }

    #[test]
    fn counters_render_as_line_protocol() {
        let mut flight = FlightRecorder::new(4);
        flight.push(ev(0, 0.5));
        flight.push(ev(1, 0.4));
        let mut out = String::new();
        flight.render_counters(&mut out);
        assert!(out.contains("gfsc_recorder capacity=4u,recorded=2u,dropped=0u"));
        assert!(out.contains("gfsc_recorder_kind,kind=cap-grant count=2u"));
        assert!(!out.contains("kind=ss-boost"), "silent kinds are elided: {out}");
    }
}
