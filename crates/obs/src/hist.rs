//! Log-linear latency histogram.
//!
//! HDR-style bucketing: values below 16 get exact unit buckets; every
//! octave above that is split into 16 linear sub-buckets, so any
//! recorded value lands in a bucket whose width is at most 1/16 of its
//! magnitude (≤ 6.25 % relative quantile error). That is tight enough
//! for loop-latency percentiles while keeping the whole histogram under
//! 8 KiB and `record` branch-free apart from the sub-16 split.

/// Linear sub-buckets per octave (power of two).
const SUB: u64 = 16;
/// log2(SUB).
const SUB_BITS: u32 = 4;
/// Buckets: 16 exact unit buckets + 16 per octave for octaves 4..=63.
const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// A fixed-size log-linear histogram of `u64` samples (nanoseconds, in
/// practice), tracking last/max/total alongside the buckets so it can
/// stand in for a bare last/max pair.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    last: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { counts: vec![0; BUCKETS], total: 0, last: 0, max: 0 }
    }

    fn bucket_index(value: u64) -> usize {
        if value < SUB {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let octave = (msb - SUB_BITS) as usize;
        let sub = ((value >> (msb - SUB_BITS)) - SUB) as usize;
        SUB as usize + octave * SUB as usize + sub
    }

    /// Upper bound of the bucket at `index` — the value quantiles
    /// report.
    fn bucket_upper(index: usize) -> u64 {
        if index < SUB as usize {
            return index as u64;
        }
        let octave = (index - SUB as usize) / SUB as usize;
        let sub = ((index - SUB as usize) % SUB as usize) as u64;
        let upper = (u128::from(SUB + sub + 1) << octave) - 1;
        u64::try_from(upper).unwrap_or(u64::MAX)
    }

    /// Records one sample. Never allocates.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
        self.last = value;
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The most recent sample (exact).
    #[must_use]
    pub fn last(&self) -> u64 {
        self.last
    }

    /// The largest sample (exact).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`q` in `[0, 1]`), as the upper bound of the
    /// bucket holding the rank — within 6.25 % of the true value, and
    /// never above [`max`](Self::max). Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper(index).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut hist = LogHistogram::new();
        for v in 0..16 {
            hist.record(v);
        }
        assert_eq!(hist.quantile(0.0), 0);
        assert_eq!(hist.quantile(1.0), 15);
        assert_eq!(hist.count(), 16);
    }

    #[test]
    fn quantiles_are_within_log_linear_error() {
        let mut hist = LogHistogram::new();
        // 1..=10_000 uniformly: p50 ≈ 5000, p95 ≈ 9500, p99 ≈ 9900.
        for v in 1..=10_000u64 {
            hist.record(v);
        }
        for (q, expect) in [(0.5, 5000.0), (0.95, 9500.0), (0.99, 9900.0)] {
            let got = hist.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err <= 0.0625, "q{q}: got {got}, expected ~{expect} (err {err:.3})");
        }
    }

    #[test]
    fn tracks_last_and_max_exactly() {
        let mut hist = LogHistogram::new();
        hist.record(500);
        hist.record(200);
        assert_eq!(hist.last(), 200);
        assert_eq!(hist.max(), 500);
        assert!(hist.quantile(1.0) <= 500, "quantile never exceeds the true max");
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let hist = LogHistogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.quantile(0.5), 0);
        assert_eq!(hist.max(), 0);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut hist = LogHistogram::new();
        hist.record(u64::MAX);
        hist.record(u64::MAX - 1);
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.quantile(1.0), u64::MAX);
    }

    #[test]
    fn bucket_index_is_monotone_across_boundaries() {
        let mut prev = 0usize;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 1_000_000, 1 << 40] {
            let idx = LogHistogram::bucket_index(v);
            assert!(idx >= prev, "index regressed at {v}");
            assert!(LogHistogram::bucket_upper(idx) >= v, "upper bound below value at {v}");
            prev = idx;
        }
    }
}
