//! The compact decision-event model.
//!
//! An [`Event`] is 24 bytes: the controller epoch it happened in, the
//! [`Source`] that acted or was acted upon, a pre-registered
//! [`EventKind`], and one `f64` payload whose meaning is fixed per kind
//! (a temperature, a cap, an rpm, a count, a reason code). Everything
//! is `Copy`, so recording is a store, not an allocation.

use std::fmt;

/// Where an event originated: the rack as a whole, a fan-wall zone, a
/// capped socket, or a server sled (migration endpoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Source {
    /// Rack-global decisions (arbitration budget, descent, watchdog).
    #[default]
    Rack,
    /// A fan-wall zone.
    Zone(u16),
    /// A capped socket.
    Socket(u16),
    /// A server sled (work-migration endpoint).
    Server(u16),
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Rack => write!(f, "rack"),
            Self::Zone(z) => write!(f, "z{z}"),
            Self::Socket(s) => write!(f, "s{s}"),
            Self::Server(s) => write!(f, "srv{s}"),
        }
    }
}

impl Source {
    /// Parses the `Display` form back (`rack`, `z3`, `s7`, `srv2`).
    ///
    /// # Errors
    ///
    /// Returns the unparseable token.
    pub fn parse(token: &str) -> Result<Self, String> {
        let index = |rest: &str| rest.parse::<u16>().map_err(|_| format!("bad source: {token}"));
        if token == "rack" {
            Ok(Self::Rack)
        } else if let Some(rest) = token.strip_prefix("srv") {
            Ok(Self::Server(index(rest)?))
        } else if let Some(rest) = token.strip_prefix('z') {
            Ok(Self::Zone(index(rest)?))
        } else if let Some(rest) = token.strip_prefix('s') {
            Ok(Self::Socket(index(rest)?))
        } else {
            Err(format!("bad source: {token}"))
        }
    }
}

/// Pre-registered event kinds — the fixed vocabulary of controller
/// decisions. Each kind documents what its `f64` payload means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum EventKind {
    /// A socket's (possibly lag-filtered) reading crossed into the
    /// capper's attention. Payload: measured °C.
    #[default]
    SocketHot,
    /// The integral capper proposed a cut. Payload: proposed cap (0–1).
    CapProposal,
    /// The coordinator granted a cut. Payload: granted cap (0–1).
    CapGrant,
    /// The coordinator's per-epoch cut budget ran out before this
    /// proposal. Payload: the proposal that was held (0–1).
    CapDenied,
    /// The emergency path bypassed the budget (reading past the
    /// emergency threshold). Payload: enforced cap (0–1).
    EmergencyClamp,
    /// Rack-level marker that the cut budget was exhausted this epoch.
    /// Payload: number of held proposals.
    BudgetExhausted,
    /// The migrator shifted load away from a hot source. Payload:
    /// source temperature, °C.
    MigrationShift,
    /// The absorbing sled accepted migrated load. Payload: absorber
    /// temperature, °C.
    MigrationAbsorb,
    /// A ledgered migration was reversed (source cooled or absorber
    /// refluxed). Payload: source temperature, °C.
    MigrationReverse,
    /// Gauss–Seidel descent finished an epoch. Payload: sweeps used.
    DescentSweeps,
    /// Descent convergence residual — the largest single-zone move in
    /// the final sweep. Payload: rpm.
    DescentResidual,
    /// A zone's descent target after the sweep. Payload: rpm.
    DescentTarget,
    /// Descent pinned a zone at its upper bound because no safe speed
    /// exists within bounds. Payload: rpm (the bound).
    DescentPinned,
    /// A single-step zone entered boost. Payload: measured °C.
    SsBoost,
    /// A boosting zone held its raised speed. Payload: measured °C.
    SsHold,
    /// A zone released boost on its own thermal verdict. Payload:
    /// measured °C.
    SsRelease,
    /// The rack-level plenum guard released a zone that was only hot
    /// from a neighbour's borrowed heat. Payload: measured °C.
    SsGuardRelease,
    /// The daemon watchdog handed the rack to firmware. Payload:
    /// reason code (see [`crate::fallback_reason_label`]).
    FallbackEntered,
    /// Closed-loop control re-engaged. Payload: reason code of the
    /// fallback being exited.
    FallbackExited,
    /// A paced control cycle started past its wall-clock deadline.
    /// Payload: lateness, wall seconds.
    DeadlineMissed,
    /// A paced control cycle's work ran longer than its period.
    /// Payload: cycle duration, wall seconds.
    CycleOverrun,
}

impl EventKind {
    /// Number of registered kinds (sizes per-kind counter arrays).
    pub const COUNT: usize = 21;

    /// Every kind, in declaration order (indexable by `self as usize`).
    pub const ALL: [Self; Self::COUNT] = [
        Self::SocketHot,
        Self::CapProposal,
        Self::CapGrant,
        Self::CapDenied,
        Self::EmergencyClamp,
        Self::BudgetExhausted,
        Self::MigrationShift,
        Self::MigrationAbsorb,
        Self::MigrationReverse,
        Self::DescentSweeps,
        Self::DescentResidual,
        Self::DescentTarget,
        Self::DescentPinned,
        Self::SsBoost,
        Self::SsHold,
        Self::SsRelease,
        Self::SsGuardRelease,
        Self::FallbackEntered,
        Self::FallbackExited,
        Self::DeadlineMissed,
        Self::CycleOverrun,
    ];

    /// Stable kebab-case slug (text serialisation + line-protocol tag).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::SocketHot => "socket-hot",
            Self::CapProposal => "cap-proposal",
            Self::CapGrant => "cap-grant",
            Self::CapDenied => "cap-denied",
            Self::EmergencyClamp => "emergency-clamp",
            Self::BudgetExhausted => "budget-exhausted",
            Self::MigrationShift => "migration-shift",
            Self::MigrationAbsorb => "migration-absorb",
            Self::MigrationReverse => "migration-reverse",
            Self::DescentSweeps => "descent-sweeps",
            Self::DescentResidual => "descent-residual",
            Self::DescentTarget => "descent-target",
            Self::DescentPinned => "descent-pinned",
            Self::SsBoost => "ss-boost",
            Self::SsHold => "ss-hold",
            Self::SsRelease => "ss-release",
            Self::SsGuardRelease => "ss-guard-release",
            Self::FallbackEntered => "fallback-entered",
            Self::FallbackExited => "fallback-exited",
            Self::DeadlineMissed => "deadline-missed",
            Self::CycleOverrun => "cycle-overrun",
        }
    }

    /// Parses a [`label`](Self::label) back into its kind.
    ///
    /// # Errors
    ///
    /// Returns the unknown label.
    pub fn from_label(label: &str) -> Result<Self, String> {
        Self::ALL
            .iter()
            .copied()
            .find(|k| k.label() == label)
            .ok_or_else(|| format!("unknown event kind: {label}"))
    }
}

/// One recorded controller decision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Event {
    /// Controller epoch the decision happened in.
    pub epoch: u32,
    /// Who decided / was decided about.
    pub source: Source,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (see each [`EventKind`] variant).
    pub value: f64,
}

impl Event {
    /// Convenience constructor.
    #[must_use]
    pub fn new(epoch: u32, source: Source, kind: EventKind, value: f64) -> Self {
        Self { epoch, source, kind, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip_every_kind() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_label(kind.label()).unwrap(), kind);
        }
        assert!(EventKind::from_label("not-a-kind").is_err());
    }

    #[test]
    fn all_is_in_declaration_order() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(*kind as usize, i, "ALL[{i}] = {kind:?} out of order");
        }
    }

    #[test]
    fn sources_round_trip() {
        for source in [Source::Rack, Source::Zone(3), Source::Socket(11), Source::Server(2)] {
            assert_eq!(Source::parse(&source.to_string()).unwrap(), source);
        }
        assert!(Source::parse("q9").is_err());
        assert!(Source::parse("sx").is_err());
    }
}
