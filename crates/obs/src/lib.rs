//! Flight recorder + decision tracing for the gfsc stack.
//!
//! The paper's whole subject is acting on *non-ideal* measurements, so
//! when a controller moves — a socket gets capped, a fan wall gets
//! raised, the daemon hands the rack back to firmware — the question is
//! always "what did it see, and why did it do that?". This crate is the
//! answer's substrate: a fixed-capacity, allocation-free
//! [`FlightRecorder`] that the epoch hot loops feed with compact
//! [`Event`]s (`epoch`, `source`, `kind`, one `f64` payload), behind a
//! [`Recorder`] handle that compiles down to a branch-on-`None` when
//! disarmed. Nothing here depends on the rest of the workspace, so the
//! same event stream flows from the coordination layer, the daemon
//! watchdog, and the offline explain tooling alike.
//!
//! The supporting cast:
//!
//! - [`LogHistogram`] — log-linear latency histogram (HDR-style, 16
//!   linear sub-buckets per octave, ≤ 6.25 % relative error) that
//!   replaces last/max latency pairs with real p50/p95/p99.
//! - [`lineproto`] — influx line-protocol escaping for measurement and
//!   tag names, plus the recorder counter export.
//! - [`explain`] — renders a [`FlightSnapshot`] as a per-epoch causal
//!   timeline ("epoch 412: s7 measured 79.3 °C, capper proposed …").
//!
//! Recording never allocates: the ring is sized once at arming time and
//! evicts the oldest event when full, counting every drop so a saturated
//! recorder is visible rather than silently lossy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod explain;
pub mod hist;
pub mod lineproto;
pub mod recorder;

pub use event::{Event, EventKind, Source};
pub use hist::LogHistogram;
pub use recorder::{FlightRecorder, FlightSnapshot, Recorder};

/// Stable numeric codes for daemon fallback reasons, so watchdog
/// transitions ride the same `f64`-payload event stream as every other
/// decision. The daemon encodes, the explain layer decodes.
#[must_use]
pub fn fallback_reason_label(code: f64) -> &'static str {
    match code as i64 {
        0 => "sensor-loss",
        1 => "read-failures",
        2 => "actuation-failures",
        3 => "controller-panic",
        4 => "overrun-streak",
        _ => "unknown",
    }
}
