//! Influx line-protocol escaping.
//!
//! Measurement names must escape commas and spaces; tag keys and values
//! must additionally escape `=`. The daemon's metric export previously
//! rendered names raw, so a zone label like `front wall` split the row
//! at the space — these helpers are the single place the rule lives.

use std::borrow::Cow;

/// Escapes `s` for use as a measurement name, tag key, or tag value:
/// backslash-escapes commas, spaces, and equals signs. Borrow-through
/// when nothing needs escaping (the common case in the hot path).
#[must_use]
pub fn escape_name(s: &str) -> Cow<'_, str> {
    if !s.contains([',', ' ', '=']) {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 4);
    for c in s.chars() {
        if matches!(c, ',' | ' ' | '=') {
            out.push('\\');
        }
        out.push(c);
    }
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_names_borrow_through() {
        assert!(matches!(escape_name("gfsc_daemon_wall"), Cow::Borrowed(_)));
        assert_eq!(escape_name("zone-0"), "zone-0");
    }

    #[test]
    fn spaces_commas_and_equals_are_escaped() {
        assert_eq!(escape_name("front wall"), "front\\ wall");
        assert_eq!(escape_name("a,b"), "a\\,b");
        assert_eq!(escape_name("k=v"), "k\\=v");
        assert_eq!(escape_name("cold aisle, rear=2"), "cold\\ aisle\\,\\ rear\\=2");
    }
}
