//! Causal timeline rendering — the human-readable face of a
//! [`FlightSnapshot`].
//!
//! Groups events by epoch and narrates each one ("epoch 412: s7
//! measured 79.3 °C, capper proposed cap 0.62, …"), so a fault drill or
//! a diverging sweep cell can be read as a story instead of diffed as
//! raw trace channels. The renderer is deliberately dependency-free: it
//! works on snapshots parsed back from `.events` files just as well as
//! on live recorders.

use crate::event::{Event, EventKind};
use crate::fallback_reason_label;
use crate::recorder::FlightSnapshot;
use std::fmt::Write as _;

/// Narrates one event (without its epoch — the timeline groups those).
#[must_use]
pub fn narrate(event: &Event) -> String {
    let src = event.source;
    let v = event.value;
    match event.kind {
        EventKind::SocketHot => format!("{src} measured {v:.1} °C"),
        EventKind::CapProposal => format!("capper proposed cap {v:.3} for {src}"),
        EventKind::CapGrant => format!("coordinator granted cap {v:.3} to {src}"),
        EventKind::CapDenied => format!("budget held {src}'s proposal at {v:.3}"),
        EventKind::EmergencyClamp => format!("emergency clamp forced {src} to {v:.3}"),
        EventKind::BudgetExhausted => format!("cut budget exhausted ({v:.0} proposals held)"),
        EventKind::MigrationShift => format!("migrator shifted load off {src} ({v:.1} °C)"),
        EventKind::MigrationAbsorb => format!("{src} absorbed migrated load ({v:.1} °C)"),
        EventKind::MigrationReverse => format!("migration at {src} reversed ({v:.1} °C)"),
        EventKind::DescentSweeps => format!("energy descent ran {v:.0} Gauss–Seidel sweeps"),
        EventKind::DescentResidual => format!("descent convergence residual {v:.2} rpm"),
        EventKind::DescentTarget => format!("descent set {src} to {v:.0} rpm"),
        EventKind::DescentPinned => format!("descent pinned {src} at its {v:.0} rpm bound"),
        EventKind::SsBoost => format!("{src} boosted its wall ({v:.1} °C)"),
        EventKind::SsHold => format!("{src} held its boost ({v:.1} °C)"),
        EventKind::SsRelease => format!("{src} released its boost ({v:.1} °C)"),
        EventKind::SsGuardRelease => {
            format!("plenum guard released {src} ({v:.1} °C is a neighbour's borrowed heat)")
        }
        EventKind::FallbackEntered => {
            format!("watchdog entered firmware fallback ({})", fallback_reason_label(v))
        }
        EventKind::FallbackExited => {
            format!("closed loop re-engaged (after {})", fallback_reason_label(v))
        }
        EventKind::DeadlineMissed => {
            format!("control cycle started {v:.3} s past its wall deadline")
        }
        EventKind::CycleOverrun => format!("control cycle overran its period ({v:.3} s of work)"),
    }
}

/// Renders the snapshot as a per-epoch causal timeline: a loss-
/// accounting header, then one `epoch N:` block per epoch that has
/// events, each event narrated on its own indented line.
#[must_use]
pub fn render_timeline(snapshot: &FlightSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight recorder: {} events kept (capacity {}), {} recorded, {} dropped",
        snapshot.events.len(),
        snapshot.capacity,
        snapshot.recorded,
        snapshot.dropped,
    );
    if snapshot.dropped > 0 {
        let _ = writeln!(
            out,
            "  (ring saturated — the {} oldest events were evicted; timeline starts mid-run)",
            snapshot.dropped
        );
    }
    let mut current: Option<u32> = None;
    for event in &snapshot.events {
        if current != Some(event.epoch) {
            current = Some(event.epoch);
            let _ = writeln!(out, "\nepoch {}:", event.epoch);
        }
        let _ = writeln!(out, "  {}", narrate(event));
    }
    if snapshot.events.is_empty() {
        let _ = writeln!(out, "(no events recorded)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Source;

    #[test]
    fn timeline_groups_by_epoch_and_narrates_causally() {
        let snap = FlightSnapshot {
            capacity: 64,
            recorded: 4,
            dropped: 0,
            events: vec![
                Event::new(412, Source::Socket(7), EventKind::SocketHot, 79.3),
                Event::new(412, Source::Socket(7), EventKind::CapProposal, 0.62),
                Event::new(412, Source::Socket(7), EventKind::CapGrant, 0.7),
                Event::new(413, Source::Rack, EventKind::BudgetExhausted, 2.0),
            ],
        };
        let text = render_timeline(&snap);
        assert!(text.contains("epoch 412:"), "{text}");
        assert!(text.contains("s7 measured 79.3 °C"), "{text}");
        assert!(text.contains("capper proposed cap 0.620 for s7"), "{text}");
        assert!(text.contains("coordinator granted cap 0.700 to s7"), "{text}");
        assert!(text.contains("epoch 413:"), "{text}");
        assert!(text.contains("cut budget exhausted (2 proposals held)"), "{text}");
        // One heading per distinct epoch, in order.
        let headings: Vec<&str> = text.lines().filter(|l| l.starts_with("epoch ")).collect();
        assert_eq!(headings, vec!["epoch 412:", "epoch 413:"]);
    }

    #[test]
    fn saturated_ring_is_called_out() {
        let snap = FlightSnapshot { capacity: 2, recorded: 9, dropped: 7, events: vec![] };
        let text = render_timeline(&snap);
        assert!(text.contains("7 dropped"), "{text}");
        assert!(text.contains("ring saturated"), "{text}");
    }

    #[test]
    fn fallback_events_narrate_their_reason() {
        let entered = Event::new(120, Source::Rack, EventKind::FallbackEntered, 0.0);
        let exited = Event::new(310, Source::Rack, EventKind::FallbackExited, 0.0);
        assert_eq!(narrate(&entered), "watchdog entered firmware fallback (sensor-loss)");
        assert_eq!(narrate(&exited), "closed loop re-engaged (after sensor-loss)");
    }
}
