//! `gfsc` — Global Fan Speed Control under non-ideal temperature
//! measurement.
//!
//! A full reproduction of *"Global Fan Speed Control Considering Non-Ideal
//! Temperature Measurements in Enterprise Servers"* (Kim, Sabry, Atienza,
//! Vaidyanathan, Gross — DATE 2014) as a Rust workspace. This facade crate
//! ties the substrates together and hosts the experiment layer that
//! regenerates every figure and table of the paper's evaluation.
//!
//! # The problem
//!
//! Enterprise-server firmware reads CPU temperatures through an 8-bit ADC
//! (1 °C quantization) and a contended I2C bus (~10 s lag). Naive variable
//! fan-speed control oscillates under those artifacts, and independent
//! thermal actors (fan controller, CPU power capping) destabilize each
//! other. The paper contributes (1) an adaptive, gain-scheduled PID fan
//! controller robust to both artifacts and (2) a rule-based global
//! coordinator that actuates one knob at a time, biased toward
//! performance.
//!
//! # Quickstart
//!
//! ```
//! use gfsc::{Simulation, Solution};
//! use gfsc_units::Seconds;
//!
//! // Run the paper's full proposal on the DATE'14 synthetic workload.
//! let outcome = Simulation::builder()
//!     .solution(Solution::RCoordAdaptiveTrefSsFan)
//!     .seed(42)
//!     .build()
//!     .run(Seconds::new(900.0));
//! assert!(outcome.violation_percent < 100.0);
//! ```
//!
//! # Crate map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`gfsc_units`] | typed quantities (°C, rpm, W, J, s, utilization) |
//! | [`gfsc_sim`] | simulation kernel, traces, stability statistics |
//! | [`gfsc_thermal`] | RC thermal models, heat-sink law |
//! | [`gfsc_power`] | CPU/fan power models, energy metering |
//! | [`gfsc_sensors`] | ADC, delay line, I2C scanner, filters |
//! | [`gfsc_workload`] | synthetic demand traces |
//! | [`gfsc_control`] | PID, Ziegler–Nichols, adaptive PID, SASO |
//! | [`gfsc_server`] | the simulated enterprise server |
//! | [`gfsc_rack`] | rack-scale plant: fan zones, shared plenum, per-zone views |
//! | [`gfsc_coord`] | cappers, coordinators, server & rack closed-loop runners |
//! | `gfsc` (this crate) | solutions, experiments, figure/table harness |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod gains;
mod render;
mod simulation;
mod solution;
pub mod sweep;

pub use gains::{date14_gain_schedule, fine_gain_schedule, tune_gain_schedule, tune_single_region};
pub use render::{markdown_table, write_traces_csv};
pub use simulation::{date14_workload, Simulation, SimulationBuilder};
pub use solution::Solution;

// Re-export the workspace so downstream users need a single dependency.
pub use gfsc_control as control;
pub use gfsc_coord as coord;
pub use gfsc_power as power;
pub use gfsc_rack as rack;
pub use gfsc_sensors as sensors;
pub use gfsc_server as server;
pub use gfsc_sim as sim;
pub use gfsc_thermal as thermal;
pub use gfsc_units as units;
pub use gfsc_workload as workload;
