//! High-level simulation assembly: spec + workload + solution → closed
//! loop.

use crate::{tune_gain_schedule, Solution};
use gfsc_control::{AdaptivePid, GainSchedule};
use gfsc_coord::RunOutcome;
use gfsc_coord::{
    AdaptiveReference, ClosedLoopSim, EnergyAwareCoordinator, RuleBasedCoordinator,
    SingleStepFanScaling, Uncoordinated,
};
use gfsc_server::ServerSpec;
use gfsc_units::{Celsius, Rpm, Seconds, Utilization};
use gfsc_workload::{SquareWave, Workload};

/// The paper's evaluation workload: demand alternating 0.1 ↔ 0.7 with
/// Gaussian noise (σ = 0.04) and Poisson load spikes (+0.8 for 30 s, one
/// every ~4 minutes on average — the "abrupt spikes on required CPU
/// utilization" that motivate single-step fan scaling), all deterministic
/// under `seed`.
#[must_use]
pub fn date14_workload(seed: u64) -> Workload {
    Workload::builder(SquareWave::date14())
        .gaussian_noise(0.04, seed)
        .spikes(1.0 / 240.0, Seconds::new(30.0), 0.8, seed.wrapping_add(1))
        .build()
}

/// Builder for [`Simulation`].
#[derive(Debug)]
pub struct SimulationBuilder {
    spec: ServerSpec,
    solution: Solution,
    seed: u64,
    workload: Option<Workload>,
    fixed_reference: Celsius,
    gain_schedule: Option<GainSchedule>,
}

impl SimulationBuilder {
    /// Overrides the server calibration (default: Table I).
    #[must_use]
    pub fn spec(mut self, spec: ServerSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Selects the coordination solution (default: the full proposal).
    #[must_use]
    pub fn solution(mut self, solution: Solution) -> Self {
        self.solution = solution;
        self
    }

    /// Seeds the stochastic workload stages (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the default DATE'14 workload entirely.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// The fan reference used by fixed-reference solutions (default 75 °C,
    /// the paper's `R-coord @ T_ref = 75 °C` setting).
    #[must_use]
    pub fn fixed_reference(mut self, reference: Celsius) -> Self {
        self.fixed_reference = reference;
        self
    }

    /// Supplies a pre-tuned fan gain schedule, skipping the per-build
    /// Ziegler–Nichols tuning for non-default specs. The scenario-sweep
    /// engine tunes once per distinct spec variant and passes the result
    /// through here, so an N-scenario grid doesn't tune N times.
    #[must_use]
    pub fn gain_schedule(mut self, schedule: GainSchedule) -> Self {
        self.gain_schedule = Some(schedule);
        self
    }

    /// Assembles the closed loop.
    #[must_use]
    pub fn build(self) -> Simulation {
        let spec = self.spec;
        let workload = self.workload.unwrap_or_else(|| date14_workload(self.seed));

        // Gain schedule: the finer four-region schedule re-bases the PID
        // linearization point across the whole speed range (cached for the
        // default plant, tuned ad hoc for modified specs unless a pre-tuned
        // schedule was supplied).
        let schedule = if let Some(schedule) = self.gain_schedule {
            schedule
        } else if spec == ServerSpec::enterprise_default() {
            crate::fine_gain_schedule().clone()
        } else {
            tune_gain_schedule(
                &spec,
                &[Rpm::new(2000.0), Rpm::new(3500.0), Rpm::new(5000.0), Rpm::new(7000.0)],
            )
        };
        let fan = AdaptivePid::date14_configured(
            schedule,
            self.fixed_reference,
            spec.fan_bounds,
            spec.quantization_step,
        );

        let mut builder = ClosedLoopSim::builder()
            .spec(spec.clone())
            .workload(workload)
            .fan(fan)
            .start_at(Utilization::new(0.1), Rpm::new(1500.0));

        builder = match self.solution {
            Solution::WithoutCoordination => builder.coordinator(Uncoordinated),
            Solution::ECoord => builder.coordinator(EnergyAwareCoordinator::date14()),
            _ => builder.coordinator(RuleBasedCoordinator::new(spec.t_safe)),
        };
        if self.solution.uses_adaptive_reference() {
            builder = builder.adaptive_reference(AdaptiveReference::date14());
        }
        if self.solution.uses_single_step() {
            builder = builder.single_step(SingleStepFanScaling::new(0.3));
        }

        Simulation { inner: builder.build(), solution: self.solution }
    }
}

/// A ready-to-run reproduction scenario: one solution on one workload.
///
/// # Examples
///
/// ```
/// use gfsc::{Simulation, Solution};
/// use gfsc_units::Seconds;
///
/// let outcome = Simulation::builder()
///     .solution(Solution::RCoordFixedTref)
///     .seed(7)
///     .build()
///     .run(Seconds::new(600.0));
/// assert_eq!(outcome.total_epochs, 601);
/// ```
pub struct Simulation {
    inner: ClosedLoopSim,
    solution: Solution,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation").field("solution", &self.solution).finish_non_exhaustive()
    }
}

impl Simulation {
    /// Starts building a scenario.
    #[must_use]
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder {
            spec: ServerSpec::enterprise_default(),
            solution: Solution::RCoordAdaptiveTrefSsFan,
            seed: 0,
            workload: None,
            fixed_reference: Celsius::new(75.0),
            gain_schedule: None,
        }
    }

    /// The selected solution.
    #[must_use]
    pub fn solution(&self) -> Solution {
        self.solution
    }

    /// Runs the scenario for `horizon` simulated seconds.
    pub fn run(mut self, horizon: Seconds) -> RunOutcome {
        self.inner.run(horizon)
    }

    /// Unwraps the assembled closed loop, for executors that drive several
    /// simulations in lockstep (`gfsc_coord::run_batch`) instead of
    /// calling [`Simulation::run`] on each.
    pub(crate) fn into_closed_loop(self) -> ClosedLoopSim {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_solution_builds_and_runs() {
        for solution in Solution::ALL {
            let outcome =
                Simulation::builder().solution(solution).seed(3).build().run(Seconds::new(120.0));
            assert_eq!(outcome.total_epochs, 121, "{solution}");
        }
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let mut a = date14_workload(9);
        let mut b = date14_workload(9);
        for k in 0..600 {
            let t = Seconds::new(k as f64);
            assert_eq!(a.sample(t), b.sample(t));
        }
    }

    #[test]
    fn builder_accessors() {
        let sim = Simulation::builder().solution(Solution::ECoord).seed(1).build();
        assert_eq!(sim.solution(), Solution::ECoord);
        assert!(format!("{sim:?}").contains("ECoord"));
    }
}
