//! The five evaluated control solutions (paper Section VI-A).

use core::fmt;

/// One of the coordination schemes compared in the paper's Table III.
///
/// All solutions share the same plant, workload and — per the paper's
/// fair-comparison note — the same proposed adaptive-PID fan controller;
/// they differ in how (and whether) the two local controllers are
/// coordinated:
///
/// | Variant | Paper name |
/// |---------|------------|
/// | [`Solution::WithoutCoordination`] | `w/o coordination` (baseline) |
/// | [`Solution::ECoord`] | `E-coord` (energy-first, after Ayoub et al.) |
/// | [`Solution::RCoordFixedTref`] | `R-coord (@ T_ref^fan = 75 °C)` |
/// | [`Solution::RCoordAdaptiveTref`] | `R-coord + A-T_ref^fan` |
/// | [`Solution::RCoordAdaptiveTrefSsFan`] | `R-coord + A-T_ref + SS^fan` |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Solution {
    /// Fan controller and CPU capper run independently; every proposal is
    /// applied blindly.
    WithoutCoordination,
    /// Energy-aware arbitration: at a thermal event take the most
    /// energy-efficient action (a cap cut — it *saves* power), and size
    /// the fan from the thermal model at the minimum safe speed.
    ECoord,
    /// The rule-based coordinator of Table II with a fixed 75 °C fan
    /// reference.
    RCoordFixedTref,
    /// Rule-based coordination plus predictive reference adjustment
    /// (70–80 °C scaled by predicted utilization, Section V-B).
    RCoordAdaptiveTref,
    /// The full proposal: rule-based coordination, predictive reference,
    /// and single-step fan scaling (Section V-C).
    RCoordAdaptiveTrefSsFan,
}

impl Solution {
    /// All five solutions in the paper's Table III order.
    pub const ALL: [Solution; 5] = [
        Solution::WithoutCoordination,
        Solution::ECoord,
        Solution::RCoordFixedTref,
        Solution::RCoordAdaptiveTref,
        Solution::RCoordAdaptiveTrefSsFan,
    ];

    /// The label used in the paper's tables.
    #[must_use]
    pub fn paper_name(&self) -> &'static str {
        match self {
            Solution::WithoutCoordination => "w/o coordination (baseline)",
            Solution::ECoord => "E-coord",
            Solution::RCoordFixedTref => "R-coord (@ Tref = 75C)",
            Solution::RCoordAdaptiveTref => "R-coord + A-Tref",
            Solution::RCoordAdaptiveTrefSsFan => "R-coord + A-Tref + SSfan",
        }
    }

    /// Whether this solution uses the rule-based coordinator.
    #[must_use]
    pub fn uses_rule_coordination(&self) -> bool {
        matches!(
            self,
            Solution::RCoordFixedTref
                | Solution::RCoordAdaptiveTref
                | Solution::RCoordAdaptiveTrefSsFan
        )
    }

    /// Whether this solution adapts the fan reference predictively.
    #[must_use]
    pub fn uses_adaptive_reference(&self) -> bool {
        matches!(self, Solution::RCoordAdaptiveTref | Solution::RCoordAdaptiveTrefSsFan)
    }

    /// Whether this solution uses single-step fan scaling.
    #[must_use]
    pub fn uses_single_step(&self) -> bool {
        matches!(self, Solution::RCoordAdaptiveTrefSsFan)
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_variant_in_table_order() {
        assert_eq!(Solution::ALL.len(), 5);
        assert_eq!(Solution::ALL[0], Solution::WithoutCoordination);
        assert_eq!(Solution::ALL[4], Solution::RCoordAdaptiveTrefSsFan);
    }

    #[test]
    fn feature_flags_are_monotone_across_r_coord_variants() {
        assert!(!Solution::WithoutCoordination.uses_rule_coordination());
        assert!(!Solution::ECoord.uses_rule_coordination());
        assert!(Solution::RCoordFixedTref.uses_rule_coordination());
        assert!(!Solution::RCoordFixedTref.uses_adaptive_reference());
        assert!(Solution::RCoordAdaptiveTref.uses_adaptive_reference());
        assert!(!Solution::RCoordAdaptiveTref.uses_single_step());
        assert!(Solution::RCoordAdaptiveTrefSsFan.uses_single_step());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(Solution::ECoord.to_string(), "E-coord");
        assert!(Solution::WithoutCoordination.to_string().contains("baseline"));
    }
}
