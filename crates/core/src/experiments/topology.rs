//! Topology study (extension): the coordinated stack across multi-socket
//! plants.
//!
//! The paper evaluates one socket behind one fan; its global controller,
//! however, is motivated by *several* heat sources sharing that fan. This
//! experiment runs the same solutions on the RC-network topologies
//! (`gfsc_thermal::Topology`): 2S and 4S boards whose downstream sockets
//! breathe pre-heated air, and a blade chassis whose sockets couple through
//! a shared spreader. The fan is sized by the hottest socket (max
//! aggregation), so every extra socket tightens the thermal contention the
//! coordinator has to arbitrate.

use crate::sweep::{aggregate_over_seeds, ScenarioGrid, SeedStats};
use crate::{markdown_table, Solution};
use gfsc_thermal::Topology;
use gfsc_units::Seconds;

/// Configuration of the topology study.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyStudyConfig {
    /// Simulated duration per cell.
    pub horizon: Seconds,
    /// Workload seeds (metrics aggregate to mean ± 95 % CI over this axis).
    pub seeds: Vec<u64>,
    /// The solution under test.
    pub solution: Solution,
    /// The topologies to compare.
    pub topologies: Vec<Topology>,
}

impl Default for TopologyStudyConfig {
    fn default() -> Self {
        Self {
            horizon: Seconds::new(1800.0),
            seeds: vec![42, 43, 44],
            solution: Solution::RCoordAdaptiveTrefSsFan,
            topologies: vec![
                Topology::single_socket(),
                Topology::dual_socket(),
                Topology::quad_socket(),
                Topology::blade_chassis(),
            ],
        }
    }
}

/// One topology's aggregated outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyRow {
    /// The topology's display label.
    pub topology: String,
    /// Socket count.
    pub sockets: usize,
    /// Deadline-violation percentage across seeds.
    pub violation_percent: SeedStats,
    /// Fan energy (joules) across seeds.
    pub fan_energy_j: SeedStats,
}

/// Runs the study: one grid per topology (each pays its gain tuning once),
/// every solution × seed cell fanned out by the sweep engine.
///
/// # Panics
///
/// Panics if any config axis is empty.
#[must_use]
pub fn run(config: &TopologyStudyConfig) -> Vec<TopologyRow> {
    assert!(!config.topologies.is_empty(), "need at least one topology");
    config
        .topologies
        .iter()
        .map(|topology| {
            let mut builder = ScenarioGrid::builder()
                .horizon(config.horizon)
                .solutions(&[config.solution])
                .seeds(&config.seeds);
            // The single-socket default stays on the unmodified Table I
            // spec (bit-compatible path, cached gains); everything else is
            // a first-class topology axis cell.
            if !topology.is_single() {
                builder = builder.topology_variant(topology.clone());
            }
            let results = builder.build().run();
            let cell = &aggregate_over_seeds(&results)[0];
            TopologyRow {
                topology: topology.label().to_owned(),
                sockets: topology.sockets().len(),
                violation_percent: cell.violation_percent,
                fan_energy_j: cell.fan_energy_j,
            }
        })
        .collect()
}

/// Renders the study as a markdown table.
#[must_use]
pub fn to_markdown(rows: &[TopologyRow]) -> String {
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.topology.clone(),
                r.sockets.to_string(),
                format!("{:.2} ± {:.2}", r.violation_percent.mean, r.violation_percent.ci95),
                format!("{:.0} ± {:.0}", r.fan_energy_j.mean, r.fan_energy_j.ci95),
            ]
        })
        .collect();
    markdown_table(&["Topology", "Sockets", "Violation %", "Fan energy (J)"], &cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_socket_study_runs_and_reports() {
        // One non-default topology, one seed, short horizon: the cheapest
        // full pass through the topology axis (build-time gain tuning
        // included).
        let rows = run(&TopologyStudyConfig {
            horizon: Seconds::new(200.0),
            seeds: vec![1],
            solution: Solution::RCoordFixedTref,
            topologies: vec![Topology::single_socket(), Topology::dual_socket()],
        });
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].sockets, 1);
        assert_eq!(rows[1].sockets, 2);
        assert_eq!(rows[1].topology, "2S");
        assert!(rows[1].fan_energy_j.mean > 0.0);
        // A shared fan serving a derated downstream socket cannot be
        // cheaper than the single-socket baseline under the same demand.
        assert!(rows[1].fan_energy_j.mean >= rows[0].fan_energy_j.mean);
        let md = to_markdown(&rows);
        assert_eq!(md.lines().count(), 4);
    }
}
