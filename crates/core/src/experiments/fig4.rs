//! Fig. 4: a deadzone fan controller oscillates under non-ideal
//! measurement.
//!
//! The paper measures a shipping server running a deadzone fan scheme
//! under a *fixed* workload: the fan speed oscillates between roughly
//! 2000 and 5000 rpm because, by the time a zone crossing is observed
//! (10 s late, on a 1 °C grid), the plant is already far past it. This
//! experiment reproduces the oscillation and quantifies it — and shows,
//! as a control, that the same plant under the proposed adaptive PID does
//! not oscillate.

use super::{fan_study_spec, study_gain_schedule};
use gfsc_control::AdaptivePid;
use gfsc_coord::{ClosedLoopSim, DeadzoneFan};
use gfsc_server::ServerSpec;
use gfsc_sim::stats::{self, OscillationReport};
use gfsc_sim::TraceSet;
use gfsc_units::{Celsius, Rpm, Seconds, Utilization};
use gfsc_workload::{Constant, Workload};

/// Configuration of the Fig. 4 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Config {
    /// Run length (the paper plots ~230 s; a longer run gives the
    /// oscillation detector more cycles).
    pub horizon: Seconds,
    /// The fixed workload level.
    pub utilization: Utilization,
    /// Deadzone centre (the fan reference).
    pub reference: Celsius,
    /// Deadzone half-width in kelvin.
    pub half_width: f64,
    /// Fan step per decision, rpm.
    pub step: f64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Self {
            horizon: Seconds::new(1200.0),
            utilization: Utilization::new(0.7),
            reference: Celsius::new(75.0),
            half_width: 1.0,
            step: 250.0,
        }
    }
}

/// The reproduced Fig. 4.
#[derive(Debug)]
pub struct Fig4 {
    /// Traces of the deadzone run.
    pub traces: TraceSet,
    /// Oscillation analysis of the deadzone fan trace (post-warmup).
    pub oscillation: OscillationReport,
    /// Whether the deadzone run shows a sustained oscillation (the
    /// paper's observation — expected `true`).
    pub oscillates: bool,
    /// Traces of the adaptive-PID control run.
    pub adaptive_traces: TraceSet,
    /// Control: oscillation analysis of the proposed adaptive PID on the
    /// identical plant and workload.
    pub adaptive_oscillation: OscillationReport,
    /// Whether the adaptive control run oscillates (expected `false`).
    pub adaptive_oscillates: bool,
}

/// Simple fan-trace oscillation verdict shared by both runs.
fn verdict(traces: &TraceSet, warmup: Seconds) -> (OscillationReport, bool) {
    let fan = traces.require("fan_rpm").expect("recorded");
    let (times, values) = fan.tail_from(warmup);
    let rep = stats::detect_oscillation(times, values, 150.0);
    // Rail-to-rail criterion: sustained swings covering ~90 % of the
    // actuator span. Bounded hunting below that is marginal, not the
    // full-blown oscillation the paper's Fig. 4 shows.
    let oscillates = rep.is_sustained(6750.0);
    (rep, oscillates)
}

/// Runs the experiment.
#[must_use]
pub fn run(config: &Fig4Config) -> Fig4 {
    // The simple schemes run at the telemetry rate (Table I "fan sample
    // interval: 1 s") — that is exactly why the lag bites them so hard.
    let spec = ServerSpec { fan_control_interval: Seconds::new(1.0), ..fan_study_spec() };
    let workload = || Workload::builder(Constant::new(config.utilization.value())).build();

    let mut deadzone_sim = ClosedLoopSim::builder()
        .spec(spec.clone())
        .workload(workload())
        .fan(DeadzoneFan::new(config.reference, config.half_width, config.step, spec.fan_bounds))
        .without_capper()
        .start_at(config.utilization, Rpm::new(2000.0))
        .build();
    let traces = deadzone_sim.run(config.horizon).traces;
    // The entry transient (equilibration at the study operating point plus
    // one descent-limited overshoot recovery) takes ~300 s; the verdict
    // window starts after it.
    let warmup = Seconds::new(300.0);
    let (oscillation, oscillates) = verdict(&traces, warmup);

    // Control run: the proposed adaptive PID at its regular 30 s period.
    let control_spec = fan_study_spec();
    let mut adaptive_sim = ClosedLoopSim::builder()
        .spec(control_spec.clone())
        .workload(workload())
        .fan(
            AdaptivePid::new(
                study_gain_schedule().clone(),
                config.reference,
                control_spec.fan_bounds,
                Some(control_spec.quantization_step),
            )
            .with_descent_limit(2000.0)
            .with_trend_gate(control_spec.quantization_step.max(0.5)),
        )
        .without_capper()
        .start_at(config.utilization, Rpm::new(2000.0))
        .build();
    let adaptive_traces = adaptive_sim.run(config.horizon).traces;
    let (adaptive_oscillation, adaptive_oscillates) = verdict(&adaptive_traces, warmup);

    Fig4 {
        traces,
        oscillation,
        oscillates,
        adaptive_traces,
        adaptive_oscillation,
        adaptive_oscillates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> &'static Fig4 {
        use std::sync::OnceLock;
        static FIG: OnceLock<Fig4> = OnceLock::new();
        FIG.get_or_init(|| run(&Fig4Config::default()))
    }

    #[test]
    fn deadzone_oscillates_under_fixed_load() {
        let f = fig();
        assert!(f.oscillates, "deadzone should oscillate: {:?}", f.oscillation);
        // The paper's trace swings roughly 2000–5000 rpm; ours must show
        // an amplitude of the same order.
        assert!(f.oscillation.amplitude > 4000.0, "amplitude {:?}", f.oscillation);
    }

    #[test]
    fn oscillation_period_is_tens_of_seconds() {
        let f = fig();
        let period = f.oscillation.period.expect("period measurable").value();
        assert!(
            (20.0..300.0).contains(&period),
            "period {period}s (lag-driven limit cycle, O(2·(lag + zone crossing)))"
        );
    }

    #[test]
    fn adaptive_pid_does_not_oscillate_on_same_plant() {
        let f = fig();
        assert!(!f.adaptive_oscillates, "adaptive PID oscillates: {:?}", f.adaptive_oscillation);
    }
}
