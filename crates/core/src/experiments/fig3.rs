//! Fig. 3: adaptive vs fixed-gain PID fan control.
//!
//! The paper's Fig. 3 compares three fan controllers under a CPU load
//! alternating between 0.1 and 0.7:
//!
//! - PID with the parameter set tuned at **2000 rpm**: stable but slow
//!   (~210 s convergence in the paper),
//! - PID with the set tuned at **6000 rpm**: faster but *unstable* in the
//!   low-fan-speed region (gains tuned where the plant is 8× less
//!   sensitive),
//! - the **adaptive PID** (Eq. 8–9): stable with fast convergence.
//!
//! The runs are fan-only (no CPU capper), noise-free, on the full
//! non-ideal measurement chain.

use super::{fan_study_spec, study_fixed_gains, study_gain_schedule};
use gfsc_control::AdaptivePid;
use gfsc_coord::{ClosedLoopSim, FanController, FixedPidFan};
use gfsc_sim::stats::{self, OscillationReport};
use gfsc_sim::TraceSet;
use gfsc_units::{Celsius, Rpm, Seconds, Utilization};
use gfsc_workload::{SquareWave, Workload};

/// Configuration of the Fig. 3 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Config {
    /// Run length (covers several full workload periods).
    pub horizon: Seconds,
    /// Full workload period (half low, half high). Phases must be long
    /// enough for the slow fixed-gain controller to demonstrate its
    /// ~200 s convergence, per the paper's own measurement.
    pub period: Seconds,
    /// Fan reference temperature (the paper regulates toward 75 °C).
    pub reference: Celsius,
}

impl Default for Fig3Config {
    fn default() -> Self {
        Self {
            horizon: Seconds::new(3200.0),
            period: Seconds::new(800.0),
            reference: Celsius::new(75.0),
        }
    }
}

/// One controller's outcome.
#[derive(Debug)]
pub struct SchemeResult {
    /// Scheme label (paper terminology).
    pub name: String,
    /// Full traces (`fan_rpm`, `t_junction_c`, …).
    pub traces: TraceSet,
    /// Oscillation analysis of the fan trace over the steady tail.
    pub fan_oscillation: OscillationReport,
    /// `true` if no sustained large-amplitude fan oscillation was found.
    pub stable: bool,
    /// Time for the junction to settle into ±2.5 K of the reference after
    /// the *last* low→high load step, if it settles at all.
    pub convergence_time: Option<Seconds>,
}

/// The reproduced Fig. 3.
#[derive(Debug)]
pub struct Fig3 {
    /// Adaptive PID (the paper's proposal).
    pub adaptive: SchemeResult,
    /// Fixed gains tuned at 2000 rpm.
    pub fixed_low: SchemeResult,
    /// Fixed gains tuned at 6000 rpm.
    pub fixed_high: SchemeResult,
}

/// Amplitude (rpm) above which a within-phase fan oscillation counts as
/// instability: 90 % of the actuator span, i.e. the controller is slamming
/// rail to rail. Bounded hunting below this is classified marginal but
/// stable (see EXPERIMENTS.md for the deviation discussion).
const INSTABILITY_AMPLITUDE_RPM: f64 = 6750.0;

fn run_scheme(name: &str, fan: impl FanController + 'static, config: &Fig3Config) -> SchemeResult {
    let spec = fan_study_spec();
    let period = config.period;
    let half = period.value() / 2.0;
    let mut sim = ClosedLoopSim::builder()
        .spec(spec)
        .workload(Workload::builder(SquareWave::new(0.1, 0.7, period, 0.5)).build())
        .fan(fan)
        .without_capper()
        .start_at(Utilization::new(0.1), Rpm::new(2000.0))
        .build();
    let outcome = sim.run(config.horizon);
    let traces = outcome.traces;

    // Stability: worst within-phase fan oscillation across *all* phases
    // (both load levels), analyzing the second half of each phase — the
    // first half holds the legitimate step-response transient. A stable
    // controller has settled by then; an over-gained one keeps slamming
    // rail to rail on every residual kelvin of error.
    let fan_trace = traces.require("fan_rpm").expect("recorded");
    let mut fan_oscillation =
        gfsc_sim::stats::OscillationReport { reversals: 0, amplitude: 0.0, period: None };
    let mut phase_start = half; // skip the initial warm-up phase
    while phase_start + half <= config.horizon.value() {
        let from = phase_start + 100.0;
        let to = phase_start + half;
        let (times, values) = fan_trace.tail_from(Seconds::new(from));
        let n = times.partition_point(|&t| t < to);
        let rep = stats::detect_oscillation(&times[..n], &values[..n], 150.0);
        if rep.reversals >= 2 && rep.amplitude > fan_oscillation.amplitude {
            fan_oscillation = rep;
        }
        phase_start += half;
    }
    let stable = fan_oscillation.amplitude < INSTABILITY_AMPLITUDE_RPM;

    // Convergence after the last full low→high step: time for the junction
    // to settle into ±1.5 K of the reference within that high phase.
    let last_step = {
        let mut t = half;
        while t + period.value() + half <= config.horizon.value() {
            t += period.value();
        }
        t
    };
    let temp = traces.require("t_junction_c").expect("recorded");
    let (tt, tv) = temp.tail_from(Seconds::new(last_step));
    let n = tt.partition_point(|&t| t < last_step + half);
    // Settling band: the 1 °C ADC plus the inclusive Eq. 10 hold make any
    // point within ~2 K of the reference an admissible equilibrium.
    let resp = stats::step_response(&tt[..n], &tv[..n], tv[0], config.reference.value(), 2.5);
    let convergence_time = resp.settling_time;

    SchemeResult { name: name.to_owned(), traces, fan_oscillation, stable, convergence_time }
}

/// Runs all three schemes.
#[must_use]
pub fn run(config: &Fig3Config) -> Fig3 {
    let spec = fan_study_spec();
    let schedule = study_gain_schedule().clone();
    let quant = Some(spec.quantization_step);
    let bounds = spec.fan_bounds;

    // The proposed stack: gain schedule + Eq. 10 hold + the bounded
    // descent and trend gating this implementation adds for lag
    // robustness (DESIGN.md §5). The fixed-gain baselines represent the
    // conventional PID of prior work: plain PID + the same Eq. 10 hold.
    let adaptive = AdaptivePid::new(schedule, config.reference, bounds, quant)
        .with_descent_limit(2000.0)
        .with_trend_gate(spec.quantization_step.max(0.5));
    let (low_gains, high_gains) = study_fixed_gains();

    Fig3 {
        adaptive: run_scheme("adaptive PID (proposed)", adaptive, config),
        fixed_low: run_scheme(
            "fixed PID @ 2000 rpm",
            FixedPidFan::new(low_gains, config.reference, bounds, quant),
            config,
        ),
        fixed_high: run_scheme(
            "fixed PID @ 6000 rpm",
            FixedPidFan::new(high_gains, config.reference, bounds, quant),
            config,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared run for all assertions: the experiment is deterministic
    // and moderately expensive.
    fn fig() -> &'static Fig3 {
        use std::sync::OnceLock;
        static FIG: OnceLock<Fig3> = OnceLock::new();
        FIG.get_or_init(|| run(&Fig3Config::default()))
    }

    #[test]
    fn adaptive_is_stable() {
        let f = fig();
        assert!(
            f.adaptive.stable,
            "adaptive PID flagged unstable: {:?}",
            f.adaptive.fan_oscillation
        );
    }

    #[test]
    fn fixed_high_rails_rail_to_rail() {
        let f = fig();
        assert!(
            !f.fixed_high.stable,
            "fixed@6000 should oscillate: {:?}",
            f.fixed_high.fan_oscillation
        );
        assert!(
            f.fixed_high.fan_oscillation.amplitude > 4000.0,
            "expected rail-scale swings: {:?}",
            f.fixed_high.fan_oscillation
        );
    }

    #[test]
    fn oscillation_severity_ranks_as_in_the_paper() {
        // adaptive < fixed@2000 < fixed@6000. (On this plant the plain
        // ZN-tuned fixed@2000 set hunts visibly rather than being merely
        // slow — see EXPERIMENTS.md for the deviation note.)
        let f = fig();
        let a = f.adaptive.fan_oscillation.amplitude;
        let lo = f.fixed_low.fan_oscillation.amplitude;
        let hi = f.fixed_high.fan_oscillation.amplitude;
        assert!(a < lo, "adaptive {a} vs fixed@2000 {lo}");
        assert!(lo <= hi + 1e-9, "fixed@2000 {lo} vs fixed@6000 {hi}");
    }

    #[test]
    fn adaptive_converges_no_slower_than_fixed_low() {
        let f = fig();
        let adaptive = f.adaptive.convergence_time.expect("adaptive settles");
        // Not settling within the phase at all is the paper's "very slow".
        if let Some(slow) = f.fixed_low.convergence_time {
            assert!(
                adaptive.value() <= slow.value() + 30.0,
                "adaptive {adaptive} vs fixed@2000 {slow}"
            );
        }
    }
}
