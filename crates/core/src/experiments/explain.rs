//! Decision explanation (extension): causal timelines from recorded
//! rack runs and from spilled sweep cells.
//!
//! Two entry points feed the same renderer
//! ([`gfsc_obs::explain::render_timeline`]):
//!
//! - [`run`] flies a rack simulation with the flight recorder armed and
//!   returns the recorded decision stream plus its rendered timeline —
//!   "epoch 412: s7 measured 79.3 °C, capper proposed cap 0.620 for s7,
//!   coordinator granted cap 0.700 to s7" — straight from the
//!   controllers' own instrumentation.
//! - [`events_from_traces`] reconstructs a best-effort pseudo-event
//!   stream from an epoch-rate [`TraceSet`] (e.g. a sweep cell spilled
//!   to disk by the batched engine, reopened with
//!   [`gfsc_sim::SpilledTraces`]), so cells recorded *without* the
//!   recorder can still be read as a story: cap-channel moves become
//!   cap grants, fan-channel retargets become descent targets.
//!
//! The `gfsc-explain` binary in `gfsc-bench` wraps both paths for the
//! command line; the daemon's HIL drills exercise the recorded path
//! over fault injections.

use gfsc_coord::{RackControl, RackLoopSim};
use gfsc_obs::explain::render_timeline;
use gfsc_obs::{Event, EventKind, FlightSnapshot, Source};
use gfsc_rack::{RackSpec, RackTopology};
use gfsc_sim::TraceSet;
use gfsc_units::Seconds;
use gfsc_workload::{SquareWave, Workload};

/// Configuration of a recorded explanation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainConfig {
    /// The rack to fly.
    pub rack: RackTopology,
    /// The control mode whose decisions get recorded.
    pub control: RackControl,
    /// Simulated duration.
    pub horizon: Seconds,
    /// Workload noise seed (the run is deterministic given the seed).
    pub seed: u64,
    /// Flight-recorder ring capacity, in events.
    pub capacity: usize,
}

impl Default for ExplainConfig {
    /// The global energy descent on the strongly-coupled shared-plenum
    /// rack — the mode with the richest decision stream (descent sweeps,
    /// residuals, per-zone targets and pins, emergency clamps).
    fn default() -> Self {
        Self {
            rack: RackTopology::shared_plenum(4),
            control: RackControl::GlobalECoord,
            horizon: Seconds::new(600.0),
            seed: 42,
            capacity: 4096,
        }
    }
}

/// A recorded run and its rendered story.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// The raw decision stream (serialize with
    /// [`FlightSnapshot::to_text`]).
    pub flight: FlightSnapshot,
    /// The per-epoch causal timeline.
    pub timeline: String,
    /// Violated socket-epochs percentage, for the report header.
    pub violation_percent: f64,
}

/// Flies `config` with the recorder armed and renders the timeline.
///
/// # Panics
///
/// Panics if `config.capacity` is zero.
#[must_use]
pub fn run(config: &ExplainConfig) -> ExplainReport {
    let workload =
        Workload::builder(SquareWave::date14()).gaussian_noise(0.04, config.seed).build();
    let mut sim = RackLoopSim::builder(RackSpec::new(config.rack.clone()))
        .workload(workload)
        .control(config.control)
        .flight_recorder(config.capacity)
        .build();
    let outcome = sim.run(config.horizon);
    let flight = outcome.flight.expect("recorder was armed");
    let timeline = render_timeline(&flight);
    ExplainReport { flight, timeline, violation_percent: outcome.violation_percent }
}

/// Reconstructs a pseudo-event stream from an epoch-rate trace set.
///
/// Spilled cells carry outcomes, not decision provenance, so the
/// mapping is the best the channels support: every `s{i}_cap` move
/// becomes a cap grant at that socket (preceded by the socket's
/// junction reading when `s{i}_t_junction_c` is present), every
/// `z{z}_fan_rpm` retarget becomes a descent target at that zone. The
/// sample index is the epoch stamp. Channels that don't match the rack
/// naming scheme are ignored.
#[must_use]
pub fn events_from_traces(traces: &TraceSet) -> FlightSnapshot {
    let junctions: Vec<(u16, &[f64])> = traces
        .iter()
        .filter_map(|t| {
            let id = t.name().strip_prefix('s')?.strip_suffix("_t_junction_c")?;
            Some((id.parse().ok()?, t.values()))
        })
        .collect();
    let mut events = Vec::new();
    for trace in traces.iter() {
        let name = trace.name();
        let values = trace.values();
        if let Some(i) =
            name.strip_prefix('s').and_then(|n| n.strip_suffix("_cap")).and_then(|n| n.parse().ok())
        {
            for (k, pair) in values.windows(2).enumerate() {
                if pair[1] != pair[0] {
                    let epoch = u32::try_from(k + 1).unwrap_or(u32::MAX);
                    if let Some(hot) =
                        junctions.iter().find(|(j, _)| *j == i).and_then(|(_, t)| t.get(k + 1))
                    {
                        events.push(Event::new(
                            epoch,
                            Source::Socket(i),
                            EventKind::SocketHot,
                            *hot,
                        ));
                    }
                    events.push(Event::new(epoch, Source::Socket(i), EventKind::CapGrant, pair[1]));
                }
            }
        } else if let Some(z) = name
            .strip_prefix('z')
            .and_then(|n| n.strip_suffix("_fan_rpm"))
            .and_then(|n| n.parse().ok())
        {
            for (k, pair) in values.windows(2).enumerate() {
                if pair[1] != pair[0] {
                    let epoch = u32::try_from(k + 1).unwrap_or(u32::MAX);
                    events.push(Event::new(
                        epoch,
                        Source::Zone(z),
                        EventKind::DescentTarget,
                        pair[1],
                    ));
                }
            }
        }
    }
    events.sort_by_key(|e| e.epoch);
    let recorded = events.len() as u64;
    FlightSnapshot { capacity: events.len().max(1), recorded, dropped: 0, events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorded_run_narrates_its_decisions() {
        let report =
            run(&ExplainConfig { horizon: Seconds::new(240.0), ..ExplainConfig::default() });
        assert!(!report.flight.events.is_empty(), "descent run recorded nothing");
        // The descent's own instrumentation is on the stream…
        assert!(
            report.flight.events.iter().any(|e| e.kind == EventKind::DescentSweeps),
            "no sweep events: {:?}",
            report.flight.events
        );
        // …and the timeline narrates it grouped by epoch.
        assert!(report.timeline.contains("epoch "), "{}", report.timeline);
        assert!(report.timeline.contains("Gauss–Seidel sweeps"), "{}", report.timeline);
        // Deterministic given the seed.
        let again =
            run(&ExplainConfig { horizon: Seconds::new(240.0), ..ExplainConfig::default() });
        assert_eq!(report, again);
    }

    #[test]
    fn trace_deltas_become_pseudo_events_in_epoch_order() {
        let mut traces = TraceSet::new();
        let cap = traces.channel("s2_cap");
        traces.record_by_id(cap, Seconds::new(0.0), 1.0);
        traces.record_by_id(cap, Seconds::new(1.0), 1.0);
        traces.record_by_id(cap, Seconds::new(2.0), 0.8);
        let hot = traces.channel("s2_t_junction_c");
        traces.record_by_id(hot, Seconds::new(0.0), 70.0);
        traces.record_by_id(hot, Seconds::new(1.0), 79.0);
        traces.record_by_id(hot, Seconds::new(2.0), 81.5);
        let fan = traces.channel("z1_fan_rpm");
        traces.record_by_id(fan, Seconds::new(0.0), 1500.0);
        traces.record_by_id(fan, Seconds::new(1.0), 2400.0);
        traces.record_by_id(fan, Seconds::new(2.0), 2400.0);
        let snap = events_from_traces(&traces);
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.events[0].epoch, 1);
        assert_eq!(snap.events[0].kind, EventKind::DescentTarget);
        assert_eq!(snap.events[1], Event::new(2, Source::Socket(2), EventKind::SocketHot, 81.5));
        assert_eq!(snap.events[2], Event::new(2, Source::Socket(2), EventKind::CapGrant, 0.8));
        let text = render_timeline(&snap);
        assert!(text.contains("s2 measured 81.5 °C"), "{text}");
        assert!(text.contains("coordinator granted cap 0.800 to s2"), "{text}");
        assert!(text.contains("descent set z1 to 2400 rpm"), "{text}");
    }
}
