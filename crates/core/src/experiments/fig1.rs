//! Fig. 1: sensor readings lag a workload change by ~10 s.
//!
//! The paper's opening measurement: a power-sensor trace follows CPU
//! utilization changes only after a ~10 s delay introduced by the I2C
//! telemetry path. This experiment reproduces the plot with the simulated
//! sensor chain and *measures* the lag by cross-correlation, and also
//! reports the mechanistic bus model's scan-round time (the origin of the
//! delay).

use gfsc_sensors::{MeasurementPipeline, TelemetryScanner};
use gfsc_server::ServerSpec;
use gfsc_sim::TraceSet;
use gfsc_units::{Seconds, Utilization};
use gfsc_workload::{Signal, SquareWave};

/// Configuration of the Fig. 1 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Config {
    /// Plot horizon (the paper shows 700 s).
    pub horizon: Seconds,
    /// Utilization square-wave period.
    pub period: Seconds,
    /// Maximum lag probed by the cross-correlation, in seconds.
    pub max_probe_lag: u32,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Self { horizon: Seconds::new(700.0), period: Seconds::new(200.0), max_probe_lag: 30 }
    }
}

/// The reproduced Fig. 1.
#[derive(Debug)]
pub struct Fig1 {
    /// Normalized traces: `cpu_utilization`, `power_true_norm`,
    /// `power_sensor_norm` on a 1 s grid.
    pub traces: TraceSet,
    /// The lag (seconds) at which the sensed power best matches the true
    /// power, from cross-correlation.
    pub measured_lag: Seconds,
    /// The I2C mechanistic model's full scan-round time — the physical
    /// origin of the lag (≈ 10 s for the DATE'14 64-sensor configuration).
    pub scan_round_time: Seconds,
}

/// Runs the experiment.
#[must_use]
pub fn run(config: &Fig1Config) -> Fig1 {
    let spec = ServerSpec::enterprise_default();
    let wave = SquareWave::new(0.1, 0.7, config.period, 0.5);

    // The power-sensor chain: same sampling and transport as the
    // temperature path (it shares the I2C segment).
    let mut sensor = MeasurementPipeline::builder()
        .sample_interval(spec.sensor_interval)
        .delay(spec.sensor_lag)
        .initial(spec.cpu_power.power(Utilization::new(0.1)).value())
        .build();

    let steps = config.horizon.value() as usize;
    let mut true_power = Vec::with_capacity(steps + 1);
    let mut sensed_power = Vec::with_capacity(steps + 1);
    let mut utilization = Vec::with_capacity(steps + 1);
    for k in 0..=steps {
        let now = Seconds::new(k as f64);
        let u = Utilization::new(wave.at(now));
        let p = spec.cpu_power.power(u).value();
        utilization.push(u.value());
        true_power.push(p);
        sensed_power.push(sensor.observe(now, p));
    }

    // Cross-correlation: the shift minimizing the mean squared difference.
    let mut best = (0u32, f64::INFINITY);
    for shift in 0..=config.max_probe_lag {
        let s = shift as usize;
        if s >= true_power.len() {
            break;
        }
        let n = true_power.len() - s;
        let mse: f64 = (0..n)
            .map(|k| {
                let d = sensed_power[k + s] - true_power[k];
                d * d
            })
            .sum::<f64>()
            / n as f64;
        if mse < best.1 {
            best = (shift, mse);
        }
    }

    // Normalize for the plot, as the paper does.
    let normalize = |v: &[f64]| -> Vec<f64> {
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let span = if hi > lo { hi - lo } else { 1.0 };
        v.iter().map(|x| (x - lo) / span).collect()
    };
    let mut traces = TraceSet::new();
    for (name, values) in [
        ("cpu_utilization", normalize(&utilization)),
        ("power_true_norm", normalize(&true_power)),
        ("power_sensor_norm", normalize(&sensed_power)),
    ] {
        for (k, v) in values.into_iter().enumerate() {
            traces.record(name, Seconds::new(k as f64), v);
        }
    }

    Fig1 {
        traces,
        measured_lag: Seconds::new(f64::from(best.0)),
        scan_round_time: TelemetryScanner::date14().round_time(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_lag_matches_configured_chain() {
        let fig = run(&Fig1Config::default());
        // The chain is configured with a 10 s transport delay; the
        // cross-correlation must find it (within the 1 s sampling grid).
        let lag = fig.measured_lag.value();
        assert!((9.0..=11.0).contains(&lag), "measured lag {lag}");
    }

    #[test]
    fn scan_round_is_about_ten_seconds() {
        let fig = run(&Fig1Config::default());
        assert!((fig.scan_round_time.value() - 10.0).abs() < 0.1);
    }

    #[test]
    fn traces_are_normalized_and_complete() {
        let fig = run(&Fig1Config::default());
        for name in ["cpu_utilization", "power_true_norm", "power_sensor_norm"] {
            let tr = fig.traces.require(name).unwrap();
            assert_eq!(tr.len(), 701, "{name}");
            assert!(tr.values().iter().all(|&v| (0.0..=1.0).contains(&v)), "{name}");
        }
    }

    #[test]
    fn sensor_trace_is_a_shifted_copy_of_truth() {
        let fig = run(&Fig1Config::default());
        let truth = fig.traces.require("power_true_norm").unwrap().values().to_vec();
        let sensed = fig.traces.require("power_sensor_norm").unwrap().values().to_vec();
        let lag = fig.measured_lag.value() as usize;
        let n = truth.len() - lag;
        let mse: f64 = (0..n).map(|k| (sensed[k + lag] - truth[k]).powi(2)).sum::<f64>() / n as f64;
        assert!(mse < 1e-3, "shifted mse {mse}");
    }
}
