//! Reproductions of every figure and table in the paper's evaluation.
//!
//! Each submodule regenerates one artifact:
//!
//! | Module | Paper artifact | What it shows |
//! |--------|----------------|---------------|
//! | [`fig1`] | Fig. 1 | sensor readings lag a workload change by ~10 s (I2C path) |
//! | [`fig3`] | Fig. 3 | fixed-gain PID is slow (2000 rpm set) or unstable (6000 rpm set); the adaptive PID is both fast and stable |
//! | [`fig4`] | Fig. 4 | a deadzone fan controller oscillates under non-ideal measurement |
//! | [`fig5`] | Fig. 5 | the coordinated stack stays stable under noisy dynamic load |
//! | [`table3`] | Table III | deadline violations and fan energy across the five solutions (mean ± CI over seeds) |
//! | [`ablations`] | — (extensions) | lag, quantization, region-count and noise sweeps |
//! | [`topology`] | — (extensions) | the coordinated stack on 2S/4S/blade multi-socket plants |
//! | [`rack`] | — (extensions) | the full rack solution matrix: lockstep vs coordinated / +SS / +E-coord |
//! | [`explain`] | — (extensions) | causal decision timelines from recorded runs and spilled sweep cells |
//!
//! Experiment functions are deterministic for a given config (seeds
//! included), so the binaries in `gfsc-bench` and the assertions in the
//! integration tests exercise the same code paths.

pub mod ablations;
pub mod explain;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod rack;
pub mod table3;
pub mod topology;

use gfsc_control::{GainSchedule, PidGains};
use gfsc_server::ServerSpec;
use gfsc_units::{Celsius, Rpm};
use std::sync::OnceLock;

/// The plant configuration for the fan-controller characterization
/// experiments (Figs. 3 and 4 and the controller ablations).
///
/// Identical to [`ServerSpec::enterprise_default`] except for a 30 °C
/// (cold-aisle) inlet and the vendor-minimum 1000 rpm fan floor. At that
/// operating point the 75 °C regulation is *active at both load levels*
/// (idle at minimum airflow settles near 78 °C, so even the 0.1 phase
/// needs the loop) and spans roughly 1100–3200 rpm — mid-actuator,
/// matching the 2000–6000 rpm span of the paper's own Fig. 3/4 plots.
/// The coordination experiments (Fig. 5, Table III) keep the warm-aisle
/// default with the raised fan floor, where the thermal headroom
/// contention that drives cap/fan conflicts actually occurs.
#[must_use]
pub fn fan_study_spec() -> ServerSpec {
    let base = ServerSpec::enterprise_default();
    ServerSpec {
        ambient: Celsius::new(30.0),
        fan_bounds: gfsc_units::Bounds::new(gfsc_units::Rpm::new(1000.0), base.fan_bounds.hi()),
        ..base
    }
}

/// The two-region gain schedule tuned on [`fan_study_spec`], cached per
/// process (tuning is deterministic but takes seconds).
#[must_use]
pub fn study_gain_schedule() -> &'static GainSchedule {
    static SCHEDULE: OnceLock<GainSchedule> = OnceLock::new();
    SCHEDULE.get_or_init(|| {
        crate::tune_gain_schedule(&fan_study_spec(), &[Rpm::new(2000.0), Rpm::new(6000.0)])
    })
}

/// The fixed gain sets tuned at 2000 and 6000 rpm on [`fan_study_spec`]
/// (the Fig. 3 baselines), cached per process.
#[must_use]
pub fn study_fixed_gains() -> (PidGains, PidGains) {
    static GAINS: OnceLock<(PidGains, PidGains)> = OnceLock::new();
    *GAINS.get_or_init(|| {
        let spec = fan_study_spec();
        (
            crate::tune_single_region(&spec, Rpm::new(2000.0)),
            crate::tune_single_region(&spec, Rpm::new(6000.0)),
        )
    })
}
