//! Fig. 5: the coordinated stack stays stable under noisy dynamic load.
//!
//! The paper validates the global coordination scheme by running the
//! proposed fan controller *together with* the CPU load controller under
//! time-varying utilization with Gaussian noise (σ = 0.04): the fan-speed
//! trace remains stable. This experiment reproduces that run and asserts
//! stability phase-by-phase (the workload's own square wave is excluded
//! from the verdict by analyzing within-phase windows).

use crate::{Simulation, Solution};
use gfsc_sim::stats::{self, OscillationReport};
use gfsc_sim::TraceSet;
use gfsc_units::Seconds;

/// Configuration of the Fig. 5 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Config {
    /// Run length (the paper plots ~700 s; longer gives more phases).
    pub horizon: Seconds,
    /// Workload seed.
    pub seed: u64,
    /// Solution under test (the paper runs the proposed global scheme).
    pub solution: Solution,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Self {
            horizon: Seconds::new(1600.0),
            seed: 42,
            solution: Solution::RCoordAdaptiveTrefSsFan,
        }
    }
}

/// The reproduced Fig. 5.
#[derive(Debug)]
pub struct Fig5 {
    /// Full run traces (`u_demand`, `fan_rpm`, …).
    pub traces: TraceSet,
    /// Worst within-phase oscillation found in the fan trace.
    pub worst_oscillation: OscillationReport,
    /// Stability verdict: no within-phase sustained fan oscillation above
    /// the quantization-dither scale.
    pub stable: bool,
    /// Fraction of deadline violations over the run, for context.
    pub violation_percent: f64,
}

/// Runs the experiment.
#[must_use]
pub fn run(config: &Fig5Config) -> Fig5 {
    let outcome = Simulation::builder()
        .solution(config.solution)
        .seed(config.seed)
        .build()
        .run(config.horizon);
    let traces = outcome.traces;

    // Analyze the second half of every 200 s phase: the first half holds
    // the legitimate step response to the phase change.
    let fan = traces.require("fan_rpm").expect("recorded");
    let mut worst = OscillationReport { reversals: 0, amplitude: 0.0, period: None };
    let mut phase_start = 0.0;
    while phase_start + 200.0 <= config.horizon.value() {
        let from = phase_start + 100.0;
        let to = phase_start + 200.0;
        let (times, values) = fan.tail_from(Seconds::new(from));
        let n = times.partition_point(|&t| t < to);
        let rep = stats::detect_oscillation(&times[..n], &values[..n], 150.0);
        if rep.reversals >= 4 && rep.amplitude > worst.amplitude {
            worst = rep;
        }
        phase_start += 200.0;
    }
    let stable = !worst_is_sustained(&worst);

    Fig5 { traces, worst_oscillation: worst, stable, violation_percent: outcome.violation_percent }
}

fn worst_is_sustained(rep: &OscillationReport) -> bool {
    rep.is_sustained(800.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> &'static Fig5 {
        use std::sync::OnceLock;
        static FIG: OnceLock<Fig5> = OnceLock::new();
        FIG.get_or_init(|| run(&Fig5Config::default()))
    }

    #[test]
    fn coordinated_stack_is_stable_under_noise() {
        let f = fig();
        assert!(f.stable, "worst oscillation {:?}", f.worst_oscillation);
    }

    #[test]
    fn fan_trace_spans_the_load_range() {
        // The fan must actually work (track the square wave), not just sit
        // still — stability through inaction would be vacuous.
        let f = fig();
        let fan = f.traces.require("fan_rpm").unwrap();
        let spread = stats::peak_to_peak(fan.values());
        assert!(spread > 1500.0, "fan barely moved: spread {spread} rpm");
    }

    #[test]
    fn violations_remain_bounded() {
        let f = fig();
        assert!(f.violation_percent < 15.0, "violations {}", f.violation_percent);
    }

    #[test]
    fn works_for_plain_rule_coordination_too() {
        let f = run(&Fig5Config {
            horizon: Seconds::new(800.0),
            seed: 7,
            solution: Solution::RCoordFixedTref,
        });
        assert!(f.stable, "R-coord run unstable: {:?}", f.worst_oscillation);
    }
}
