//! Table III: performance and fan-energy comparison of the five solutions.

use crate::sweep::{aggregate_over_seeds, ScenarioGrid, SeedStats};
use crate::{markdown_table, Solution};
use gfsc_units::Seconds;

/// Configuration of the Table III run.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Config {
    /// Simulated duration per solution (default 2 h — long enough for the
    /// violation fractions to stabilize across workload periods and
    /// spikes).
    pub horizon: Seconds,
    /// Workload seeds. The paper reports a single trace; more seeds add a
    /// 95 % confidence interval over the seed axis to every metric
    /// (default: the single seed 42, reproducing the published table).
    pub seeds: Vec<u64>,
}

impl Default for Table3Config {
    fn default() -> Self {
        Self { horizon: Seconds::new(7200.0), seeds: vec![42] }
    }
}

/// One row of the reproduced table, aggregated over the seed axis.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// The solution evaluated.
    pub solution: Solution,
    /// Percentage of CPU epochs with deadline violations (mean ± CI over
    /// seeds).
    pub violation_percent: SeedStats,
    /// Absolute fan energy over the run, joules (mean ± CI over seeds).
    pub fan_energy_j: SeedStats,
    /// Mean fan energy normalized to the uncoordinated baseline's mean.
    pub normalized_fan_energy: f64,
}

/// The reproduced Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// Rows in the paper's order.
    pub rows: Vec<Table3Row>,
    /// The configuration that produced them.
    pub config: Table3Config,
}

impl Table3 {
    /// The paper's published values `(deadline violation %, normalized fan
    /// energy)`, in the same solution order, for side-by-side reporting.
    #[must_use]
    pub fn paper_values() -> [(f64, f64); 5] {
        [(26.12, 1.0), (44.44, 0.703), (14.14, 1.075), (11.42, 0.801), (6.92, 0.804)]
    }

    /// Looks up a row by solution.
    #[must_use]
    pub fn row(&self, solution: Solution) -> &Table3Row {
        self.rows
            .iter()
            .find(|r| r.solution == solution)
            .expect("all solutions present by construction")
    }

    /// Renders the measured-vs-paper comparison as markdown. Multi-seed
    /// configs annotate every measured cell with its ± 95 % CI half-width.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let paper = Self::paper_values();
        let with_ci = |stats: &SeedStats, decimals: usize| {
            if stats.n > 1 {
                format!("{:.decimals$} ± {:.decimals$}", stats.mean, stats.ci95)
            } else {
                format!("{:.decimals$}", stats.mean)
            }
        };
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .zip(paper)
            .map(|(r, (p_viol, p_energy))| {
                vec![
                    r.solution.paper_name().to_owned(),
                    with_ci(&r.violation_percent, 2),
                    format!("{p_viol:.2}"),
                    format!("{:.3}", r.normalized_fan_energy),
                    format!("{p_energy:.3}"),
                ]
            })
            .collect();
        markdown_table(
            &[
                "Solution",
                "Violation % (ours)",
                "Violation % (paper)",
                "Norm. fan energy (ours)",
                "Norm. fan energy (paper)",
            ],
            &rows,
        )
    }
}

/// Runs all five solutions on the shared workload — every solution × seed
/// cell fanned out across all cores by the sweep engine — and assembles
/// the table with per-metric confidence intervals over the seed axis.
///
/// Normalization happens after the sweep: every run is independent, so the
/// parallel results are bit-identical to a serial walk of
/// [`Solution::ALL`].
///
/// # Panics
///
/// Panics if `config.seeds` is empty.
#[must_use]
pub fn run(config: &Table3Config) -> Table3 {
    let results = ScenarioGrid::builder()
        .horizon(config.horizon)
        .solutions(&Solution::ALL)
        .seeds(&config.seeds)
        .build()
        .run();
    let cells = aggregate_over_seeds(&results);
    let base = cells
        .iter()
        .find(|c| c.solution == Solution::WithoutCoordination)
        .expect("baseline is in Solution::ALL")
        .fan_energy_j
        .mean;
    let rows = cells
        .iter()
        .map(|c| Table3Row {
            solution: c.solution,
            violation_percent: c.violation_percent,
            fan_energy_j: c.fan_energy_j,
            normalized_fan_energy: if base > 0.0 { c.fan_energy_j.mean / base } else { f64::NAN },
        })
        .collect();
    Table3 { rows, config: config.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_publication() {
        let p = Table3::paper_values();
        assert_eq!(p[0], (26.12, 1.0));
        assert_eq!(p[1], (44.44, 0.703));
        assert_eq!(p[4], (6.92, 0.804));
    }

    #[test]
    fn short_run_produces_all_rows() {
        let table = run(&Table3Config { horizon: Seconds::new(300.0), seeds: vec![1] });
        assert_eq!(table.rows.len(), 5);
        // Baseline row is normalized to exactly 1.
        let base = table.row(Solution::WithoutCoordination);
        assert!((base.normalized_fan_energy - 1.0).abs() < 1e-12);
        // Single seed: no CI.
        assert_eq!(base.violation_percent.ci95, 0.0);
        // Markdown renders one line per solution plus 2 header lines.
        let md = table.to_markdown();
        assert_eq!(md.lines().count(), 7);
    }

    #[test]
    fn multi_seed_run_reports_confidence_intervals() {
        let table = run(&Table3Config { horizon: Seconds::new(300.0), seeds: vec![1, 2, 3] });
        let base = table.row(Solution::WithoutCoordination);
        assert_eq!(base.violation_percent.n, 3);
        // Different seeds produce different traces, so the fan-energy CI is
        // strictly positive.
        assert!(base.fan_energy_j.ci95 > 0.0, "CI collapsed: {:?}", base.fan_energy_j);
        assert!(table.to_markdown().contains('±'), "CI missing from markdown");
    }
}
