//! Rack study (extension): the full rack control matrix — global lockstep
//! vs the coordinated two-layer controller, its single-step / E-coord
//! lifts, and the two rack-native modes (rack-global energy descent, work
//! migration) — on rack-scale plants.
//!
//! The paper's global controller manages one fan from one aggregated,
//! non-ideal reading. Scaled to a rack without thought — one PID pairing
//! the rack-wide max measurement with the *fastest* wall's speed (not the
//! hottest zone's; under lockstep the fastest wall is simply the one
//! whose slew got furthest) and driving every wall to the same target,
//! one deadzone capper capping *every* socket — it overpays twice: the
//! cool wall spins as fast as the hot one (fan power is cubic in speed),
//! and one hot socket caps the whole rack. The coordinated modes
//! (`gfsc_coord::RackLoopSim`) run each zone's fan loop on its own
//! aggregate and each socket's adjustable-gain integral capper under a
//! rack coordinator; `coordinated+ss` adds the per-zone single-step bank
//! (Section V-C per zone) and `coordinated+e-coord` replaces the PID/
//! capper pair with the energy-first per-zone descent sized through the
//! zone `PlantModel` views. Two modes go beyond lifting the paper:
//! `global-e-coord` sizes *all* walls jointly against the full coupled
//! rack (`gfsc_coord::RackEnergyDescent`) instead of through frozen
//! per-zone views, and `coordinated+migrate` shifts a hot server's demand
//! weight to a headroomed server behind another wall before the capper
//! bank cuts anything (`gfsc_coord::WorkMigrator`, after Van Damme's
//! thermal-aware scheduling). This study quantifies the matrix, mean ±
//! 95 % CI over seeds.

use crate::markdown_table;
use crate::sweep::{aggregate_over_seeds, ScenarioGrid, SeedStats};
use gfsc_coord::RackControl;
use gfsc_rack::RackTopology;
use gfsc_units::Seconds;

/// Configuration of the rack study.
#[derive(Debug, Clone, PartialEq)]
pub struct RackStudyConfig {
    /// Simulated duration per cell.
    pub horizon: Seconds,
    /// Workload seeds (metrics aggregate to mean ± 95 % CI over this axis).
    pub seeds: Vec<u64>,
    /// The rack structures to compare.
    pub racks: Vec<RackTopology>,
    /// The control modes, matrix order. The default reports the full
    /// seven-row matrix ([`RackControl::ALL`]).
    pub controls: Vec<RackControl>,
}

impl Default for RackStudyConfig {
    fn default() -> Self {
        Self {
            horizon: Seconds::new(1800.0),
            seeds: vec![42, 43, 44],
            racks: vec![RackTopology::rack_1u_x8(), RackTopology::rack_2u_x4()],
            controls: RackControl::ALL.to_vec(),
        }
    }
}

/// One (rack, control) cell's aggregated outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RackRow {
    /// The rack's display label.
    pub rack: String,
    /// The control mode this row ran.
    pub control: RackControl,
    /// Human-readable control-mode name ([`RackControl::label`]).
    pub name: &'static str,
    /// Violated socket-epochs percentage across seeds.
    pub violation_percent: SeedStats,
    /// Fan-wall energy (joules) across seeds.
    pub fan_energy_j: SeedStats,
    /// CPU energy (joules) across seeds.
    pub cpu_energy_j: SeedStats,
    /// Lost utilization across seeds.
    pub lost_utilization: SeedStats,
}

impl RackRow {
    /// Mean total (fan + CPU) energy across seeds — what the migration
    /// study trades violations against.
    #[must_use]
    pub fn total_energy_j(&self) -> f64 {
        self.fan_energy_j.mean + self.cpu_energy_j.mean
    }
}

/// Runs the study: one grid per rack, every control × seed cell fanned
/// out by the sweep engine through the rack-control axis.
///
/// # Panics
///
/// Panics if any config axis is empty.
#[must_use]
pub fn run(config: &RackStudyConfig) -> Vec<RackRow> {
    assert!(!config.racks.is_empty(), "need at least one rack");
    assert!(!config.controls.is_empty(), "need at least one control mode");
    let mut rows = Vec::new();
    for rack in &config.racks {
        let results = ScenarioGrid::builder()
            .horizon(config.horizon)
            .seeds(&config.seeds)
            .rack_variant(rack.clone())
            .rack_controls(&config.controls)
            .build()
            .run();
        let aggregated = aggregate_over_seeds(&results);
        assert_eq!(aggregated.len(), config.controls.len(), "one aggregate per control");
        for (cell, &control) in aggregated.into_iter().zip(&config.controls) {
            rows.push(RackRow {
                rack: rack.label().to_owned(),
                control,
                name: control.label(),
                violation_percent: cell.violation_percent,
                fan_energy_j: cell.fan_energy_j,
                cpu_energy_j: cell.cpu_energy_j,
                lost_utilization: cell.lost_utilization,
            });
        }
    }
    rows
}

/// Renders the study as a markdown table.
#[must_use]
pub fn to_markdown(rows: &[RackRow]) -> String {
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.rack.clone(),
                r.name.to_owned(),
                format!("{:.2} ± {:.2}", r.violation_percent.mean, r.violation_percent.ci95),
                format!("{:.0} ± {:.0}", r.fan_energy_j.mean, r.fan_energy_j.ci95),
                format!("{:.0} ± {:.0}", r.cpu_energy_j.mean, r.cpu_energy_j.ci95),
                format!("{:.0}", r.total_energy_j()),
                format!("{:.2} ± {:.2}", r.lost_utilization.mean, r.lost_utilization.ci95),
            ]
        })
        .collect();
    markdown_table(
        &[
            "Rack",
            "Control",
            "Violation %",
            "Fan energy (J)",
            "CPU energy (J)",
            "Total (J)",
            "Lost util (u·epochs)",
        ],
        &cells,
    )
}

/// The imbalanced-load rack the migration study runs on: the choked-rear
/// geometry with the overload parked on the worst-breathing (rear) wall —
/// `with_load_weights` shifts 40 % extra demand onto one rear 2U server.
#[must_use]
pub fn imbalanced_choked_rack() -> RackTopology {
    let spread = (4.0 - 1.4) / 3.0;
    RackTopology::choked_rear_x4().with_load_weights(&[spread, spread, 1.4, spread])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinated_beats_the_naive_global_loop() {
        // The acceptance contract of the rack subsystem: on a ≥2-zone,
        // ≥4-server rack the coordinated controller spends less fan energy
        // at equal-or-fewer violations than the global lockstep loop.
        let rows = run(&RackStudyConfig {
            horizon: Seconds::new(900.0),
            seeds: vec![42, 43],
            racks: vec![RackTopology::rack_1u_x8()],
            controls: vec![
                RackControl::GlobalLockstep,
                RackControl::Coordinated { adaptive_reference: true },
            ],
        });
        assert_eq!(rows.len(), 2);
        let global = rows.iter().find(|r| r.name == "lockstep").unwrap();
        let coord = rows.iter().find(|r| r.name == "coordinated+adaptive").unwrap();
        assert!(
            coord.fan_energy_j.mean < global.fan_energy_j.mean,
            "coordinated {} J not below global {} J",
            coord.fan_energy_j.mean,
            global.fan_energy_j.mean
        );
        assert!(
            coord.violation_percent.mean <= global.violation_percent.mean + 1e-9,
            "coordinated {}% vs global {}%",
            coord.violation_percent.mean,
            global.violation_percent.mean
        );
        // The CI is reported (non-NaN) for every metric.
        assert!(coord.fan_energy_j.ci95.is_finite());
        let md = to_markdown(&rows);
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn ss_and_ecoord_modes_dominate_the_lockstep_baseline() {
        // The lifted solutions must each strictly dominate global lockstep
        // on fan energy at equal-or-fewer violated socket-epochs — the
        // full-matrix acceptance contract, on both stock racks.
        let rows = run(&RackStudyConfig {
            horizon: Seconds::new(1800.0),
            seeds: vec![42, 43],
            racks: vec![RackTopology::rack_1u_x8(), RackTopology::rack_2u_x4()],
            controls: vec![
                RackControl::GlobalLockstep,
                RackControl::CoordinatedSsFan { adaptive_reference: true },
                RackControl::CoordinatedECoord,
            ],
        });
        for rack in ["1Ux8", "2Ux4"] {
            let lockstep = rows.iter().find(|r| r.rack == rack && r.name == "lockstep").unwrap();
            for name in ["coordinated+ss", "coordinated+e-coord"] {
                let row = rows.iter().find(|r| r.rack == rack && r.name == name).unwrap();
                assert!(
                    row.fan_energy_j.mean < lockstep.fan_energy_j.mean,
                    "{rack}/{name} {} J not strictly below lockstep {} J",
                    row.fan_energy_j.mean,
                    lockstep.fan_energy_j.mean
                );
                assert!(
                    row.violation_percent.mean <= lockstep.violation_percent.mean + 1e-9,
                    "{rack}/{name} {}% vs lockstep {}%",
                    row.violation_percent.mean,
                    lockstep.violation_percent.mean
                );
            }
        }
    }

    #[test]
    fn global_descent_dominates_the_per_zone_descent_where_walls_couple() {
        // The rack-global tentpole contract: on the shared-plenum rack —
        // whose two walls breathe one strongly-tied air volume, so each
        // wall's minimum safe speed moves by hundreds of rpm with the
        // other wall's speed — sizing all walls jointly must strictly beat
        // sizing each against a frozen snapshot of the other, on fan
        // energy at equal-or-fewer violated socket-epochs (mean over
        // seeds).
        let rows = run(&RackStudyConfig {
            horizon: Seconds::new(1800.0),
            seeds: vec![42, 43, 44],
            racks: vec![RackTopology::shared_plenum(4)],
            controls: vec![RackControl::CoordinatedECoord, RackControl::GlobalECoord],
        });
        let zone = rows.iter().find(|r| r.name == "coordinated+e-coord").unwrap();
        let global = rows.iter().find(|r| r.name == "global-e-coord").unwrap();
        assert!(
            global.fan_energy_j.mean < zone.fan_energy_j.mean,
            "global descent {} J not strictly below per-zone {} J",
            global.fan_energy_j.mean,
            zone.fan_energy_j.mean
        );
        assert!(
            global.violation_percent.mean <= zone.violation_percent.mean + 1e-9,
            "global descent {}% vs per-zone {}%",
            global.violation_percent.mean,
            zone.violation_percent.mean
        );
    }

    #[test]
    fn migration_moves_work_instead_of_capping_it() {
        // The migration tentpole contract: on the imbalanced choked-rear
        // rack, shifting the hot rear server's weight to the headroomed
        // front wall must reduce violated socket-epochs at equal-or-less
        // total (fan + CPU) energy vs the purely-capping coordinated
        // controller (mean over seeds) — the work gets *done*, cheaper.
        let rows = run(&RackStudyConfig {
            horizon: Seconds::new(1800.0),
            seeds: vec![42, 43, 44],
            racks: vec![imbalanced_choked_rack()],
            controls: vec![
                RackControl::Coordinated { adaptive_reference: true },
                RackControl::MigratingCoordinated { adaptive_reference: true },
            ],
        });
        let coord = rows.iter().find(|r| r.name == "coordinated+adaptive").unwrap();
        let migrate = rows.iter().find(|r| r.name == "coordinated+migrate").unwrap();
        assert!(
            migrate.violation_percent.mean < coord.violation_percent.mean,
            "migration {}% not below coordinated {}%",
            migrate.violation_percent.mean,
            coord.violation_percent.mean
        );
        assert!(
            migrate.total_energy_j() <= coord.total_energy_j(),
            "migration total {} J above coordinated {} J",
            migrate.total_energy_j(),
            coord.total_energy_j()
        );
        // And it loses strictly less work to capping.
        assert!(migrate.lost_utilization.mean < coord.lost_utilization.mean);
    }
}
